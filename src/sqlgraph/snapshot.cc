#include "sqlgraph/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <shared_mutex>
#include <sstream>

#include "rel/codec.h"
#include "util/crc32c.h"

namespace sqlgraph {
namespace core {

using rel::GetVarint;
using rel::PutVarint;
using rel::Row;
using util::Result;
using util::Status;

namespace {

// SQLG2: same inner encoding as SQLG1, but the header and each table are
// wrapped in a length + masked-CRC32C frame, and the file ends with a
// trailer. A truncated or bit-flipped file therefore fails with a precise
// Status instead of decoding garbage rows.
constexpr char kMagic[] = "SQLG2\n";
constexpr size_t kMagicLen = 6;
constexpr char kTrailer[] = "SQLGEND\n";
constexpr size_t kTrailerLen = 8;
constexpr size_t kSectionHeaderLen = 8;  // u32 length + u32 masked CRC

void PutU32(uint32_t v, std::string* out) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

uint32_t GetU32(const std::string& buf, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(buf[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(buf[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(buf[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(buf[offset + 3]))
             << 24;
}

/// Appends `payload` to `out` framed as length + masked CRC + bytes.
void PutSection(const std::string& payload, std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(util::Crc32cMask(util::Crc32c(payload)), out);
  out->append(payload);
}

/// Extracts the next framed section of `buf` into `payload`, verifying its
/// checksum. `what` names the section in error messages.
Status GetSection(const std::string& buf, size_t* offset, const char* what,
                  std::string* payload) {
  if (*offset + kSectionHeaderLen > buf.size()) {
    return Status::OutOfRange(std::string("snapshot truncated in ") + what +
                              " section header");
  }
  const uint32_t len = GetU32(buf, *offset);
  const uint32_t expected = GetU32(buf, *offset + 4);
  *offset += kSectionHeaderLen;
  if (len > buf.size() - *offset) {
    return Status::OutOfRange(std::string("snapshot truncated in ") + what +
                              " section body");
  }
  payload->assign(buf, *offset, len);
  *offset += len;
  if (util::Crc32cMask(util::Crc32c(*payload)) != expected) {
    return Status::ParseError(std::string("snapshot ") + what +
                              " section checksum mismatch");
  }
  return Status::OK();
}

const char* const kTableOrder[] = {kOpaTable, kIpaTable, kOsaTable,
                                   kIsaTable, kVaTable,  kEaTable};

// Upper bound on the adjacency color count accepted from a snapshot header;
// real stores use a handful of colors, so anything near this is corruption.
constexpr uint64_t kMaxSnapshotColors = 1 << 16;

void PutString(const std::string& s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

Status GetString(const std::string& buf, size_t* offset, std::string* out) {
  uint64_t len = 0;
  RETURN_NOT_OK(GetVarint(buf, offset, &len));
  // Overflow-safe form: *offset + len can wrap for adversarial len.
  if (len > buf.size() - *offset) {
    return Status::OutOfRange("truncated string in snapshot");
  }
  out->assign(buf, *offset, len);
  *offset += len;
  return Status::OK();
}

void PutColoredHash(const coloring::ColoredHash& hash, std::string* out) {
  PutVarint(hash.num_colors(), out);
  const auto entries = hash.Entries();
  PutVarint(entries.size(), out);
  for (const auto& [label, color] : entries) {
    PutString(label, out);
    PutVarint(color, out);
  }
}

Result<coloring::ColoredHash> GetColoredHash(const std::string& buf,
                                             size_t* offset) {
  uint64_t num_colors = 0, count = 0;
  RETURN_NOT_OK(GetVarint(buf, offset, &num_colors));
  RETURN_NOT_OK(GetVarint(buf, offset, &count));
  // Each entry occupies at least two bytes (empty-label varint + color
  // varint), so a count beyond that bound is corrupt — reject it before the
  // reserve() below turns it into a giant allocation.
  if (count > (buf.size() - *offset) / 2) {
    return Status::ParseError("snapshot colored-hash entry count corrupt");
  }
  std::vector<std::pair<std::string, size_t>> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string label;
    uint64_t color = 0;
    RETURN_NOT_OK(GetString(buf, offset, &label));
    RETURN_NOT_OK(GetVarint(buf, offset, &color));
    entries.emplace_back(std::move(label), static_cast<size_t>(color));
  }
  return coloring::ColoredHash::FromEntries(entries,
                                            static_cast<size_t>(num_colors));
}

void PutLoadStats(const LoadStats& s, std::string* out) {
  for (uint64_t v :
       {static_cast<uint64_t>(s.num_out_labels),
        static_cast<uint64_t>(s.num_in_labels),
        static_cast<uint64_t>(s.out_colors), static_cast<uint64_t>(s.in_colors),
        static_cast<uint64_t>(s.max_out_bucket),
        static_cast<uint64_t>(s.max_in_bucket),
        static_cast<uint64_t>(s.out_spill_rows),
        static_cast<uint64_t>(s.in_spill_rows),
        static_cast<uint64_t>(s.osa_rows), static_cast<uint64_t>(s.isa_rows),
        static_cast<uint64_t>(s.num_vertices),
        static_cast<uint64_t>(s.num_edges)}) {
    PutVarint(v, out);
  }
}

Status GetLoadStats(const std::string& buf, size_t* offset, LoadStats* s) {
  uint64_t v[12];
  for (auto& x : v) RETURN_NOT_OK(GetVarint(buf, offset, &x));
  s->num_out_labels = v[0];
  s->num_in_labels = v[1];
  s->out_colors = v[2];
  s->in_colors = v[3];
  s->max_out_bucket = v[4];
  s->max_in_bucket = v[5];
  s->out_spill_rows = v[6];
  s->in_spill_rows = v[7];
  s->osa_rows = v[8];
  s->isa_rows = v[9];
  s->num_vertices = v[10];
  s->num_edges = v[11];
  if (s->num_vertices > 0) {
    s->out_spill_pct = 100.0 * static_cast<double>(s->out_spill_rows) /
                       static_cast<double>(s->num_vertices);
    s->in_spill_pct = 100.0 * static_cast<double>(s->in_spill_rows) /
                      static_cast<double>(s->num_vertices);
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const SqlGraphStore& store, const std::string& path) {
  // Shared-lock every table for a consistent snapshot of a live store.
  std::shared_lock<util::SharedMutex> locks[SqlGraphStore::kNumTables];
  for (int i = 0; i < SqlGraphStore::kNumTables; ++i) {
    locks[i] = std::shared_lock<util::SharedMutex>(store.table_locks_[i]);
  }

  std::string buf;
  buf.append(kMagic, kMagicLen);

  std::string section;
  PutColoredHash(store.schema_.out_hash, &section);
  PutColoredHash(store.schema_.in_hash, &section);
  PutVarint(store.schema_.out_colors, &section);
  PutVarint(store.schema_.in_colors, &section);
  PutVarint(static_cast<uint64_t>(store.next_vertex_id_), &section);
  PutVarint(static_cast<uint64_t>(store.next_edge_id_), &section);
  PutVarint(static_cast<uint64_t>(store.next_lid_ - kLidBase), &section);
  PutLoadStats(store.load_stats_, &section);
  PutSection(section, &buf);

  for (const char* name : kTableOrder) {
    const rel::Table* table = store.db_.GetTable(name);
    if (table == nullptr) return Status::Internal("snapshot: missing table");
    section.clear();
    PutString(name, &section);
    const rel::Schema& schema = table->schema();
    PutVarint(schema.num_columns(), &section);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      PutString(schema.column(c).name, &section);
      section.push_back(static_cast<char>(schema.column(c).type));
      section.push_back(schema.column(c).nullable ? 1 : 0);
    }
    PutVarint(table->NumRows(), &section);
    table->Scan(
        [&section](rel::RowId, const Row& row) { EncodeRow(row, &section); });
    PutSection(section, &buf);
  }
  buf.append(kTrailer, kTrailerLen);

  // write + fsync through a file descriptor: the checkpoint protocol prunes
  // the WAL segments this snapshot covers as soon as it is published, so the
  // bytes must be on stable storage — not merely in the page cache — before
  // the caller renames the file into place.
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for writing: " +
                            std::strerror(errno));
  }
  const char* data = buf.data();
  size_t remaining = buf.size();
  while (remaining > 0) {
    const ssize_t w = ::write(fd, data, remaining);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("write to " + path + " failed: " + err);
    }
    data += w;
    remaining -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fsync of " + path + " failed: " + err);
  }
  if (::close(fd) != 0) {
    return Status::Internal("close of " + path + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::unique_ptr<SqlGraphStore>> OpenSnapshot(const std::string& path,
                                                    StoreConfig config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("snapshot " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string buf = ss.str();
  if (buf.size() < kMagicLen || buf.compare(0, 4, "SQLG") != 0) {
    return Status::ParseError(path + " is not a SQLGraph snapshot");
  }
  if (buf.compare(0, kMagicLen, kMagic) != 0) {
    return Status::ParseError(path + ": unsupported snapshot version (want " +
                              std::string(kMagic, kMagicLen - 1) + ")");
  }
  size_t offset = kMagicLen;

  std::string section;
  RETURN_NOT_OK(GetSection(buf, &offset, "header", &section));
  size_t pos = 0;
  auto store = std::unique_ptr<SqlGraphStore>(new SqlGraphStore(config));
  ASSIGN_OR_RETURN(store->schema_.out_hash, GetColoredHash(section, &pos));
  ASSIGN_OR_RETURN(store->schema_.in_hash, GetColoredHash(section, &pos));
  uint64_t out_colors = 0, in_colors = 0;
  RETURN_NOT_OK(GetVarint(section, &pos, &out_colors));
  RETURN_NOT_OK(GetVarint(section, &pos, &in_colors));
  // Color counts drive `% colors` arithmetic and triad column indexing all
  // over the store, so a corrupt header here would mean division by zero or
  // out-of-bounds row access later. Reject early.
  if (out_colors < 1 || in_colors < 1 || out_colors > kMaxSnapshotColors ||
      in_colors > kMaxSnapshotColors) {
    return Status::ParseError("snapshot header color count corrupt");
  }
  store->schema_.out_colors = static_cast<size_t>(out_colors);
  store->schema_.in_colors = static_cast<size_t>(in_colors);
  uint64_t next_vid = 0, next_eid = 0, lid_delta = 0;
  RETURN_NOT_OK(GetVarint(section, &pos, &next_vid));
  RETURN_NOT_OK(GetVarint(section, &pos, &next_eid));
  RETURN_NOT_OK(GetVarint(section, &pos, &lid_delta));
  store->next_vertex_id_ = static_cast<int64_t>(next_vid);
  store->next_edge_id_ = static_cast<int64_t>(next_eid);
  store->next_lid_ = kLidBase + static_cast<int64_t>(lid_delta);
  RETURN_NOT_OK(GetLoadStats(section, &pos, &store->load_stats_));
  if (pos != section.size()) {
    return Status::ParseError("trailing bytes in snapshot header section");
  }

  for (const char* expected_name : kTableOrder) {
    RETURN_NOT_OK(GetSection(buf, &offset, expected_name, &section));
    pos = 0;
    std::string name;
    RETURN_NOT_OK(GetString(section, &pos, &name));
    if (name != expected_name) {
      return Status::ParseError("snapshot table order mismatch: " + name);
    }
    uint64_t num_columns = 0;
    RETURN_NOT_OK(GetVarint(section, &pos, &num_columns));
    rel::Schema schema;
    for (uint64_t c = 0; c < num_columns; ++c) {
      std::string col_name;
      RETURN_NOT_OK(GetString(section, &pos, &col_name));
      if (pos + 2 > section.size()) {
        return Status::OutOfRange("truncated column header");
      }
      const uint8_t type_byte = static_cast<uint8_t>(section[pos]);
      if (type_byte > static_cast<uint8_t>(rel::ColumnType::kJson)) {
        return Status::ParseError("snapshot column type byte corrupt");
      }
      const auto type = static_cast<rel::ColumnType>(type_byte);
      const bool nullable = section[pos + 1] != 0;
      pos += 2;
      schema.AddColumn(std::move(col_name), type, nullable);
    }
    // Cross-check the table shape against the header's color counts: triad
    // column indexing (2 + 3c) assumes exactly these widths, and a mismatch
    // would mean out-of-bounds row access in adjacency code.
    size_t expect_cols = 0;
    if (name == kOpaTable) expect_cols = 2 + 3 * store->schema_.out_colors;
    else if (name == kIpaTable) expect_cols = 2 + 3 * store->schema_.in_colors;
    else if (name == kOsaTable || name == kIsaTable) expect_cols = 3;
    else if (name == kVaTable) expect_cols = 2;
    else expect_cols = 5;  // EA
    if (schema.num_columns() != expect_cols) {
      return Status::ParseError("snapshot table " + name +
                                " has wrong column count");
    }
    ASSIGN_OR_RETURN(rel::Table * table,
                     store->db_.CreateTable(name, schema, config.storage));
    uint64_t row_count = 0;
    RETURN_NOT_OK(GetVarint(section, &pos, &row_count));
    for (uint64_t r = 0; r < row_count; ++r) {
      Row row;
      RETURN_NOT_OK(rel::DecodeRow(section, schema.num_columns(), &pos, &row));
      RETURN_NOT_OK(table->Insert(std::move(row)).status());
    }
    if (pos != section.size()) {
      return Status::ParseError(std::string("trailing bytes in snapshot ") +
                                expected_name + " section");
    }
  }
  if (offset + kTrailerLen > buf.size() ||
      buf.compare(offset, kTrailerLen, kTrailer, kTrailerLen) != 0) {
    return Status::OutOfRange("snapshot missing EOF trailer (truncated file)");
  }
  offset += kTrailerLen;
  if (offset != buf.size()) {
    return Status::ParseError("trailing bytes in snapshot");
  }
  // Rebuild the Fig. 5 index set (plus configured attribute indexes).
  RETURN_NOT_OK(store->schema_.CreateIndexes(&store->db_, config));
  return store;
}

}  // namespace core
}  // namespace sqlgraph
