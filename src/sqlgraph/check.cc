// CheckConsistency: the cross-table invariant auditor (see check.h).
//
// The pass is deliberately defensive: every cell is type-checked before use
// so a corrupted table (fuzzed snapshot, torn recovery) produces violations,
// never a bad_variant_access. Legal-but-surprising states it must accept:
//
//  * adjacency entries pointing at a soft-deleted neighbor whose EA rows
//    are already gone (RemoveVertex cleans EA eagerly, neighbors lazily),
//  * a triad holding a lid with zero OSA/ISA rows — Compact() removes list
//    entries whose targets died but leaves the triad as an empty list,
//  * a lone row with SPILL=1 (RemoveAdjacencyEntry never clears the flag).

#include "sqlgraph/check.h"

#include <algorithm>
#include <map>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "json/json_parser.h"
#include "sqlgraph/store.h"
#include "util/thread_annotations.h"

namespace sqlgraph {
namespace core {

using rel::Row;
using rel::RowId;
using rel::Value;

namespace {

// Column offsets in OPA/IPA rows (mirrors store.cc).
constexpr size_t kVidCol = 0;
constexpr size_t kSpillCol = 1;
size_t EidColIdx(size_t c) { return 2 + 3 * c; }
size_t LblColIdx(size_t c) { return 3 + 3 * c; }
size_t ValColIdx(size_t c) { return 4 + 3 * c; }

// EA column offsets.
constexpr size_t kEaEid = 0;
constexpr size_t kEaInv = 1;
constexpr size_t kEaOutv = 2;
constexpr size_t kEaLbl = 3;
constexpr size_t kEaAttr = 4;

// Table slots, in the store's TableIdx order (that enum is private).
enum LocalTableIdx { kOpa = 0, kIpa, kOsa, kIsa, kVa, kEa, kNumAuditTables };

struct EaEntry {
  int64_t src = 0;
  int64_t dst = 0;
  std::string label;
  bool typed_ok = false;  // false: row was malformed, skip agreement checks
};

// One direction's adjacency entry, keyed by eid in the maps below.
struct AdjEntry {
  int64_t vid = 0;
  int64_t nbr = 0;
  std::string label;
};

class Auditor {
 public:
  Auditor(const rel::Database* db, const GraphSchema* schema,
          ConsistencyReport* report)
      : db_(db), schema_(schema), report_(report) {}

  void Run() {
    if (!LookupTables()) return;
    ScanVa();
    ScanEa();
    AuditDirection(/*outgoing=*/true);
    AuditDirection(/*outgoing=*/false);
  }

  int64_t max_vid() const { return max_vid_; }
  int64_t max_eid() const { return max_eid_; }
  int64_t max_lid() const { return max_lid_; }

  void Add(ViolationClass cls, const char* table, int64_t id,
           std::string detail) {
    ++report_->total_violations;
    if (report_->violations.size() >= ConsistencyReport::kMaxViolations) {
      report_->truncated = true;
      return;
    }
    report_->violations.push_back({cls, table, id, std::move(detail)});
  }

 private:
  bool LookupTables() {
    static constexpr const char* kNames[kNumAuditTables] = {
        kOpaTable, kIpaTable, kOsaTable, kIsaTable, kVaTable, kEaTable};
    bool ok = true;
    for (int i = 0; i < kNumAuditTables; ++i) {
      tables_[i] = db_->GetTable(kNames[i]);
      if (tables_[i] == nullptr) {
        Add(ViolationClass::kTableShape, kNames[i], 0, "table missing");
        ok = false;
      }
    }
    return ok;
  }

  static bool IsInt(const Value& v) { return v.is_int(); }

  /// ATTR audit shared by VA and EA: must be a JSON object whose compact
  /// serialization parses back. NULL is tolerated (legacy loads).
  void AuditAttr(const char* table, int64_t id, const Value& attr) {
    if (attr.is_null()) return;
    if (!attr.is_json()) {
      Add(ViolationClass::kJsonMalformed, table, id, "ATTR is not JSON");
      return;
    }
    if (!attr.AsJson().is_object()) {
      Add(ViolationClass::kJsonMalformed, table, id,
          "ATTR is not a JSON object");
      return;
    }
    if (!json::Parse(json::Write(attr.AsJson())).ok()) {
      Add(ViolationClass::kJsonMalformed, table, id,
          "ATTR does not round-trip through the JSON writer");
    }
  }

  void ScanVa() {
    tables_[kVa]->Scan([&](RowId, const Row& row) {
      ++report_->rows_audited;
      if (row.size() != 2 || !IsInt(row[0])) {
        Add(ViolationClass::kTableShape, kVaTable, 0, "malformed VA row");
        return;
      }
      const int64_t vid = row[0].AsInt();
      if (vid >= 0) {
        if (!va_live_.insert(vid).second) {
          Add(ViolationClass::kDuplicateId, kVaTable, vid, "duplicate VID");
        }
        max_vid_ = std::max(max_vid_, vid);
      } else {
        if (!va_deleted_.insert(vid).second) {
          Add(ViolationClass::kDuplicateId, kVaTable, vid,
              "duplicate soft-deleted VID");
        }
        max_vid_ = std::max(max_vid_, -vid - 1);
      }
      AuditAttr(kVaTable, vid, row[1]);
    });
    for (const int64_t d : va_deleted_) {
      if (va_live_.count(-d - 1) != 0) {
        Add(ViolationClass::kSoftDelete, kVaTable, -d - 1,
            "vertex is both live and soft-deleted");
      }
    }
  }

  void ScanEa() {
    tables_[kEa]->Scan([&](RowId, const Row& row) {
      ++report_->rows_audited;
      if (row.size() != 5 || !IsInt(row[kEaEid])) {
        Add(ViolationClass::kTableShape, kEaTable, 0, "malformed EA row");
        return;
      }
      const int64_t eid = row[kEaEid].AsInt();
      max_eid_ = std::max(max_eid_, eid);
      EaEntry entry;
      if (IsInt(row[kEaInv]) && IsInt(row[kEaOutv]) && row[kEaLbl].is_string()) {
        entry.src = row[kEaInv].AsInt();
        entry.dst = row[kEaOutv].AsInt();
        entry.label = row[kEaLbl].AsString();
        entry.typed_ok = true;
      } else {
        Add(ViolationClass::kTableShape, kEaTable, eid,
            "EA row has wrong column types");
      }
      if (!ea_.emplace(eid, std::move(entry)).second) {
        Add(ViolationClass::kDuplicateId, kEaTable, eid, "duplicate EID");
        return;
      }
      AuditAttr(kEaTable, eid, row[kEaAttr]);
      // Endpoint hygiene: EA rows of a soft-deleted vertex are removed by
      // RemoveVertex itself, so a survivor referencing one is a bug.
      const EaEntry& e = ea_[eid];
      if (!e.typed_ok) return;
      for (const int64_t endpoint : {e.src, e.dst}) {
        if (va_live_.count(endpoint) != 0) continue;
        if (va_deleted_.count(-endpoint - 1) != 0) {
          Add(ViolationClass::kSoftDelete, kEaTable, eid,
              "EA row references soft-deleted vertex " +
                  std::to_string(endpoint));
        } else {
          Add(ViolationClass::kEaAdjacency, kEaTable, eid,
              "EA row references unknown vertex " + std::to_string(endpoint));
        }
      }
    });
  }

  void AuditDirection(bool outgoing) {
    const char* primary_name = outgoing ? kOpaTable : kIpaTable;
    const char* secondary_name = outgoing ? kOsaTable : kIsaTable;
    const rel::Table* primary = tables_[outgoing ? kOpa : kIpa];
    const rel::Table* secondary = tables_[outgoing ? kOsa : kIsa];
    const coloring::ColoredHash& hash =
        outgoing ? schema_->out_hash : schema_->in_hash;
    const size_t colors = outgoing ? schema_->out_colors : schema_->in_colors;

    // ---- Pass 1: overflow lists. lid → [(eid, target)] --------------------
    std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> lists;
    secondary->Scan([&](RowId, const Row& row) {
      ++report_->rows_audited;
      if (row.size() != 3 || !IsInt(row[0]) || !IsInt(row[1]) ||
          !IsInt(row[2])) {
        Add(ViolationClass::kTableShape, secondary_name, 0,
            "malformed list row");
        return;
      }
      const int64_t lid = row[0].AsInt();
      if (lid < kLidBase) {
        Add(ViolationClass::kListLinkage, secondary_name, lid,
            "list VALID below lid base");
        return;
      }
      max_lid_ = std::max(max_lid_, lid);
      lists[lid].emplace_back(row[1].AsInt(), row[2].AsInt());
    });

    // ---- Pass 2: adjacency rows ------------------------------------------
    // eid → entry for the EA cross-check (live rows only).
    std::unordered_map<int64_t, AdjEntry> adj;
    // lid → owning (vid, label, negated) triad.
    struct LidRef {
      int64_t vid;
      std::string label;
      bool negated;
    };
    std::unordered_map<int64_t, LidRef> lid_refs;
    // Stored vid → (row count, rows with SPILL != 1).
    std::map<int64_t, std::pair<size_t, size_t>> vid_rows;
    std::unordered_set<std::string> seen_labels;  // "vid|label" dedup

    primary->Scan([&](RowId, const Row& row) {
      ++report_->rows_audited;
      if (row.size() != 2 + 3 * colors || !IsInt(row[kVidCol]) ||
          !IsInt(row[kSpillCol])) {
        Add(ViolationClass::kTableShape, primary_name, 0,
            "malformed adjacency row");
        return;
      }
      const int64_t vid = row[kVidCol].AsInt();
      const int64_t spill = row[kSpillCol].AsInt();
      const bool negated = vid < 0;
      auto& group = vid_rows[vid];
      ++group.first;
      if (spill != 1) ++group.second;
      if (spill != 0 && spill != 1) {
        Add(ViolationClass::kSpillColoring, primary_name, vid,
            "SPILL flag is neither 0 nor 1");
      }
      // Vertex hygiene: the row's id must exist in VA on the matching side.
      if (negated) {
        if (va_deleted_.count(vid) == 0) {
          Add(ViolationClass::kSoftDelete, primary_name, vid,
              "negated adjacency row without soft-deleted VA entry");
        }
      } else if (va_live_.count(vid) == 0) {
        Add(ViolationClass::kSoftDelete, primary_name, vid,
            "adjacency row for unknown vertex");
      }
      for (size_t c = 0; c < colors; ++c) {
        const Value& eidv = row[EidColIdx(c)];
        const Value& lblv = row[LblColIdx(c)];
        const Value& valv = row[ValColIdx(c)];
        if (eidv.is_null() && lblv.is_null() && valv.is_null()) continue;
        if (!lblv.is_string() || !IsInt(valv) ||
            (!eidv.is_null() && !IsInt(eidv))) {
          Add(ViolationClass::kSpillColoring, primary_name, vid,
              "partially filled or mistyped triad at color " +
                  std::to_string(c));
          continue;
        }
        const std::string& label = lblv.AsString();
        if (hash.ColorOf(label) % colors != c) {
          Add(ViolationClass::kSpillColoring, primary_name, vid,
              "label '" + label + "' stored in triad " + std::to_string(c) +
                  " but colors to " +
                  std::to_string(hash.ColorOf(label) % colors));
        }
        if (!seen_labels.insert(std::to_string(vid) + "|" + label).second) {
          Add(ViolationClass::kDuplicateId, primary_name, vid,
              "label '" + label + "' appears in more than one triad");
        }
        const int64_t val = valv.AsInt();
        if (val >= kLidBase) {
          if (!eidv.is_null()) {
            Add(ViolationClass::kListLinkage, primary_name, vid,
                "list triad carries a non-null EID");
          }
          auto [it, inserted] =
              lid_refs.emplace(val, LidRef{vid, label, negated});
          if (!inserted) {
            Add(ViolationClass::kListLinkage, primary_name, vid,
                "lid " + std::to_string(val) +
                    " referenced by more than one triad");
          }
        } else {
          if (eidv.is_null()) {
            Add(ViolationClass::kListLinkage, primary_name, vid,
                "single-valued triad missing its EID");
            continue;
          }
          if (!negated) {
            const int64_t eid = eidv.AsInt();
            max_eid_ = std::max(max_eid_, eid);
            if (!adj.emplace(eid, AdjEntry{vid, val, label}).second) {
              Add(ViolationClass::kDuplicateId, primary_name, vid,
                  "edge " + std::to_string(eid) +
                      " appears twice in this direction");
            }
          }
        }
      }
    });

    // ---- Spill-vs-multiplicity -------------------------------------------
    for (const auto& [vid, counts] : vid_rows) {
      if (counts.first > 1 && counts.second > 0) {
        Add(ViolationClass::kSpillColoring, primary_name, vid,
            "vertex has " + std::to_string(counts.first) +
                " rows but not all carry SPILL=1");
      }
    }

    // ---- List linkage -----------------------------------------------------
    for (const auto& [lid, entries] : lists) {
      auto ref = lid_refs.find(lid);
      if (ref == lid_refs.end()) {
        Add(ViolationClass::kListLinkage, secondary_name, lid,
            "orphan list: no triad references this lid");
        continue;
      }
      std::unordered_set<int64_t> eids_in_list;
      for (const auto& [eid, target] : entries) {
        max_eid_ = std::max(max_eid_, eid);
        if (!eids_in_list.insert(eid).second) {
          Add(ViolationClass::kDuplicateId, secondary_name, lid,
              "edge " + std::to_string(eid) + " listed twice");
          continue;
        }
        if (ref->second.negated) continue;  // content checked via nothing:
        // the owning vertex is deleted, its EA rows are gone by design.
        if (!adj.emplace(eid, AdjEntry{ref->second.vid, target,
                                       ref->second.label})
                 .second) {
          Add(ViolationClass::kDuplicateId, secondary_name, lid,
              "edge " + std::to_string(eid) +
                  " appears twice in this direction");
        }
      }
    }
    // A lid referenced by a triad with zero list rows is a legal empty list
    // (Compact removes entries whose targets died without clearing the
    // triad), so no violation for lid_refs entries missing from `lists`.

    // ---- Adjacency → EA agreement ----------------------------------------
    for (const auto& [eid, entry] : adj) {
      auto it = ea_.find(eid);
      if (it == ea_.end()) {
        // Legal only while the neighbor is soft-deleted: RemoveVertex
        // removes EA rows eagerly but leaves the other endpoint's adjacency
        // for Compact.
        if (va_deleted_.count(-entry.nbr - 1) == 0) {
          Add(ViolationClass::kAdjacencyDangling, primary_name, entry.vid,
              "adjacency references edge " + std::to_string(eid) +
                  " with no EA row (neighbor " + std::to_string(entry.nbr) +
                  " is live)");
        }
        continue;
      }
      if (!it->second.typed_ok) continue;  // reported as kTableShape already
      const int64_t expect_vid = outgoing ? it->second.src : it->second.dst;
      const int64_t expect_nbr = outgoing ? it->second.dst : it->second.src;
      if (expect_vid != entry.vid || expect_nbr != entry.nbr ||
          it->second.label != entry.label) {
        Add(ViolationClass::kEaAdjacency, primary_name, entry.vid,
            "edge " + std::to_string(eid) + " disagrees with EA: adjacency " +
                std::to_string(entry.vid) + " -" + entry.label + "-> " +
                std::to_string(entry.nbr) + ", EA " +
                std::to_string(it->second.src) + " -" + it->second.label +
                "-> " + std::to_string(it->second.dst));
      }
    }

    // ---- EA → adjacency presence -----------------------------------------
    for (const auto& [eid, entry] : ea_) {
      if (!entry.typed_ok) continue;
      const int64_t owner = outgoing ? entry.src : entry.dst;
      if (va_live_.count(owner) == 0) continue;  // endpoint hygiene above
      if (adj.find(eid) == adj.end()) {
        Add(ViolationClass::kEaAdjacency, kEaTable, eid,
            std::string("edge missing from ") + primary_name +
                " adjacency of vertex " + std::to_string(owner));
      }
    }
  }

  const rel::Database* db_;
  const GraphSchema* schema_;
  ConsistencyReport* report_;
  const rel::Table* tables_[kNumAuditTables] = {};

  std::unordered_set<int64_t> va_live_;
  std::unordered_set<int64_t> va_deleted_;  // stored (negative) ids
  std::unordered_map<int64_t, EaEntry> ea_;
  int64_t max_vid_ = -1;
  int64_t max_eid_ = -1;
  int64_t max_lid_ = kLidBase - 1;
};

}  // namespace

const char* ViolationClassName(ViolationClass c) {
  switch (c) {
    case ViolationClass::kTableShape: return "table-shape";
    case ViolationClass::kDuplicateId: return "duplicate-id";
    case ViolationClass::kEaAdjacency: return "ea-adjacency";
    case ViolationClass::kAdjacencyDangling: return "adjacency-dangling";
    case ViolationClass::kListLinkage: return "list-linkage";
    case ViolationClass::kSpillColoring: return "spill-coloring";
    case ViolationClass::kSoftDelete: return "soft-delete";
    case ViolationClass::kJsonMalformed: return "json-malformed";
    case ViolationClass::kCounter: return "counter";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  return std::string(ViolationClassName(cls)) + " [" + table + " id=" +
         std::to_string(id) + "] " + detail;
}

size_t ConsistencyReport::CountOf(ViolationClass c) const {
  size_t n = 0;
  for (const auto& v : violations) {
    if (v.cls == c) ++n;
  }
  return n;
}

std::string ConsistencyReport::ToString() const {
  std::string out = "consistency: " +
                    std::string(ok() ? "OK" : "VIOLATIONS") + " (" +
                    std::to_string(total_violations) + " violations, " +
                    std::to_string(rows_audited) + " rows audited" +
                    (truncated ? ", detail truncated" : "") + ")";
  for (const auto& v : violations) {
    out += "\n  " + v.ToString();
  }
  return out;
}

ConsistencyReport SqlGraphStore::CheckConsistency() const {
  // Shared-lock all tables in TableIdx order (same protocol as
  // SaveSnapshot) so the audit sees a consistent cut.
  std::shared_lock<util::SharedMutex> locks[kNumTables];
  for (int i = 0; i < kNumTables; ++i) {
    locks[i] = std::shared_lock<util::SharedMutex>(table_locks_[i]);
  }
  ConsistencyReport report;
  Auditor auditor(&db_, &schema_, &report);
  auditor.Run();

  // Counter monotonicity: every stored id must be behind its counter, or
  // the next allocation would collide. counter_lock_ ranks above the table
  // locks, so taking it here is hierarchy-legal.
  {
    util::ReaderMutexLock counter(&counter_lock_);
    if (auditor.max_vid() >= next_vertex_id_) {
      auditor.Add(ViolationClass::kCounter, kVaTable, auditor.max_vid(),
                  "next_vertex_id " + std::to_string(next_vertex_id_) +
                      " not ahead of stored VID");
    }
    if (auditor.max_eid() >= next_edge_id_) {
      auditor.Add(ViolationClass::kCounter, kEaTable, auditor.max_eid(),
                  "next_edge_id " + std::to_string(next_edge_id_) +
                      " not ahead of stored EID");
    }
    if (auditor.max_lid() >= next_lid_) {
      auditor.Add(ViolationClass::kCounter, kOsaTable, auditor.max_lid(),
                  "next_lid " + std::to_string(next_lid_) +
                      " not ahead of stored list id");
    }
  }
  return report;
}

}  // namespace core
}  // namespace sqlgraph
