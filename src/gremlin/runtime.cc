#include "gremlin/runtime.h"

#include "sql/render.h"

namespace sqlgraph {
namespace gremlin {

util::Result<sql::ResultSet> GremlinRuntime::Query(std::string_view text) {
  ASSIGN_OR_RETURN(Pipeline pipeline, ParseGremlin(text));
  return Run(pipeline);
}

util::Result<sql::ResultSet> GremlinRuntime::Run(const Pipeline& pipeline) {
  sql::ParamBindings binds;
  ASSIGN_OR_RETURN(CachedTranslation cached,
                   cache_.GetOrTranslate(translator_, pipeline, &binds));
  auto prepared = store_->Prepare(cached.sql);
  if (!prepared.ok()) {
    // The rendered text did not survive the parse round trip (a construct
    // the SQL parser does not accept yet): execute the translated AST
    // directly. Deterministic per shape, so correctness is unaffected.
    ASSIGN_OR_RETURN(sql::SqlQuery query, translator_.Translate(pipeline));
    return store_->Execute(query);
  }
  return store_->ExecutePrepared(**prepared, binds);
}

util::Result<std::string> GremlinRuntime::TranslateToSql(
    std::string_view text) const {
  ASSIGN_OR_RETURN(Pipeline pipeline, ParseGremlin(text));
  ASSIGN_OR_RETURN(sql::SqlQuery query, translator_.Translate(pipeline));
  return sql::Render(query);
}

util::Result<int64_t> GremlinRuntime::Count(std::string_view text) {
  ASSIGN_OR_RETURN(sql::ResultSet result, Query(text));
  if (result.rows.size() != 1 || result.rows[0].empty() ||
      !result.rows[0][0].is_number()) {
    return util::Status::InvalidArgument("query did not produce a scalar");
  }
  return result.rows[0][0].AsInt();
}

}  // namespace gremlin
}  // namespace sqlgraph
