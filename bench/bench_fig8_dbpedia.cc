// Paper Fig. 8 — the DBpedia benchmark: 20 converted-SPARQL queries (8a),
// the 11 long-path queries (8b), memory sensitivity (8c, --memory-sweep),
// the summary means (8d), and the on-disk size comparison (§5.1).
//
// SQLGraph executes each Gremlin query as ONE SQL statement; the
// Titan-like KvStore and Neo4j-like NativeStore evaluate the same pipelines
// pipe-at-a-time over their Blueprints APIs with a per-call round-trip
// charge (see DESIGN.md §4).
//
//   ./bench_fig8_dbpedia [--scale=0.2] [--runs=2] [--rt-micros=10]
//                        [--memory-sweep]

#include <array>
#include <memory>

#include "baseline/gremlin_interp.h"
#include "baseline/kv_store.h"
#include "baseline/native_store.h"
#include "bench_common.h"
#include "gremlin/runtime.h"
#include "util/string_util.h"

using namespace sqlgraph;
using namespace sqlgraph::bench;

namespace {

struct SeriesStats {
  util::RunningStat benchmark;   // all 20 queries
  util::RunningStat adjusted;    // excluding dq15
  util::RunningStat path;        // 11 path queries
};

void PrintSummary(const char* name, const SeriesStats& s) {
  std::printf("%-24s benchmark %8.1f ms  adjusted %8.1f ms  path %8.1f ms\n",
              name, s.benchmark.mean(), s.adjusted.mean(), s.path.mean());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "--scale", 0.2);
  const int runs = static_cast<int>(FlagInt(argc, argv, "--runs", 2));
  const uint32_t rt_micros =
      static_cast<uint32_t>(FlagInt(argc, argv, "--rt-micros", 10));
  const bool memory_sweep = FlagBool(argc, argv, "--memory-sweep");

  graph::PropertyGraph g = BuildDbpediaGraph(scale);

  // ------------------------------------------------------ memory sweep ----
  if (memory_sweep) {
    Banner("Fig. 8c — mean query time vs buffer-pool budget (paged storage)");
    TextTable table({"pool budget", "mean ms (all 31 queries)", "pool hits",
                     "pool misses", "pool evictions"});
    for (size_t budget_mb : {8, 16, 32, 64, 128, 256}) {
      core::StoreConfig config = DbpediaStoreConfig();
      config.storage = rel::StorageMode::kPaged;
      config.buffer_pool_bytes = budget_mb << 20;
      auto store = core::SqlGraphStore::Build(g, config);
      if (!store.ok()) return 1;
      gremlin::GremlinRuntime runtime(store->get());
      util::RunningStat per_query;
      auto run_all = [&](bool record) {
        for (const auto& text : DbpediaBenchmarkQueries()) {
          util::Stopwatch sw;
          (void)runtime.Count(text);
          if (record) per_query.Add(sw.ElapsedMillis());
        }
        for (const auto& q : Table1Queries()) {
          util::Stopwatch sw;
          (void)runtime.Count(q.ToGremlin());
          if (record) per_query.Add(sw.ElapsedMillis());
        }
      };
      run_all(/*record=*/false);  // warm
      (*store)->db()->buffer_pool()->Clear();  // then measure from a cold pool
      run_all(/*record=*/true);
      table.AddRow({util::StrFormat("%zu MiB", budget_mb),
                    FormatMs(per_query.mean()),
                    std::to_string((*store)->db()->buffer_pool()->hits()),
                    std::to_string((*store)->db()->buffer_pool()->misses()),
                    std::to_string((*store)->db()->buffer_pool()->evictions())});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(paper Fig. 8c: all systems flatten once the working set "
                "fits — more memory past that point does not help)\n");
    return 0;
  }

  // --------------------------------------------------------- main runs ----
  auto store = core::SqlGraphStore::Build(g, DbpediaStoreConfig());
  if (!store.ok()) return 1;
  gremlin::GremlinRuntime runtime(store->get());

  baseline::KvStoreConfig kv_config;
  kv_config.round_trip_micros = rt_micros;
  kv_config.indexed_keys = IndexedAttributeKeys();
  auto kv = baseline::KvStore::Build(g, kv_config);
  if (!kv.ok()) return 1;
  baseline::NativeStoreConfig native_config;
  native_config.round_trip_micros = rt_micros;
  native_config.indexed_keys = IndexedAttributeKeys();
  auto native = baseline::NativeStore::Build(g, native_config);
  if (!native.ok()) return 1;

  SeriesStats sqlgraph_stats, kv_stats, native_stats;

  struct QueryTiming {
    std::array<double, 3> mean_ms;  // SQLGraph, KV, Native
    std::string sg_percentiles;     // SQLGraph p50/p95/p99
  };
  auto run_query = [&](const std::string& text, bool is_path, bool heavy) {
    int64_t expected = -1;
    util::Samples sg = TimedRuns(runs + 1, [&] {
      auto r = runtime.Count(text);
      if (r.ok()) expected = *r;
    });
    auto run_interp = [&](baseline::GraphDb* db) {
      baseline::GremlinInterpreter interp(db);
      // Heavy queries run once on the chatty engines (the paper's Titan
      // timed out on dq15).
      util::Samples s = TimedRuns(heavy ? 2 : runs + 1, [&] {
        auto r = interp.Count(text);
        if (r.ok() && expected >= 0 && *r != expected) {
          std::fprintf(stderr, "MISMATCH on %s (%s)\n", text.c_str(),
                       db->name().c_str());
        }
      });
      return s;
    };
    util::Samples kv_ms = run_interp(kv->get());
    util::Samples native_ms = run_interp(native->get());
    auto record = [&](SeriesStats* stats, double ms) {
      if (is_path) {
        stats->path.Add(ms);
      } else {
        stats->benchmark.Add(ms);
        if (!heavy) stats->adjusted.Add(ms);
      }
    };
    record(&sqlgraph_stats, sg.mean());
    record(&kv_stats, kv_ms.mean());
    record(&native_stats, native_ms.mean());
    return QueryTiming{{sg.mean(), kv_ms.mean(), native_ms.mean()},
                       FormatPercentiles(sg)};
  };

  Banner("Fig. 8a — DBpedia benchmark queries (ms)");
  {
    TextTable table({"query", "SQLGraph", "sg p50/p95/p99", "Titan-like(KV)",
                     "Neo4j-like(Native)"});
    const auto queries = DbpediaBenchmarkQueries();
    for (size_t i = 0; i < queries.size(); ++i) {
      const bool heavy = i == 14;  // dq15
      auto t = run_query(queries[i], /*is_path=*/false, heavy);
      table.AddRow({util::StrFormat("dq%zu%s", i + 1, heavy ? "*" : ""),
                    FormatMs(t.mean_ms[0]), t.sg_percentiles,
                    FormatMs(t.mean_ms[1]), FormatMs(t.mean_ms[2])});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(* = the pathological query Titan timed out on in the "
                "paper; chatty engines run it once)\n");
  }

  Banner("Fig. 8b — long path queries (ms)");
  {
    TextTable table({"query", "SQLGraph", "sg p50/p95/p99", "Titan-like(KV)",
                     "Neo4j-like(Native)"});
    for (const auto& q : Table1Queries()) {
      auto t = run_query(q.ToGremlin(), /*is_path=*/true, /*heavy=*/false);
      table.AddRow({util::StrFormat("lq%d", q.id), FormatMs(t.mean_ms[0]),
                    t.sg_percentiles, FormatMs(t.mean_ms[1]),
                    FormatMs(t.mean_ms[2])});
    }
    std::printf("%s", table.ToString().c_str());
  }

  Banner("Fig. 8d — summary means");
  PrintSummary("SQLGraph", sqlgraph_stats);
  PrintSummary("Titan-like (KV)", kv_stats);
  PrintSummary("Neo4j-like (Native)", native_stats);
  std::printf("(paper: SQLGraph ~2x faster than Titan, ~8x faster than "
              "Neo4j on these sets)\n");

  Banner("§5.1 — size on disk");
  std::printf("SQLGraph            %s\n",
              util::HumanBytes((*store)->SerializedBytes()).c_str());
  std::printf("Titan-like (KV)     %s\n",
              util::HumanBytes((*kv)->SerializedBytes()).c_str());
  std::printf("Neo4j-like (Native) %s\n",
              util::HumanBytes((*native)->SerializedBytes()).c_str());
  std::printf("(paper: SQLGraph 66GB, Neo4j 98GB, Titan 301GB for DBpedia)\n");
  return 0;
}
