#include "sql/expr_eval.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace sqlgraph {
namespace sql {

using rel::Value;
using util::Result;
using util::Status;

util::Result<int> ColumnEnv::Resolve(std::string_view qualifier,
                                     std::string_view column) const {
  const int slot = TryResolve(qualifier, column);
  if (slot >= 0) return slot;
  std::string name = qualifier.empty()
                         ? std::string(column)
                         : std::string(qualifier) + "." + std::string(column);
  return Status::InvalidArgument("cannot resolve column " + name);
}

int ColumnEnv::TryResolve(std::string_view qualifier,
                          std::string_view column) const {
  if (!qualifier.empty()) {
    std::string key;
    key.reserve(qualifier.size() + 1 + column.size());
    key.append(qualifier);
    key.push_back('\x1f');
    key.append(column);
    auto it = qualified_.find(key);
    return it == qualified_.end() ? -1 : it->second;
  }
  auto it = bare_.find(std::string(column));
  if (it == bare_.end() || it->second == kAmbiguous) return -1;
  return it->second;
}

rel::Value JsonVal(const rel::Value& json_doc, std::string_view key) {
  if (!json_doc.is_json()) return Value::Null();
  const json::JsonValue* member = json_doc.AsJson().Find(key);
  if (member == nullptr) return Value::Null();
  switch (member->type()) {
    case json::JsonType::kNull: return Value::Null();
    case json::JsonType::kBool: return Value(member->AsBool());
    case json::JsonType::kInt: return Value(member->AsInt());
    case json::JsonType::kDouble: return Value(member->AsDouble());
    case json::JsonType::kString: return Value(member->AsString());
    default: return Value(*member);
  }
}

bool IsTruthy(const rel::Value& v) {
  if (v.is_null()) return false;
  if (v.is_bool()) return v.AsBool();
  if (v.is_number()) return v.AsDouble() != 0.0;
  return false;
}

namespace {

/// Converts a JSON element into a scalar Value (arrays/objects stay JSON).
Value JsonToValue(const json::JsonValue& j) {
  switch (j.type()) {
    case json::JsonType::kNull: return Value::Null();
    case json::JsonType::kBool: return Value(j.AsBool());
    case json::JsonType::kInt: return Value(j.AsInt());
    case json::JsonType::kDouble: return Value(j.AsDouble());
    case json::JsonType::kString: return Value(j.AsString());
    default: return Value(j);
  }
}

json::JsonValue ValueToJson(const Value& v) {
  if (v.is_null()) return json::JsonValue();
  if (v.is_bool()) return json::JsonValue(v.AsBool());
  if (v.is_int()) return json::JsonValue(v.AsInt());
  if (v.is_double()) return json::JsonValue(v.AsDouble());
  if (v.is_string()) return json::JsonValue(v.AsString());
  return v.AsJson();
}

Result<Value> EvalBinary(const Expr& e, const ColumnEnv& env,
                         const rel::Row& row, const EvalContext& ctx) {
  // Kleene AND/OR with short-circuit on the decisive operand.
  if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.lhs, env, row, ctx));
    const bool is_and = e.bin_op == BinaryOp::kAnd;
    if (!lhs.is_null()) {
      const bool lv = IsTruthy(lhs);
      if (is_and && !lv) return Value(false);
      if (!is_and && lv) return Value(true);
    }
    ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.rhs, env, row, ctx));
    if (!rhs.is_null()) {
      const bool rv = IsTruthy(rhs);
      if (is_and && !rv) return Value(false);
      if (!is_and && rv) return Value(true);
    }
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value(is_and);
  }

  ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.lhs, env, row, ctx));
  ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.rhs, env, row, ctx));

  switch (e.bin_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      const int c = lhs.Compare(rhs);
      switch (e.bin_op) {
        case BinaryOp::kEq: return Value(c == 0);
        case BinaryOp::kNe: return Value(c != 0);
        case BinaryOp::kLt: return Value(c < 0);
        case BinaryOp::kLe: return Value(c <= 0);
        case BinaryOp::kGt: return Value(c > 0);
        default: return Value(c >= 0);
      }
    }
    case BinaryOp::kLike: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!rhs.is_string()) return Status::TypeError("LIKE pattern not string");
      const std::string subject = lhs.is_string() ? lhs.AsString()
                                                  : lhs.ToString();
      return Value(util::SqlLikeMatch(subject, rhs.AsString()));
    }
    case BinaryOp::kConcat: {
      // The paper's path template uses || for path concatenation: if either
      // side is a JSON array, append; otherwise string concat.
      if (lhs.is_json() || rhs.is_json()) {
        json::JsonValue arr = json::JsonValue::Array();
        auto extend = [&arr](const Value& v) {
          if (v.is_json() && v.AsJson().is_array()) {
            for (const auto& elem : v.AsJson().AsArray()) arr.Append(elem);
          } else if (!v.is_null()) {
            arr.Append(ValueToJson(v));
          }
        };
        extend(lhs);
        extend(rhs);
        return Value(std::move(arr));
      }
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value(lhs.ToString() + rhs.ToString());
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.is_number() || !rhs.is_number()) {
        return Status::TypeError("arithmetic on non-numeric values");
      }
      if (lhs.is_int() && rhs.is_int() && e.bin_op != BinaryOp::kDiv) {
        const int64_t a = lhs.AsInt(), b = rhs.AsInt();
        int64_t r = 0;
        bool overflow;
        switch (e.bin_op) {
          case BinaryOp::kAdd: overflow = __builtin_add_overflow(a, b, &r); break;
          case BinaryOp::kSub: overflow = __builtin_sub_overflow(a, b, &r); break;
          default: overflow = __builtin_mul_overflow(a, b, &r); break;
        }
        if (!overflow) return Value(r);
        // Overflow promotes to double, same as the mixed-type path below.
      }
      const double a = lhs.AsDouble(), b = rhs.AsDouble();
      switch (e.bin_op) {
        case BinaryOp::kAdd: return Value(a + b);
        case BinaryOp::kSub: return Value(a - b);
        case BinaryOp::kMul: return Value(a * b);
        default:
          if (b == 0.0) return Value::Null();  // SQL engines raise; we NULL
          return Value(a / b);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> EvalFunc(const Expr& e, const ColumnEnv& env,
                       const rel::Row& row, const EvalContext& ctx) {
  const std::string& f = e.func_name;
  auto arity = [&](size_t n) -> Status {
    if (e.args.size() != n) {
      return Status::InvalidArgument(f + " expects " + std::to_string(n) +
                                     " arguments");
    }
    return Status::OK();
  };

  if (f == "JSON_VAL") {
    RETURN_NOT_OK(arity(2));
    ASSIGN_OR_RETURN(Value doc, EvalExpr(*e.args[0], env, row, ctx));
    ASSIGN_OR_RETURN(Value key, EvalExpr(*e.args[1], env, row, ctx));
    if (!key.is_string()) return Status::TypeError("JSON_VAL key not string");
    return JsonVal(doc, key.AsString());
  }
  if (f == "COALESCE") {
    for (const auto& arg : e.args) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, env, row, ctx));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (f == "PATH_APPEND") {
    RETURN_NOT_OK(arity(2));
    ASSIGN_OR_RETURN(Value path, EvalExpr(*e.args[0], env, row, ctx));
    ASSIGN_OR_RETURN(Value elem, EvalExpr(*e.args[1], env, row, ctx));
    json::JsonValue arr = (path.is_json() && path.AsJson().is_array())
                              ? path.AsJson()
                              : json::JsonValue::Array();
    arr.Append(ValueToJson(elem));
    return Value(std::move(arr));
  }
  if (f == "PATH_ELEM") {
    RETURN_NOT_OK(arity(2));
    ASSIGN_OR_RETURN(Value path, EvalExpr(*e.args[0], env, row, ctx));
    ASSIGN_OR_RETURN(Value idx, EvalExpr(*e.args[1], env, row, ctx));
    if (!path.is_json() || !path.AsJson().is_array() || !idx.is_number()) {
      return Value::Null();
    }
    const json::JsonArray& arr = path.AsJson().AsArray();
    int64_t i = idx.AsInt();
    if (i < 0) i += static_cast<int64_t>(arr.size());
    if (i < 0 || i >= static_cast<int64_t>(arr.size())) return Value::Null();
    return JsonToValue(arr[static_cast<size_t>(i)]);
  }
  if (f == "PATH_PREFIX") {
    // First n elements of a path array (used by back()).
    RETURN_NOT_OK(arity(2));
    ASSIGN_OR_RETURN(Value path, EvalExpr(*e.args[0], env, row, ctx));
    ASSIGN_OR_RETURN(Value n, EvalExpr(*e.args[1], env, row, ctx));
    if (!path.is_json() || !path.AsJson().is_array() || !n.is_number()) {
      return Value::Null();
    }
    const json::JsonArray& arr = path.AsJson().AsArray();
    json::JsonValue prefix = json::JsonValue::Array();
    const size_t limit = std::min<size_t>(
        arr.size(), n.AsInt() < 0 ? 0 : static_cast<size_t>(n.AsInt()));
    for (size_t i = 0; i < limit; ++i) prefix.Append(arr[i]);
    return Value(std::move(prefix));
  }
  if (f == "PATH_LEN") {
    RETURN_NOT_OK(arity(1));
    ASSIGN_OR_RETURN(Value path, EvalExpr(*e.args[0], env, row, ctx));
    if (!path.is_json() || !path.AsJson().is_array()) return Value::Null();
    return Value(static_cast<int64_t>(path.AsJson().AsArray().size()));
  }
  if (f == "IS_SIMPLE_PATH") {
    // UDF from the paper's simplePath() filter: 1 iff no vertex repeats.
    RETURN_NOT_OK(arity(1));
    ASSIGN_OR_RETURN(Value path, EvalExpr(*e.args[0], env, row, ctx));
    if (!path.is_json() || !path.AsJson().is_array()) return Value(1);
    const json::JsonArray& arr = path.AsJson().AsArray();
    std::unordered_set<rel::Value, rel::ValueHash> seen;
    for (const auto& elem : arr) {
      if (!seen.insert(JsonToValue(elem)).second) return Value(0);
    }
    return Value(1);
  }
  if (f == "LENGTH") {
    RETURN_NOT_OK(arity(1));
    ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], env, row, ctx));
    if (v.is_null()) return Value::Null();
    return Value(static_cast<int64_t>(v.ToString().size()));
  }
  if (f == "ABS") {
    RETURN_NOT_OK(arity(1));
    ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], env, row, ctx));
    if (v.is_null()) return Value::Null();
    if (v.is_int()) {
      const int64_t a = v.AsInt();
      int64_t r = 0;
      if (a >= 0) return Value(a);
      if (!__builtin_sub_overflow(int64_t{0}, a, &r)) return Value(r);
      return Value(-static_cast<double>(a));  // ABS(INT64_MIN) → double
    }
    return Value(std::fabs(v.AsDouble()));
  }
  if (f == "LOWER" || f == "UPPER") {
    RETURN_NOT_OK(arity(1));
    ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], env, row, ctx));
    if (v.is_null()) return Value::Null();
    std::string s = v.ToString();
    for (auto& c : s) {
      if (f == "LOWER" && c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
      if (f == "UPPER" && c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
    }
    return Value(std::move(s));
  }
  if (f == "COUNT" || f == "SUM" || f == "MIN" || f == "MAX" || f == "AVG") {
    return Status::Internal("aggregate " + f +
                            " evaluated outside aggregation context");
  }
  return Status::NotImplemented("function " + f);
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const ColumnEnv& env,
                       const rel::Row& row, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      ASSIGN_OR_RETURN(int slot, env.Resolve(e.qualifier, e.column));
      return row[static_cast<size_t>(slot)];
    }
    case ExprKind::kParam: {
      if (ctx.params != nullptr) {
        if (!e.param_name.empty()) {
          auto it = ctx.params->named.find(e.param_name);
          if (it != ctx.params->named.end()) return it->second;
        }
        if (e.param_index >= 0 &&
            static_cast<size_t>(e.param_index) < ctx.params->positional.size()) {
          return ctx.params->positional[static_cast<size_t>(e.param_index)];
        }
      }
      return Status::InvalidArgument(
          e.param_name.empty()
              ? "unbound parameter ?" + std::to_string(e.param_index + 1)
              : "unbound parameter :" + e.param_name);
    }
    case ExprKind::kBinary:
      return EvalBinary(e, env, row, ctx);
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env, row, ctx));
      switch (e.un_op) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value(!IsTruthy(v));
        case UnaryOp::kIsNull:
          return Value(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value(!v.is_null());
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_int()) {
            int64_t r = 0;
            if (!__builtin_sub_overflow(int64_t{0}, v.AsInt(), &r)) {
              return Value(r);
            }
            return Value(-static_cast<double>(v.AsInt()));  // -INT64_MIN
          }
          if (v.is_double()) return Value(-v.AsDouble());
          return Status::TypeError("negation of non-number");
      }
      return Status::Internal("unhandled unary op");
    }
    case ExprKind::kFunc:
      return EvalFunc(e, env, row, ctx);
    case ExprKind::kCast: {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env, row, ctx));
      if (v.is_null()) return Value::Null();
      switch (e.cast_type) {
        case rel::ColumnType::kInt64:
          if (v.is_number() || v.is_bool()) return Value(v.AsInt());
          if (v.is_string()) {
            errno = 0;
            char* end = nullptr;
            const long long parsed = std::strtoll(v.AsString().c_str(), &end, 10);
            if (end == v.AsString().c_str()) return Value::Null();
            return Value(static_cast<int64_t>(parsed));
          }
          return Value::Null();
        case rel::ColumnType::kDouble:
          if (v.is_number() || v.is_bool()) return Value(v.AsDouble());
          if (v.is_string()) {
            char* end = nullptr;
            const double parsed = std::strtod(v.AsString().c_str(), &end);
            if (end == v.AsString().c_str()) return Value::Null();
            return Value(parsed);
          }
          return Value::Null();
        case rel::ColumnType::kString:
          return Value(v.ToString());
        case rel::ColumnType::kBool:
          return Value(IsTruthy(v));
        case rel::ColumnType::kJson:
          return Value(ValueToJson(v));
      }
      return Status::Internal("unhandled cast type");
    }
    case ExprKind::kInList: {
      ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.lhs, env, row, ctx));
      if (probe.is_null()) return Value::Null();
      bool found = false;
      for (const auto& item : e.in_list) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*item, env, row, ctx));
        if (!v.is_null() && v == probe) {
          found = true;
          break;
        }
      }
      return Value(e.negated ? !found : found);
    }
    case ExprKind::kInSubquery: {
      auto it = ctx.in_subquery_sets.find(&e);
      if (it == ctx.in_subquery_sets.end()) {
        return Status::Internal("IN subquery was not pre-materialized");
      }
      ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.lhs, env, row, ctx));
      if (probe.is_null()) return Value::Null();
      const bool found = it->second.count(probe) > 0;
      return Value(e.negated ? !found : found);
    }
    case ExprKind::kStar:
      return Status::Internal("bare * outside COUNT(*)");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace sql
}  // namespace sqlgraph
