file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_attributes.dir/bench_fig4_attributes.cc.o"
  "CMakeFiles/bench_fig4_attributes.dir/bench_fig4_attributes.cc.o.d"
  "bench_fig4_attributes"
  "bench_fig4_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
