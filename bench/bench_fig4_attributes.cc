// Paper Fig. 4 — vertex-attribute lookup micro-benchmark (§3.3): the 16
// Table-2 queries on (a) the JSON attribute table (VA with JSON indexes) vs
// (b) the shredded hash attribute table (Fig. 2d) with its long-string,
// multi-value and cast overheads.
//
//   ./bench_fig4_attributes [--scale=0.3] [--runs=4]

#include "bench_common.h"
#include "sqlgraph/micro_schemas.h"
#include "util/string_util.h"

using namespace sqlgraph;
using namespace sqlgraph::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "--scale", 0.3);
  const int runs = static_cast<int>(FlagInt(argc, argv, "--runs", 4));

  graph::PropertyGraph g = BuildDbpediaGraph(scale);
  auto store = core::SqlGraphStore::Build(g, DbpediaStoreConfig());
  if (!store.ok()) return 1;
  auto hash_store = core::HashAttrStore::Build(g);
  if (!hash_store.ok()) return 1;

  Banner("Fig. 4 — vertex attribute lookups (ms per query)");
  TextTable table({"q", "attribute", "filter", "result", "JsonAttr(ms)",
                   "json p50/p95/p99", "HashAttr(ms)", "hash/json"});
  util::RunningStat json_stat, hash_stat;
  for (const auto& q : Table2Queries()) {
    const std::string sql = q.ToJsonSql();
    int64_t json_result = -1;
    util::Samples json_ms = TimedRuns(runs, [&] {
      auto r = (*store)->ExecuteSql(sql);
      if (r.ok()) json_result = r->rows[0][0].AsInt();
    });
    size_t hash_result = 0;
    util::Samples hash_ms = TimedRuns(runs, [&] {
      auto r = (*hash_store)->CountMatches(q.key, q.kind, q.operand);
      if (r.ok()) hash_result = *r;
    });
    if (json_result >= 0 &&
        static_cast<size_t>(json_result) != hash_result) {
      std::fprintf(stderr, "MISMATCH on q%d: %lld vs %zu\n", q.id,
                   static_cast<long long>(json_result), hash_result);
    }
    const char* filter;
    switch (q.kind) {
      case core::HashAttrStore::QueryKind::kNotNull: filter = "not null"; break;
      case core::HashAttrStore::QueryKind::kLike: filter = "like %en"; break;
      default: filter = "= value"; break;
    }
    json_stat.Add(json_ms.mean());
    hash_stat.Add(hash_ms.mean());
    table.AddRow({std::to_string(q.id), q.key, filter,
                  std::to_string(json_result), FormatMs(json_ms.mean()),
                  FormatPercentiles(json_ms), FormatMs(hash_ms.mean()),
                  util::StrFormat("%.1fx", hash_ms.mean() /
                                               std::max(0.001, json_ms.mean()))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nJSON attr table: mean %.2f ms (sd %.2f) | Hash attr table: mean "
      "%.2f ms (sd %.2f)\n",
      json_stat.mean(), json_stat.stddev(), hash_stat.mean(),
      hash_stat.stddev());
  std::printf("(paper: JSON mean 92 ms sd 108 vs hash mean 265 ms sd 537 — "
              "JSON wins on value lookups, ties on not-null)\n");
  return 0;
}
