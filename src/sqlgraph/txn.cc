// Txn: buffered snapshot-isolation transactions (DESIGN.md §12).
//
// Life of a transaction:
//
//   BeginTxn            RegisterTxnRead pins read_ts under txn_mu_ and
//                       raises active_txns_, which makes every concurrent
//                       mutation record before-images (store.cc AllocVersionTs).
//   mutations           validated against snapshot+overlay, then buffered
//                       in ops_; ids are allocated eagerly (burned on abort,
//                       never reused — same contract as autocommit).
//   reads               snapshot reads at read_ts plus the overlay replay.
//   Commit              one exclusive lock section over the union of every
//                       buffered op's tables: validate the write set against
//                       the entity conflict map (first committer wins),
//                       allocate one commit timestamp, apply the ops in
//                       buffer order through the shared Apply*Locked bodies,
//                       publish the write set, and enqueue ONE kTxnCommit
//                       WAL record holding the framed sub-records — the
//                       atomic replay unit.
//
// Because ops only touch tables inside Commit's single lock section, an open
// transaction never holds a table lock between statements: readers never
// block writers, writers never block readers.

#include "sqlgraph/txn.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "json/json_parser.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "wal/log_writer.h"

namespace sqlgraph {
namespace core {

using rel::Row;
using rel::RowId;
using rel::Value;
using util::Result;
using util::Status;

namespace {
constexpr size_t kEaEid = 0;  // EA column offset (see store.cc)
}  // namespace

// ------------------------------------------------------------- lifecycle --

std::unique_ptr<Txn> SqlGraphStore::BeginTxn() {
  return std::unique_ptr<Txn>(new Txn(this));
}

Txn::Txn(SqlGraphStore* store)
    : store_(store), read_ts_(store->RegisterTxnRead()) {}

Txn::~Txn() {
  if (state_ == State::kOpen) End(/*committed=*/false, /*conflict=*/false);
}

Status Txn::CheckOpen() const {
  if (state_ == State::kOpen) return Status::OK();
  return Status::InvalidArgument("transaction is not open");
}

void Txn::End(bool committed, bool conflict) {
  state_ = committed ? State::kCommitted : State::kAborted;
  if (committed) {
    store_->txns_committed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    store_->txns_aborted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conflict) {
    store_->txn_conflicts_.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::MetricsEnabled()) {
    static obs::Counter* committed_ctr =
        obs::MetricsRegistry::Default().GetCounter("txn.committed");
    static obs::Counter* aborted_ctr =
        obs::MetricsRegistry::Default().GetCounter("txn.aborted");
    static obs::Counter* conflicts_ctr =
        obs::MetricsRegistry::Default().GetCounter("txn.conflicts");
    (committed ? committed_ctr : aborted_ctr)->Increment();
    if (conflict) conflicts_ctr->Increment();
  }
  store_->DeregisterTxnRead(read_ts_);
}

Status Txn::Rollback() {
  RETURN_NOT_OK(CheckOpen());
  End(/*committed=*/false, /*conflict=*/false);
  return Status::OK();
}

// ------------------------------------------------------- overlay probing --

bool Txn::VertexVisible(int64_t vid) const {
  if (removed_vertices_.count(vid) != 0) return false;
  if (added_vertices_.count(vid) != 0) return true;
  return store_->GetVertexAt(vid, read_ts_).ok();
}

bool Txn::EdgeRemoved(int64_t eid) const {
  return removed_edges_.count(eid) != 0;
}

std::optional<EdgeRecord> Txn::OverlayEdge(EdgeRecord rec) const {
  if (removed_edges_.count(static_cast<int64_t>(rec.id)) != 0) {
    return std::nullopt;
  }
  // Removing a vertex removes its incident edges; the snapshot rows are
  // filtered here rather than eagerly enumerated at RemoveVertex time.
  if (removed_vertices_.count(static_cast<int64_t>(rec.src)) != 0 ||
      removed_vertices_.count(static_cast<int64_t>(rec.dst)) != 0) {
    return std::nullopt;
  }
  auto it = edge_attr_ops_.find(static_cast<int64_t>(rec.id));
  if (it != edge_attr_ops_.end()) {
    for (const auto& [key, value] : it->second) {
      if (value.has_value()) {
        rec.attrs.Set(key, *value);
      } else {
        rec.attrs.Erase(key);
      }
    }
  }
  return rec;
}

// ----------------------------------------------------- buffered mutations --

Result<VertexId> Txn::AddVertex(json::JsonValue attrs) {
  RETURN_NOT_OK(CheckOpen());
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  int64_t vid;
  {
    util::WriterMutexLock counter(&store_->counter_lock_);
    vid = store_->next_vertex_id_++;
  }
  added_vertices_[vid] = attrs;
  Op op;
  op.kind = Op::Kind::kAddVertex;
  op.id = vid;
  op.value = std::move(attrs);
  ops_.push_back(std::move(op));
  return static_cast<VertexId>(vid);
}

Status Txn::SetVertexAttr(VertexId v, const std::string& key,
                          json::JsonValue value) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t vid = static_cast<int64_t>(v);
  if (!VertexVisible(vid)) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  auto added = added_vertices_.find(vid);
  if (added != added_vertices_.end()) {
    added->second.Set(key, value);
  } else {
    vertex_attr_ops_[vid].emplace_back(key, value);
  }
  Op op;
  op.kind = Op::Kind::kSetVertexAttr;
  op.id = vid;
  op.key = key;
  op.value = std::move(value);
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Txn::RemoveVertexAttr(VertexId v, const std::string& key) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t vid = static_cast<int64_t>(v);
  if (!VertexVisible(vid)) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  auto added = added_vertices_.find(vid);
  if (added != added_vertices_.end()) {
    added->second.Erase(key);
  } else {
    vertex_attr_ops_[vid].emplace_back(key, std::nullopt);
  }
  Op op;
  op.kind = Op::Kind::kRemoveVertexAttr;
  op.id = vid;
  op.key = key;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Txn::RemoveVertex(VertexId v) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t vid = static_cast<int64_t>(v);
  if (!VertexVisible(vid)) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  added_vertices_.erase(vid);
  vertex_attr_ops_.erase(vid);
  removed_vertices_.insert(vid);
  // Overlay-added edges incident to the vertex die with it (the replay in
  // Commit reaches the same state: ApplyRemoveVertexLocked deletes them).
  for (auto it = added_edges_.begin(); it != added_edges_.end();) {
    if (static_cast<int64_t>(it->second.src) == vid ||
        static_cast<int64_t>(it->second.dst) == vid) {
      it = added_edges_.erase(it);
    } else {
      ++it;
    }
  }
  Op op;
  op.kind = Op::Kind::kRemoveVertex;
  op.id = vid;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Result<EdgeId> Txn::AddEdge(VertexId src, VertexId dst,
                            const std::string& label, json::JsonValue attrs) {
  RETURN_NOT_OK(CheckOpen());
  for (VertexId endpoint : {src, dst}) {
    if (!VertexVisible(static_cast<int64_t>(endpoint))) {
      return Status::NotFound("vertex " + std::to_string(endpoint));
    }
  }
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  int64_t eid;
  {
    util::WriterMutexLock counter(&store_->counter_lock_);
    eid = store_->next_edge_id_++;
  }
  EdgeRecord rec;
  rec.id = static_cast<EdgeId>(eid);
  rec.src = src;
  rec.dst = dst;
  rec.label = label;
  rec.attrs = attrs;
  added_edges_[eid] = std::move(rec);
  Op op;
  op.kind = Op::Kind::kAddEdge;
  op.id = eid;
  op.src = static_cast<int64_t>(src);
  op.dst = static_cast<int64_t>(dst);
  op.key = label;
  op.value = std::move(attrs);
  ops_.push_back(std::move(op));
  return static_cast<EdgeId>(eid);
}

// Shared by the three edge-mutation entry points: NotFound unless the edge
// is visible through the overlay (added here, or in the snapshot and not
// overlay-deleted directly or via an endpoint).
Status Txn::SetEdgeAttr(EdgeId e, const std::string& key,
                        json::JsonValue value) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t eid = static_cast<int64_t>(e);
  if (EdgeRemoved(eid)) return Status::NotFound("edge " + std::to_string(eid));
  auto added = added_edges_.find(eid);
  if (added != added_edges_.end()) {
    added->second.attrs.Set(key, value);
  } else {
    ASSIGN_OR_RETURN(EdgeRecord rec, store_->GetEdgeAt(eid, read_ts_));
    if (!OverlayEdge(std::move(rec)).has_value()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    edge_attr_ops_[eid].emplace_back(key, value);
  }
  Op op;
  op.kind = Op::Kind::kSetEdgeAttr;
  op.id = eid;
  op.key = key;
  op.value = std::move(value);
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Txn::RemoveEdgeAttr(EdgeId e, const std::string& key) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t eid = static_cast<int64_t>(e);
  if (EdgeRemoved(eid)) return Status::NotFound("edge " + std::to_string(eid));
  auto added = added_edges_.find(eid);
  if (added != added_edges_.end()) {
    added->second.attrs.Erase(key);
  } else {
    ASSIGN_OR_RETURN(EdgeRecord rec, store_->GetEdgeAt(eid, read_ts_));
    if (!OverlayEdge(std::move(rec)).has_value()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    edge_attr_ops_[eid].emplace_back(key, std::nullopt);
  }
  Op op;
  op.kind = Op::Kind::kRemoveEdgeAttr;
  op.id = eid;
  op.key = key;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Txn::RemoveEdge(EdgeId e) {
  RETURN_NOT_OK(CheckOpen());
  const int64_t eid = static_cast<int64_t>(e);
  if (EdgeRemoved(eid)) return Status::NotFound("edge " + std::to_string(eid));
  if (added_edges_.erase(eid) == 0) {
    ASSIGN_OR_RETURN(EdgeRecord rec, store_->GetEdgeAt(eid, read_ts_));
    if (!OverlayEdge(std::move(rec)).has_value()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    removed_edges_.insert(eid);
    edge_attr_ops_.erase(eid);
  }
  Op op;
  op.kind = Op::Kind::kRemoveEdge;
  op.id = eid;
  ops_.push_back(std::move(op));
  return Status::OK();
}

// ---------------------------------------------------------------- reads --

Result<json::JsonValue> Txn::GetVertex(VertexId v) const {
  RETURN_NOT_OK(CheckOpen());
  const int64_t vid = static_cast<int64_t>(v);
  if (removed_vertices_.count(vid) != 0) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  auto added = added_vertices_.find(vid);
  if (added != added_vertices_.end()) return added->second;
  ASSIGN_OR_RETURN(json::JsonValue attrs, store_->GetVertexAt(vid, read_ts_));
  auto ops = vertex_attr_ops_.find(vid);
  if (ops != vertex_attr_ops_.end()) {
    for (const auto& [key, value] : ops->second) {
      if (value.has_value()) {
        attrs.Set(key, *value);
      } else {
        attrs.Erase(key);
      }
    }
  }
  return attrs;
}

Result<EdgeRecord> Txn::GetEdge(EdgeId e) const {
  RETURN_NOT_OK(CheckOpen());
  const int64_t eid = static_cast<int64_t>(e);
  auto added = added_edges_.find(eid);
  if (added != added_edges_.end()) return added->second;
  ASSIGN_OR_RETURN(EdgeRecord rec, store_->GetEdgeAt(eid, read_ts_));
  std::optional<EdgeRecord> overlaid = OverlayEdge(std::move(rec));
  if (!overlaid.has_value()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  return *std::move(overlaid);
}

Result<std::vector<EdgeRecord>> Txn::GetOutEdges(
    VertexId src, const std::string& label) const {
  RETURN_NOT_OK(CheckOpen());
  std::vector<EdgeRecord> out;
  if (removed_vertices_.count(static_cast<int64_t>(src)) != 0) return out;
  ASSIGN_OR_RETURN(std::vector<EdgeRecord> snap,
                   store_->GetOutEdgesAt(src, label, read_ts_));
  for (EdgeRecord& rec : snap) {
    std::optional<EdgeRecord> overlaid = OverlayEdge(std::move(rec));
    if (overlaid.has_value()) out.push_back(*std::move(overlaid));
  }
  // Overlay-added edges come after the snapshot ones, in eid order so the
  // result is deterministic despite the map.
  std::vector<const EdgeRecord*> added;
  for (const auto& [eid, rec] : added_edges_) {
    if (rec.src == src && (label.empty() || rec.label == label)) {
      added.push_back(&rec);
    }
  }
  std::sort(added.begin(), added.end(),
            [](const EdgeRecord* a, const EdgeRecord* b) {
              return a->id < b->id;
            });
  for (const EdgeRecord* rec : added) out.push_back(*rec);
  return out;
}

Result<std::vector<VertexId>> Txn::Out(VertexId vid,
                                       const std::string& label) const {
  ASSIGN_OR_RETURN(std::vector<EdgeRecord> edges, GetOutEdges(vid, label));
  std::vector<VertexId> out;
  out.reserve(edges.size());
  for (const EdgeRecord& rec : edges) out.push_back(rec.dst);
  return out;
}

Result<std::vector<VertexId>> Txn::In(VertexId vid,
                                      const std::string& label) const {
  RETURN_NOT_OK(CheckOpen());
  std::vector<VertexId> out;
  if (removed_vertices_.count(static_cast<int64_t>(vid)) != 0) return out;
  ASSIGN_OR_RETURN(std::vector<EdgeRecord> snap,
                   store_->GetInEdgesAt(vid, label, read_ts_));
  for (EdgeRecord& rec : snap) {
    std::optional<EdgeRecord> overlaid = OverlayEdge(std::move(rec));
    if (overlaid.has_value()) out.push_back(overlaid->src);
  }
  std::vector<const EdgeRecord*> added;
  for (const auto& [eid, rec] : added_edges_) {
    if (rec.dst == vid && (label.empty() || rec.label == label)) {
      added.push_back(&rec);
    }
  }
  std::sort(added.begin(), added.end(),
            [](const EdgeRecord* a, const EdgeRecord* b) {
              return a->id < b->id;
            });
  for (const EdgeRecord* rec : added) out.push_back(rec->src);
  return out;
}

Result<sql::ResultSet> Txn::ExecuteSql(std::string_view text,
                                       sql::ExecStats* stats) {
  RETURN_NOT_OK(CheckOpen());
  return store_->ExecuteSqlInternal(text, read_ts_, stats);
}

// --------------------------------------------------------------- commit --

Status Txn::Commit() {
  RETURN_NOT_OK(CheckOpen());
  if (ops_.empty()) {
    End(/*committed=*/true, /*conflict=*/false);
    return Status::OK();
  }

  using TableIdx = SqlGraphStore::TableIdx;
  // Union of every op's lock needs, deduped (exclusive wins) — WriteLock
  // must never see the same mutex twice.
  bool need[SqlGraphStore::kNumTables] = {};
  bool excl[SqlGraphStore::kNumTables] = {};
  auto want = [&](TableIdx t, bool exclusive) {
    need[t] = true;
    excl[t] = excl[t] || exclusive;
  };
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kAddVertex:
      case Op::Kind::kSetVertexAttr:
      case Op::Kind::kRemoveVertexAttr:
        want(SqlGraphStore::kVa, true);
        break;
      case Op::Kind::kRemoveVertex:
        want(SqlGraphStore::kOpa, true);
        want(SqlGraphStore::kIpa, true);
        want(SqlGraphStore::kVa, true);
        want(SqlGraphStore::kEa, true);
        break;
      case Op::Kind::kAddEdge:
        want(SqlGraphStore::kOpa, true);
        want(SqlGraphStore::kIpa, true);
        want(SqlGraphStore::kOsa, true);
        want(SqlGraphStore::kIsa, true);
        want(SqlGraphStore::kVa, false);
        want(SqlGraphStore::kEa, true);
        break;
      case Op::Kind::kSetEdgeAttr:
      case Op::Kind::kRemoveEdgeAttr:
        want(SqlGraphStore::kEa, true);
        break;
      case Op::Kind::kRemoveEdge:
        want(SqlGraphStore::kOpa, true);
        want(SqlGraphStore::kIpa, true);
        want(SqlGraphStore::kOsa, true);
        want(SqlGraphStore::kIsa, true);
        want(SqlGraphStore::kEa, true);
        break;
    }
  }
  std::vector<SqlGraphStore::WriteLock::Req> reqs;
  std::vector<TableIdx> excl_tables;
  for (int i = 0; i < SqlGraphStore::kNumTables; ++i) {
    if (!need[i]) continue;
    reqs.push_back({static_cast<TableIdx>(i), excl[i]});
    if (excl[i]) excl_tables.push_back(static_cast<TableIdx>(i));
  }

  SqlGraphStore::CommitGuard commit(store_);
  uint64_t ticket = 0;
  {
    SqlGraphStore::WriteLock lock(store_, reqs);

    // Write set for first-committer-wins validation. A RemoveVertex also
    // writes every live incident edge; with EA exclusively held this is
    // exactly the set Apply will delete (edges added earlier in THIS
    // transaction are not applied yet and cannot conflict — their entities
    // are brand new).
    std::vector<uint64_t> write_set;
    for (const Op& op : ops_) {
      switch (op.kind) {
        case Op::Kind::kAddVertex:
        case Op::Kind::kSetVertexAttr:
        case Op::Kind::kRemoveVertexAttr:
          write_set.push_back(SqlGraphStore::VertexEntity(op.id));
          break;
        case Op::Kind::kRemoveVertex: {
          write_set.push_back(SqlGraphStore::VertexEntity(op.id));
          rel::Table* ea = store_->db_.GetTable(kEaTable);
          for (int col : {1, 2}) {  // INV, OUTV
            ASSIGN_OR_RETURN(std::vector<RowId> rids,
                             ea->LookupEq({col}, {{Value(op.id)}}));
            for (RowId rid : rids) {
              Row row;
              RETURN_NOT_OK(ea->Get(rid, &row));
              write_set.push_back(
                  SqlGraphStore::EdgeEntity(row[kEaEid].AsInt()));
            }
          }
          break;
        }
        case Op::Kind::kAddEdge:
          write_set.push_back(SqlGraphStore::VertexEntity(op.src));
          write_set.push_back(SqlGraphStore::VertexEntity(op.dst));
          write_set.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
        case Op::Kind::kSetEdgeAttr:
        case Op::Kind::kRemoveEdgeAttr:
        case Op::Kind::kRemoveEdge:
          write_set.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
      }
    }
    bool conflict = false;
    // Injected bug (sched.h mutation self-test, SQLGRAPH_SCHED_SELFTEST=
    // reorder): skip first-committer-wins validation entirely, so two
    // transactions that both read-then-write the same entity can commit —
    // a lost update the schedule explorer must find and replay.
    const bool selftest_skip_validation =
        util::sched::SelfTestMode() == util::sched::SelfTest::kReorder;
    if (!selftest_skip_validation) {
      util::MutexLock guard(&store_->txn_mu_);
      for (uint64_t e : write_set) {
        auto it = store_->entity_commit_ts_.find(e);
        if (it != store_->entity_commit_ts_.end() && it->second > read_ts_) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      End(/*committed=*/false, /*conflict=*/true);
      return Status::Conflict("write conflict: first committer wins");
    }

    // Apply in buffer order, collecting the publish set and the framed WAL
    // sub-records. All writes share this transaction's single commit
    // timestamp, so the whole batch reverts with one RevertVersionsAt.
    const uint64_t vts = store_->AllocVersionTs();
    const bool durable = store_->durable();
    std::vector<uint64_t> publish;
    std::string framed;
    Status st = Status::OK();
    for (Op& op : ops_) {
      wal::Record sub;
      switch (op.kind) {
        case Op::Kind::kAddVertex:
          if (durable) {
            sub.type = wal::RecordType::kAddVertex;
            sub.id = op.id;
            sub.json = json::Write(op.value);
          }
          st = store_->ApplyAddVertexLocked(op.id, std::move(op.value), vts);
          publish.push_back(SqlGraphStore::VertexEntity(op.id));
          break;
        case Op::Kind::kSetVertexAttr:
          if (durable) {
            sub.type = wal::RecordType::kSetVertexAttr;
            sub.id = op.id;
            sub.label = op.key;
            sub.json = json::Write(op.value);
          }
          st = store_->ApplySetVertexAttrLocked(op.id, op.key,
                                                std::move(op.value), vts);
          publish.push_back(SqlGraphStore::VertexEntity(op.id));
          break;
        case Op::Kind::kRemoveVertexAttr:
          if (durable) {
            sub.type = wal::RecordType::kRemoveVertexAttr;
            sub.id = op.id;
            sub.label = op.key;
          }
          st = store_->ApplyRemoveVertexAttrLocked(op.id, op.key, vts);
          publish.push_back(SqlGraphStore::VertexEntity(op.id));
          break;
        case Op::Kind::kRemoveVertex: {
          if (durable) {
            sub.type = wal::RecordType::kRemoveVertex;
            sub.id = op.id;
          }
          std::vector<int64_t> removed_eids;
          st = store_->ApplyRemoveVertexLocked(op.id, vts, &removed_eids);
          publish.push_back(SqlGraphStore::VertexEntity(op.id));
          for (int64_t eid : removed_eids) {
            publish.push_back(SqlGraphStore::EdgeEntity(eid));
          }
          break;
        }
        case Op::Kind::kAddEdge:
          if (durable) {
            sub.type = wal::RecordType::kAddEdge;
            sub.id = op.id;
            sub.src = op.src;
            sub.dst = op.dst;
            sub.label = op.key;
            sub.json = json::Write(op.value);
          }
          st = store_->ApplyAddEdgeLocked(op.id, op.src, op.dst, op.key,
                                          std::move(op.value), vts);
          publish.push_back(SqlGraphStore::VertexEntity(op.src));
          publish.push_back(SqlGraphStore::VertexEntity(op.dst));
          publish.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
        case Op::Kind::kSetEdgeAttr:
          if (durable) {
            sub.type = wal::RecordType::kSetEdgeAttr;
            sub.id = op.id;
            sub.label = op.key;
            sub.json = json::Write(op.value);
          }
          st = store_->ApplySetEdgeAttrLocked(op.id, op.key,
                                              std::move(op.value), vts);
          publish.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
        case Op::Kind::kRemoveEdgeAttr:
          if (durable) {
            sub.type = wal::RecordType::kRemoveEdgeAttr;
            sub.id = op.id;
            sub.label = op.key;
          }
          st = store_->ApplyRemoveEdgeAttrLocked(op.id, op.key, vts);
          publish.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
        case Op::Kind::kRemoveEdge:
          if (durable) {
            sub.type = wal::RecordType::kRemoveEdge;
            sub.id = op.id;
          }
          st = store_->ApplyRemoveEdgeLocked(op.id, vts);
          publish.push_back(SqlGraphStore::EdgeEntity(op.id));
          break;
      }
      if (!st.ok()) break;
      if (durable) wal::EncodeRecord(sub, &framed);
    }
    if (!st.ok()) {
      // Apply failed mid-batch (e.g. an endpoint died after our snapshot in
      // a way validation could not see): revert this transaction's versions
      // and abort with the store unchanged.
      Status unwound = store_->UnwindLocked(std::move(st), vts, excl_tables);
      End(/*committed=*/false, /*conflict=*/false);
      return unwound;
    }
    store_->PublishAndTrimLocked(publish, vts, excl_tables);
    if (durable) {
      wal::Record crec;
      crec.type = wal::RecordType::kTxnCommit;
      crec.id = static_cast<int64_t>(ops_.size());
      crec.json = std::move(framed);
      // Enqueued while every touched table is still exclusively held, so
      // the log order of conflicting commits matches their apply order.
      Status est = store_->LogWalEnqueue(crec, &ticket);
      if (!est.ok()) {
        End(/*committed=*/false, /*conflict=*/false);
        return est;
      }
    }
  }
  Status wst = store_->LogWalWait(ticket);
  if (!wst.ok()) {
    End(/*committed=*/false, /*conflict=*/false);
    return wst;
  }
  End(/*committed=*/true, /*conflict=*/false);
  return Status::OK();
}

// -------------------------------------------------------------- session --

namespace {
// Cheap routing guard: only statements whose first word could be
// transaction control pay for a parse before reaching the executor.
bool LooksLikeTxnControl(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[j]))) {
    ++j;
  }
  std::string word(text.substr(i, j - i));
  for (char& c : word) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return word == "begin" || word == "start" || word == "commit" ||
         word == "rollback";
}
}  // namespace

Result<sql::ResultSet> Session::Execute(std::string_view text,
                                        sql::ExecStats* stats) {
  if (LooksLikeTxnControl(text)) {
    ASSIGN_OR_RETURN(sql::SqlQuery q, sql::ParseQuery(text));
    switch (q.txn_control) {
      case sql::TxnControl::kBegin:
        if (in_txn()) {
          return Status::InvalidArgument(
              "transaction already open; COMMIT or ROLLBACK first");
        }
        txn_ = store_->BeginTxn();
        return sql::ResultSet();
      case sql::TxnControl::kCommit: {
        if (!in_txn()) {
          return Status::InvalidArgument("COMMIT outside a transaction");
        }
        Status st = txn_->Commit();
        txn_.reset();
        RETURN_NOT_OK(st);
        return sql::ResultSet();
      }
      case sql::TxnControl::kRollback: {
        if (!in_txn()) {
          return Status::InvalidArgument("ROLLBACK outside a transaction");
        }
        Status st = txn_->Rollback();
        txn_.reset();
        RETURN_NOT_OK(st);
        return sql::ResultSet();
      }
      case sql::TxnControl::kNone:
        break;  // first word only looked like control; run it normally
    }
  }
  if (in_txn()) return txn_->ExecuteSql(text, stats);
  return store_->ExecuteSql(text, stats);
}

}  // namespace core
}  // namespace sqlgraph
