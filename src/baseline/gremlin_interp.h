// Pipe-at-a-time Gremlin evaluation over the Blueprints API — the standard
// implementation strategy of Titan/Neo4j-era Gremlin (paper §4.2), and the
// baseline the whole-query SQL translation is compared against. Every
// per-element adjacency/attribute access is one GraphDb call (one simulated
// round trip when the store is configured as a server).

#ifndef SQLGRAPH_BASELINE_GREMLIN_INTERP_H_
#define SQLGRAPH_BASELINE_GREMLIN_INTERP_H_

#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/blueprints.h"
#include "gremlin/parser.h"
#include "gremlin/pipe.h"
#include "util/status.h"

namespace sqlgraph {
namespace baseline {

/// One traversal object: element id plus its path (ids of prior steps).
struct Traverser {
  int64_t id = 0;
  gremlin::ElementKind kind = gremlin::ElementKind::kVertex;
  std::vector<int64_t> path;  // excludes the current id
  int32_t loops = 1;          // Gremlin's it.loops counter
};

class GremlinInterpreter {
 public:
  explicit GremlinInterpreter(GraphDb* db) : db_(db) {}

  /// Evaluates a pipeline; returns the surviving traversers (for count()
  /// pipelines, one value traverser whose id is the count).
  util::Result<std::vector<Traverser>> Run(const gremlin::Pipeline& pipeline);

  /// Parses and evaluates query text.
  util::Result<std::vector<Traverser>> Query(std::string_view text);

  /// Convenience for count() queries.
  util::Result<int64_t> Count(std::string_view text);

 private:
  util::Result<std::vector<Traverser>> RunFrom(
      const gremlin::Pipeline& pipeline, size_t begin,
      std::vector<Traverser> current);
  util::Result<std::vector<Traverser>> ApplyPipe(
      const gremlin::Pipeline& pipeline, size_t index,
      std::vector<Traverser> current);
  util::Result<bool> MatchesHas(const gremlin::Pipe& pipe, const Traverser& t);
  util::Result<json::JsonValue> ElementAttrs(const Traverser& t);

  GraphDb* db_;
  // Client-side named sets (aggregate/except/retain) and step names.
  std::unordered_map<std::string, std::unordered_set<int64_t>> side_sets_;
  std::unordered_map<std::string, size_t> as_positions_;
};

}  // namespace baseline
}  // namespace sqlgraph

#endif  // SQLGRAPH_BASELINE_GREMLIN_INTERP_H_
