// Fuzz target: structured CRUD op sequences against SqlGraphStore, with the
// cross-table auditor as the oracle.
//
// The input decodes as: one config byte, then byte-coded operations (add /
// remove / mutate vertices and edges, Compact, Checkpoint, reads). After
// applying the whole sequence — every individual Status outcome is legal —
// the store MUST pass CheckConsistency(). In durable mode the store is then
// closed and recovered from its WAL directory, and the recovered store must
// pass the audit too (OpenDurableStore already runs it when
// verify_on_recovery is set, which we force on).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "graph/property_graph.h"
#include "json/json_parser.h"
#include "sqlgraph/store.h"
#include "wal/durability.h"

using sqlgraph::fuzz::FuzzInput;
using sqlgraph::fuzz::TempDir;
using sqlgraph::core::SqlGraphStore;
using sqlgraph::core::StoreConfig;
using sqlgraph::graph::EdgeId;
using sqlgraph::graph::VertexId;
using sqlgraph::json::JsonValue;

namespace {

const char* kLabels[] = {"a", "b", "c", "knows", "likes", "rated"};
const char* kKeys[] = {"name", "age", "x"};

/// Mostly an id we created, occasionally a raw id to reach the NotFound and
/// deleted-id paths.
int64_t PickId(FuzzInput* in, const std::vector<int64_t>& pool) {
  const uint8_t b = in->TakeByte();
  if (pool.empty() || (b & 0xC0) == 0xC0) return static_cast<int8_t>(b);
  return pool[b % pool.size()];
}

JsonValue SmallAttrs(FuzzInput* in) {
  JsonValue obj = JsonValue::Object();
  const uint8_t n = in->TakeByte() % 3;
  for (uint8_t i = 0; i < n; ++i) {
    obj.Set(kKeys[in->TakeByte() % 3],
            JsonValue(static_cast<int64_t>(in->TakeByte())));
  }
  return obj;
}

void ApplyOps(SqlGraphStore* store, FuzzInput* in) {
  std::vector<int64_t> vids;
  std::vector<int64_t> eids;
  for (int op_count = 0; !in->empty() && op_count < 256; ++op_count) {
    switch (in->TakeByte() % 16) {
      case 0:
      case 1:
      case 2: {
        auto vid = store->AddVertex(SmallAttrs(in));
        if (vid.ok()) vids.push_back(vid.value());
        break;
      }
      case 3:
        (void)store->RemoveVertex(PickId(in, vids));
        break;
      case 4:
        (void)store->SetVertexAttr(PickId(in, vids),
                                   kKeys[in->TakeByte() % 3],
                                   JsonValue(static_cast<int64_t>(
                                       in->TakeByte())));
        break;
      case 5:
        (void)store->RemoveVertexAttr(PickId(in, vids),
                                      kKeys[in->TakeByte() % 3]);
        break;
      case 6:
      case 7:
      case 8: {
        auto eid = store->AddEdge(PickId(in, vids), PickId(in, vids),
                                  kLabels[in->TakeByte() % 6],
                                  SmallAttrs(in));
        if (eid.ok()) eids.push_back(eid.value());
        break;
      }
      case 9:
        (void)store->RemoveEdge(PickId(in, eids));
        break;
      case 10:
        (void)store->SetEdgeAttr(PickId(in, eids), kKeys[in->TakeByte() % 3],
                                 JsonValue(static_cast<int64_t>(
                                     in->TakeByte())));
        break;
      case 11:
        (void)store->RemoveEdgeAttr(PickId(in, eids),
                                    kKeys[in->TakeByte() % 3]);
        break;
      case 12:
        (void)store->Compact();
        break;
      case 13:
        if (store->durable()) {
          (void)store->Checkpoint();
        } else {
          (void)store->GetVertex(PickId(in, vids));
        }
        break;
      case 14:
        (void)store->GetOutEdges(PickId(in, vids),
                                 kLabels[in->TakeByte() % 6]);
        (void)store->In(PickId(in, vids));
        break;
      default:
        (void)store->FindEdge(PickId(in, vids), kLabels[in->TakeByte() % 6],
                              PickId(in, vids));
        break;
    }
  }
}

void AssertConsistent(SqlGraphStore* store, const char* when) {
  const sqlgraph::core::ConsistencyReport report = store->CheckConsistency();
  FUZZ_ASSERT(report.ok(), "store inconsistent %s:\n%s", when,
              report.ToString().c_str());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;
  FuzzInput in(data, size);
  const uint8_t cfg = in.TakeByte();

  StoreConfig config;
  config.max_adjacency_colors = 1 + (cfg >> 1 & 0x3);  // 1..4: forces spills
  config.use_coloring = (cfg & 0x08) == 0;
  config.verify_on_recovery = true;

  if ((cfg & 0x01) == 0) {
    // In-memory store.
    auto built = SqlGraphStore::Build(sqlgraph::graph::PropertyGraph(),
                                      config);
    FUZZ_ASSERT(built.ok(), "empty store build failed: %s",
                built.status().ToString().c_str());
    ApplyOps(built.value().get(), &in);
    AssertConsistent(built.value().get(), "after op sequence");
    return 0;
  }

  // Durable store: same ops, then crash-free close and WAL recovery.
  static TempDir* root = new TempDir("fuzz_store_ops");
  static uint64_t run = 0;
  const std::string dir = root->path() + "/s" + std::to_string(run++);
  config.durability_dir = dir;
  config.wal_sync_mode = sqlgraph::wal::SyncMode::kNone;  // speed: no fsync

  {
    auto built = sqlgraph::wal::BuildDurableStore(
        sqlgraph::graph::PropertyGraph(), config);
    FUZZ_ASSERT(built.ok(), "durable store build failed: %s",
                built.status().ToString().c_str());
    ApplyOps(built.value().get(), &in);
    AssertConsistent(built.value().get(), "after op sequence (durable)");
  }
  {
    // Recovery runs CheckConsistency itself (verify_on_recovery) and fails
    // the open on violations, so a bad replay surfaces here.
    auto reopened = sqlgraph::wal::OpenDurableStore(config);
    FUZZ_ASSERT(reopened.ok(), "recovery failed: %s",
                reopened.status().ToString().c_str());
    AssertConsistent(reopened.value().get(), "after WAL recovery");
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
