#include "baseline/gremlin_interp.h"

#include <algorithm>

namespace sqlgraph {
namespace baseline {

using gremlin::Cmp;
using gremlin::ElementKind;
using gremlin::Pipe;
using gremlin::PipeKind;
using gremlin::Pipeline;
using util::Result;
using util::Status;

namespace {

rel::Value JsonScalarToValue(const json::JsonValue& v) {
  switch (v.type()) {
    case json::JsonType::kBool: return rel::Value(v.AsBool());
    case json::JsonType::kInt: return rel::Value(v.AsInt());
    case json::JsonType::kDouble: return rel::Value(v.AsDouble());
    case json::JsonType::kString: return rel::Value(v.AsString());
    default: return rel::Value(v);
  }
}

bool Compare(Cmp cmp, const rel::Value& lhs, const rel::Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const int c = lhs.Compare(rhs);
  switch (cmp) {
    case Cmp::kEq: return c == 0;
    case Cmp::kNeq: return c != 0;
    case Cmp::kGt: return c > 0;
    case Cmp::kGte: return c >= 0;
    case Cmp::kLt: return c < 0;
    case Cmp::kLte: return c <= 0;
  }
  return false;
}

Traverser Step(const Traverser& from, int64_t id, ElementKind kind) {
  Traverser t;
  t.id = id;
  t.kind = kind;
  t.path = from.path;
  t.path.push_back(from.id);
  t.loops = from.loops;
  return t;
}

}  // namespace

Result<std::vector<Traverser>> GremlinInterpreter::Query(
    std::string_view text) {
  ASSIGN_OR_RETURN(Pipeline pipeline, gremlin::ParseGremlin(text));
  return Run(pipeline);
}

Result<int64_t> GremlinInterpreter::Count(std::string_view text) {
  ASSIGN_OR_RETURN(std::vector<Traverser> out, Query(text));
  if (out.size() != 1 || out[0].kind != ElementKind::kValue) {
    return Status::InvalidArgument("query did not end in count()");
  }
  return out[0].id;
}

Result<std::vector<Traverser>> GremlinInterpreter::Run(
    const Pipeline& pipeline) {
  side_sets_.clear();
  as_positions_.clear();
  return RunFrom(pipeline, 0, {});
}

Result<std::vector<Traverser>> GremlinInterpreter::RunFrom(
    const Pipeline& pipeline, size_t begin, std::vector<Traverser> current) {
  for (size_t i = begin; i < pipeline.pipes.size(); ++i) {
    ASSIGN_OR_RETURN(current, ApplyPipe(pipeline, i, std::move(current)));
  }
  return current;
}

Result<json::JsonValue> GremlinInterpreter::ElementAttrs(const Traverser& t) {
  if (t.kind == ElementKind::kVertex) return db_->GetVertex(t.id);
  ASSIGN_OR_RETURN(EdgeRecord rec, db_->GetEdge(t.id));
  return rec.attrs;
}

Result<bool> GremlinInterpreter::MatchesHas(const Pipe& pipe,
                                            const Traverser& t) {
  if (t.kind == ElementKind::kEdge && pipe.key == "label") {
    ASSIGN_OR_RETURN(EdgeRecord rec, db_->GetEdge(t.id));
    return Compare(pipe.cmp, rel::Value(rec.label), pipe.value);
  }
  ASSIGN_OR_RETURN(json::JsonValue attrs, ElementAttrs(t));
  const json::JsonValue* v = attrs.Find(pipe.key);
  switch (pipe.kind) {
    case PipeKind::kHasNot:
      return v == nullptr;
    case PipeKind::kInterval: {
      if (v == nullptr) return false;
      const rel::Value value = JsonScalarToValue(*v);
      return Compare(Cmp::kGte, value, pipe.value) &&
             Compare(Cmp::kLt, value, pipe.value2);
    }
    default:
      if (v == nullptr) return false;
      if (!pipe.has_value) return true;
      return Compare(pipe.cmp, JsonScalarToValue(*v), pipe.value);
  }
}

Result<std::vector<Traverser>> GremlinInterpreter::ApplyPipe(
    const Pipeline& pipeline, size_t index, std::vector<Traverser> current) {
  const Pipe& pipe = pipeline.pipes[index];
  std::vector<Traverser> next;
  switch (pipe.kind) {
    case PipeKind::kStartV: {
      if (pipe.has_start_id) {
        // Existence check is one GetVertex call.
        auto attrs = db_->GetVertex(pipe.value.AsInt());
        if (attrs.ok()) {
          Traverser t;
          t.id = pipe.value.AsInt();
          next.push_back(std::move(t));
        }
        return next;
      }
      std::vector<graph::VertexId> vids;
      if (!pipe.start_key.empty()) {
        ASSIGN_OR_RETURN(vids, db_->VerticesByAttr(pipe.start_key, pipe.value));
      } else {
        ASSIGN_OR_RETURN(vids, db_->AllVertices());
      }
      next.reserve(vids.size());
      for (graph::VertexId v : vids) {
        Traverser t;
        t.id = v;
        next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kStartE: {
      if (pipe.has_start_id) {
        auto rec = db_->GetEdge(pipe.value.AsInt());
        if (rec.ok()) {
          Traverser t;
          t.id = pipe.value.AsInt();
          t.kind = ElementKind::kEdge;
          next.push_back(std::move(t));
        }
        return next;
      }
      ASSIGN_OR_RETURN(std::vector<graph::EdgeId> eids, db_->AllEdges());
      next.reserve(eids.size());
      for (graph::EdgeId e : eids) {
        Traverser t;
        t.id = e;
        t.kind = ElementKind::kEdge;
        next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kOut:
    case PipeKind::kIn:
    case PipeKind::kBoth: {
      for (const Traverser& t : current) {
        if (t.kind != ElementKind::kVertex) {
          return Status::InvalidArgument("adjacency step on non-vertex");
        }
        // One Blueprints call per element per direction: the chatty
        // protocol in action.
        if (pipe.kind != PipeKind::kIn) {
          ASSIGN_OR_RETURN(std::vector<graph::VertexId> vids,
                           db_->Out(t.id, pipe.labels));
          for (graph::VertexId v : vids) {
            next.push_back(Step(t, v, ElementKind::kVertex));
          }
        }
        if (pipe.kind != PipeKind::kOut) {
          ASSIGN_OR_RETURN(std::vector<graph::VertexId> vids,
                           db_->In(t.id, pipe.labels));
          for (graph::VertexId v : vids) {
            next.push_back(Step(t, v, ElementKind::kVertex));
          }
        }
      }
      return next;
    }
    case PipeKind::kOutE:
    case PipeKind::kInE:
    case PipeKind::kBothE: {
      for (const Traverser& t : current) {
        if (pipe.kind != PipeKind::kInE) {
          ASSIGN_OR_RETURN(std::vector<graph::EdgeId> eids,
                           db_->OutE(t.id, pipe.labels));
          for (graph::EdgeId e : eids) {
            next.push_back(Step(t, e, ElementKind::kEdge));
          }
        }
        if (pipe.kind != PipeKind::kOutE) {
          ASSIGN_OR_RETURN(std::vector<graph::EdgeId> eids,
                           db_->InE(t.id, pipe.labels));
          for (graph::EdgeId e : eids) {
            next.push_back(Step(t, e, ElementKind::kEdge));
          }
        }
      }
      return next;
    }
    case PipeKind::kOutV:
    case PipeKind::kInV:
    case PipeKind::kBothV: {
      for (const Traverser& t : current) {
        ASSIGN_OR_RETURN(EdgeRecord rec, db_->GetEdge(t.id));
        if (pipe.kind != PipeKind::kInV) {
          next.push_back(Step(t, rec.src, ElementKind::kVertex));
        }
        if (pipe.kind != PipeKind::kOutV) {
          next.push_back(Step(t, rec.dst, ElementKind::kVertex));
        }
      }
      return next;
    }
    case PipeKind::kHas:
    case PipeKind::kHasNot:
    case PipeKind::kInterval: {
      for (Traverser& t : current) {
        ASSIGN_OR_RETURN(bool keep, MatchesHas(pipe, t));
        if (keep) next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kDedup: {
      std::unordered_set<int64_t> seen;
      for (Traverser& t : current) {
        if (seen.insert(t.id).second) next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kRange: {
      for (size_t i = 0; i < current.size(); ++i) {
        const int64_t pos = static_cast<int64_t>(i);
        if (pos < pipe.lo) continue;
        if (pipe.hi >= pipe.lo && pos > pipe.hi) break;
        next.push_back(std::move(current[i]));
      }
      return next;
    }
    case PipeKind::kSimplePath: {
      for (Traverser& t : current) {
        std::unordered_set<int64_t> seen(t.path.begin(), t.path.end());
        if (seen.size() == t.path.size() && !seen.count(t.id)) {
          next.push_back(std::move(t));
        }
      }
      return next;
    }
    case PipeKind::kPath: {
      // Paths flow as value traversers; ids are unused afterwards.
      for (Traverser& t : current) {
        t.kind = ElementKind::kValue;
        next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kId:
      return current;
    case PipeKind::kAs:
      as_positions_[pipe.key] =
          current.empty() ? 0 : current[0].path.size();
      return current;
    case PipeKind::kBack: {
      auto it = as_positions_.find(pipe.key);
      if (it == as_positions_.end()) {
        return Status::InvalidArgument("back() to unknown step");
      }
      const size_t pos = it->second;
      for (Traverser& t : current) {
        if (pos >= t.path.size()) {
          next.push_back(std::move(t));
          continue;
        }
        Traverser b;
        b.id = t.path[pos];
        b.kind = ElementKind::kVertex;
        b.path.assign(t.path.begin(), t.path.begin() + static_cast<long>(pos));
        b.loops = t.loops;
        next.push_back(std::move(b));
      }
      return next;
    }
    case PipeKind::kAggregate: {
      auto& set = side_sets_[pipe.key];
      for (const Traverser& t : current) set.insert(t.id);
      return current;
    }
    case PipeKind::kExcept:
    case PipeKind::kRetain: {
      auto it = side_sets_.find(pipe.key);
      if (it == side_sets_.end()) {
        return Status::InvalidArgument("unknown side-effect set " + pipe.key);
      }
      const bool want_member = pipe.kind == PipeKind::kRetain;
      for (Traverser& t : current) {
        if ((it->second.count(t.id) > 0) == want_member) {
          next.push_back(std::move(t));
        }
      }
      return next;
    }
    case PipeKind::kAndFilter:
    case PipeKind::kOrFilter: {
      for (Traverser& t : current) {
        bool keep = pipe.kind == PipeKind::kAndFilter;
        for (const Pipeline& branch : pipe.branches) {
          std::vector<Traverser> seed{t};
          ASSIGN_OR_RETURN(std::vector<Traverser> result,
                           RunFrom(branch, 0, std::move(seed)));
          const bool matched = !result.empty();
          if (pipe.kind == PipeKind::kAndFilter) {
            keep = keep && matched;
            if (!keep) break;
          } else {
            keep = keep || matched;
            if (keep) break;
          }
        }
        if (keep) next.push_back(std::move(t));
      }
      return next;
    }
    case PipeKind::kCopySplit: {
      for (const Traverser& t : current) {
        for (const Pipeline& branch : pipe.branches) {
          std::vector<Traverser> seed{t};
          ASSIGN_OR_RETURN(std::vector<Traverser> result,
                           RunFrom(branch, 0, std::move(seed)));
          for (Traverser& r : result) next.push_back(std::move(r));
        }
      }
      return next;
    }
    case PipeKind::kIfThenElse: {
      const Pipe& test = pipe.branches[0].pipes[0];
      for (const Traverser& t : current) {
        ASSIGN_OR_RETURN(bool cond, MatchesHas(test, t));
        const Pipeline& branch = cond ? pipe.branches[1] : pipe.branches[2];
        std::vector<Traverser> seed{t};
        ASSIGN_OR_RETURN(std::vector<Traverser> result,
                         RunFrom(branch, 0, std::move(seed)));
        for (Traverser& r : result) next.push_back(std::move(r));
      }
      return next;
    }
    case PipeKind::kLoop: {
      if (pipe.loop_steps <= 0 ||
          static_cast<size_t>(pipe.loop_steps) > index) {
        return Status::InvalidArgument("loop() reaches before start");
      }
      const size_t body_begin = index - static_cast<size_t>(pipe.loop_steps);
      Pipeline body;
      body.pipes.assign(pipeline.pipes.begin() + static_cast<long>(body_begin),
                        pipeline.pipes.begin() + static_cast<long>(index));
      if (pipe.loop_count >= 0) {
        next = std::move(current);
        for (int64_t rep = 1; rep < pipe.loop_count; ++rep) {
          ASSIGN_OR_RETURN(next, RunFrom(body, 0, std::move(next)));
        }
        return next;
      }
      // Fixpoint: BFS with client-side dedup (matching the translator's
      // recursive-CTE semantics).
      std::unordered_set<int64_t> seen;
      for (const Traverser& t : current) seen.insert(t.id);
      std::vector<Traverser> frontier = current;
      next = std::move(current);
      int safety = 0;
      while (!frontier.empty() && ++safety < 10000) {
        ASSIGN_OR_RETURN(std::vector<Traverser> produced,
                         RunFrom(body, 0, std::move(frontier)));
        frontier.clear();
        for (Traverser& t : produced) {
          if (seen.insert(t.id).second) {
            frontier.push_back(t);
            next.push_back(std::move(t));
          }
        }
      }
      return next;
    }
    case PipeKind::kCount: {
      Traverser t;
      t.id = static_cast<int64_t>(current.size());
      t.kind = ElementKind::kValue;
      next.push_back(std::move(t));
      return next;
    }
  }
  return Status::Internal("unhandled pipe in interpreter");
}

}  // namespace baseline
}  // namespace sqlgraph
