// RDF quad model and the §3.1 RDF → property-graph conversion:
//
//  (a) every subject/object resource becomes a vertex with an integer id
//      and a `uri` attribute,
//  (b) object properties become labeled adjacency edges,
//  (c) datatype properties become vertex attributes,
//  (d) n-quad provenance/context becomes edge attributes.

#ifndef SQLGRAPH_GRAPH_RDF_H_
#define SQLGRAPH_GRAPH_RDF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"
#include "json/json_value.h"
#include "util/status.h"

namespace sqlgraph {
namespace graph {

/// One RDF statement, possibly with quad context attributes.
struct Quad {
  std::string subject;           // resource URI
  std::string predicate;         // property URI
  bool object_is_literal = false;
  std::string object_resource;   // when !object_is_literal
  json::JsonValue object_literal;  // when object_is_literal (string/int/double)
  json::JsonValue context;       // JSON object: provenance → edge attributes
};

/// \brief Streaming RDF→property-graph converter. Feed quads one at a time;
/// memory is bounded by the output graph plus the URI→vertex map.
class RdfToPropertyGraph {
 public:
  explicit RdfToPropertyGraph(PropertyGraph* out) : out_(out) {}

  /// Applies the conversion rules to one quad.
  util::Status Add(const Quad& quad);

  /// Vertex for a URI, creating it (with the `uri` attribute) if new.
  VertexId InternResource(const std::string& uri);

  /// Vertex for a URI or -1 if the URI never appeared.
  VertexId Find(const std::string& uri) const;

  size_t num_resources() const { return by_uri_.size(); }

 private:
  PropertyGraph* out_;
  std::unordered_map<std::string, VertexId> by_uri_;
};

/// Local name of a URI ("http://dbpedia.org/ontology/team" → "team").
std::string UriLocalName(const std::string& uri);

}  // namespace graph
}  // namespace sqlgraph

#endif  // SQLGRAPH_GRAPH_RDF_H_
