file(REMOVE_RECURSE
  "libsqlgraph_core.a"
)
