
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dbpedia_gen.cc" "src/CMakeFiles/sqlgraph_graph.dir/graph/dbpedia_gen.cc.o" "gcc" "src/CMakeFiles/sqlgraph_graph.dir/graph/dbpedia_gen.cc.o.d"
  "/root/repo/src/graph/linkbench_gen.cc" "src/CMakeFiles/sqlgraph_graph.dir/graph/linkbench_gen.cc.o" "gcc" "src/CMakeFiles/sqlgraph_graph.dir/graph/linkbench_gen.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/CMakeFiles/sqlgraph_graph.dir/graph/property_graph.cc.o" "gcc" "src/CMakeFiles/sqlgraph_graph.dir/graph/property_graph.cc.o.d"
  "/root/repo/src/graph/rdf.cc" "src/CMakeFiles/sqlgraph_graph.dir/graph/rdf.cc.o" "gcc" "src/CMakeFiles/sqlgraph_graph.dir/graph/rdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlgraph_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
