#include "sql/verify.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "rel/index.h"
#include "rel/table.h"
#include "rel/value.h"
#include "sql/expr_eval.h"
#include "sql/plan_memo.h"
#include "sql/planner.h"
#include "sql/render.h"

namespace sqlgraph {
namespace sql {

using rel::Value;
using util::Status;

// ------------------------------------------------------------- reporting ----

const char* VerifyCheckName(VerifyCheck check) {
  switch (check) {
    case VerifyCheck::kColumnResolution: return "column-resolution";
    case VerifyCheck::kTypeSoundness: return "type-soundness";
    case VerifyCheck::kOperatorInvariant: return "operator-invariant";
    case VerifyCheck::kMemoReplay: return "memo-replay";
    case VerifyCheck::kPipeAttribution: return "pipe-attribution";
  }
  return "unknown-check";
}

std::string PlanVerifyIssue::ToString() const {
  std::string out;
  out.push_back('[');
  out.append(VerifyCheckName(check));
  out.append("] ");
  out.append(context);
  out.push_back('/');
  out.append(operator_name);
  out.append(": ");
  out.append(message);
  return out;
}

void PlanVerifyReport::Add(VerifyCheck check, std::string context,
                           std::string operator_name, std::string message) {
  PlanVerifyIssue issue;
  issue.check = check;
  issue.context = std::move(context);
  issue.operator_name = std::move(operator_name);
  issue.message = std::move(message);
  issues.push_back(std::move(issue));
}

std::string PlanVerifyReport::ToString() const {
  std::string out;
  for (size_t i = 0; i < issues.size(); ++i) {
    if (i) out.push_back('\n');
    out.append(issues[i].ToString());
  }
  return out;
}

Status PlanVerifyReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::InvalidArgument("plan verification failed:\n" + ToString());
}

namespace {

// ---------------------------------------------------- static type lattice ----

// The non-null static type of an expression: kNull means "always NULL",
// kUnknown means "no static information" (every column of a base table or
// CTE — column types are dynamic in this engine, so only literal-derived
// types are ever definite, which is what keeps this checker free of false
// rejections on translator/fuzzer plans).
enum class SType { kUnknown, kNull, kBool, kInt, kDouble, kString, kJson };

const char* STypeName(SType t) {
  switch (t) {
    case SType::kUnknown: return "unknown";
    case SType::kNull: return "null";
    case SType::kBool: return "bool";
    case SType::kInt: return "int";
    case SType::kDouble: return "double";
    case SType::kString: return "string";
    case SType::kJson: return "json";
  }
  return "unknown";
}

SType TypeOfLiteral(const Value& v) {
  if (v.is_null()) return SType::kNull;
  if (v.is_bool()) return SType::kBool;
  if (v.is_int()) return SType::kInt;
  if (v.is_double()) return SType::kDouble;
  if (v.is_string()) return SType::kString;
  if (v.is_json()) return SType::kJson;
  return SType::kUnknown;
}

bool IsNumeric(SType t) { return t == SType::kInt || t == SType::kDouble; }

/// Operand types that make EvalExpr's arithmetic kernel raise (NULL operands
/// short-circuit to NULL before the type check, so kNull is fine).
bool ArithmeticRejects(SType t) {
  return t == SType::kBool || t == SType::kString || t == SType::kJson;
}

SType JoinTypes(SType a, SType b) {
  if (a == b) return a;
  if (a == SType::kNull) return b;
  if (b == SType::kNull) return a;
  if (IsNumeric(a) && IsNumeric(b)) return SType::kDouble;
  return SType::kUnknown;
}

/// Equality families: values from different families can never compare
/// equal (Value::Compare orders by type tag), so a definite cross-family
/// equi-join key yields a silently empty join. kBool is excluded on
/// purpose — boolean-vs-number comparisons appear in truthiness idioms.
enum class EqFamily { kNone, kNumber, kString, kJson };

EqFamily FamilyOf(SType t) {
  switch (t) {
    case SType::kInt:
    case SType::kDouble:
      return EqFamily::kNumber;
    case SType::kString:
      return EqFamily::kString;
    case SType::kJson:
      return EqFamily::kJson;
    default:
      return EqFamily::kNone;
  }
}

SType TypeOfCast(rel::ColumnType t) {
  switch (t) {
    case rel::ColumnType::kInt64: return SType::kInt;
    case rel::ColumnType::kDouble: return SType::kDouble;
    case rel::ColumnType::kString: return SType::kString;
    case rel::ColumnType::kBool: return SType::kBool;
    case rel::ColumnType::kJson: return SType::kJson;
  }
  return SType::kUnknown;
}

// ------------------------------------------------------- checker plumbing ----

/// Aggregate recognition, mirroring the executor's (COUNT/SUM/MIN/MAX/AVG,
/// with COUNT(*) and COUNT(DISTINCT x) special-cased).
enum class AggKind { kNotAggregate, kCountStar, kCountOrDistinct, kOther };

AggKind ClassifyAggregate(const Expr& e) {
  if (e.kind != ExprKind::kFunc) return AggKind::kNotAggregate;
  const std::string& f = e.func_name;
  if (f == "COUNT") {
    if (!e.distinct_arg && e.args.size() == 1 &&
        e.args[0]->kind == ExprKind::kStar) {
      return AggKind::kCountStar;
    }
    return AggKind::kCountOrDistinct;
  }
  if (f == "SUM" || f == "MIN" || f == "MAX" || f == "AVG") {
    return AggKind::kOther;
  }
  return AggKind::kNotAggregate;
}

std::string Dotted(const Expr& e) {
  return e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
}

/// A ColumnEnv plus the parallel static type of each slot.
struct TypedEnv {
  ColumnEnv env;
  std::vector<SType> types;

  void Add(const std::string& qualifier, const std::string& column, SType t) {
    env.Add(qualifier, column);
    types.push_back(t);
  }
};

/// The derived output schema of a SELECT: column names plus static types.
/// `valid` drops to false once resolution fails somewhere inside, which
/// poisons downstream checks instead of cascading secondary diagnostics.
struct RelShape {
  std::vector<std::string> columns;
  std::vector<SType> types;
  bool valid = true;
};

/// Where an expression is being evaluated; controls aggregate legality.
enum class Scope { kScalar, kAggArg };

class PlanChecker {
 public:
  PlanChecker(const rel::Database& db, PlanVerifyReport* report)
      : db_(db), report_(report) {}

  void CheckQuery(const SqlQuery& query) {
    if (query.final_select == nullptr) return;  // txn control: no plan tree
    for (const Cte& cte : query.ctes) {
      context_ = cte.name;
      RelShape shape;
      if (cte.recursive) {
        shape = CheckRecursiveCte(cte);
      } else {
        shape = CheckSelect(*cte.select);
        ApplyCteAliases(cte, &shape);
      }
      ctes_[cte.name] = std::move(shape);
    }
    context_ = "final";
    CheckSelect(*query.final_select);
  }

 private:
  void Add(VerifyCheck check, std::string op, std::string msg) {
    report_->Add(check, context_, std::move(op), std::move(msg));
  }

  void ApplyCteAliases(const Cte& cte, RelShape* shape) {
    if (cte.column_aliases.empty()) return;
    if (shape->valid && cte.column_aliases.size() != shape->columns.size()) {
      Add(VerifyCheck::kOperatorInvariant, "cte",
          "CTE " + cte.name + " column alias arity mismatch (" +
              std::to_string(cte.column_aliases.size()) + " aliases for " +
              std::to_string(shape->columns.size()) + " columns)");
    }
    const bool keep_types = cte.column_aliases.size() == shape->types.size();
    shape->columns = cte.column_aliases;
    if (!keep_types) {
      shape->types.assign(shape->columns.size(), SType::kUnknown);
    }
  }

  RelShape CheckRecursiveCte(const Cte& cte) {
    const SelectStmt& whole = *cte.select;
    if (whole.set_ops.size() != 1) {
      Add(VerifyCheck::kOperatorInvariant, "recursive cte",
          "recursive CTE " + cte.name + " must be <base> UNION [ALL] <step>");
      RelShape bad;
      bad.valid = false;
      return bad;
    }
    SelectStmt base = whole;
    base.set_ops.clear();
    RelShape shape = CheckSelect(base);
    ApplyCteAliases(cte, &shape);
    // The iteration may produce anything the step emits; widen every column
    // so literal-derived base types never flag step-side expressions.
    for (auto& t : shape.types) t = SType::kUnknown;
    ctes_[cte.name] = shape;  // the step sees the working table
    RelShape step = CheckSelect(*whole.set_ops[0].rhs);
    if (shape.valid && step.valid &&
        step.columns.size() != shape.columns.size()) {
      // The executor appends step rows to the working table without an
      // arity check; mismatched widths corrupt downstream slot indexing.
      Add(VerifyCheck::kOperatorInvariant, "recursive cte",
          "recursive CTE " + cte.name + " step arity " +
              std::to_string(step.columns.size()) +
              " does not match base arity " +
              std::to_string(shape.columns.size()));
    }
    return shape;
  }

  RelShape CheckSelect(const SelectStmt& s) {
    const bool defer_order_limit = !s.set_ops.empty();
    RelShape shape = CheckSelectCore(s, defer_order_limit);
    for (const auto& set_op : s.set_ops) {
      RelShape rhs = CheckSelect(*set_op.rhs);
      if (shape.valid && rhs.valid) {
        if (rhs.columns.size() != shape.columns.size()) {
          Add(VerifyCheck::kOperatorInvariant, "set-op",
              "set operation arity mismatch (" +
                  std::to_string(shape.columns.size()) + " vs " +
                  std::to_string(rhs.columns.size()) + " columns)");
          shape.valid = false;
        } else {
          for (size_t i = 0; i < shape.types.size(); ++i) {
            shape.types[i] = JoinTypes(shape.types[i], rhs.types[i]);
          }
        }
      } else {
        shape.valid = false;
      }
    }
    if (defer_order_limit && shape.valid) {
      CheckOrderByOutput(s, shape, "sort (output)");
    }
    return shape;
  }

  /// ORDER BY after a set operation or an aggregation binds to the output
  /// columns only, by bare name.
  void CheckOrderByOutput(const SelectStmt& s, const RelShape& shape,
                          const char* op) {
    if (s.order_by.empty()) return;
    TypedEnv env;
    for (size_t i = 0; i < shape.columns.size(); ++i) {
      env.Add("", shape.columns[i],
              i < shape.types.size() ? shape.types[i] : SType::kUnknown);
    }
    for (const auto& item : s.order_by) {
      CheckExpr(*item.expr, env, Scope::kScalar, op);
    }
  }

  RelShape CheckSelectCore(const SelectStmt& s, bool defer_order_limit) {
    CheckInSubqueries(s);

    TypedEnv env;
    bool env_valid = true;
    if (!s.from.empty()) {
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(s.where, &conjuncts);
      std::vector<bool> consumed(conjuncts.size(), false);

      for (size_t ref_index = 0; ref_index < s.from.size(); ++ref_index) {
        const TableRef& ref = s.from[ref_index];
        const bool first = ref_index == 0;
        TypedEnv next_env = env;
        if (!AddRefToEnv(ref, &next_env)) env_valid = false;
        if (env_valid) {
          CheckRefExprs(ref, next_env);
          // Mirror JoinNextRef's staging: a conjunct is consumed (and
          // evaluated) at the first ref that makes it fully bound. Checking
          // in that env — not the final one — matters when a later ref
          // makes a bare reference ambiguous.
          for (size_t i = 0; i < conjuncts.size(); ++i) {
            if (consumed[i]) continue;
            if (IsFullyBound(*conjuncts[i], next_env.env) &&
                (first || !IsFullyBound(*conjuncts[i], env.env))) {
              CheckConjunct(*conjuncts[i], next_env);
              consumed[i] = true;
            }
          }
        }
        env = std::move(next_env);
      }
      if (env_valid) {
        for (size_t i = 0; i < conjuncts.size(); ++i) {
          if (consumed[i]) continue;
          if (!IsFullyBound(*conjuncts[i], env.env)) {
            Add(VerifyCheck::kColumnResolution, "filter",
                "unresolvable predicate: " + RenderExpr(*conjuncts[i]));
          } else {
            CheckConjunct(*conjuncts[i], env);
          }
        }
      }
    }
    // With an empty FROM the executor never splits or applies the WHERE
    // clause (one synthetic empty row, no filter stage), so there is
    // nothing to verify against it.

    if (!env_valid) {
      RelShape bad;
      bad.valid = false;
      return bad;
    }

    bool has_aggregate = !s.group_by.empty();
    for (const auto& item : s.items) {
      if (!item.is_star && ContainsAggregate(item.expr)) has_aggregate = true;
    }
    if (has_aggregate) {
      RelShape out = CheckAggregate(s, env);
      if (!defer_order_limit) CheckOrderByOutput(s, out, "sort (output)");
      return out;
    }
    if (!defer_order_limit && !s.order_by.empty()) CheckSortInput(s, env);
    return CheckProject(s, env);
  }

  /// A WHERE conjunct already known to be fully bound: type soundness plus
  /// the cross-family equality check on its top-level comparison.
  void CheckConjunct(const Expr& conjunct, const TypedEnv& env) {
    CheckExpr(conjunct, env, Scope::kScalar, "filter");
  }

  /// Resolves one FROM item and appends its columns to `*env`. Returns
  /// false when the relation itself cannot be resolved (unknown table),
  /// which poisons the enclosing select.
  bool AddRefToEnv(const TableRef& ref, TypedEnv* env) {
    const std::string& alias = ref.exposure();
    switch (ref.kind) {
      case TableRefKind::kBaseTable: {
        auto it = ctes_.find(ref.table_name);
        if (it != ctes_.end()) {
          if (!it->second.valid) return false;
          for (size_t i = 0; i < it->second.columns.size(); ++i) {
            env->Add(alias, it->second.columns[i], it->second.types[i]);
          }
          return true;
        }
        const rel::Table* table = db_.GetTable(ref.table_name);
        if (table == nullptr) {
          Add(VerifyCheck::kColumnResolution, "scan " + alias,
              "unknown table " + ref.table_name);
          return false;
        }
        for (const auto& c : table->schema().columns()) {
          // Stored values are dynamically typed; declared column types are
          // not enforced on ingest, so stay at kUnknown.
          env->Add(alias, c.name, SType::kUnknown);
        }
        return true;
      }
      case TableRefKind::kSubquery: {
        RelShape sub = CheckSelect(*ref.subquery);
        if (!sub.valid) return false;
        for (size_t i = 0; i < sub.columns.size(); ++i) {
          env->Add(alias, sub.columns[i], sub.types[i]);
        }
        return true;
      }
      case TableRefKind::kUnnestValues: {
        const size_t arity = ref.column_aliases.size();
        std::vector<SType> col_types(arity, SType::kNull);
        bool first_row = true;
        for (const auto& row : ref.values_rows) {
          if (row.size() != arity) {
            Add(VerifyCheck::kOperatorInvariant, "unnest values " + alias,
                "VALUES row arity mismatch (" + std::to_string(row.size()) +
                    " expressions for " + std::to_string(arity) +
                    " columns)");
            continue;
          }
          for (size_t c = 0; c < arity; ++c) {
            const SType t = row[c]->kind == ExprKind::kLiteral
                                ? TypeOfLiteral(row[c]->literal)
                                : SType::kUnknown;
            col_types[c] = first_row ? t : JoinTypes(col_types[c], t);
          }
          first_row = false;
        }
        for (size_t c = 0; c < arity; ++c) {
          env->Add(alias, ref.column_aliases[c], col_types[c]);
        }
        return true;
      }
      case TableRefKind::kUnnestJson: {
        const size_t arity = ref.column_aliases.size();
        if (arity < 1 || arity > 3) {
          Add(VerifyCheck::kOperatorInvariant, "unnest json_edges " + alias,
              "JSON_EDGES exposes 1-3 columns, got " + std::to_string(arity));
        }
        for (size_t c = 0; c < arity; ++c) {
          // With >= 2 aliases the first column is the edge label, always a
          // string; eid/val may be NULL, so they stay unknown.
          const SType t =
              (arity >= 2 && c == 0) ? SType::kString : SType::kUnknown;
          env->Add(alias, ref.column_aliases[c], t);
        }
        return true;
      }
    }
    return false;
  }

  /// Expressions attached to the ref itself (VALUES rows, JSON_EDGES doc,
  /// LEFT OUTER ... ON), all evaluated by the executor in the post-join env.
  void CheckRefExprs(const TableRef& ref, const TypedEnv& next_env) {
    const std::string& alias = ref.exposure();
    if (ref.kind == TableRefKind::kUnnestValues) {
      for (const auto& row : ref.values_rows) {
        for (const auto& e : row) {
          CheckExpr(*e, next_env, Scope::kScalar, "unnest values " + alias);
        }
      }
    }
    if (ref.kind == TableRefKind::kUnnestJson && ref.json_doc != nullptr) {
      CheckExpr(*ref.json_doc, next_env, Scope::kScalar,
                "unnest json_edges " + alias);
    }
    if (ref.join == JoinType::kLeftOuter && ref.on != nullptr) {
      std::vector<ExprPtr> on_conjuncts;
      SplitConjuncts(ref.on, &on_conjuncts);
      for (const auto& c : on_conjuncts) {
        CheckExpr(*c, next_env, Scope::kScalar, "left outer join " + alias);
      }
    }
  }

  /// ORDER BY on the non-aggregate path: bare references that name a select
  /// alias are substituted by the aliased expression (checked as the select
  /// item); everything else resolves in the FROM scope.
  void CheckSortInput(const SelectStmt& s, const TypedEnv& env) {
    for (const auto& item : s.order_by) {
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kColumnRef && e.qualifier.empty() &&
          env.env.TryResolve("", e.column) < 0) {
        bool aliased = false;
        for (const auto& sel : s.items) {
          if (!sel.is_star && sel.alias == e.column) {
            aliased = true;
            break;
          }
        }
        if (aliased) continue;
      }
      CheckExpr(e, env, Scope::kScalar, "sort");
    }
  }

  RelShape CheckProject(const SelectStmt& s, const TypedEnv& env) {
    RelShape out;
    for (size_t i = 0; i < s.items.size(); ++i) {
      const SelectItem& item = s.items[i];
      if (item.is_star) {
        bool matched = false;
        for (size_t sl = 0; sl < env.env.size(); ++sl) {
          const auto& [qual, col] = env.env.slot(sl);
          if (!item.star_qualifier.empty() && qual != item.star_qualifier) {
            continue;
          }
          out.columns.push_back(col);
          out.types.push_back(env.types[sl]);
          matched = true;
        }
        if (!matched && !item.star_qualifier.empty()) {
          Add(VerifyCheck::kColumnResolution, "project",
              "star qualifier " + item.star_qualifier +
                  " matches no table in scope");
        }
        continue;
      }
      out.columns.push_back(ItemNameOf(item, i));
      out.types.push_back(CheckExpr(*item.expr, env, Scope::kScalar,
                                    "project"));
    }
    return out;
  }

  static std::string ItemNameOf(const SelectItem& item, size_t index) {
    if (!item.alias.empty()) return item.alias;
    if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
      return item.expr->column;
    }
    return "c" + std::to_string(index);
  }

  RelShape CheckAggregate(const SelectStmt& s, const TypedEnv& env) {
    RelShape out;
    for (size_t i = 0; i < s.items.size(); ++i) {
      const SelectItem& item = s.items[i];
      if (item.is_star) {
        Add(VerifyCheck::kOperatorInvariant, "aggregate",
            "* not allowed with aggregation");
        out.valid = false;
        continue;
      }
      out.columns.push_back(ItemNameOf(item, i));
      const AggKind kind = ClassifyAggregate(*item.expr);
      if (kind != AggKind::kNotAggregate) {
        out.types.push_back(kind == AggKind::kCountStar ||
                                    kind == AggKind::kCountOrDistinct
                                ? SType::kInt
                                : SType::kUnknown);
        if (kind != AggKind::kCountStar) {
          if (item.expr->args.size() != 1) {
            Add(VerifyCheck::kOperatorInvariant, "aggregate",
                "aggregate expects one argument: " + RenderExpr(*item.expr));
          } else {
            CheckExpr(*item.expr->args[0], env, Scope::kAggArg, "aggregate");
          }
        }
        continue;
      }
      out.types.push_back(SType::kUnknown);
      const std::string rendered = RenderExpr(*item.expr);
      bool matches_group = false;
      for (const auto& g : s.group_by) {
        if (RenderExpr(*g) == rendered) {
          matches_group = true;
          break;
        }
      }
      if (!matches_group) {
        // The group expression with the same rendering is checked below;
        // an item without one is rejected by the executor up front.
        Add(VerifyCheck::kOperatorInvariant, "aggregate",
            "select item is neither aggregate nor GROUP BY expression: " +
                rendered);
      }
    }
    for (const auto& g : s.group_by) {
      CheckExpr(*g, env, Scope::kScalar, "aggregate");
    }
    if (s.having != nullptr) CheckHaving(*s.having, env, out);
    return out;
  }

  /// HAVING after the executor's rewrite: aggregate calls become hidden
  /// output columns (their arguments evaluate in the input scope); every
  /// remaining reference resolves bare against the aggregate output.
  void CheckHaving(const Expr& having, const TypedEnv& input_env,
                   const RelShape& out) {
    TypedEnv output_env;
    for (size_t i = 0; i < out.columns.size(); ++i) {
      output_env.Add("", out.columns[i],
                     i < out.types.size() ? out.types[i] : SType::kUnknown);
    }
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      const AggKind kind = ClassifyAggregate(e);
      if (kind != AggKind::kNotAggregate) {
        if (kind == AggKind::kCountStar) return;
        if (e.args.size() != 1) {
          // The rewrite leaves the argument slot null and the accumulator
          // dereferences it — reject before that can happen.
          Add(VerifyCheck::kOperatorInvariant, "having",
              "aggregate expects one argument: " + RenderExpr(e));
          return;
        }
        CheckExpr(*e.args[0], input_env, Scope::kAggArg, "having");
        return;
      }
      switch (e.kind) {
        case ExprKind::kColumnRef:
          if (output_env.env.TryResolve(e.qualifier, e.column) < 0) {
            Add(VerifyCheck::kColumnResolution, "having",
                "cannot resolve column " + Dotted(e) +
                    " (HAVING binds to aggregate output columns)");
          }
          return;
        case ExprKind::kInSubquery:
          // The aggregate rewrite clones the tree, so the materialized-set
          // lookup (keyed on node identity) can never hit.
          Add(VerifyCheck::kOperatorInvariant, "having",
              "IN subquery in HAVING is not pre-materialized after the "
              "aggregate rewrite");
          if (e.lhs) walk(*e.lhs);
          return;
        default:
          break;
      }
      if (e.lhs) walk(*e.lhs);
      if (e.rhs) walk(*e.rhs);
      for (const auto& a : e.args) walk(*a);
      for (const auto& a : e.in_list) walk(*a);
    };
    walk(having);
  }

  /// Registers (and checks) every IN subquery the executor pre-materializes
  /// for this select: WHERE, HAVING, and select items. A kInSubquery node
  /// anywhere else (ORDER BY, GROUP BY, VALUES rows, ON clauses) misses the
  /// materialization pass and fails at runtime.
  void CheckInSubqueries(const SelectStmt& s) {
    std::function<void(const ExprPtr&)> collect = [&](const ExprPtr& e) {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kInSubquery) {
        materialized_.insert(e.get());
        RelShape sub = CheckSelect(*e->subquery);
        if (sub.valid && sub.columns.size() != 1) {
          Add(VerifyCheck::kOperatorInvariant, "in-subquery",
              "IN subquery must return one column, got " +
                  std::to_string(sub.columns.size()));
        }
      }
      collect(e->lhs);
      collect(e->rhs);
      for (const auto& a : e->args) collect(a);
      for (const auto& a : e->in_list) collect(a);
    };
    collect(s.where);
    collect(s.having);
    for (const auto& item : s.items) collect(item.expr);
  }

  // ------------------------------------------------- expression checking ----

  SType CheckExpr(const Expr& e, const TypedEnv& env, Scope scope,
                  const std::string& op) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return TypeOfLiteral(e.literal);
      case ExprKind::kColumnRef: {
        const int slot = env.env.TryResolve(e.qualifier, e.column);
        if (slot < 0) {
          Add(VerifyCheck::kColumnResolution, op,
              "cannot resolve column " + Dotted(e));
          return SType::kUnknown;
        }
        return env.types[static_cast<size_t>(slot)];
      }
      case ExprKind::kParam:
        return SType::kUnknown;  // bind values are dynamic by design
      case ExprKind::kBinary:
        return CheckBinary(e, env, scope, op);
      case ExprKind::kUnary: {
        const SType t = CheckExpr(*e.lhs, env, scope, op);
        switch (e.un_op) {
          case UnaryOp::kNot:
          case UnaryOp::kIsNull:
          case UnaryOp::kIsNotNull:
            return SType::kBool;
          case UnaryOp::kNeg:
            if (ArithmeticRejects(t)) {
              Add(VerifyCheck::kTypeSoundness, op,
                  "negation of non-number: " + RenderExpr(e) +
                      " (operand is statically " + STypeName(t) + ")");
            }
            return IsNumeric(t) || t == SType::kNull ? t : SType::kUnknown;
        }
        return SType::kUnknown;
      }
      case ExprKind::kFunc:
        return CheckFunc(e, env, scope, op);
      case ExprKind::kCast:
        CheckExpr(*e.lhs, env, scope, op);
        return TypeOfCast(e.cast_type);
      case ExprKind::kInList: {
        CheckExpr(*e.lhs, env, scope, op);
        for (const auto& item : e.in_list) CheckExpr(*item, env, scope, op);
        return SType::kBool;
      }
      case ExprKind::kInSubquery:
        if (materialized_.find(&e) == materialized_.end()) {
          Add(VerifyCheck::kOperatorInvariant, op,
              "IN subquery at this position is never pre-materialized "
              "(only WHERE, HAVING, and select items are)");
        }
        CheckExpr(*e.lhs, env, scope, op);
        return SType::kBool;
      case ExprKind::kStar:
        Add(VerifyCheck::kOperatorInvariant, op, "bare * outside COUNT(*)");
        return SType::kUnknown;
    }
    return SType::kUnknown;
  }

  SType CheckBinary(const Expr& e, const TypedEnv& env, Scope scope,
                    const std::string& op) {
    const SType lt = CheckExpr(*e.lhs, env, scope, op);
    const SType rt = CheckExpr(*e.rhs, env, scope, op);
    switch (e.bin_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        return SType::kBool;
      case BinaryOp::kEq: {
        const EqFamily lf = FamilyOf(lt), rf = FamilyOf(rt);
        if (lf != EqFamily::kNone && rf != EqFamily::kNone && lf != rf) {
          Add(VerifyCheck::kTypeSoundness, op,
              "equality can never match: " + RenderExpr(e) + " compares " +
                  STypeName(lt) + " with " + STypeName(rt));
        }
        return SType::kBool;
      }
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return SType::kBool;
      case BinaryOp::kLike:
        // NULL on either side short-circuits before the pattern type check.
        if (rt != SType::kUnknown && rt != SType::kNull &&
            rt != SType::kString && lt != SType::kNull) {
          Add(VerifyCheck::kTypeSoundness, op,
              "LIKE pattern not string: " + RenderExpr(e) +
                  " (pattern is statically " + STypeName(rt) + ")");
        }
        return SType::kBool;
      case BinaryOp::kConcat:
        if (lt == SType::kJson || rt == SType::kJson) return SType::kJson;
        if (lt == SType::kNull || rt == SType::kNull) return SType::kNull;
        if (lt != SType::kUnknown && rt != SType::kUnknown) {
          return SType::kString;
        }
        return SType::kUnknown;
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        if ((ArithmeticRejects(lt) && rt != SType::kNull) ||
            (ArithmeticRejects(rt) && lt != SType::kNull)) {
          Add(VerifyCheck::kTypeSoundness, op,
              "arithmetic on non-numeric values: " + RenderExpr(e));
        }
        if (lt == SType::kNull || rt == SType::kNull) return SType::kNull;
        if (e.bin_op == BinaryOp::kDiv) return SType::kUnknown;  // may NULL
        if (lt == SType::kInt && rt == SType::kInt) return SType::kInt;
        if (IsNumeric(lt) && IsNumeric(rt)) return SType::kDouble;
        return SType::kUnknown;
      }
    }
    return SType::kUnknown;
  }

  SType CheckFunc(const Expr& e, const TypedEnv& env, Scope scope,
                  const std::string& op) {
    const std::string& f = e.func_name;
    if (ClassifyAggregate(e) != AggKind::kNotAggregate) {
      // The walker only visits positions where EvalExpr runs; an aggregate
      // call here hits the executor's "outside aggregation context" error
      // (after evaluating the arguments, which are checked first).
      for (const auto& a : e.args) {
        if (a->kind != ExprKind::kStar) CheckExpr(*a, env, scope, op);
      }
      Add(VerifyCheck::kOperatorInvariant, op,
          "aggregate " + f + " evaluated outside aggregation context");
      return SType::kUnknown;
    }
    std::vector<SType> arg_types;
    arg_types.reserve(e.args.size());
    for (const auto& a : e.args) {
      arg_types.push_back(CheckExpr(*a, env, scope, op));
    }
    auto arity = [&](size_t n) {
      if (e.args.size() != n) {
        Add(VerifyCheck::kTypeSoundness, op,
            f + " expects " + std::to_string(n) + " arguments, got " +
                std::to_string(e.args.size()));
        return false;
      }
      return true;
    };
    if (f == "COALESCE") {
      SType t = SType::kNull;
      for (SType at : arg_types) t = JoinTypes(t, at);
      return t;
    }
    if (f == "JSON_VAL") {
      if (arity(2) && arg_types[1] != SType::kUnknown &&
          arg_types[1] != SType::kString) {
        // A NULL key also rejects: the kernel checks is_string() first.
        Add(VerifyCheck::kTypeSoundness, op,
            "JSON_VAL key not string: " + RenderExpr(e) +
                " (key is statically " + STypeName(arg_types[1]) + ")");
      }
      return SType::kUnknown;
    }
    if (f == "PATH_APPEND") {
      arity(2);
      return SType::kJson;
    }
    if (f == "PATH_ELEM") {
      arity(2);
      return SType::kUnknown;
    }
    if (f == "PATH_PREFIX") {
      arity(2);
      return SType::kJson;
    }
    if (f == "PATH_LEN") {
      arity(1);
      return SType::kUnknown;  // NULL for non-arrays
    }
    if (f == "IS_SIMPLE_PATH") {
      arity(1);
      return SType::kInt;
    }
    if (f == "LENGTH") {
      arity(1);
      return SType::kInt;
    }
    if (f == "ABS") {
      arity(1);
      return SType::kUnknown;
    }
    if (f == "LOWER" || f == "UPPER") {
      arity(1);
      return SType::kString;
    }
    Add(VerifyCheck::kTypeSoundness, op, "unknown function " + f);
    return SType::kUnknown;
  }

  const rel::Database& db_;
  PlanVerifyReport* report_;
  std::string context_ = "query";
  std::map<std::string, RelShape> ctes_;
  std::unordered_set<const Expr*> materialized_;
};

// ----------------------------------------------------------- memo checks ----

const rel::Index* FindIndexNamed(const rel::Table& table,
                                 const std::string& name) {
  for (const auto& idx : table.indexes()) {
    if (idx->name() == name) return idx.get();
  }
  return nullptr;
}

struct RefSite {
  const TableRef* ref;
  std::string context;
};

void CollectRefs(const SelectStmt& s, const std::string& context,
                 std::vector<RefSite>* out) {
  std::function<void(const ExprPtr&)> collect_expr = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kInSubquery && e->subquery != nullptr) {
      CollectRefs(*e->subquery, context, out);
    }
    collect_expr(e->lhs);
    collect_expr(e->rhs);
    for (const auto& a : e->args) collect_expr(a);
    for (const auto& a : e->in_list) collect_expr(a);
  };
  for (const auto& ref : s.from) {
    out->push_back({&ref, context});
    if (ref.subquery != nullptr) CollectRefs(*ref.subquery, context, out);
  }
  collect_expr(s.where);
  collect_expr(s.having);
  for (const auto& item : s.items) collect_expr(item.expr);
  for (const auto& set_op : s.set_ops) CollectRefs(*set_op.rhs, context, out);
}

}  // namespace

void VerifyPlan(const SqlQuery& query, const rel::Database& db,
                PlanVerifyReport* report) {
  PlanChecker checker(db, report);
  checker.CheckQuery(query);
}

PlanVerifyReport VerifyPlan(const SqlQuery& query, const rel::Database& db) {
  PlanVerifyReport report;
  VerifyPlan(query, db, &report);
  AddVerifySelfTestPlants(&report);
  return report;
}

void VerifyMemo(const SqlQuery& query, const rel::Database& db,
                const PlanMemo& memo, PlanVerifyReport* report) {
  if (query.final_select == nullptr) return;
  std::unordered_set<std::string> cte_names;
  std::vector<RefSite> sites;
  for (const Cte& cte : query.ctes) {
    cte_names.insert(cte.name);
    CollectRefs(*cte.select, cte.name, &sites);
  }
  CollectRefs(*query.final_select, "final", &sites);

  for (const RefSite& site : sites) {
    const TableRef& ref = *site.ref;
    const std::string& alias = ref.exposure();
    // Index-backed plans are only ever recorded for live base tables; a
    // CTE-shadowed or non-table ref cannot carry them. A missing table or
    // index replans gracefully at runtime, so only *inconsistent* entries
    // (silent-wrong-result hazards) are reported.
    const rel::Table* table = nullptr;
    if (ref.kind == TableRefKind::kBaseTable &&
        cte_names.find(ref.table_name) == cte_names.end()) {
      table = db.GetTable(ref.table_name);
    }
    auto add = [&](const std::string& op, std::string msg) {
      report->Add(VerifyCheck::kMemoReplay, site.context, op + " " + alias,
                  std::move(msg));
    };

    if (auto access = memo.GetAccess(&ref)) {
      const rel::Index* idx =
          table != nullptr && !access->index_name.empty()
              ? FindIndexNamed(*table, access->index_name)
              : nullptr;
      switch (access->kind) {
        case PlanMemo::AccessPlan::kSeqScan:
          break;
        case PlanMemo::AccessPlan::kIndexEq:
          if (idx != nullptr &&
              access->eq_preds.size() != idx->column_ids().size()) {
            add("access", "memoized index-eq plan replays index " +
                              access->index_name + " with " +
                              std::to_string(access->eq_preds.size()) +
                              " predicates for " +
                              std::to_string(idx->column_ids().size()) +
                              " key columns");
          }
          if (access->eq_slots.size() != access->eq_preds.size()) {
            add("access",
                "memoized index-eq plan has " +
                    std::to_string(access->eq_slots.size()) + " slots for " +
                    std::to_string(access->eq_preds.size()) + " predicates");
          }
          for (size_t slot : access->eq_slots) {
            if (slot >= access->n_applicable) {
              add("access", "memoized predicate slot " + std::to_string(slot) +
                                " out of range (n_applicable=" +
                                std::to_string(access->n_applicable) + ")");
              break;
            }
          }
          break;
        case PlanMemo::AccessPlan::kJsonEq:
        case PlanMemo::AccessPlan::kJsonRange:
        case PlanMemo::AccessPlan::kJsonPrefix:
          if (idx != nullptr && !idx->is_json()) {
            add("access", "memoized JSON access plan replays non-JSON index " +
                              access->index_name);
          }
          if (access->json_slot >= access->n_applicable) {
            add("access",
                "memoized JSON predicate slot " +
                    std::to_string(access->json_slot) +
                    " out of range (n_applicable=" +
                    std::to_string(access->n_applicable) + ")");
          }
          break;
      }
    }

    if (auto join = memo.GetJoin(&ref)) {
      switch (join->kind) {
        case PlanMemo::JoinPlan::kIndexNL: {
          const rel::Index* idx =
              table != nullptr && !join->index_name.empty()
                  ? FindIndexNamed(*table, join->index_name)
                  : nullptr;
          if (idx != nullptr &&
              join->best_key_order.size() != idx->column_ids().size()) {
            add("join", "memoized index-NL key order covers " +
                            std::to_string(join->best_key_order.size()) +
                            " of " + std::to_string(idx->column_ids().size()) +
                            " key columns of index " + join->index_name);
          }
          for (size_t k : join->best_key_order) {
            if (k >= join->keys.size()) {
              add("join", "memoized key-order entry " + std::to_string(k) +
                              " out of range (" +
                              std::to_string(join->keys.size()) + " keys)");
              break;
            }
          }
          if (join->used.size() != join->n_applicable) {
            add("join", "memoized consumed-conjunct bitmap has " +
                            std::to_string(join->used.size()) +
                            " entries for " +
                            std::to_string(join->n_applicable) +
                            " applicable conjuncts");
          }
          break;
        }
        case PlanMemo::JoinPlan::kHash:
          if (join->keys.empty()) {
            add("join", "memoized hash join carries no equi-join keys");
          }
          if (join->used.size() != join->n_applicable) {
            add("join", "memoized consumed-conjunct bitmap has " +
                            std::to_string(join->used.size()) +
                            " entries for " +
                            std::to_string(join->n_applicable) +
                            " applicable conjuncts");
          }
          break;
        case PlanMemo::JoinPlan::kCross:
          if (!join->keys.empty()) {
            add("join", "memoized cross join carries " +
                            std::to_string(join->keys.size()) +
                            " unused equi-join keys");
          }
          break;
      }
    }

    if (auto outer = memo.GetOuter(&ref)) {
      if (outer->use_index && table != nullptr) {
        const rel::Index* idx = FindIndexNamed(*table, outer->index_name);
        if (idx != nullptr &&
            outer->keys.size() != idx->column_ids().size()) {
          add("outer", "memoized outer-join plan has " +
                           std::to_string(outer->keys.size()) +
                           " keys for index " + outer->index_name + " with " +
                           std::to_string(idx->column_ids().size()) +
                           " key columns");
        }
      }
    }
  }
}

void VerifyMemoEpoch(uint64_t plan_epoch, uint64_t current_epoch,
                     PlanVerifyReport* report) {
  if (plan_epoch == current_epoch) return;
  report->Add(VerifyCheck::kMemoReplay, "prepared", "memo",
              "plan compiled at schema epoch " + std::to_string(plan_epoch) +
                  " cannot replay at epoch " + std::to_string(current_epoch) +
                  "; re-prepare the statement");
}

void VerifyCteAttribution(
    const SqlQuery& query,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& pipes,
    PlanVerifyReport* report) {
  std::unordered_set<std::string> cte_names;
  for (const Cte& cte : query.ctes) cte_names.insert(cte.name);
  std::unordered_map<std::string, int> attributed;
  for (const auto& [pipe, ctes] : pipes) {
    for (const std::string& cte : ctes) {
      ++attributed[cte];
      if (cte != "final" && cte_names.find(cte) == cte_names.end()) {
        report->Add(VerifyCheck::kPipeAttribution, "translation",
                    "pipe " + pipe,
                    "attributes CTE " + cte +
                        " which does not exist in the translation");
      }
    }
  }
  for (const Cte& cte : query.ctes) {
    auto it = attributed.find(cte.name);
    const int n = it == attributed.end() ? 0 : it->second;
    if (n == 0) {
      report->Add(VerifyCheck::kPipeAttribution, "translation", "attribution",
                  "CTE " + cte.name +
                      " is not attributed to any Gremlin pipe");
    } else if (n > 1) {
      report->Add(VerifyCheck::kPipeAttribution, "translation", "attribution",
                  "CTE " + cte.name + " is attributed to " +
                      std::to_string(n) + " pipes");
    }
  }
}

// ---------------------------------------------------- mutation self-tests ----

namespace {

std::atomic<int> g_selftest_mode{-1};

SelectItem MakeItem(ExprPtr e) {
  SelectItem item;
  item.expr = std::move(e);
  return item;
}

TableRef OneRowValues(std::string alias, std::string column, Value v) {
  TableRef ref;
  ref.kind = TableRefKind::kUnnestValues;
  ref.alias = std::move(alias);
  ref.column_aliases.push_back(std::move(column));
  ref.values_rows.push_back({Lit(std::move(v))});
  return ref;
}

/// Plants checked against an empty catalog: both defects live entirely in
/// literal-typed TABLE(VALUES ...) scopes, so no tables are needed.
const rel::Database& EmptyDatabase() {
  static rel::Database* db = new rel::Database(1 << 20);
  return *db;
}

}  // namespace

VerifySelfTest VerifySelfTestMode() {
  int mode = g_selftest_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(VerifySelfTest::kNone);
    if (const char* env = std::getenv("SQLGRAPH_VERIFY_SELFTEST")) {
      if (std::strcmp(env, "dangling-column") == 0) {
        mode = static_cast<int>(VerifySelfTest::kDanglingColumn);
      } else if (std::strcmp(env, "join-key-type") == 0) {
        mode = static_cast<int>(VerifySelfTest::kTypeConfusedJoinKey);
      } else if (std::strcmp(env, "stale-epoch") == 0) {
        mode = static_cast<int>(VerifySelfTest::kStaleEpochMemo);
      }
    }
    g_selftest_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<VerifySelfTest>(mode);
}

void SetVerifySelfTestModeForTest(VerifySelfTest mode) {
  g_selftest_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void AddVerifySelfTestPlants(PlanVerifyReport* report) {
  switch (VerifySelfTestMode()) {
    case VerifySelfTest::kNone:
      return;
    case VerifySelfTest::kDanglingColumn: {
      // SELECT a.x, a.zzz FROM TABLE(VALUES (1)) AS a(x) — the projection
      // references a column no input produces.
      SqlQuery q;
      q.final_select = std::make_shared<SelectStmt>();
      q.final_select->from.push_back(
          OneRowValues("a", "x", Value(int64_t{1})));
      q.final_select->items.push_back(MakeItem(Col("a", "x")));
      q.final_select->items.push_back(MakeItem(Col("a", "zzz")));
      VerifyPlan(q, EmptyDatabase(), report);
      return;
    }
    case VerifySelfTest::kTypeConfusedJoinKey: {
      // SELECT a.x FROM TABLE(VALUES (1)) AS a(x),
      //               TABLE(VALUES ('y')) AS b(y) WHERE a.x = b.y — the
      // equi-join key compares an int column with a string column.
      SqlQuery q;
      q.final_select = std::make_shared<SelectStmt>();
      q.final_select->from.push_back(
          OneRowValues("a", "x", Value(int64_t{1})));
      q.final_select->from.push_back(
          OneRowValues("b", "y", Value(std::string("y"))));
      q.final_select->where =
          Bin(BinaryOp::kEq, Col("a", "x"), Col("b", "y"));
      q.final_select->items.push_back(MakeItem(Col("a", "x")));
      VerifyPlan(q, EmptyDatabase(), report);
      return;
    }
    case VerifySelfTest::kStaleEpochMemo:
      // A memo recorded at epoch 1 replayed against epoch 2.
      VerifyMemoEpoch(1, 2, report);
      return;
  }
}

}  // namespace sql
}  // namespace sqlgraph
