// Interactive Gremlin→SQL translation explorer. Reads Gremlin queries from
// stdin (or argv) and prints the single SQL query each translates to,
// optionally executing it against a small demo graph.
//
//   ./query_translation                      # REPL over the demo graph
//   ./query_translation "g.V.out().count()"  # one-shot
//   ./query_translation --table8             # EXPLAIN ANALYZE each Table-8
//                                            # template query
//   ./query_translation --metrics            # ... and dump the registry
//   ./query_translation --check PATH         # audit a store: PATH is either
//                                            # a snapshot file or a WAL
//                                            # durability directory; prints
//                                            # the CheckConsistency report

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "gremlin/runtime.h"
#include "gremlin/sparql.h"
#include "graph/dbpedia_gen.h"
#include "obs/metrics.h"
#include "sqlgraph/snapshot.h"
#include "sqlgraph/store.h"
#include "wal/durability.h"

using namespace sqlgraph;

namespace {
// One representative query per Table-8 template family, phrased over the
// demo DBpedia-like graph (edge labels are ontology URIs, vertex attributes
// are the Table-2 set).
const char* kTable8Queries[] = {
    "g.V.has('genre','Rocken').count()",
    "g.V(0).out()",
    "g.V(0).out('http://dbpedia.org/ontology/rel_0')",
    "g.V.has('genre','Rocken').out().dedup().count()",
    "g.V(0).out().out().count()",
    "g.V(0).outE('http://dbpedia.org/ontology/rel_0').inV().dedup().count()",
    "g.V(0).as('x').out().back('x').dedup().count()",
    "g.V(0).out().path()",
};
}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--check") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --check SNAPSHOT_FILE_OR_WAL_DIR\n",
                   argv[0]);
      return 2;
    }
    const std::string path = argv[2];
    util::Result<std::unique_ptr<core::SqlGraphStore>> opened =
        util::Status::InvalidArgument("unset");
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      core::StoreConfig config;
      config.durability_dir = path;
      // The audit below is the point of this invocation; don't fail the
      // open on what it will report.
      config.verify_on_recovery = false;
      opened = wal::OpenDurableStore(std::move(config));
    } else {
      opened = core::OpenSnapshot(path);
    }
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    const core::ConsistencyReport report = (*opened)->CheckConsistency();
    std::printf("%s\n", report.ToString().c_str());
    return report.ok() ? 0 : 1;
  }

  graph::DbpediaConfig gen_config;
  gen_config.scale = 0.01;
  graph::PropertyGraph graph = graph::DbpediaGenerator(gen_config).Generate();
  core::StoreConfig config;
  config.va_hash_indexes = {"uri", "qt1", "qleaf", "genre"};
  auto store = core::SqlGraphStore::Build(graph, config);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  gremlin::GremlinRuntime runtime(store->get());

  auto handle = [&](const std::string& input) {
    std::string line = input;
    // SPARQL input (Appendix B) is converted to Gremlin first.
    if (line.find("SELECT") != std::string::npos &&
        line.rfind("g.", 0) != 0) {
      auto conv = gremlin::SparqlToGremlin(line);
      if (!conv.ok()) {
        std::printf("sparql error: %s\n", conv.status().ToString().c_str());
        return;
      }
      std::printf("Gremlin (via Appendix B):\n  %s\n",
                  conv->main_query.c_str());
      line = conv->main_query;
    }
    auto sql = runtime.TranslateToSql(line);
    if (!sql.ok()) {
      std::printf("translate error: %s\n", sql.status().ToString().c_str());
      return;
    }
    std::printf("SQL:\n  %s\n", sql->c_str());
    auto result = runtime.Query(line);
    if (!result.ok()) {
      std::printf("exec error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("Result (%zu rows):\n%s\n", result->rows.size(),
                result->ToString(10).c_str());
    std::printf("Plan:\n");
    const sqlgraph::sql::ExecStats stats = store->get()->last_exec_stats();
    for (const auto& step : stats.trace) {
      std::printf("  %s\n", step.c_str());
    }
    auto explain = runtime.ExplainAnalyze(line);
    if (explain.ok()) {
      std::printf("EXPLAIN ANALYZE (operators attributed to pipes):\n%s\n",
                  explain->ToString().c_str());
    }
  };

  if (argc > 1 && (std::strcmp(argv[1], "--table8") == 0 ||
                   std::strcmp(argv[1], "--metrics") == 0)) {
    for (const char* query : kTable8Queries) {
      std::printf("=== %s\n", query);
      auto explain = runtime.ExplainAnalyze(query);
      if (!explain.ok()) {
        std::printf("error: %s\n", explain.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", explain->ToString().c_str());
    }
    if (std::strcmp(argv[1], "--metrics") == 0) {
      std::printf("Metrics registry:\n%s\n",
                  obs::MetricsRegistry::Default().DumpJson().c_str());
    }
    return 0;
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) handle(argv[i]);
    return 0;
  }
  std::printf(
      "Demo graph: %zu vertices / %zu edges (DBpedia-like, scale 0.01).\n"
      "Enter Gremlin (e.g. g.V.has('genre','Rocken').out().dedup().count())"
      " or a one-line SPARQL SELECT; empty line quits.\n",
      graph.NumVertices(), graph.NumEdges());
  std::string line;
  while (std::printf("gremlin> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) break;
    handle(line);
  }
  return 0;
}
