// Set-oriented execution of the SQL AST against a rel::Database.
//
// The executor evaluates CTEs in order into materialized temporary
// relations, then the final SELECT. Join processing is pipelined left to
// right with the access paths chosen by sql/planner.h:
//
//   * index nested-loop join when the inbound equi-join columns are covered
//     by a base-table index (the OPA/IPA/EA fast path),
//   * hash join otherwise,
//   * lateral expansion for TABLE(VALUES ...) unnest,
//   * left-outer hash join for the OSA/ISA COALESCE templates.
//
// Recursive CTEs run semi-naively with a global dedup (UNION-style fixpoint)
// and an iteration cap, mirroring the paper's recursive-SQL fallback for
// unbounded loop pipes.

#ifndef SQLGRAPH_SQL_EXECUTOR_H_
#define SQLGRAPH_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rel/database.h"
#include "sql/ast.h"
#include "sql/result.h"
#include "util/status.h"

namespace sqlgraph {
namespace sql {

/// Execution counters, exposed so tests can assert that the planner picked
/// the intended access path (e.g. "this query must not sequential-scan EA").
struct ExecStats {
  uint64_t table_scans = 0;
  uint64_t index_lookups = 0;
  uint64_t index_range_scans = 0;
  uint64_t hash_joins = 0;
  uint64_t index_nl_joins = 0;
  uint64_t rows_scanned = 0;
  uint64_t recursive_iterations = 0;
  /// EXPLAIN-style trace: one line per access-path / join decision, prefixed
  /// by the CTE being evaluated.
  std::vector<std::string> trace;
};

class Executor {
 public:
  struct Options {
    /// Safety cap for recursive CTE evaluation.
    int max_recursion = 10000;
    /// Disable index selection (for ablation tests).
    bool enable_indexes = true;
  };

  explicit Executor(rel::Database* db) : db_(db) {}
  Executor(rel::Database* db, Options options) : db_(db), options_(options) {}

  /// Executes a full query (CTEs + final select).
  util::Result<ResultSet> Execute(const SqlQuery& query);

  /// Parses then executes SQL text.
  util::Result<ResultSet> ExecuteSql(std::string_view sql_text);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  class Impl;
  rel::Database* db_;
  Options options_;
  ExecStats stats_;
};

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_EXECUTOR_H_
