// Synthetic fixture for ci/lint_lock_graph.py — NOT part of the build.
// foo_mu_ and bar_mu_ are properly annotated; baz_mu_ has no GUARDED_BY
// use, which the lint's unguarded-member check must report.

#ifndef FIXTURE_WIDGET_H_
#define FIXTURE_WIDGET_H_

namespace fixture {

class Widget {
 private:
  util::Mutex foo_mu_{util::LockRank::kFoo, "foo"};
  util::Mutex bar_mu_{util::LockRank::kBar, "bar"};
  util::Mutex baz_mu_{util::LockRank::kBaz, "baz"};
  int guarded_a_ GUARDED_BY(foo_mu_) = 0;
  int guarded_b_ GUARDED_BY(bar_mu_) = 0;
  int unguarded_ = 0;  // baz_mu_ protects this, but nothing says so
};

}  // namespace fixture

#endif  // FIXTURE_WIDGET_H_
