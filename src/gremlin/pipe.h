// Pipe AST for the side-effect-free Gremlin subset of the paper (Table 8).
//
// A query is a Pipeline — an ordered list of Pipes. Each pipe consumes an
// iterator over graph elements and yields a new one; the translator turns
// the whole pipeline into one SQL query (§4.3).

#ifndef SQLGRAPH_GREMLIN_PIPE_H_
#define SQLGRAPH_GREMLIN_PIPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rel/value.h"

namespace sqlgraph {
namespace gremlin {

enum class PipeKind {
  // -- starts
  kStartV,       // g.V | g.V(id) | g.V('key','value')
  kStartE,       // g.E | g.E(id)
  // -- transforms (adjacency)
  kOut,          // out(...labels)
  kIn,
  kBoth,
  kOutE,
  kInE,
  kBothE,
  kOutV,         // edge → source vertex
  kInV,          // edge → target vertex
  kBothV,
  kPath,         // traversal path of each object
  kId,           // element id (identity over our integer-id values)
  // -- filters
  kHas,          // has('key') | has('key', value) | has('key', CMP, value)
  kHasNot,       // hasNot('key')
  kInterval,     // interval('key', lo, hi)
  kDedup,
  kRange,        // range(lo, hi) — inclusive, 0-based
  kSimplePath,
  kExcept,       // except('name') — vs. an aggregate()d set
  kRetain,       // retain('name')
  kAndFilter,    // and(_()..., _()...)
  kOrFilter,     // or(_()..., _()...)
  // -- side effects treated per §4.4
  kAs,           // as('name') — step naming for back()
  kBack,         // back('name')
  kAggregate,    // aggregate('name') — materialized, usable by except/retain
  // -- branch
  kLoop,         // loop(steps){it.loops < k} | loop(steps){true}
  kIfThenElse,   // ifThenElse{test}{then}{else}
  kCopySplit,    // copySplit(_()..., _()...) followed by merge
  // -- terminal aggregation
  kCount,        // count()
};

enum class Cmp { kEq, kNeq, kGt, kGte, kLt, kLte };

struct Pipe;

struct Pipeline {
  std::vector<Pipe> pipes;
};

struct Pipe {
  PipeKind kind;

  std::vector<std::string> labels;  // out/in/both[E] label filters
  std::string key;                  // has/hasNot/interval key; as/back/
                                    // aggregate/except/retain name
  Cmp cmp = Cmp::kEq;               // has comparison
  bool has_value = false;           // has('key', v) vs has('key')
  rel::Value value;                 // has value / start id or lookup value
  rel::Value value2;                // interval upper bound
  // Bind-parameter slots assigned by ParameterizePipeline (translation
  // cache): when >= 0 the translator emits `:p<slot>` instead of the
  // literal value/value2, so one cached translation serves all constants.
  int value_param = -1;
  int value2_param = -1;
  int64_t lo = 0;                   // range lower
  int64_t hi = -1;                  // range upper
  int64_t loop_steps = 1;           // loop(n)
  int64_t loop_count = -1;          // {it.loops < k}; -1 = until fixpoint
  std::vector<Pipeline> branches;   // and/or/copySplit/ifThenElse sub-trees

  // kStartV / kStartE specializations:
  bool has_start_id = false;        // g.V(id)
  std::string start_key;            // g.V('key','value')
};

/// What flows through a pipe boundary.
enum class ElementKind { kVertex, kEdge, kValue };

/// Human-readable rendering (used in error messages and examples).
std::string ToString(const Pipeline& pipeline);
std::string ToString(const Pipe& pipe);

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_PIPE_H_
