// Tests for src/rel: values, codec, row stores, buffer pool, indexes,
// tables, database catalog, lock manager.

#include <thread>

#include "gtest/gtest.h"
#include "json/json_parser.h"
#include "rel/codec.h"
#include "rel/database.h"
#include "rel/lock_manager.h"

namespace sqlgraph {
namespace rel {
namespace {

// ------------------------------------------------------------------ Value --

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(0.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(json::JsonValue::Object()).is_json());
}

TEST(ValueTest, CrossTypeNumericCompare) {
  EXPECT_EQ(Value(3).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(2).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(3)), 0);
}

TEST(ValueTest, TypeRankOrdering) {
  // NULL < bool < number < string < json
  EXPECT_LT(Value().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(0)), 0);
  EXPECT_LT(Value(999).Compare(Value("a")), 0);
  EXPECT_LT(Value("zzz").Compare(Value(json::JsonValue::Object())), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value().Hash(), Value().Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(IndexKeyTest, CompositeOrderingAndEquality) {
  IndexKey a{{Value(1), Value("x")}};
  IndexKey b{{Value(1), Value("y")}};
  IndexKey c{{Value(1), Value("x")}};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == c);
  EXPECT_EQ(IndexKeyHash{}(a), IndexKeyHash{}(c));
}

// ------------------------------------------------------------------ Codec --

TEST(CodecTest, VarintRoundTrip) {
  std::string buf;
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                     ~0ull}) {
    buf.clear();
    PutVarint(v, &buf);
    size_t offset = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint(buf, &offset, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(CodecTest, RowRoundTripAllTypes) {
  json::JsonValue obj = json::JsonValue::Object();
  obj.Set("name", "marko");
  obj.Set("age", 29);
  Row row{Value(), Value(true), Value(-42), Value(2.718), Value("text"),
          Value(obj)};
  std::string buf;
  EncodeRow(row, &buf);
  size_t offset = 0;
  Row decoded;
  ASSERT_TRUE(DecodeRow(buf, row.size(), &offset, &decoded).ok());
  ASSERT_EQ(decoded.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(decoded[i], row[i]) << "column " << i;
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(CodecTest, MultipleRowsSequential) {
  std::string buf;
  EncodeRow({Value(1), Value("a")}, &buf);
  EncodeRow({Value(2), Value("b")}, &buf);
  size_t offset = 0;
  Row r1, r2;
  ASSERT_TRUE(DecodeRow(buf, 2, &offset, &r1).ok());
  ASSERT_TRUE(DecodeRow(buf, 2, &offset, &r2).ok());
  EXPECT_EQ(r1[0].AsInt(), 1);
  EXPECT_EQ(r2[1].AsString(), "b");
}

TEST(CodecTest, TruncatedBufferFails) {
  std::string buf;
  EncodeRow({Value("long string value")}, &buf);
  std::string cut = buf.substr(0, buf.size() - 3);
  size_t offset = 0;
  Row out;
  EXPECT_FALSE(DecodeRow(cut, 1, &offset, &out).ok());
}

// -------------------------------------------------------------- RowStores --

template <typename T>
std::unique_ptr<RowStore> MakeStore(BufferPool* pool);

template <>
std::unique_ptr<RowStore> MakeStore<VectorRowStore>(BufferPool*) {
  return std::make_unique<VectorRowStore>();
}
template <>
std::unique_ptr<RowStore> MakeStore<PagedRowStore>(BufferPool* pool) {
  return std::make_unique<PagedRowStore>(pool, 2, /*rows_per_page=*/4);
}

template <typename T>
class RowStoreTest : public ::testing::Test {
 protected:
  BufferPool pool_{1 << 20};
  std::unique_ptr<RowStore> store_ = MakeStore<T>(&pool_);
};

using StoreTypes = ::testing::Types<VectorRowStore, PagedRowStore>;
TYPED_TEST_SUITE(RowStoreTest, StoreTypes);

TYPED_TEST(RowStoreTest, AppendGet) {
  RowId rid = this->store_->Append({Value(1), Value("a")});
  Row out;
  ASSERT_TRUE(this->store_->Get(rid, &out).ok());
  EXPECT_EQ(out[0].AsInt(), 1);
  EXPECT_EQ(out[1].AsString(), "a");
}

TYPED_TEST(RowStoreTest, DenseRowIds) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(this->store_->Append({Value(i), Value("r")}),
              static_cast<RowId>(i));
  }
  EXPECT_EQ(this->store_->NumLive(), 10u);
}

TYPED_TEST(RowStoreTest, UpdateInPlace) {
  RowId rid = this->store_->Append({Value(1), Value("a")});
  for (int i = 0; i < 10; ++i) this->store_->Append({Value(i), Value("pad")});
  ASSERT_TRUE(this->store_->Update(rid, {Value(2), Value("b")}).ok());
  Row out;
  ASSERT_TRUE(this->store_->Get(rid, &out).ok());
  EXPECT_EQ(out[0].AsInt(), 2);
  EXPECT_EQ(out[1].AsString(), "b");
}

TYPED_TEST(RowStoreTest, DeleteTombstones) {
  RowId rid = this->store_->Append({Value(1), Value("a")});
  ASSERT_TRUE(this->store_->Delete(rid).ok());
  EXPECT_FALSE(this->store_->IsLive(rid));
  Row out;
  EXPECT_TRUE(this->store_->Get(rid, &out).IsNotFound());
  EXPECT_TRUE(this->store_->Delete(rid).IsNotFound());
  EXPECT_EQ(this->store_->NumLive(), 0u);
  EXPECT_EQ(this->store_->NumSlots(), 1u);
}

TYPED_TEST(RowStoreTest, ScanVisitsLiveInOrder) {
  for (int i = 0; i < 20; ++i) this->store_->Append({Value(i), Value("r")});
  ASSERT_TRUE(this->store_->Delete(3).ok());
  ASSERT_TRUE(this->store_->Delete(17).ok());
  std::vector<int64_t> seen;
  this->store_->Scan(
      [&](RowId, const Row& row) { seen.push_back(row[0].AsInt()); });
  EXPECT_EQ(seen.size(), 18u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (int64_t v : seen) {
    EXPECT_NE(v, 3);
    EXPECT_NE(v, 17);
  }
}

TYPED_TEST(RowStoreTest, GetBeyondEndFails) {
  Row out;
  EXPECT_FALSE(this->store_->Get(99, &out).ok());
}

TEST(PagedRowStoreTest, SurvivesEviction) {
  BufferPool pool(1);  // effectively zero cache: every access decodes
  PagedRowStore store(&pool, 1, 4);
  for (int i = 0; i < 100; ++i) store.Append({Value(i)});
  Row out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Get(static_cast<RowId>(i), &out).ok());
    EXPECT_EQ(out[0].AsInt(), i);
  }
  EXPECT_GT(pool.misses(), 0u);
}

TEST(PagedRowStoreTest, CacheHitsWithLargePool) {
  BufferPool pool(16 << 20);
  PagedRowStore store(&pool, 1, 4);
  for (int i = 0; i < 64; ++i) store.Append({Value(i)});
  Row out;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(store.Get(static_cast<RowId>(i), &out).ok());
    }
  }
  EXPECT_GT(pool.hits(), pool.misses());
}

TEST(PagedRowStoreTest, UpdateRewritesSealedPage) {
  BufferPool pool(1 << 20);
  PagedRowStore store(&pool, 1, 2);
  for (int i = 0; i < 10; ++i) store.Append({Value(i)});
  ASSERT_TRUE(store.Update(0, {Value(1000)}).ok());
  pool.Clear();  // force re-decode from the blob
  Row out;
  ASSERT_TRUE(store.Get(0, &out).ok());
  EXPECT_EQ(out[0].AsInt(), 1000);
}

TEST(PagedRowStoreTest, SerializedBytesTracked) {
  BufferPool pool(1 << 20);
  PagedRowStore store(&pool, 1, 4);
  EXPECT_EQ(store.SerializedBytes(), 0u);
  for (int i = 0; i < 16; ++i) store.Append({Value(std::string(100, 'x'))});
  EXPECT_GT(store.SerializedBytes(), 1000u);
}

// ------------------------------------------------------------ BufferPool --

TEST(BufferPoolTest, LruEvictsOldest) {
  BufferPool pool(300);
  auto page = [](size_t bytes) {
    auto p = std::make_shared<DecodedPage>();
    p->byte_size = bytes;
    return p;
  };
  pool.Insert({1, 0}, page(100));
  pool.Insert({1, 1}, page(100));
  pool.Insert({1, 2}, page(100));
  EXPECT_NE(pool.Lookup({1, 0}), nullptr);  // touch 0 → 1 is now LRU
  pool.Insert({1, 3}, page(100));           // evicts 1
  EXPECT_EQ(pool.Lookup({1, 1}), nullptr);
  EXPECT_NE(pool.Lookup({1, 0}), nullptr);
  EXPECT_NE(pool.Lookup({1, 3}), nullptr);
}

TEST(BufferPoolTest, CapacityShrinkEvicts) {
  BufferPool pool(1000);
  for (uint32_t i = 0; i < 5; ++i) {
    auto p = std::make_shared<DecodedPage>();
    p->byte_size = 100;
    pool.Insert({1, i}, p);
  }
  EXPECT_EQ(pool.cached_bytes(), 500u);
  pool.set_capacity(250);
  EXPECT_LE(pool.cached_bytes(), 250u);
}

TEST(BufferPoolTest, InvalidateStoreDropsOnlyThatStore) {
  BufferPool pool(10000);
  auto p = std::make_shared<DecodedPage>();
  p->byte_size = 10;
  pool.Insert({1, 0}, p);
  pool.Insert({2, 0}, p);
  pool.InvalidateStore(1);
  EXPECT_EQ(pool.Lookup({1, 0}), nullptr);
  EXPECT_NE(pool.Lookup({2, 0}), nullptr);
}

// ---------------------------------------------------------------- Indexes --

TEST(HashIndexTest, InsertLookupRemove) {
  HashIndex idx("i", {0}, false);
  ASSERT_TRUE(idx.Insert({{Value(1)}}, 10).ok());
  ASSERT_TRUE(idx.Insert({{Value(1)}}, 11).ok());
  ASSERT_TRUE(idx.Insert({{Value(2)}}, 12).ok());
  std::vector<RowId> hits;
  idx.Lookup({{Value(1)}}, &hits);
  EXPECT_EQ(hits.size(), 2u);
  idx.Remove({{Value(1)}}, 10);
  hits.clear();
  idx.Lookup({{Value(1)}}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 11u);
  EXPECT_EQ(idx.NumDistinctKeys(), 2u);
  EXPECT_EQ(idx.NumEntries(), 2u);
}

TEST(HashIndexTest, UniqueRejectsDuplicates) {
  HashIndex idx("u", {0}, true);
  ASSERT_TRUE(idx.Insert({{Value(1)}}, 10).ok());
  EXPECT_FALSE(idx.Insert({{Value(1)}}, 11).ok());
}

TEST(OrderedIndexTest, RangeScan) {
  OrderedIndex idx("o", {0}, false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.Insert({{Value(i)}}, static_cast<RowId>(i)).ok());
  }
  std::vector<RowId> hits;
  idx.Range(Value(3), true, Value(6), true, &hits);
  EXPECT_EQ(hits.size(), 4u);
  hits.clear();
  idx.Range(Value(3), false, Value(6), false, &hits);
  EXPECT_EQ(hits.size(), 2u);
  hits.clear();
  idx.Range(Value::Null(), true, Value(2), true, &hits);
  EXPECT_EQ(hits.size(), 3u);  // 0,1,2 (no null keys present)
  hits.clear();
  idx.Range(Value(8), true, Value::Null(), true, &hits);
  EXPECT_EQ(hits.size(), 2u);  // 8,9
}

TEST(OrderedIndexTest, RangeWithStrings) {
  OrderedIndex idx("o", {0}, false);
  ASSERT_TRUE(idx.Insert({{Value("apple")}}, 1).ok());
  ASSERT_TRUE(idx.Insert({{Value("applesauce")}}, 2).ok());
  ASSERT_TRUE(idx.Insert({{Value("banana")}}, 3).ok());
  std::vector<RowId> hits;
  std::string hi = "apple";
  hi.push_back('\xff');
  idx.Range(Value("apple"), true, Value(hi), false, &hits);
  EXPECT_EQ(hits.size(), 2u);
}

// ------------------------------------------------------------------ Table --

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", ColumnType::kInt64, /*nullable=*/false);
  s.AddColumn("name", ColumnType::kString);
  return s;
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t("t", TwoColSchema(), std::make_unique<VectorRowStore>());
  EXPECT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  EXPECT_FALSE(t.Insert({Value(1)}).ok());               // arity
  EXPECT_FALSE(t.Insert({Value("x"), Value("a")}).ok()); // type
  EXPECT_FALSE(t.Insert({Value(), Value("a")}).ok());    // non-nullable
  EXPECT_TRUE(t.Insert({Value(2), Value()}).ok());       // nullable ok
}

TEST(TableTest, IndexMaintainedAcrossCrud) {
  Table t("t", TwoColSchema(), std::make_unique<VectorRowStore>());
  ASSERT_TRUE(t.CreateIndex("t_name", {"name"}, IndexKind::kHash).ok());
  auto r1 = t.Insert({Value(1), Value("a")});
  auto r2 = t.Insert({Value(2), Value("a")});
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto hits = t.LookupEq({1}, {{Value("a")}});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  ASSERT_TRUE(t.Update(*r1, {Value(1), Value("b")}).ok());
  hits = t.LookupEq({1}, {{Value("a")}});
  EXPECT_EQ(hits->size(), 1u);
  hits = t.LookupEq({1}, {{Value("b")}});
  EXPECT_EQ(hits->size(), 1u);
  ASSERT_TRUE(t.Delete(*r2).ok());
  hits = t.LookupEq({1}, {{Value("a")}});
  EXPECT_EQ(hits->size(), 0u);
}

TEST(TableTest, UniqueIndexConflictRollsBack) {
  Table t("t", TwoColSchema(), std::make_unique<VectorRowStore>());
  ASSERT_TRUE(
      t.CreateIndex("t_pk", {"id"}, IndexKind::kHash, /*unique=*/true).ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  auto dup = t.Insert({Value(1), Value("b")});
  EXPECT_TRUE(dup.status().IsConflict());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, BackfillIndexOnExistingRows) {
  Table t("t", TwoColSchema(), std::make_unique<VectorRowStore>());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value(i % 2 ? "odd" : "even")}).ok());
  }
  ASSERT_TRUE(t.CreateIndex("t_name", {"name"}, IndexKind::kHash).ok());
  auto hits = t.LookupEq({1}, {{Value("odd")}});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
}

TEST(TableTest, JsonFunctionalIndex) {
  Schema s;
  s.AddColumn("vid", ColumnType::kInt64, false);
  s.AddColumn("attr", ColumnType::kJson);
  Table t("va", std::move(s), std::make_unique<VectorRowStore>());
  auto mkattr = [](const std::string& name, int age) {
    json::JsonValue o = json::JsonValue::Object();
    o.Set("name", name);
    o.Set("age", age);
    return Value(o);
  };
  ASSERT_TRUE(t.Insert({Value(1), mkattr("marko", 29)}).ok());
  ASSERT_TRUE(t.Insert({Value(2), mkattr("vadas", 27)}).ok());
  ASSERT_TRUE(t.CreateJsonIndex("va_name", "attr", "name",
                                IndexKind::kHash).ok());
  const Index* idx = t.FindJsonIndex(1, "name", IndexKind::kHash);
  ASSERT_NE(idx, nullptr);
  std::vector<RowId> hits;
  idx->Lookup({{Value("marko")}}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  Row row;
  ASSERT_TRUE(t.Get(hits[0], &row).ok());
  EXPECT_EQ(row[0].AsInt(), 1);
  // Maintained on update.
  ASSERT_TRUE(t.Update(hits[0], {Value(1), mkattr("marco", 29)}).ok());
  hits.clear();
  idx->Lookup({{Value("marko")}}, &hits);
  EXPECT_TRUE(hits.empty());
  hits.clear();
  idx->Lookup({{Value("marco")}}, &hits);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(TableTest, FindIndexDistinguishesJsonFromPlain) {
  Schema s;
  s.AddColumn("vid", ColumnType::kInt64, false);
  s.AddColumn("attr", ColumnType::kJson);
  Table t("va", std::move(s), std::make_unique<VectorRowStore>());
  ASSERT_TRUE(t.CreateJsonIndex("j", "attr", "k", IndexKind::kHash).ok());
  EXPECT_EQ(t.FindIndex({1}), nullptr);  // json index must not satisfy this
  EXPECT_NE(t.FindJsonIndex(1, "k", IndexKind::kHash), nullptr);
  EXPECT_EQ(t.FindJsonIndex(1, "other", IndexKind::kHash), nullptr);
}

// --------------------------------------------------------------- Database --

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  auto t = db.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_NE(db.GetTable("t"), nullptr);
  EXPECT_EQ(db.GetTable("missing"), nullptr);
  EXPECT_TRUE(db.CreateTable("t", TwoColSchema()).status().code() ==
              util::StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_EQ(db.GetTable("t"), nullptr);
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
}

TEST(DatabaseTest, PagedTableUsesSharedPool) {
  Database db(1 << 20);
  auto t = db.CreateTable("p", TwoColSchema(), StorageMode::kPaged);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*t)->Insert({Value(i), Value("row")}).ok());
  }
  EXPECT_GT((*t)->SerializedBytes(), 0u);
  EXPECT_GT(db.TotalSerializedBytes(), 0u);
}

// ------------------------------------------------------------ LockManager --

TEST(LockManagerTest, ConcurrentExclusiveIncrements) {
  LockManager lm;
  int counter = 0;  // protected by stripe of key 7
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        LockManager::ExclusiveGuard guard(&lm, 7);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 8000);
}

TEST(LockManagerTest, PairGuardAvoidsDeadlock) {
  LockManager lm;
  std::atomic<int> done{0};
  std::thread a([&] {
    for (int i = 0; i < 2000; ++i) {
      LockManager::PairExclusiveGuard g(&lm, 1, 2);
    }
    done.fetch_add(1);
  });
  std::thread b([&] {
    for (int i = 0; i < 2000; ++i) {
      LockManager::PairExclusiveGuard g(&lm, 2, 1);
    }
    done.fetch_add(1);
  });
  a.join();
  b.join();
  EXPECT_EQ(done.load(), 2);
}

}  // namespace
}  // namespace rel
}  // namespace sqlgraph
