// LinkBench-style social workload example: generates a social graph, loads
// it into all three stores and runs the Table-6 operation mix concurrently,
// printing throughput per store.
//
//   ./linkbench_social [num_objects] [requesters] [ops_per_requester]

#include <cstdio>
#include <cstdlib>

#include "baseline/kv_store.h"
#include "baseline/native_store.h"
#include "baseline/sqlgraph_adapter.h"
#include "bench_core/linkbench_driver.h"
#include "graph/linkbench_gen.h"
#include "sqlgraph/store.h"

using namespace sqlgraph;

int main(int argc, char** argv) {
  graph::LinkBenchConfig config;
  config.num_objects = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t requesters =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const size_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;

  std::printf("Generating LinkBench graph: %zu objects...\n",
              config.num_objects);
  graph::PropertyGraph graph = GenerateLinkBenchGraph(config);
  std::printf("  %zu vertices, %zu edges\n\n", graph.NumVertices(),
              graph.NumEdges());

  // The per-request overhead models the client/server hop (see DESIGN.md).
  constexpr uint32_t kRoundTripMicros = 50;

  auto run = [&](baseline::GraphDb* db) {
    auto result = bench::RunLinkBench(db, config, requesters, ops);
    if (!result.ok()) {
      std::printf("%-28s error: %s\n", db->name().c_str(),
                  result.status().ToString().c_str());
      return;
    }
    std::printf("%-28s %8.0f op/s  (%zu ops in %.2fs)\n", db->name().c_str(),
                result->ops_per_sec, result->total_ops,
                result->elapsed_seconds);
    const auto& gll = result->latency[static_cast<size_t>(
        graph::LinkBenchOp::kGetLinkList)];
    std::printf("%-28s get_link_list mean %.3f ms, p99 %.3f ms\n", "",
                gll.mean() * 1e3, gll.Percentile(0.99) * 1e3);
  };

  {
    auto store = core::SqlGraphStore::Build(graph);
    if (!store.ok()) return 1;
    baseline::SqlGraphAdapter adapter(store->get(), kRoundTripMicros);
    run(&adapter);
  }
  {
    baseline::NativeStoreConfig cfg;
    cfg.round_trip_micros = kRoundTripMicros;
    auto store = baseline::NativeStore::Build(graph, cfg);
    if (!store.ok()) return 1;
    run(store->get());
  }
  {
    baseline::KvStoreConfig cfg;
    cfg.round_trip_micros = kRoundTripMicros;
    auto store = baseline::KvStore::Build(graph, cfg);
    if (!store.ok()) return 1;
    run(store->get());
  }
  return 0;
}
