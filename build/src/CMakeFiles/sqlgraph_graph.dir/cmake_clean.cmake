file(REMOVE_RECURSE
  "CMakeFiles/sqlgraph_graph.dir/graph/dbpedia_gen.cc.o"
  "CMakeFiles/sqlgraph_graph.dir/graph/dbpedia_gen.cc.o.d"
  "CMakeFiles/sqlgraph_graph.dir/graph/linkbench_gen.cc.o"
  "CMakeFiles/sqlgraph_graph.dir/graph/linkbench_gen.cc.o.d"
  "CMakeFiles/sqlgraph_graph.dir/graph/property_graph.cc.o"
  "CMakeFiles/sqlgraph_graph.dir/graph/property_graph.cc.o.d"
  "CMakeFiles/sqlgraph_graph.dir/graph/rdf.cc.o"
  "CMakeFiles/sqlgraph_graph.dir/graph/rdf.cc.o.d"
  "libsqlgraph_graph.a"
  "libsqlgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
