
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlgraph/loader.cc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/loader.cc.o" "gcc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/loader.cc.o.d"
  "/root/repo/src/sqlgraph/micro_schemas.cc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/micro_schemas.cc.o" "gcc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/micro_schemas.cc.o.d"
  "/root/repo/src/sqlgraph/schema.cc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/schema.cc.o" "gcc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/schema.cc.o.d"
  "/root/repo/src/sqlgraph/snapshot.cc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/snapshot.cc.o" "gcc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/snapshot.cc.o.d"
  "/root/repo/src/sqlgraph/store.cc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/store.cc.o" "gcc" "src/CMakeFiles/sqlgraph_core.dir/sqlgraph/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlgraph_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_coloring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
