file(REMOVE_RECURSE
  "libsqlgraph_baseline.a"
)
