#include "sql/expr_eval.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace sqlgraph {
namespace sql {

using rel::ColumnBatch;
using rel::ColumnVector;
using rel::Value;
using util::Result;
using util::Status;

util::Result<int> ColumnEnv::Resolve(std::string_view qualifier,
                                     std::string_view column) const {
  const int slot = TryResolve(qualifier, column);
  if (slot >= 0) return slot;
  std::string name = qualifier.empty()
                         ? std::string(column)
                         : std::string(qualifier) + "." + std::string(column);
  return Status::InvalidArgument("cannot resolve column " + name);
}

int ColumnEnv::TryResolve(std::string_view qualifier,
                          std::string_view column) const {
  if (!qualifier.empty()) {
    std::string key;
    key.reserve(qualifier.size() + 1 + column.size());
    key.append(qualifier);
    key.push_back('\x1f');
    key.append(column);
    auto it = qualified_.find(key);
    return it == qualified_.end() ? -1 : it->second;
  }
  auto it = bare_.find(std::string(column));
  if (it == bare_.end() || it->second == kAmbiguous) return -1;
  return it->second;
}

rel::Value JsonVal(const rel::Value& json_doc, std::string_view key) {
  if (!json_doc.is_json()) return Value::Null();
  const json::JsonValue* member = json_doc.AsJson().Find(key);
  if (member == nullptr) return Value::Null();
  switch (member->type()) {
    case json::JsonType::kNull: return Value::Null();
    case json::JsonType::kBool: return Value(member->AsBool());
    case json::JsonType::kInt: return Value(member->AsInt());
    case json::JsonType::kDouble: return Value(member->AsDouble());
    case json::JsonType::kString: return Value(member->AsString());
    default: return Value(*member);
  }
}

bool IsTruthy(const rel::Value& v) {
  if (v.is_null()) return false;
  if (v.is_bool()) return v.AsBool();
  if (v.is_number()) return v.AsDouble() != 0.0;
  return false;
}

namespace {

/// Converts a JSON element into a scalar Value (arrays/objects stay JSON).
Value JsonToValue(const json::JsonValue& j) {
  switch (j.type()) {
    case json::JsonType::kNull: return Value::Null();
    case json::JsonType::kBool: return Value(j.AsBool());
    case json::JsonType::kInt: return Value(j.AsInt());
    case json::JsonType::kDouble: return Value(j.AsDouble());
    case json::JsonType::kString: return Value(j.AsString());
    default: return Value(j);
  }
}

json::JsonValue ValueToJson(const Value& v) {
  if (v.is_null()) return json::JsonValue();
  if (v.is_bool()) return json::JsonValue(v.AsBool());
  if (v.is_int()) return json::JsonValue(v.AsInt());
  if (v.is_double()) return json::JsonValue(v.AsDouble());
  if (v.is_string()) return json::JsonValue(v.AsString());
  return v.AsJson();
}

// ---------------------------------------------------------------------------
// Per-value kernels shared by the scalar and batched evaluators. Keeping one
// implementation per operator is what makes the two paths element-wise
// identical by construction (vector_eval_test.cc asserts it stays that way).

/// Non-AND/OR binary operator on two already-evaluated operands.
Result<Value> BinaryOpValues(BinaryOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      const int c = lhs.Compare(rhs);
      switch (op) {
        case BinaryOp::kEq: return Value(c == 0);
        case BinaryOp::kNe: return Value(c != 0);
        case BinaryOp::kLt: return Value(c < 0);
        case BinaryOp::kLe: return Value(c <= 0);
        case BinaryOp::kGt: return Value(c > 0);
        default: return Value(c >= 0);
      }
    }
    case BinaryOp::kLike: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!rhs.is_string()) return Status::TypeError("LIKE pattern not string");
      const std::string subject = lhs.is_string() ? lhs.AsString()
                                                  : lhs.ToString();
      return Value(util::SqlLikeMatch(subject, rhs.AsString()));
    }
    case BinaryOp::kConcat: {
      // The paper's path template uses || for path concatenation: if either
      // side is a JSON array, append; otherwise string concat.
      if (lhs.is_json() || rhs.is_json()) {
        json::JsonValue arr = json::JsonValue::Array();
        auto extend = [&arr](const Value& v) {
          if (v.is_json() && v.AsJson().is_array()) {
            for (const auto& elem : v.AsJson().AsArray()) arr.Append(elem);
          } else if (!v.is_null()) {
            arr.Append(ValueToJson(v));
          }
        };
        extend(lhs);
        extend(rhs);
        return Value(std::move(arr));
      }
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value(lhs.ToString() + rhs.ToString());
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.is_number() || !rhs.is_number()) {
        return Status::TypeError("arithmetic on non-numeric values");
      }
      if (lhs.is_int() && rhs.is_int() && op != BinaryOp::kDiv) {
        const int64_t a = lhs.AsInt(), b = rhs.AsInt();
        int64_t r = 0;
        bool overflow;
        switch (op) {
          case BinaryOp::kAdd: overflow = __builtin_add_overflow(a, b, &r); break;
          case BinaryOp::kSub: overflow = __builtin_sub_overflow(a, b, &r); break;
          default: overflow = __builtin_mul_overflow(a, b, &r); break;
        }
        if (!overflow) return Value(r);
        // Overflow promotes to double, same as the mixed-type path below.
      }
      const double a = lhs.AsDouble(), b = rhs.AsDouble();
      switch (op) {
        case BinaryOp::kAdd: return Value(a + b);
        case BinaryOp::kSub: return Value(a - b);
        case BinaryOp::kMul: return Value(a * b);
        default:
          if (b == 0.0) return Value::Null();  // SQL engines raise; we NULL
          return Value(a / b);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

/// Kleene AND/OR over two already-evaluated operands (the no-short-circuit
/// combine; matches the scalar path whenever both operands evaluate).
Value KleeneAndOr(bool is_and, const Value& lhs, const Value& rhs) {
  if (!lhs.is_null()) {
    const bool lv = IsTruthy(lhs);
    if (is_and && !lv) return Value(false);
    if (!is_and && lv) return Value(true);
  }
  if (!rhs.is_null()) {
    const bool rv = IsTruthy(rhs);
    if (is_and && !rv) return Value(false);
    if (!is_and && rv) return Value(true);
  }
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value(is_and);
}

Result<Value> UnaryOpValue(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      return Value(!IsTruthy(v));
    case UnaryOp::kIsNull:
      return Value(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value(!v.is_null());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.is_int()) {
        int64_t r = 0;
        if (!__builtin_sub_overflow(int64_t{0}, v.AsInt(), &r)) {
          return Value(r);
        }
        return Value(-static_cast<double>(v.AsInt()));  // -INT64_MIN
      }
      if (v.is_double()) return Value(-v.AsDouble());
      return Status::TypeError("negation of non-number");
  }
  return Status::Internal("unhandled unary op");
}

Result<Value> CastValue(const Value& v, rel::ColumnType type) {
  if (v.is_null()) return Value::Null();
  switch (type) {
    case rel::ColumnType::kInt64:
      if (v.is_number() || v.is_bool()) return Value(v.AsInt());
      if (v.is_string()) {
        errno = 0;
        char* end = nullptr;
        const long long parsed = std::strtoll(v.AsString().c_str(), &end, 10);
        if (end == v.AsString().c_str()) return Value::Null();
        return Value(static_cast<int64_t>(parsed));
      }
      return Value::Null();
    case rel::ColumnType::kDouble:
      if (v.is_number() || v.is_bool()) return Value(v.AsDouble());
      if (v.is_string()) {
        char* end = nullptr;
        const double parsed = std::strtod(v.AsString().c_str(), &end);
        if (end == v.AsString().c_str()) return Value::Null();
        return Value(parsed);
      }
      return Value::Null();
    case rel::ColumnType::kString:
      return Value(v.ToString());
    case rel::ColumnType::kBool:
      return Value(IsTruthy(v));
    case rel::ColumnType::kJson:
      return Value(ValueToJson(v));
  }
  return Status::Internal("unhandled cast type");
}

/// Non-lazy scalar function on already-evaluated arguments. COALESCE is
/// handled structurally by each evaluator (it is lazy in the scalar path);
/// JSON_VAL also has a batch fast path but shares this kernel's semantics.
Result<Value> ApplyFunc(const std::string& f, const std::vector<Value>& args) {
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(f + " expects " + std::to_string(n) +
                                     " arguments");
    }
    return Status::OK();
  };

  if (f == "JSON_VAL") {
    RETURN_NOT_OK(arity(2));
    if (!args[1].is_string()) return Status::TypeError("JSON_VAL key not string");
    return JsonVal(args[0], args[1].AsString());
  }
  if (f == "PATH_APPEND") {
    RETURN_NOT_OK(arity(2));
    const Value& path = args[0];
    json::JsonValue arr = (path.is_json() && path.AsJson().is_array())
                              ? path.AsJson()
                              : json::JsonValue::Array();
    arr.Append(ValueToJson(args[1]));
    return Value(std::move(arr));
  }
  if (f == "PATH_ELEM") {
    RETURN_NOT_OK(arity(2));
    const Value& path = args[0];
    const Value& idx = args[1];
    if (!path.is_json() || !path.AsJson().is_array() || !idx.is_number()) {
      return Value::Null();
    }
    const json::JsonArray& arr = path.AsJson().AsArray();
    int64_t i = idx.AsInt();
    if (i < 0) i += static_cast<int64_t>(arr.size());
    if (i < 0 || i >= static_cast<int64_t>(arr.size())) return Value::Null();
    return JsonToValue(arr[static_cast<size_t>(i)]);
  }
  if (f == "PATH_PREFIX") {
    // First n elements of a path array (used by back()).
    RETURN_NOT_OK(arity(2));
    const Value& path = args[0];
    const Value& n = args[1];
    if (!path.is_json() || !path.AsJson().is_array() || !n.is_number()) {
      return Value::Null();
    }
    const json::JsonArray& arr = path.AsJson().AsArray();
    json::JsonValue prefix = json::JsonValue::Array();
    const size_t limit = std::min<size_t>(
        arr.size(), n.AsInt() < 0 ? 0 : static_cast<size_t>(n.AsInt()));
    for (size_t i = 0; i < limit; ++i) prefix.Append(arr[i]);
    return Value(std::move(prefix));
  }
  if (f == "PATH_LEN") {
    RETURN_NOT_OK(arity(1));
    const Value& path = args[0];
    if (!path.is_json() || !path.AsJson().is_array()) return Value::Null();
    return Value(static_cast<int64_t>(path.AsJson().AsArray().size()));
  }
  if (f == "IS_SIMPLE_PATH") {
    // UDF from the paper's simplePath() filter: 1 iff no vertex repeats.
    RETURN_NOT_OK(arity(1));
    const Value& path = args[0];
    if (!path.is_json() || !path.AsJson().is_array()) return Value(1);
    const json::JsonArray& arr = path.AsJson().AsArray();
    std::unordered_set<rel::Value, rel::ValueHash> seen;
    for (const auto& elem : arr) {
      if (!seen.insert(JsonToValue(elem)).second) return Value(0);
    }
    return Value(1);
  }
  if (f == "LENGTH") {
    RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    return Value(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (f == "ABS") {
    RETURN_NOT_OK(arity(1));
    const Value& v = args[0];
    if (v.is_null()) return Value::Null();
    if (v.is_int()) {
      const int64_t a = v.AsInt();
      int64_t r = 0;
      if (a >= 0) return Value(a);
      if (!__builtin_sub_overflow(int64_t{0}, a, &r)) return Value(r);
      return Value(-static_cast<double>(a));  // ABS(INT64_MIN) → double
    }
    return Value(std::fabs(v.AsDouble()));
  }
  if (f == "LOWER" || f == "UPPER") {
    RETURN_NOT_OK(arity(1));
    const Value& v = args[0];
    if (v.is_null()) return Value::Null();
    std::string s = v.ToString();
    for (auto& c : s) {
      if (f == "LOWER" && c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
      if (f == "UPPER" && c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
    }
    return Value(std::move(s));
  }
  if (f == "COUNT" || f == "SUM" || f == "MIN" || f == "MAX" || f == "AVG") {
    return Status::Internal("aggregate " + f +
                            " evaluated outside aggregation context");
  }
  return Status::NotImplemented("function " + f);
}

Result<Value> EvalBinary(const Expr& e, const ColumnEnv& env,
                         const rel::Row& row, const EvalContext& ctx) {
  // Kleene AND/OR with short-circuit on the decisive operand.
  if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.lhs, env, row, ctx));
    const bool is_and = e.bin_op == BinaryOp::kAnd;
    if (!lhs.is_null()) {
      const bool lv = IsTruthy(lhs);
      if (is_and && !lv) return Value(false);
      if (!is_and && lv) return Value(true);
    }
    ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.rhs, env, row, ctx));
    return KleeneAndOr(is_and, lhs, rhs);
  }

  ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.lhs, env, row, ctx));
  ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.rhs, env, row, ctx));
  return BinaryOpValues(e.bin_op, lhs, rhs);
}

Result<Value> EvalFunc(const Expr& e, const ColumnEnv& env,
                       const rel::Row& row, const EvalContext& ctx) {
  const std::string& f = e.func_name;
  if (f == "COALESCE") {
    // Lazy: later arguments are not evaluated once one is non-NULL.
    for (const auto& arg : e.args) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, env, row, ctx));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& arg : e.args) {
    ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, env, row, ctx));
    args.push_back(std::move(v));
  }
  return ApplyFunc(f, args);
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const ColumnEnv& env,
                       const rel::Row& row, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      ASSIGN_OR_RETURN(int slot, env.Resolve(e.qualifier, e.column));
      return row[static_cast<size_t>(slot)];
    }
    case ExprKind::kParam: {
      if (ctx.params != nullptr) {
        if (!e.param_name.empty()) {
          auto it = ctx.params->named.find(e.param_name);
          if (it != ctx.params->named.end()) return it->second;
        }
        if (e.param_index >= 0 &&
            static_cast<size_t>(e.param_index) < ctx.params->positional.size()) {
          return ctx.params->positional[static_cast<size_t>(e.param_index)];
        }
      }
      return Status::InvalidArgument(
          e.param_name.empty()
              ? "unbound parameter ?" + std::to_string(e.param_index + 1)
              : "unbound parameter :" + e.param_name);
    }
    case ExprKind::kBinary:
      return EvalBinary(e, env, row, ctx);
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env, row, ctx));
      return UnaryOpValue(e.un_op, v);
    }
    case ExprKind::kFunc:
      return EvalFunc(e, env, row, ctx);
    case ExprKind::kCast: {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env, row, ctx));
      return CastValue(v, e.cast_type);
    }
    case ExprKind::kInList: {
      ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.lhs, env, row, ctx));
      if (probe.is_null()) return Value::Null();
      bool found = false;
      for (const auto& item : e.in_list) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*item, env, row, ctx));
        if (!v.is_null() && v == probe) {
          found = true;
          break;
        }
      }
      return Value(e.negated ? !found : found);
    }
    case ExprKind::kInSubquery: {
      auto it = ctx.in_subquery_sets.find(&e);
      if (it == ctx.in_subquery_sets.end()) {
        return Status::Internal("IN subquery was not pre-materialized");
      }
      ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.lhs, env, row, ctx));
      if (probe.is_null()) return Value::Null();
      const bool found = it->second.count(probe) > 0;
      return Value(e.negated ? !found : found);
    }
    case ExprKind::kStar:
      return Status::Internal("bare * outside COUNT(*)");
  }
  return Status::Internal("unhandled expression kind");
}

// ===========================================================================
// Batched evaluation. One scratch ColumnVector per expression-tree node and
// recursion level; bare column refs borrow the batch's column instead of
// copying. Typed fast loops cover the hot comparison/arithmetic/logic cases;
// everything else runs the shared per-value kernels above in a tight loop —
// still one expression-tree dispatch per *node* instead of per row.

namespace {

using Tag = ColumnVector::Tag;

/// Three-valued truthiness straight off the column: -1 NULL, 0 false, 1 true.
int TruthyAt(const ColumnVector& c, size_t i) {
  if (c.IsNull(i)) return -1;
  switch (c.tag()) {
    case Tag::kBool: return c.BoolAt(i) ? 1 : 0;
    case Tag::kInt64: return c.IntAt(i) != 0 ? 1 : 0;
    case Tag::kDouble: return c.DoubleAt(i) != 0.0 ? 1 : 0;
    case Tag::kString: return 0;
    case Tag::kBoxed: return IsTruthy(c.BoxedAt(i)) ? 1 : 0;
  }
  return 0;
}

class BatchEval {
 public:
  BatchEval(const ColumnEnv& env, const ColumnBatch& batch,
            const EvalContext& ctx)
      : env_(env), batch_(batch), ctx_(ctx), n_(batch.num_rows) {}

  /// Evaluates `e` over every row. The result lives either in a borrowed
  /// batch column (bare refs) or in `*scratch`.
  Result<const ColumnVector*> Eval(const Expr& e, ColumnVector* scratch) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        *scratch = ColumnVector::Constant(e.literal, n_);
        return scratch;
      case ExprKind::kColumnRef: {
        ASSIGN_OR_RETURN(int slot, env_.Resolve(e.qualifier, e.column));
        if (static_cast<size_t>(slot) >= batch_.cols.size()) {
          return Status::Internal("batch narrower than column env");
        }
        return &batch_.cols[static_cast<size_t>(slot)];
      }
      case ExprKind::kParam: {
        // Bind once for the whole vector; same resolution as the scalar path.
        rel::Row empty;
        ASSIGN_OR_RETURN(Value v, EvalExpr(e, env_, empty, ctx_));
        *scratch = ColumnVector::Constant(v, n_);
        return scratch;
      }
      case ExprKind::kBinary:
        return EvalBinaryBatch(e, scratch);
      case ExprKind::kUnary:
        return EvalUnaryBatch(e, scratch);
      case ExprKind::kFunc:
        return EvalFuncBatch(e, scratch);
      case ExprKind::kCast: {
        ColumnVector cs;
        ASSIGN_OR_RETURN(const ColumnVector* child, Eval(*e.lhs, &cs));
        ColumnVector out;
        out.Reserve(n_);
        for (size_t i = 0; i < n_; ++i) {
          ASSIGN_OR_RETURN(Value v, CastValue(child->GetValue(i), e.cast_type));
          out.Append(v);
        }
        *scratch = std::move(out);
        return scratch;
      }
      case ExprKind::kInList:
        return EvalInListBatch(e, scratch);
      case ExprKind::kInSubquery: {
        auto it = ctx_.in_subquery_sets.find(&e);
        if (it == ctx_.in_subquery_sets.end()) {
          return Status::Internal("IN subquery was not pre-materialized");
        }
        ColumnVector ps;
        ASSIGN_OR_RETURN(const ColumnVector* probe, Eval(*e.lhs, &ps));
        ColumnVector out;
        out.Reserve(n_);
        for (size_t i = 0; i < n_; ++i) {
          if (probe->IsNull(i)) {
            out.AppendNull();
            continue;
          }
          const bool found = it->second.count(probe->GetValue(i)) > 0;
          out.Append(Value(e.negated ? !found : found));
        }
        *scratch = std::move(out);
        return scratch;
      }
      case ExprKind::kStar:
        return Status::Internal("bare * outside COUNT(*)");
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  /// Row-at-a-time fallback for nodes whose scalar semantics short-circuit
  /// (AND/OR/COALESCE): evaluates the whole node with the scalar EvalExpr
  /// over rows materialized from the batch, so operand errors surface (or
  /// stay skipped) exactly as they would row-at-a-time.
  Result<const ColumnVector*> RescueRowAtATime(const Expr& e,
                                               ColumnVector* scratch) {
    ColumnVector out;
    out.Reserve(n_);
    rel::Row row(batch_.cols.size());
    for (size_t i = 0; i < n_; ++i) {
      for (size_t c = 0; c < batch_.cols.size(); ++c) {
        row[c] = batch_.cols[c].GetValue(i);
      }
      ASSIGN_OR_RETURN(Value v, EvalExpr(e, env_, row, ctx_));
      out.Append(v);
    }
    *scratch = std::move(out);
    return scratch;
  }

  Result<const ColumnVector*> EvalBinaryBatch(const Expr& e,
                                              ColumnVector* scratch) {
    // Kleene AND/OR: both operand vectors evaluate eagerly, then combine.
    // If either operand *errors* under eager evaluation, the scalar path
    // might have short-circuited past it — rescue by re-running this node
    // row-at-a-time, which reproduces scalar semantics exactly (including
    // which row's error surfaces, if any does).
    if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
      const bool is_and = e.bin_op == BinaryOp::kAnd;
      ColumnVector ls, rs;
      const ColumnVector* l = nullptr;
      const ColumnVector* r = nullptr;
      if (auto lres = Eval(*e.lhs, &ls); lres.ok()) {
        l = lres.value();
        if (auto rres = Eval(*e.rhs, &rs); rres.ok()) r = rres.value();
      }
      if (l == nullptr || r == nullptr) return RescueRowAtATime(e, scratch);
      ColumnVector out;
      out.Reserve(n_);
      for (size_t i = 0; i < n_; ++i) {
        const int lt = TruthyAt(*l, i);
        const int rt = TruthyAt(*r, i);
        if (is_and) {
          if (lt == 0 || rt == 0) {
            out.Append(Value(false));
          } else if (lt < 0 || rt < 0) {
            out.AppendNull();
          } else {
            out.Append(Value(true));
          }
        } else {
          if (lt == 1 || rt == 1) {
            out.Append(Value(true));
          } else if (lt < 0 || rt < 0) {
            out.AppendNull();
          } else {
            out.Append(Value(false));
          }
        }
      }
      *scratch = std::move(out);
      return scratch;
    }

    ColumnVector ls, rs;
    ASSIGN_OR_RETURN(const ColumnVector* l, Eval(*e.lhs, &ls));
    ASSIGN_OR_RETURN(const ColumnVector* r, Eval(*e.rhs, &rs));

    // Typed fast loops: same-tag comparisons and int arithmetic. Mixed tags
    // and the long tail fall through to the shared kernel loop.
    const bool cmp = e.bin_op == BinaryOp::kEq || e.bin_op == BinaryOp::kNe ||
                     e.bin_op == BinaryOp::kLt || e.bin_op == BinaryOp::kLe ||
                     e.bin_op == BinaryOp::kGt || e.bin_op == BinaryOp::kGe;
    if (cmp && l->typed() && r->typed() && l->tag() == r->tag() &&
        l->tag() != Tag::kBoxed) {
      ColumnVector out;
      out.Reserve(n_);
      for (size_t i = 0; i < n_; ++i) {
        if (l->IsNull(i) || r->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        int c = 0;
        switch (l->tag()) {
          case Tag::kInt64: {
            const int64_t a = l->IntAt(i), b = r->IntAt(i);
            c = a == b ? 0 : (a < b ? -1 : 1);
            break;
          }
          case Tag::kDouble: {
            const double a = l->DoubleAt(i), b = r->DoubleAt(i);
            c = a == b ? 0 : (a < b ? -1 : 1);
            break;
          }
          case Tag::kBool: {
            const bool a = l->BoolAt(i), b = r->BoolAt(i);
            c = a == b ? 0 : (a < b ? -1 : 1);
            break;
          }
          case Tag::kString: {
            const int sc = l->StringAt(i).compare(r->StringAt(i));
            c = sc == 0 ? 0 : (sc < 0 ? -1 : 1);
            break;
          }
          case Tag::kBoxed: break;  // excluded above
        }
        bool res = false;
        switch (e.bin_op) {
          case BinaryOp::kEq: res = c == 0; break;
          case BinaryOp::kNe: res = c != 0; break;
          case BinaryOp::kLt: res = c < 0; break;
          case BinaryOp::kLe: res = c <= 0; break;
          case BinaryOp::kGt: res = c > 0; break;
          default: res = c >= 0; break;
        }
        out.Append(Value(res));
      }
      *scratch = std::move(out);
      return scratch;
    }

    const bool int_arith = (e.bin_op == BinaryOp::kAdd ||
                            e.bin_op == BinaryOp::kSub ||
                            e.bin_op == BinaryOp::kMul) &&
                           l->typed() && r->typed() &&
                           l->tag() == Tag::kInt64 && r->tag() == Tag::kInt64;
    if (int_arith) {
      ColumnVector out;
      out.Reserve(n_);
      bool overflowed = false;
      for (size_t i = 0; i < n_ && !overflowed; ++i) {
        if (l->IsNull(i) || r->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        const int64_t a = l->IntAt(i), b = r->IntAt(i);
        int64_t v = 0;
        switch (e.bin_op) {
          case BinaryOp::kAdd: overflowed = __builtin_add_overflow(a, b, &v); break;
          case BinaryOp::kSub: overflowed = __builtin_sub_overflow(a, b, &v); break;
          default: overflowed = __builtin_mul_overflow(a, b, &v); break;
        }
        if (!overflowed) out.Append(Value(v));
      }
      if (!overflowed) {
        *scratch = std::move(out);
        return scratch;
      }
      // Rare: redo the whole vector through the kernel (per-element overflow
      // promotes that element to double, exactly like the scalar path).
    }

    ColumnVector out;
    out.Reserve(n_);
    for (size_t i = 0; i < n_; ++i) {
      ASSIGN_OR_RETURN(
          Value v, BinaryOpValues(e.bin_op, l->GetValue(i), r->GetValue(i)));
      out.Append(v);
    }
    *scratch = std::move(out);
    return scratch;
  }

  Result<const ColumnVector*> EvalUnaryBatch(const Expr& e,
                                             ColumnVector* scratch) {
    ColumnVector cs;
    ASSIGN_OR_RETURN(const ColumnVector* child, Eval(*e.lhs, &cs));
    ColumnVector out;
    out.Reserve(n_);
    switch (e.un_op) {
      case UnaryOp::kIsNull:
        for (size_t i = 0; i < n_; ++i) out.Append(Value(child->IsNull(i)));
        break;
      case UnaryOp::kIsNotNull:
        for (size_t i = 0; i < n_; ++i) out.Append(Value(!child->IsNull(i)));
        break;
      case UnaryOp::kNot:
        for (size_t i = 0; i < n_; ++i) {
          const int t = TruthyAt(*child, i);
          if (t < 0) {
            out.AppendNull();
          } else {
            out.Append(Value(t == 0));
          }
        }
        break;
      case UnaryOp::kNeg:
        for (size_t i = 0; i < n_; ++i) {
          ASSIGN_OR_RETURN(Value v, UnaryOpValue(e.un_op, child->GetValue(i)));
          out.Append(v);
        }
        break;
    }
    *scratch = std::move(out);
    return scratch;
  }

  Result<const ColumnVector*> EvalFuncBatch(const Expr& e,
                                            ColumnVector* scratch) {
    const std::string& f = e.func_name;
    if (f == "COALESCE") {
      // COALESCE short-circuits in the scalar path; an eager operand error
      // therefore falls back to row-at-a-time (see the AND/OR rescue).
      std::vector<ColumnVector> storage(e.args.size());
      std::vector<const ColumnVector*> args(e.args.size());
      for (size_t a = 0; a < e.args.size(); ++a) {
        auto res = Eval(*e.args[a], &storage[a]);
        if (!res.ok()) return RescueRowAtATime(e, scratch);
        args[a] = res.value();
      }
      ColumnVector out;
      out.Reserve(n_);
      for (size_t i = 0; i < n_; ++i) {
        bool hit = false;
        for (const ColumnVector* arg : args) {
          if (!arg->IsNull(i)) {
            out.AppendFrom(*arg, i);
            hit = true;
            break;
          }
        }
        if (!hit) out.AppendNull();
      }
      *scratch = std::move(out);
      return scratch;
    }
    if (f == "JSON_VAL" && e.args.size() == 2) {
      // The hot path of every attribute predicate: probe the JSON documents
      // without boxing them, with the key bound once when it is constant.
      ColumnVector ds, ks;
      ASSIGN_OR_RETURN(const ColumnVector* doc, Eval(*e.args[0], &ds));
      ASSIGN_OR_RETURN(const ColumnVector* key, Eval(*e.args[1], &ks));
      ColumnVector out;
      out.Reserve(n_);
      for (size_t i = 0; i < n_; ++i) {
        if (key->IsNull(i) || key->tag() != Tag::kString) {
          return Status::TypeError("JSON_VAL key not string");
        }
        const std::string& k = key->StringAt(i);
        if (doc->IsNull(i)) {
          out.AppendNull();  // JsonVal(NULL doc) is NULL
        } else if (doc->tag() == Tag::kBoxed) {
          out.Append(JsonVal(doc->BoxedAt(i), k));
        } else {
          out.Append(JsonVal(doc->GetValue(i), k));
        }
      }
      *scratch = std::move(out);
      return scratch;
    }

    std::vector<ColumnVector> storage(e.args.size());
    std::vector<const ColumnVector*> args(e.args.size());
    for (size_t a = 0; a < e.args.size(); ++a) {
      ASSIGN_OR_RETURN(args[a], Eval(*e.args[a], &storage[a]));
    }
    ColumnVector out;
    out.Reserve(n_);
    std::vector<Value> row_args(e.args.size());
    for (size_t i = 0; i < n_; ++i) {
      for (size_t a = 0; a < args.size(); ++a) {
        row_args[a] = args[a]->GetValue(i);
      }
      ASSIGN_OR_RETURN(Value v, ApplyFunc(f, row_args));
      out.Append(v);
    }
    *scratch = std::move(out);
    return scratch;
  }

  Result<const ColumnVector*> EvalInListBatch(const Expr& e,
                                              ColumnVector* scratch) {
    ColumnVector ps;
    ASSIGN_OR_RETURN(const ColumnVector* probe, Eval(*e.lhs, &ps));
    std::vector<ColumnVector> storage(e.in_list.size());
    std::vector<const ColumnVector*> items(e.in_list.size());
    for (size_t a = 0; a < e.in_list.size(); ++a) {
      ASSIGN_OR_RETURN(items[a], Eval(*e.in_list[a], &storage[a]));
    }
    ColumnVector out;
    out.Reserve(n_);
    for (size_t i = 0; i < n_; ++i) {
      if (probe->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      const Value pv = probe->GetValue(i);
      bool found = false;
      for (const ColumnVector* item : items) {
        if (item->IsNull(i)) continue;
        if (item->GetValue(i) == pv) {
          found = true;
          break;
        }
      }
      out.Append(Value(e.negated ? !found : found));
    }
    *scratch = std::move(out);
    return scratch;
  }

  const ColumnEnv& env_;
  const ColumnBatch& batch_;
  const EvalContext& ctx_;
  const size_t n_;
};

}  // namespace

Result<ColumnVector> EvalExprBatch(const Expr& e, const ColumnEnv& env,
                                   const ColumnBatch& batch,
                                   const EvalContext& ctx) {
  BatchEval be(env, batch, ctx);
  ColumnVector scratch;
  ASSIGN_OR_RETURN(const ColumnVector* res, be.Eval(e, &scratch));
  if (res == &scratch) return scratch;
  return *res;  // borrowed batch column: copy out
}

Status EvalPredicateBatch(const Expr& e, const ColumnEnv& env,
                          const ColumnBatch& batch, const EvalContext& ctx,
                          std::vector<uint32_t>* sel) {
  BatchEval be(env, batch, ctx);
  ColumnVector scratch;
  ASSIGN_OR_RETURN(const ColumnVector* res, be.Eval(e, &scratch));
  for (size_t i = 0; i < batch.num_rows; ++i) {
    if (TruthyAt(*res, i) == 1) sel->push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

}  // namespace sql
}  // namespace sqlgraph
