// LinkBench-like social-graph generator and operation stream (substitute for
// Facebook-calibrated LinkBench, see DESIGN.md §4).
//
// Data model per the paper's §5.2 mapping: LinkBench "objects" become
// vertices with attributes {type, version, time, data}; "associations"
// become edges with attributes {atype, visibility, timestamp, data}.
//
// The operation stream follows the paper's Table 6 distribution.

#ifndef SQLGRAPH_GRAPH_LINKBENCH_GEN_H_
#define SQLGRAPH_GRAPH_LINKBENCH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "util/rng.h"

namespace sqlgraph {
namespace graph {

struct LinkBenchConfig {
  size_t num_objects = 10000;
  double avg_degree = 4.3;        // paper: 1B nodes / 4.3B edges
  size_t payload_bytes = 24;      // object/assoc data payload
  size_t num_object_types = 8;
  size_t num_assoc_types = 6;
  double zipf_theta = 0.75;       // hot-node skew for both data and ops
  uint64_t seed = 8331;
};

/// Builds the initial social graph.
PropertyGraph GenerateLinkBenchGraph(const LinkBenchConfig& config);

/// LinkBench operation kinds (paper Table 6, same order).
enum class LinkBenchOp {
  kAddNode,
  kUpdateNode,
  kDeleteNode,
  kGetNode,
  kAddLink,
  kDeleteLink,
  kUpdateLink,
  kCountLink,
  kMultigetLink,
  kGetLinkList,
};

const char* LinkBenchOpName(LinkBenchOp op);

/// Table 6 mix: {2.6, 7.4, 1.0, 12.9, 9.0, 3.0, 8.0, 4.9, 0.5, 50.7}%.
extern const double kLinkBenchOpMix[10];

/// One concrete operation: kind plus pre-drawn ids/payload so every store
/// executes the identical stream.
struct LinkBenchRequest {
  LinkBenchOp op;
  VertexId id1 = 0;          // primary vertex
  VertexId id2 = 0;          // secondary vertex (links)
  std::string assoc_type;    // association type label
  std::string payload;       // data payload for writes
};

/// \brief Deterministic per-requester operation stream.
class LinkBenchWorkload {
 public:
  LinkBenchWorkload(const LinkBenchConfig& config, uint64_t requester_seed);

  /// Draws the next request. Vertex ids are Zipf-skewed over the initial
  /// object range; ids for adds are drawn from a private range so
  /// concurrent requesters never collide on vertex creation.
  LinkBenchRequest Next();

 private:
  LinkBenchConfig config_;
  util::Rng rng_;
  util::ZipfSampler id_zipf_;
  double cumulative_[10];
};

}  // namespace graph
}  // namespace sqlgraph

#endif  // SQLGRAPH_GRAPH_LINKBENCH_GEN_H_
