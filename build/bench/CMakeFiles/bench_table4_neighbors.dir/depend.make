# Empty dependencies file for bench_table4_neighbors.
# This may be replaced when dependencies are built.
