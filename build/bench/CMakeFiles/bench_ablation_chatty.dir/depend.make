# Empty dependencies file for bench_ablation_chatty.
# This may be replaced when dependencies are built.
