file(REMOVE_RECURSE
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/linkbench_driver.cc.o"
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/linkbench_driver.cc.o.d"
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/report.cc.o"
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/report.cc.o.d"
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/workloads.cc.o"
  "CMakeFiles/sqlgraph_bench_core.dir/bench_core/workloads.cc.o.d"
  "libsqlgraph_bench_core.a"
  "libsqlgraph_bench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgraph_bench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
