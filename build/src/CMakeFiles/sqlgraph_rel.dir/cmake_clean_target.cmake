file(REMOVE_RECURSE
  "libsqlgraph_rel.a"
)
