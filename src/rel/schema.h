// Relational table schemas.

#ifndef SQLGRAPH_REL_SCHEMA_H_
#define SQLGRAPH_REL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "rel/value.h"

namespace sqlgraph {
namespace rel {

struct Column {
  std::string name;
  ColumnType type;
  bool nullable = true;
};

/// \brief Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Returns the index of the named column or -1.
  int FindColumn(std::string_view name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  void AddColumn(std::string name, ColumnType type, bool nullable = true) {
    columns_.push_back(Column{std::move(name), type, nullable});
  }

  /// Checks a row for arity and (loose) type compatibility. NULLs pass any
  /// nullable column; integers are accepted by double columns.
  util::Status ValidateRow(const Row& row) const {
    if (row.size() != columns_.size()) {
      return util::Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) + " != schema arity " +
          std::to_string(columns_.size()));
    }
    for (size_t i = 0; i < row.size(); ++i) {
      const Value& v = row[i];
      const Column& c = columns_[i];
      if (v.is_null()) {
        if (!c.nullable) {
          return util::Status::InvalidArgument("NULL in non-nullable column " +
                                               c.name);
        }
        continue;
      }
      bool ok = false;
      switch (c.type) {
        case ColumnType::kInt64: ok = v.is_int(); break;
        case ColumnType::kDouble: ok = v.is_number(); break;
        case ColumnType::kString: ok = v.is_string(); break;
        case ColumnType::kBool: ok = v.is_bool(); break;
        case ColumnType::kJson: ok = v.is_json(); break;
      }
      if (!ok) {
        return util::Status::TypeError("value for column " + c.name +
                                       " has wrong type");
      }
    }
    return util::Status::OK();
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace rel
}  // namespace sqlgraph

#endif  // SQLGRAPH_REL_SCHEMA_H_
