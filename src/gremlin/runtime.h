// Gremlin runtime over SQLGraph: parse → translate → execute as ONE SQL
// query (the paper's whole-query architecture, §4.2). Contrast with
// baseline/gremlin_interp.h, which evaluates the same pipelines one pipe at
// a time over a Blueprints-style API.

#ifndef SQLGRAPH_GREMLIN_RUNTIME_H_
#define SQLGRAPH_GREMLIN_RUNTIME_H_

#include <string>
#include <string_view>
#include <vector>

#include "gremlin/parser.h"
#include "gremlin/translation_cache.h"
#include "gremlin/translator.h"
#include "obs/trace.h"
#include "sql/result.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace gremlin {

/// EXPLAIN ANALYZE of a Gremlin query: the executor's per-operator spans
/// attributed back to the source pipes through the CTEs each pipe emitted.
struct GremlinExplain {
  struct PipeStats {
    std::string pipe;                   ///< Source pipe, e.g. "out('knows')".
    std::vector<std::string> ctes;      ///< CTEs this pipe translated to.
    std::vector<obs::TraceSpan> spans;  ///< Operator spans in those CTEs.
    uint64_t rows = 0;   ///< Rows leaving the pipe (its last operator).
    uint64_t ns = 0;     ///< Total operator time attributed to the pipe.
  };
  std::vector<PipeStats> pipes;
  /// Spans not owned by any pipe: the final SELECT plus anything unmapped.
  std::vector<obs::TraceSpan> final_spans;
  sql::ResultSet result;  ///< The query's actual rows.
  std::string sql;        ///< Rendered SQL that was executed.

  /// Human-readable plan trace (pipes, their operators, rows, times).
  std::string ToString() const;
};

class GremlinRuntime {
 public:
  explicit GremlinRuntime(core::SqlGraphStore* store,
                          TranslatorOptions options = TranslatorOptions())
      : store_(store), translator_(&store->schema(), options) {
    // Translation-layer half of plan verification: check pipe→CTE
    // attribution completeness on every cache miss (sql-layer plan checks
    // run in the store's executor).
    cache_.set_verify_attribution(store->config().verify_plans);
  }

  /// Runs a Gremlin query text; result column `val` carries the output.
  util::Result<sql::ResultSet> Query(std::string_view text);

  /// Runs an already-parsed pipeline. Constants are lifted into bind
  /// parameters and the SQL shape is served from the translation cache, so
  /// a repeated pipeline shape skips translation, rendering, lexing,
  /// parsing, and planning.
  util::Result<sql::ResultSet> Run(const Pipeline& pipeline);

  /// Translates without executing (for tests / the translation example).
  /// Renders constants inline (no parameterization).
  util::Result<std::string> TranslateToSql(std::string_view text) const;

  /// Convenience: a query whose result is a single scalar (e.g. count()).
  util::Result<int64_t> Count(std::string_view text);

  /// Runs `text` with per-operator span recording and attributes each
  /// executor span back to its source pipe (spans carry the CTE they ran
  /// in; the translator reports which CTEs each pipe emitted). Bypasses
  /// the translation cache — analysis wants the uncached translation path.
  util::Result<GremlinExplain> ExplainAnalyze(std::string_view text);

  const TranslationCache& translation_cache() const { return cache_; }

 private:
  core::SqlGraphStore* store_;
  Translator translator_;
  TranslationCache cache_;
};

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_RUNTIME_H_
