// WAL segment reader used by recovery: scans a log file front to back and
// stops cleanly at the first frame that fails validation, reporting the
// valid prefix so the caller can truncate the torn tail before appending.

#ifndef SQLGRAPH_WAL_LOG_READER_H_
#define SQLGRAPH_WAL_LOG_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "wal/record.h"

namespace sqlgraph {
namespace wal {

struct LogReadResult {
  std::vector<Record> records;  // every record in the valid prefix
  uint64_t valid_bytes = 0;     // length of the valid prefix
  uint64_t file_bytes = 0;      // total file length
  bool clean = true;            // false when a torn/corrupt tail was dropped
  std::string tail_error;       // why scanning stopped (empty when clean)
};

/// Reads the whole segment. NotFound when the file does not exist; a
/// corrupt or torn tail is NOT an error — it sets clean=false and the
/// records of the valid prefix are still returned.
util::Result<LogReadResult> ReadLogFile(const std::string& path);

/// Truncates `path` to exactly `size` bytes (drops a torn tail).
util::Status TruncateLog(const std::string& path, uint64_t size);

}  // namespace wal
}  // namespace sqlgraph

#endif  // SQLGRAPH_WAL_LOG_READER_H_
