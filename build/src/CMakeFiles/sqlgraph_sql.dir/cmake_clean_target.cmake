file(REMOVE_RECURSE
  "libsqlgraph_sql.a"
)
