#include "wal/record.h"

#include <cstring>

#include "util/crc32c.h"

namespace sqlgraph {
namespace wal {

using util::Status;

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void PutVar(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVar(std::string_view buf, size_t* offset, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  size_t i = *offset;
  while (i < buf.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(buf[i++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *offset = i;
      *out = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::ParseError("wal: truncated varint");
}

// Zigzag keeps negative ids (soft-deleted references never appear today,
// but the format should not silently 10-byte-encode them).
uint64_t Zig(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t Unzig(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutStr(const std::string& s, std::string* out) {
  PutVar(s.size(), out);
  out->append(s);
}

Status GetStr(std::string_view buf, size_t* offset, std::string* out) {
  uint64_t len = 0;
  RETURN_NOT_OK(GetVar(buf, offset, &len));
  if (len > buf.size() - *offset) {
    return Status::ParseError("wal: truncated string");
  }
  out->assign(buf.data() + *offset, len);
  *offset += len;
  return Status::OK();
}

Status DecodePayload(std::string_view payload, Record* out) {
  size_t off = 0;
  uint64_t type = 0;
  RETURN_NOT_OK(GetVar(payload, &off, &type));
  if (type < 1 || type > 12) {
    return Status::ParseError("wal: unknown record type");
  }
  out->type = static_cast<RecordType>(type);
  out->id = 0;
  out->src = out->dst = 0;
  out->label.clear();
  out->json.clear();
  uint64_t raw = 0;
  switch (out->type) {
    case RecordType::kAddVertex:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      RETURN_NOT_OK(GetStr(payload, &off, &out->json));
      break;
    case RecordType::kAddEdge:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->src = Unzig(raw);
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->dst = Unzig(raw);
      RETURN_NOT_OK(GetStr(payload, &off, &out->label));
      RETURN_NOT_OK(GetStr(payload, &off, &out->json));
      break;
    case RecordType::kSetVertexAttr:
    case RecordType::kSetEdgeAttr:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      RETURN_NOT_OK(GetStr(payload, &off, &out->label));
      RETURN_NOT_OK(GetStr(payload, &off, &out->json));
      break;
    case RecordType::kRemoveVertexAttr:
    case RecordType::kRemoveEdgeAttr:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      RETURN_NOT_OK(GetStr(payload, &off, &out->label));
      break;
    case RecordType::kRemoveVertex:
    case RecordType::kRemoveEdge:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      break;
    case RecordType::kTxnCommit:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      RETURN_NOT_OK(GetStr(payload, &off, &out->json));
      break;
    case RecordType::kTxnBegin:
    case RecordType::kTxnAbort:
      RETURN_NOT_OK(GetVar(payload, &off, &raw));
      out->id = Unzig(raw);
      break;
    case RecordType::kCompact:
      break;
  }
  if (off != payload.size()) {
    return Status::ParseError("wal: trailing bytes in record payload");
  }
  return Status::OK();
}

}  // namespace

void EncodeRecord(const Record& rec, std::string* out) {
  std::string payload;
  PutVar(static_cast<uint64_t>(rec.type), &payload);
  switch (rec.type) {
    case RecordType::kAddVertex:
      PutVar(Zig(rec.id), &payload);
      PutStr(rec.json, &payload);
      break;
    case RecordType::kAddEdge:
      PutVar(Zig(rec.id), &payload);
      PutVar(Zig(rec.src), &payload);
      PutVar(Zig(rec.dst), &payload);
      PutStr(rec.label, &payload);
      PutStr(rec.json, &payload);
      break;
    case RecordType::kSetVertexAttr:
    case RecordType::kSetEdgeAttr:
      PutVar(Zig(rec.id), &payload);
      PutStr(rec.label, &payload);
      PutStr(rec.json, &payload);
      break;
    case RecordType::kRemoveVertexAttr:
    case RecordType::kRemoveEdgeAttr:
      PutVar(Zig(rec.id), &payload);
      PutStr(rec.label, &payload);
      break;
    case RecordType::kRemoveVertex:
    case RecordType::kRemoveEdge:
      PutVar(Zig(rec.id), &payload);
      break;
    case RecordType::kTxnCommit:
      PutVar(Zig(rec.id), &payload);
      PutStr(rec.json, &payload);
      break;
    case RecordType::kTxnBegin:
    case RecordType::kTxnAbort:
      PutVar(Zig(rec.id), &payload);
      break;
    case RecordType::kCompact:
      break;
  }
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(util::Crc32cMask(util::Crc32c(payload)), out);
  out->append(payload);
}

Status DecodeRecord(std::string_view buf, size_t* offset, Record* out) {
  const size_t start = *offset;
  if (buf.size() - start < kFrameHeaderBytes) {
    return Status::OutOfRange("wal: short frame header");
  }
  const uint32_t len = GetU32(buf.data() + start);
  const uint32_t masked = GetU32(buf.data() + start + 4);
  if (len > buf.size() - start - kFrameHeaderBytes) {
    return Status::OutOfRange("wal: frame length past end of log");
  }
  const std::string_view payload = buf.substr(start + kFrameHeaderBytes, len);
  if (util::Crc32c(payload) != util::Crc32cUnmask(masked)) {
    return Status::ParseError("wal: frame checksum mismatch");
  }
  RETURN_NOT_OK(DecodePayload(payload, out));
  *offset = start + kFrameHeaderBytes + len;
  return Status::OK();
}

}  // namespace wal
}  // namespace sqlgraph
