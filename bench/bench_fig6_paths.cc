// Paper Fig. 6 — path computation on the shredded OPA+OSA tables vs the EA
// "triple table" alone (§3.5): the 11 long-path queries under both plans.
//
// The store runs on paged storage with a constrained buffer pool: table
// cardinality and row width then matter the way they do on disk, which is
// the effect behind the paper's numbers (EA rows carry the JSON attribute
// payload, so each EA page decode is far more expensive than an OPA one).
//
//   ./bench_fig6_paths [--scale=0.3] [--runs=4] [--pool-frac=0.35]

#include "bench_common.h"
#include "gremlin/runtime.h"
#include "util/string_util.h"

using namespace sqlgraph;
using namespace sqlgraph::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "--scale", 0.3);
  const int runs = static_cast<int>(FlagInt(argc, argv, "--runs", 4));

  const double pool_frac = FlagDouble(argc, argv, "--pool-frac", 0.35);
  graph::PropertyGraph g = BuildDbpediaGraph(scale);
  core::StoreConfig config = DbpediaStoreConfig();
  config.storage = rel::StorageMode::kPaged;
  auto store = core::SqlGraphStore::Build(g, config);
  if (!store.ok()) return 1;
  const size_t pool_bytes = static_cast<size_t>(
      pool_frac * static_cast<double>((*store)->SerializedBytes()));
  (*store)->db()->buffer_pool()->set_capacity(std::max<size_t>(pool_bytes, 1 << 20));
  std::printf("paged storage: %s serialized, pool budget %s\n",
              util::HumanBytes((*store)->SerializedBytes()).c_str(),
              util::HumanBytes((*store)->db()->buffer_pool()->capacity()).c_str());

  gremlin::TranslatorOptions hash_options;  // default plan: OPA+OSA joins
  gremlin::TranslatorOptions ea_options;
  ea_options.force_ea_for_all_hops = true;
  gremlin::GremlinRuntime hash_runtime(store->get(), hash_options);
  gremlin::GremlinRuntime ea_runtime(store->get(), ea_options);

  Banner("Fig. 6 — long-path queries: OPA+OSA vs EA (ms)");
  TextTable table({"query", "result", "OPA+OSA(ms)", "opa p50/p95/p99",
                   "EA(ms)", "ea/opa"});
  util::RunningStat hash_stat, ea_stat;
  for (const auto& q : Table1Queries()) {
    const std::string text = q.ToGremlin();
    int64_t result = -1;
    util::Samples hash_ms = TimedRuns(runs, [&] {
      auto r = hash_runtime.Count(text);
      if (r.ok()) result = *r;
    });
    util::Samples ea_ms = TimedRuns(runs, [&] {
      auto r = ea_runtime.Count(text);
      if (r.ok() && *r != result) {
        std::fprintf(stderr, "MISMATCH on lq%d\n", q.id);
      }
    });
    hash_stat.Add(hash_ms.mean());
    ea_stat.Add(ea_ms.mean());
    table.AddRow({util::StrFormat("lq%d", q.id), std::to_string(result),
                  FormatMs(hash_ms.mean()), FormatPercentiles(hash_ms),
                  FormatMs(ea_ms.mean()),
                  util::StrFormat("%.2fx", ea_ms.mean() /
                                               std::max(0.001, hash_ms.mean()))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nOPA+OSA: mean %.1f ms (sd %.1f) | EA alone: mean %.1f ms (sd %.1f)\n",
      hash_stat.mean(), hash_stat.stddev(), ea_stat.mean(), ea_stat.stddev());
  std::printf("(paper: OPA+OSA mean 8.8s sd 8.2 vs EA mean 17.8s sd 9.8 — "
              "shredding beats the vertical/triple layout for paths)\n");
  return 0;
}
