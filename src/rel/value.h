// Typed SQL values and column types for the relational substrate.

#ifndef SQLGRAPH_REL_VALUE_H_
#define SQLGRAPH_REL_VALUE_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "util/status.h"

namespace sqlgraph {
namespace rel {

enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
  kJson = 4,
};

const char* ColumnTypeName(ColumnType t);

/// \brief A nullable SQL value. NULL is represented by monostate and compares
/// per SQL semantics in expressions (handled by the evaluator); inside index
/// keys NULLs compare equal to each other so they can be grouped.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }

  Value(int64_t v) : repr_(v) {}                        // NOLINT
  Value(int v) : repr_(static_cast<int64_t>(v)) {}      // NOLINT
  Value(double v) : repr_(v) {}                         // NOLINT
  Value(bool v) : repr_(v) {}                           // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}         // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}       // NOLINT
  Value(json::JsonValue v) : repr_(std::move(v)) {}     // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_json() const { return std::holds_alternative<json::JsonValue>(repr_); }

  int64_t AsInt() const {
    if (is_double()) {
      // Saturating conversion: the raw cast is UB for NaN and for values
      // outside int64 range (e.g. 1e300 from a JSON attribute).
      const double d = std::get<double>(repr_);
      if (std::isnan(d)) return 0;
      if (d >= 9223372036854775808.0) return INT64_MAX;   // 2^63
      if (d < -9223372036854775808.0) return INT64_MIN;   // -2^63 is exact
      return static_cast<int64_t>(d);
    }
    if (is_bool()) return std::get<bool>(repr_) ? 1 : 0;
    return std::get<int64_t>(repr_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
    return std::get<double>(repr_);
  }
  bool AsBool() const {
    if (is_int()) return std::get<int64_t>(repr_) != 0;
    return std::get<bool>(repr_);
  }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  const json::JsonValue& AsJson() const {
    return std::get<json::JsonValue>(repr_);
  }
  json::JsonValue& MutableJson() { return std::get<json::JsonValue>(repr_); }

  /// Total order used by indexes and ORDER BY: NULL < bool < numbers <
  /// strings < json(text form). Numbers compare cross-type.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numbers hash by double value).
  size_t Hash() const;

  /// Display form used in results and SQL literals in rendered plans.
  std::string ToString() const;

  /// Approximate in-memory footprint, for storage accounting.
  size_t ByteSize() const;

 private:
  int TypeRank() const;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               json::JsonValue>
      repr_;
};

using Row = std::vector<Value>;

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Composite key for multi-column indexes.
struct IndexKey {
  std::vector<Value> parts;

  bool operator==(const IndexKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i] != other.parts[i]) return false;
    }
    return true;
  }
  bool operator<(const IndexKey& other) const {
    const size_t n = std::min(parts.size(), other.parts.size());
    for (size_t i = 0; i < n; ++i) {
      int c = parts[i].Compare(other.parts[i]);
      if (c != 0) return c < 0;
    }
    return parts.size() < other.parts.size();
  }
};

struct IndexKeyHash {
  size_t operator()(const IndexKey& k) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto& v : k.parts) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace rel
}  // namespace sqlgraph

#endif  // SQLGRAPH_REL_VALUE_H_
