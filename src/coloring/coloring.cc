#include "coloring/coloring.h"

#include <algorithm>
#include <functional>

namespace sqlgraph {
namespace coloring {

uint32_t CooccurrenceGraph::Intern(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(label, id);
  names_.push_back(label);
  adj_.emplace_back();
  return id;
}

int CooccurrenceGraph::Find(const std::string& label) const {
  auto it = ids_.find(label);
  return it == ids_.end() ? -1 : static_cast<int>(it->second);
}

void CooccurrenceGraph::AddGroup(const std::vector<std::string>& labels) {
  std::vector<uint32_t> ids;
  ids.reserve(labels.size());
  for (const auto& l : labels) ids.push_back(Intern(l));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      adj_[ids[i]].insert(ids[j]);
      adj_[ids[j]].insert(ids[i]);
    }
  }
}

ColoredHash ColoredHash::Build(const CooccurrenceGraph& graph,
                               size_t max_colors) {
  ColoredHash hash;
  const size_t n = graph.num_labels();
  if (n == 0) {
    hash.num_colors_ = 1;
    return hash;
  }
  // Greedy Welsh–Powell: color vertices in decreasing degree order with the
  // smallest color not used by an already-colored neighbor.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const size_t da = graph.neighbors(a).size();
    const size_t db = graph.neighbors(b).size();
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });

  std::vector<int> color(n, -1);
  size_t max_seen = 0;
  for (uint32_t v : order) {
    std::vector<bool> taken(max_seen + 2, false);
    for (uint32_t u : graph.neighbors(v)) {
      if (color[u] >= 0 && static_cast<size_t>(color[u]) < taken.size()) {
        taken[static_cast<size_t>(color[u])] = true;
      }
    }
    size_t c = 0;
    while (c < taken.size() && taken[c]) ++c;
    if (max_colors > 0 && c >= max_colors) {
      // Cap reached: accept a conflicting color (will spill at load time).
      c = v % max_colors;
    }
    color[v] = static_cast<int>(c);
    max_seen = std::max(max_seen, c);
  }
  hash.num_colors_ = max_seen + 1;
  for (uint32_t i = 0; i < n; ++i) {
    hash.colors_.emplace(graph.labels()[i], static_cast<size_t>(color[i]));
  }
  return hash;
}

ColoredHash ColoredHash::BuildModulo(const std::vector<std::string>& labels,
                                     size_t num_colors) {
  ColoredHash hash;
  hash.num_colors_ = std::max<size_t>(1, num_colors);
  for (const auto& l : labels) {
    hash.colors_.emplace(l, std::hash<std::string>{}(l) % hash.num_colors_);
  }
  return hash;
}

size_t ColoredHash::ColorOf(const std::string& label) const {
  auto it = colors_.find(label);
  if (it != colors_.end()) return it->second;
  return std::hash<std::string>{}(label) % num_colors_;
}

std::vector<size_t> ColoredHash::ColorHistogram() const {
  std::vector<size_t> hist(num_colors_, 0);
  for (const auto& [label, color] : colors_) {
    if (color < hist.size()) ++hist[color];
  }
  return hist;
}

}  // namespace coloring
}  // namespace sqlgraph
