// Renders the SQL AST to SQL text (the paper's Fig. 7 output format).

#ifndef SQLGRAPH_SQL_RENDER_H_
#define SQLGRAPH_SQL_RENDER_H_

#include <string>

#include "sql/ast.h"

namespace sqlgraph {
namespace sql {

/// Renders a full query: `WITH a AS (...), b AS (...) SELECT ...`.
std::string Render(const SqlQuery& query);

/// Renders one SELECT statement (no trailing semicolon).
std::string RenderSelect(const SelectStmt& select);

/// Renders a scalar expression.
std::string RenderExpr(const Expr& expr);

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_RENDER_H_
