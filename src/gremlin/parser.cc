#include "gremlin/parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/string_util.h"

namespace sqlgraph {
namespace gremlin {

namespace {

using util::Result;
using util::Status;

struct Token {
  enum Type { kIdent, kString, kInt, kDouble, kSymbol, kEnd } type;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;
};

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      out.push_back({Token::kIdent, std::string(text.substr(start, i - start)),
                     0, 0, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      bool is_double = false;
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.')) {
        // ".." range operator would be ambiguous; the subset does not use it.
        if (text[i] == '.') {
          if (i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
            is_double = true;
          } else {
            break;
          }
        }
        ++i;
      }
      Token t{is_double ? Token::kDouble : Token::kInt,
              std::string(text.substr(start, i - start)), 0, 0, start};
      if (is_double) {
        t.double_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n) {
          value.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == quote) {
          ++i;
          closed = true;
          break;
        }
        value.push_back(text[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start));
      }
      out.push_back({Token::kString, std::move(value), 0, 0, start});
      continue;
    }
    auto sym = [&](const char* s, size_t len) {
      out.push_back({Token::kSymbol, s, 0, 0, start});
      i += len;
    };
    if (c == '=' && i + 1 < n && text[i + 1] == '=') { sym("==", 2); continue; }
    if (c == '!' && i + 1 < n && text[i + 1] == '=') { sym("!=", 2); continue; }
    if (c == '>' && i + 1 < n && text[i + 1] == '=') { sym(">=", 2); continue; }
    if (c == '<' && i + 1 < n && text[i + 1] == '=') { sym("<=", 2); continue; }
    static const std::string kSingles = ".(){},<>";
    if (kSingles.find(c) != std::string::npos) {
      sym(std::string(1, c).c_str(), 1);
      // sym copied from a temporary; fix the stored text:
      out.back().text = std::string(1, c);
      continue;
    }
    return Status::ParseError(util::StrFormat(
        "unexpected character '%c' at offset %zu", c, start));
  }
  out.push_back({Token::kEnd, "", 0, 0, n});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Pipeline> ParseQuery() {
    RETURN_NOT_OK(ExpectIdent("g"));
    ASSIGN_OR_RETURN(Pipeline p, ParsePipeChain());
    if (Peek().type != Token::kEnd) return Err("trailing input");
    if (p.pipes.empty() || (p.pipes[0].kind != PipeKind::kStartV &&
                            p.pipes[0].kind != PipeKind::kStartE)) {
      return Err("query must start with g.V or g.E");
    }
    return p;
  }

 private:
  // Caps nesting of sub-pipelines (and/or/copySplit/ifThenElse branches) so
  // adversarial inputs like ".and(_().and(_().and(..." error out instead of
  // overflowing the stack.
  static constexpr int kMaxDepth = 128;

  Result<Pipeline> ParsePipeChain() {
    Pipeline p;
    while (AcceptSymbol(".")) {
      ASSIGN_OR_RETURN(Pipe pipe, ParsePipe());
      // fairMerge / exhaustMerge after copySplit are no-ops for us (the
      // copySplit pipe already unions its branches).
      if (pipe.kind == PipeKind::kCount && pipe.key == "__merge__") continue;
      p.pipes.push_back(std::move(pipe));
    }
    return p;
  }

  Result<Pipe> ParsePipe() {
    if (++depth_ > kMaxDepth) {
      --depth_;
      return Err("pipeline nesting too deep");
    }
    Result<Pipe> r = ParsePipeImpl();
    --depth_;
    return r;
  }

  Result<Pipe> ParsePipeImpl() {
    ASSIGN_OR_RETURN(std::string name, ExpectAnyIdent());
    Pipe pipe{};
    if (name == "V" || name == "E") {
      pipe.kind = name == "V" ? PipeKind::kStartV : PipeKind::kStartE;
      if (AcceptSymbol("(")) {
        if (!PeekSymbol(")")) {
          ASSIGN_OR_RETURN(rel::Value first, ParseLiteral());
          if (first.is_string() && AcceptSymbol(",")) {
            ASSIGN_OR_RETURN(rel::Value second, ParseLiteral());
            pipe.start_key = first.AsString();
            pipe.value = std::move(second);
          } else {
            pipe.has_start_id = true;
            pipe.value = std::move(first);
          }
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return pipe;
    }
    if (name == "out" || name == "in" || name == "both" || name == "outE" ||
        name == "inE" || name == "bothE") {
      pipe.kind = name == "out"    ? PipeKind::kOut
                  : name == "in"   ? PipeKind::kIn
                  : name == "both" ? PipeKind::kBoth
                  : name == "outE" ? PipeKind::kOutE
                  : name == "inE"  ? PipeKind::kInE
                                   : PipeKind::kBothE;
      if (AcceptSymbol("(")) {
        while (!PeekSymbol(")")) {
          ASSIGN_OR_RETURN(rel::Value label, ParseLiteral());
          if (!label.is_string()) return Err("edge label must be a string");
          pipe.labels.push_back(label.AsString());
          if (!AcceptSymbol(",")) break;
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return pipe;
    }
    if (name == "outV" || name == "inV" || name == "bothV" ||
        name == "dedup" || name == "path" || name == "simplePath" ||
        name == "count" || name == "id") {
      pipe.kind = name == "outV"         ? PipeKind::kOutV
                  : name == "inV"        ? PipeKind::kInV
                  : name == "bothV"      ? PipeKind::kBothV
                  : name == "dedup"      ? PipeKind::kDedup
                  : name == "path"       ? PipeKind::kPath
                  : name == "simplePath" ? PipeKind::kSimplePath
                  : name == "id"         ? PipeKind::kId
                                         : PipeKind::kCount;
      RETURN_NOT_OK(SwallowEmptyParens());
      return pipe;
    }
    if (name == "fairMerge" || name == "exhaustMerge") {
      RETURN_NOT_OK(SwallowEmptyParens());
      pipe.kind = PipeKind::kCount;
      pipe.key = "__merge__";  // dropped by the chain parser
      return pipe;
    }
    if (name == "has" || name == "hasNot") {
      pipe.kind = name == "has" ? PipeKind::kHas : PipeKind::kHasNot;
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(rel::Value key, ParseLiteral());
      if (!key.is_string()) return Err("has() key must be a string");
      pipe.key = key.AsString();
      if (pipe.kind == PipeKind::kHas && AcceptSymbol(",")) {
        // has('k', v) or has('k', T.gt, v)
        if (PeekIdent("T")) {
          ++pos_;
          RETURN_NOT_OK(ExpectSymbol("."));
          ASSIGN_OR_RETURN(std::string cmp, ExpectAnyIdent());
          if (cmp == "eq") pipe.cmp = Cmp::kEq;
          else if (cmp == "neq") pipe.cmp = Cmp::kNeq;
          else if (cmp == "gt") pipe.cmp = Cmp::kGt;
          else if (cmp == "gte") pipe.cmp = Cmp::kGte;
          else if (cmp == "lt") pipe.cmp = Cmp::kLt;
          else if (cmp == "lte") pipe.cmp = Cmp::kLte;
          else return Err("unknown comparator T." + cmp);
          RETURN_NOT_OK(ExpectSymbol(","));
        }
        ASSIGN_OR_RETURN(pipe.value, ParseLiteral());
        pipe.has_value = true;
      }
      RETURN_NOT_OK(ExpectSymbol(")"));
      return pipe;
    }
    if (name == "interval") {
      pipe.kind = PipeKind::kInterval;
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(rel::Value key, ParseLiteral());
      if (!key.is_string()) return Err("interval() key must be a string");
      pipe.key = key.AsString();
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(pipe.value, ParseLiteral());
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(pipe.value2, ParseLiteral());
      RETURN_NOT_OK(ExpectSymbol(")"));
      return pipe;
    }
    if (name == "range") {
      pipe.kind = PipeKind::kRange;
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(rel::Value lo, ParseLiteral());
      RETURN_NOT_OK(ExpectSymbol(","));
      ASSIGN_OR_RETURN(rel::Value hi, ParseLiteral());
      RETURN_NOT_OK(ExpectSymbol(")"));
      if (!lo.is_int() || !hi.is_int() || lo.AsInt() < 0) {
        return Err("range() expects non-negative integer bounds");
      }
      pipe.lo = lo.AsInt();
      pipe.hi = hi.AsInt();
      return pipe;
    }
    if (name == "as" || name == "back" || name == "aggregate" ||
        name == "except" || name == "retain") {
      pipe.kind = name == "as"          ? PipeKind::kAs
                  : name == "back"      ? PipeKind::kBack
                  : name == "aggregate" ? PipeKind::kAggregate
                  : name == "except"    ? PipeKind::kExcept
                                        : PipeKind::kRetain;
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(rel::Value v, ParseLiteral());
      if (!v.is_string()) return Err(name + "() expects a name string");
      pipe.key = v.AsString();
      RETURN_NOT_OK(ExpectSymbol(")"));
      return pipe;
    }
    if (name == "filter") {
      // filter{it.key OP literal} → has pipe
      ASSIGN_OR_RETURN(Pipe has, ParseItPredicate());
      return has;
    }
    if (name == "and" || name == "or") {
      pipe.kind = name == "and" ? PipeKind::kAndFilter : PipeKind::kOrFilter;
      RETURN_NOT_OK(ExpectSymbol("("));
      while (!PeekSymbol(")")) {
        ASSIGN_OR_RETURN(Pipeline branch, ParseSubPipeline());
        pipe.branches.push_back(std::move(branch));
        if (!AcceptSymbol(",")) break;
      }
      RETURN_NOT_OK(ExpectSymbol(")"));
      if (pipe.branches.empty()) return Err(name + "() needs branches");
      return pipe;
    }
    if (name == "copySplit") {
      pipe.kind = PipeKind::kCopySplit;
      RETURN_NOT_OK(ExpectSymbol("("));
      while (!PeekSymbol(")")) {
        ASSIGN_OR_RETURN(Pipeline branch, ParseSubPipeline());
        pipe.branches.push_back(std::move(branch));
        if (!AcceptSymbol(",")) break;
      }
      RETURN_NOT_OK(ExpectSymbol(")"));
      if (pipe.branches.empty()) return Err("copySplit() needs branches");
      return pipe;
    }
    if (name == "loop") {
      pipe.kind = PipeKind::kLoop;
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(rel::Value steps, ParseLiteral());
      if (!steps.is_int() || steps.AsInt() <= 0 || steps.AsInt() > 64) {
        return Err("loop() step count must be an integer in [1, 64]");
      }
      pipe.loop_steps = steps.AsInt();
      RETURN_NOT_OK(ExpectSymbol(")"));
      RETURN_NOT_OK(ExpectSymbol("{"));
      if (PeekIdent("true")) {
        ++pos_;
        pipe.loop_count = -1;  // fixpoint semantics via recursive SQL
      } else {
        // it.loops < k
        RETURN_NOT_OK(ExpectIdent("it"));
        RETURN_NOT_OK(ExpectSymbol("."));
        RETURN_NOT_OK(ExpectIdent("loops"));
        RETURN_NOT_OK(ExpectSymbol("<"));
        ASSIGN_OR_RETURN(rel::Value k, ParseLiteral());
        // The translator expands the loop body count-many times, so an
        // unbounded count is a query-size amplification attack.
        if (!k.is_int() || k.AsInt() < 0 || k.AsInt() > 1024) {
          return Err("loop bound must be an integer in [0, 1024]");
        }
        pipe.loop_count = k.AsInt();
      }
      RETURN_NOT_OK(ExpectSymbol("}"));
      return pipe;
    }
    if (name == "ifThenElse") {
      pipe.kind = PipeKind::kIfThenElse;
      ASSIGN_OR_RETURN(Pipe test, ParseItPredicate());
      Pipeline test_branch;
      test_branch.pipes.push_back(std::move(test));
      pipe.branches.push_back(std::move(test_branch));
      for (int b = 0; b < 2; ++b) {
        RETURN_NOT_OK(ExpectSymbol("{"));
        RETURN_NOT_OK(ExpectIdent("it"));
        ASSIGN_OR_RETURN(Pipeline branch, ParsePipeChain());
        RETURN_NOT_OK(ExpectSymbol("}"));
        pipe.branches.push_back(std::move(branch));
      }
      return pipe;
    }
    return Err("unsupported pipe '" + name + "'");
  }

  /// `{it.key OP literal}` → a kHas pipe.
  Result<Pipe> ParseItPredicate() {
    RETURN_NOT_OK(ExpectSymbol("{"));
    RETURN_NOT_OK(ExpectIdent("it"));
    RETURN_NOT_OK(ExpectSymbol("."));
    ASSIGN_OR_RETURN(std::string key, ExpectAnyIdent());
    Pipe pipe{};
    pipe.kind = PipeKind::kHas;
    pipe.key = std::move(key);
    pipe.has_value = true;
    if (AcceptSymbol("==")) pipe.cmp = Cmp::kEq;
    else if (AcceptSymbol("!=")) pipe.cmp = Cmp::kNeq;
    else if (AcceptSymbol(">=")) pipe.cmp = Cmp::kGte;
    else if (AcceptSymbol("<=")) pipe.cmp = Cmp::kLte;
    else if (AcceptSymbol(">")) pipe.cmp = Cmp::kGt;
    else if (AcceptSymbol("<")) pipe.cmp = Cmp::kLt;
    else return Err("expected comparison in filter lambda");
    ASSIGN_OR_RETURN(pipe.value, ParseLiteral());
    RETURN_NOT_OK(ExpectSymbol("}"));
    return pipe;
  }

  /// `_()` or `_().out('a')...` anonymous sub-pipeline.
  Result<Pipeline> ParseSubPipeline() {
    RETURN_NOT_OK(ExpectIdent("_"));
    RETURN_NOT_OK(ExpectSymbol("("));
    RETURN_NOT_OK(ExpectSymbol(")"));
    return ParsePipeChain();
  }

  Result<rel::Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.type) {
      case Token::kString: {
        std::string s = t.text;
        ++pos_;
        return rel::Value(std::move(s));
      }
      case Token::kInt: {
        int64_t v = t.int_value;
        ++pos_;
        return rel::Value(v);
      }
      case Token::kDouble: {
        double v = t.double_value;
        ++pos_;
        return rel::Value(v);
      }
      case Token::kIdent:
        if (t.text == "true") {
          ++pos_;
          return rel::Value(true);
        }
        if (t.text == "false") {
          ++pos_;
          return rel::Value(false);
        }
        if (t.text == "null") {
          ++pos_;
          return rel::Value::Null();
        }
        return Err("expected literal, got '" + t.text + "'");
      default:
        return Err("expected literal");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool PeekSymbol(std::string_view s) const {
    return Peek().type == Token::kSymbol && Peek().text == s;
  }
  bool PeekIdent(std::string_view s) const {
    return Peek().type == Token::kIdent && Peek().text == s;
  }
  bool AcceptSymbol(std::string_view s) {
    if (PeekSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) return Err("expected '" + std::string(s) + "'");
    return Status::OK();
  }
  Status ExpectIdent(std::string_view s) {
    if (!PeekIdent(s)) return Err("expected '" + std::string(s) + "'");
    ++pos_;
    return Status::OK();
  }
  Result<std::string> ExpectAnyIdent() {
    if (Peek().type != Token::kIdent) {
      return Err("expected identifier");
    }
    std::string s = Peek().text;
    ++pos_;
    return s;
  }
  Status SwallowEmptyParens() {
    if (AcceptSymbol("(")) RETURN_NOT_OK(ExpectSymbol(")"));
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        msg + " near offset " + std::to_string(Peek().offset) +
        (Peek().type == Token::kEnd ? " (end)" : " ('" + Peek().text + "')"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // recursion guard
};

}  // namespace

Result<Pipeline> ParseGremlin(std::string_view text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseQuery();
}

}  // namespace gremlin
}  // namespace sqlgraph
