#!/usr/bin/env bash
# Quick machine-readable latency snapshot of the core benchmarks into a
# JSON file (default BENCH_pr9.json): benchmark name → median ns + p95 ns.
#
#   - bench_micro_ops       google-benchmark repetitions (per-op steady state)
#   - bench_fig3_adjacency  paper Fig. 3 adjacency queries, quick scale
#   - bench_prepared        prepared-statement throughput, quick scale
#
# The committed snapshot is the regression baseline for executor changes:
# compare a fresh run against it and treat >5% median regressions on
# existing benchmarks as failures.
#
#   ci/bench_snapshot.sh [outfile]
#   BUILD_DIR=build-foo ci/bench_snapshot.sh   # non-default build tree
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_pr9.json}"
BUILD="${BUILD_DIR:-build}"

cmake --build "$BUILD" -j "$(nproc)" \
  --target bench_micro_ops bench_fig3_adjacency bench_prepared >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_micro_ops (quick, 3 repetitions) =="
"./$BUILD/bench/bench_micro_ops" \
  --benchmark_format=json --benchmark_min_time=0.05 \
  --benchmark_repetitions=3 >"$TMP/micro.json"

echo "== bench_fig3_adjacency (quick scale) =="
"./$BUILD/bench/bench_fig3_adjacency" --scale=0.05 --runs=5 \
  | tee "$TMP/fig3.out" | grep -c '^{' >/dev/null
grep '^{' "$TMP/fig3.out" >"$TMP/fig3.jsonl"

echo "== bench_prepared (quick, 3 runs) =="
: >"$TMP/prepared.jsonl"
for _ in 1 2 3; do
  # Quick parameters may undershoot the binary's own 2x speedup gate; the
  # snapshot only wants the latency lines, so tolerate a non-zero exit.
  "./$BUILD/bench/bench_prepared" --objects=4000 --ops=8000 \
    | grep '^{' >>"$TMP/prepared.jsonl" || true
done

python3 - "$TMP" "$OUT" <<'PY'
import json, statistics, sys

tmp, out_path = sys.argv[1], sys.argv[2]
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def rank(xs, q):
    xs = sorted(xs)
    i = min(len(xs) - 1, round(q * (len(xs) - 1)))
    return xs[i]

bench = {}

# google-benchmark repetitions: one sample per repetition, keyed by run_name.
with open(f"{tmp}/micro.json") as f:
    micro = json.load(f)
samples = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") != "iteration":
        continue  # skip mean/median/stddev aggregate rows
    ns = b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
    samples.setdefault(b["run_name"], []).append(ns)
for name, xs in sorted(samples.items()):
    bench[f"micro_ops/{name}"] = {
        "median_ns": rank(xs, 0.5), "p95_ns": rank(xs, 0.95)}

# fig3: the binary already reports per-query median/p95 over its timed runs.
with open(f"{tmp}/fig3.jsonl") as f:
    for line in f:
        rec = json.loads(line)
        bench[f"fig3_adjacency/{rec['query']}"] = {
            "median_ns": rec["median_ns"], "p95_ns": rec["p95_ns"]}

# prepared: per-op latency per variant, sampled across the repeated runs.
variants = {}
with open(f"{tmp}/prepared.jsonl") as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("variant") in (None, "summary"):
            continue
        if not rec.get("ops_per_sec"):
            continue
        variants.setdefault(rec["variant"], []).append(1e9 / rec["ops_per_sec"])
for name, xs in sorted(variants.items()):
    bench[f"prepared/{name}"] = {
        "median_ns": rank(xs, 0.5), "p95_ns": rank(xs, 0.95)}

snapshot = {
    "config": {
        "micro_ops": "--benchmark_min_time=0.05 --benchmark_repetitions=3",
        "fig3_adjacency": "--scale=0.05 --runs=5",
        "prepared": "--objects=4000 --ops=8000 x3",
    },
    "benchmarks": bench,
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}: {len(bench)} benchmarks")
PY
