// Blueprints-style graph database interface (paper §4.2): the primitive
// CRUD/traversal API that Gremlin's standard implementation drives one call
// at a time. Both baseline stores (NativeStore, KvStore) and the SQLGraph
// adapter implement it; baseline/gremlin_interp.h evaluates pipelines over
// it pipe-at-a-time, which is precisely the chatty protocol the paper's
// whole-query translation eliminates.
//
// Stores charge a configurable per-call "round trip" (modelling the
// client↔server hop + request handling of Rexster / Neo4j server); bulk
// iteration calls charge one round trip per result batch.

#ifndef SQLGRAPH_BASELINE_BLUEPRINTS_H_
#define SQLGRAPH_BASELINE_BLUEPRINTS_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "json/json_value.h"
#include "sqlgraph/store.h"  // reuses core::EdgeRecord, VertexId, EdgeId
#include "util/status.h"
#include "util/stopwatch.h"

namespace sqlgraph {
namespace baseline {

using core::EdgeRecord;
using graph::EdgeId;
using graph::VertexId;

/// Charges `micros` microseconds of client/server round-trip time. A real
/// client blocks on the socket without consuming CPU, so non-trivial waits
/// sleep (letting concurrent requesters overlap — essential for the
/// concurrency experiments, especially on few-core machines); very short
/// waits busy-spin because timer granularity would distort them.
inline void ChargeRoundTrip(uint32_t micros) {
  if (micros == 0) return;
  if (micros >= 20) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
    return;
  }
  util::Stopwatch sw;
  while (sw.ElapsedMicros() < static_cast<double>(micros)) {
  }
}

/// Results of one batched vertex scan step.
inline constexpr size_t kScanBatchSize = 1000;

class GraphDb {
 public:
  virtual ~GraphDb() = default;
  virtual std::string name() const = 0;

  // ------------------------------------------------------------- CRUD ----
  virtual util::Result<VertexId> AddVertex(json::JsonValue attrs) = 0;
  virtual util::Result<json::JsonValue> GetVertex(VertexId vid) = 0;
  virtual util::Status SetVertexAttr(VertexId vid, const std::string& key,
                                     json::JsonValue value) = 0;
  virtual util::Status RemoveVertex(VertexId vid) = 0;
  virtual util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                                       const std::string& label,
                                       json::JsonValue attrs) = 0;
  virtual util::Result<EdgeRecord> GetEdge(EdgeId eid) = 0;
  virtual util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                                   json::JsonValue value) = 0;
  virtual util::Status RemoveEdge(EdgeId eid) = 0;
  virtual util::Result<std::optional<EdgeId>> FindEdge(
      VertexId src, const std::string& label, VertexId dst) = 0;

  // -------------------------------------------------- link primitives ----
  virtual util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) = 0;
  virtual util::Result<int64_t> CountOutEdges(VertexId src,
                                              const std::string& label) = 0;

  // ----------------------------------------------- traversal + lookup ----
  /// Out/in neighbor ids (multiset), optionally label-filtered.
  virtual util::Result<std::vector<VertexId>> Out(
      VertexId vid, const std::vector<std::string>& labels) = 0;
  virtual util::Result<std::vector<VertexId>> In(
      VertexId vid, const std::vector<std::string>& labels) = 0;
  /// Incident edge ids.
  virtual util::Result<std::vector<EdgeId>> OutE(
      VertexId vid, const std::vector<std::string>& labels) = 0;
  virtual util::Result<std::vector<EdgeId>> InE(
      VertexId vid, const std::vector<std::string>& labels) = 0;

  /// All live vertex ids (cursor-style: charges one round trip per batch).
  virtual util::Result<std::vector<VertexId>> AllVertices() = 0;
  /// All live edge ids (cursor-style, same batching).
  virtual util::Result<std::vector<EdgeId>> AllEdges() = 0;
  /// Index lookup: vertices whose attribute `key` equals `value`. Stores
  /// maintain indexes for the keys configured at build time.
  virtual util::Result<std::vector<VertexId>> VerticesByAttr(
      const std::string& key, const rel::Value& value) = 0;

  /// Serialized footprint ("size on disk").
  virtual size_t SerializedBytes() const = 0;
};

}  // namespace baseline
}  // namespace sqlgraph

#endif  // SQLGRAPH_BASELINE_BLUEPRINTS_H_
