#include "gremlin/translator.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "util/string_util.h"

namespace sqlgraph {
namespace gremlin {

using core::GraphSchema;
using sql::Bin;
using sql::BinaryOp;
using sql::Col;
using sql::ExprPtr;
using sql::Func;
using sql::InSubquery;
using sql::Lit;
using sql::SelectItem;
using sql::SelectPtr;
using sql::SelectStmt;
using sql::TableRef;
using sql::TableRefKind;
using sql::UnaryOp;
using util::Result;
using util::Status;

namespace {

/// True when any pipe (recursively) needs path columns upstream.
bool NeedsPaths(const Pipeline& p) {
  for (const Pipe& pipe : p.pipes) {
    if (pipe.kind == PipeKind::kPath || pipe.kind == PipeKind::kSimplePath ||
        pipe.kind == PipeKind::kBack) {
      return true;
    }
    for (const Pipeline& b : pipe.branches) {
      if (NeedsPaths(b)) return true;
    }
  }
  return false;
}

/// Counts vertex-adjacency steps (out/in/both) including branches; used for
/// the EA single-hop decision.
size_t CountAdjacencySteps(const Pipeline& p) {
  size_t n = 0;
  for (const Pipe& pipe : p.pipes) {
    if (pipe.kind == PipeKind::kOut || pipe.kind == PipeKind::kIn ||
        pipe.kind == PipeKind::kBoth) {
      ++n;
    }
    if (pipe.kind == PipeKind::kLoop) n += 2;  // loops repeat their body
    for (const Pipeline& b : pipe.branches) n += CountAdjacencySteps(b);
  }
  return n;
}

BinaryOp CmpToSql(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq: return BinaryOp::kEq;
    case Cmp::kNeq: return BinaryOp::kNe;
    case Cmp::kGt: return BinaryOp::kGt;
    case Cmp::kGte: return BinaryOp::kGe;
    case Cmp::kLt: return BinaryOp::kLt;
    case Cmp::kLte: return BinaryOp::kLe;
  }
  return BinaryOp::kEq;
}

/// The pipe's comparison value: a `:p<slot>` bind parameter when the
/// pipeline was parameterized by the translation cache, else the literal.
ExprPtr PipeValue(const Pipe& pipe) {
  if (pipe.value_param >= 0) {
    return sql::Param("p" + std::to_string(pipe.value_param),
                      pipe.value_param);
  }
  return Lit(pipe.value);
}

ExprPtr PipeValue2(const Pipe& pipe) {
  if (pipe.value2_param >= 0) {
    return sql::Param("p" + std::to_string(pipe.value2_param),
                      pipe.value2_param);
  }
  return Lit(pipe.value2);
}

ExprPtr AndAll(std::vector<ExprPtr> conds) {
  ExprPtr out;
  for (auto& c : conds) {
    out = out == nullptr ? std::move(c)
                         : Bin(BinaryOp::kAnd, std::move(out), std::move(c));
  }
  return out;
}

/// lbl IN ('a','b') or lbl = 'a'.
ExprPtr LabelCondition(ExprPtr lbl, const std::vector<std::string>& labels) {
  if (labels.empty()) return nullptr;
  if (labels.size() == 1) {
    return Bin(BinaryOp::kEq, std::move(lbl), Lit(rel::Value(labels[0])));
  }
  std::vector<ExprPtr> values;
  for (const auto& l : labels) values.push_back(Lit(rel::Value(l)));
  return sql::InList(std::move(lbl), std::move(values), /*negated=*/false);
}

}  // namespace

// ===========================================================================

class Translator::State {
 public:
  State(const GraphSchema* schema, const TranslatorOptions& options,
        bool track_paths, bool single_hop)
      : schema_(schema),
        options_(options),
        track_paths_(track_paths),
        single_hop_(single_hop) {}

  Status Run(const Pipeline& pipeline, PipeAttribution* attribution = nullptr) {
    for (size_t i = 0; i < pipeline.pipes.size(); ++i) {
      const size_t ctes_before = ctes_.size();
      RETURN_NOT_OK(ApplyPipe(pipeline, i));
      if (attribution != nullptr) {
        // CTEs added while this pipe applied (including any emitted by
        // nested branch pipelines) belong to it.
        PipeAttribution::Entry entry;
        entry.pipe = ToString(pipeline.pipes[i]);
        for (size_t c = ctes_before; c < ctes_.size(); ++c) {
          entry.ctes.push_back(ctes_[c].name);
        }
        attribution->pipes.push_back(std::move(entry));
      }
    }
    return Status::OK();
  }

  Result<sql::SqlQuery> Finish() {
    sql::SqlQuery q;
    q.ctes = std::move(ctes_);
    if (final_select_ != nullptr) {
      q.final_select = std::move(final_select_);
      return q;
    }
    auto sel = std::make_shared<SelectStmt>();
    SelectItem item;
    item.expr = Col("v", "val");
    item.alias = "val";
    sel->items.push_back(std::move(item));
    TableRef ref;
    ref.table_name = current_;
    ref.alias = "v";
    sel->from.push_back(std::move(ref));
    q.final_select = std::move(sel);
    return q;
  }

  // ------------------------------------------------------------- pipes ----

  Status ApplyPipe(const Pipeline& pipeline, size_t index) {
    const Pipe& pipe = pipeline.pipes[index];
    if (final_select_ != nullptr) {
      return Status::NotImplemented("pipe after terminal count()");
    }
    if (pipe.kind != PipeKind::kHas && pipe.kind != PipeKind::kHasNot &&
        pipe.kind != PipeKind::kInterval && pipe.kind != PipeKind::kId) {
      edge_select_ = nullptr;
    }
    switch (pipe.kind) {
      case PipeKind::kStartV:
      case PipeKind::kStartE:
        return Start(pipe);
      case PipeKind::kOut:
        return Adjacency(pipe.labels, /*out=*/true, /*in=*/false);
      case PipeKind::kIn:
        return Adjacency(pipe.labels, /*out=*/false, /*in=*/true);
      case PipeKind::kBoth:
        return Adjacency(pipe.labels, /*out=*/true, /*in=*/true);
      case PipeKind::kOutE:
        return EdgesOf(pipe.labels, /*out=*/true, /*in=*/false);
      case PipeKind::kInE:
        return EdgesOf(pipe.labels, /*out=*/false, /*in=*/true);
      case PipeKind::kBothE:
        return EdgesOf(pipe.labels, /*out=*/true, /*in=*/true);
      case PipeKind::kOutV:
        return EndpointOf(/*source=*/true, /*target=*/false);
      case PipeKind::kInV:
        return EndpointOf(/*source=*/false, /*target=*/true);
      case PipeKind::kBothV:
        return EndpointOf(/*source=*/true, /*target=*/true);
      case PipeKind::kHas:
      case PipeKind::kHasNot:
      case PipeKind::kInterval:
        return HasFilter(pipe);
      case PipeKind::kDedup:
        return Dedup();
      case PipeKind::kRange:
        return Range(pipe);
      case PipeKind::kSimplePath:
        return SimplePath();
      case PipeKind::kPath:
        return PathPipe();
      case PipeKind::kId:
        return Status::OK();  // elements already flow as integer ids
      case PipeKind::kAs:
        as_points_[pipe.key] = {path_len_, kind_};
        return Status::OK();
      case PipeKind::kBack:
        return Back(pipe);
      case PipeKind::kAggregate:
        aggregates_[pipe.key] = current_;
        return Status::OK();
      case PipeKind::kExcept:
        return ExceptRetain(pipe, /*negated=*/true);
      case PipeKind::kRetain:
        return ExceptRetain(pipe, /*negated=*/false);
      case PipeKind::kAndFilter:
      case PipeKind::kOrFilter:
        return AndOrFilter(pipe);
      case PipeKind::kCopySplit:
        return CopySplit(pipe);
      case PipeKind::kIfThenElse:
        return IfThenElse(pipe);
      case PipeKind::kLoop:
        return Loop(pipeline, index);
      case PipeKind::kCount:
        return Count();
    }
    return Status::Internal("unhandled pipe kind");
  }

  // ------------------------------------------------------------- start ----

  Status Start(const Pipe& pipe) {
    auto sel = std::make_shared<SelectStmt>();
    const bool vertices = pipe.kind == PipeKind::kStartV;
    kind_ = vertices ? ElementKind::kVertex : ElementKind::kEdge;
    const char* table = vertices ? core::kVaTable : core::kEaTable;
    const char* id_col = vertices ? "VID" : "EID";
    SelectItem item;
    item.expr = Col("p", id_col);
    item.alias = "val";
    sel->items.push_back(std::move(item));
    if (track_paths_) {
      SelectItem path_item;
      path_item.expr = Lit(rel::Value::Null());
      path_item.alias = "path";
      sel->items.push_back(std::move(path_item));
    }
    TableRef ref;
    ref.table_name = table;
    ref.alias = "p";
    sel->from.push_back(std::move(ref));
    std::vector<ExprPtr> conds;
    if (vertices) {
      // Soft-delete guard (§4.5.2).
      conds.push_back(
          Bin(BinaryOp::kGe, Col("p", "VID"), Lit(rel::Value(int64_t{0}))));
    }
    if (pipe.has_start_id) {
      conds.push_back(Bin(BinaryOp::kEq, Col("p", id_col), PipeValue(pipe)));
    } else if (!pipe.start_key.empty()) {
      conds.push_back(Bin(
          BinaryOp::kEq,
          Func("JSON_VAL", {Col("p", "ATTR"), Lit(rel::Value(pipe.start_key))}),
          PipeValue(pipe)));
    }
    sel->where = AndAll(std::move(conds));
    start_select_ = sel;  // GraphQuery merge target
    Emit(std::move(sel));
    return Status::OK();
  }

  /// GraphQuery merge (§4.5.1): fold a has()/hasNot() directly after the
  /// start pipe into the start CTE's WHERE. Returns true if merged.
  bool TryMergeIntoStart(const ExprPtr& condition) {
    if (start_select_ == nullptr) return false;
    start_select_->where =
        start_select_->where == nullptr
            ? condition
            : Bin(BinaryOp::kAnd, start_select_->where, condition);
    return true;
  }

  // --------------------------------------------------------- adjacency ----

  /// Vertex adjacency (out/in/both). Chooses EA for single-hop queries.
  Status Adjacency(const std::vector<std::string>& labels, bool out, bool in) {
    RETURN_NOT_OK(ExpectKind(ElementKind::kVertex, "adjacency step"));
    start_select_ = nullptr;
    // Both directions read the same input table (paper Fig. 7: TEMP_2_0 and
    // TEMP_2_2 both consume TEMP_1).
    const std::string input = current_;
    std::vector<std::string> parts;
    if (options_.force_ea_for_all_hops ||
        (options_.prefer_ea_for_single_hop && single_hop_)) {
      if (out) parts.push_back(AdjacencyViaEa(labels, /*outgoing=*/true));
      if (in) {
        current_ = input;
        parts.push_back(AdjacencyViaEa(labels, /*outgoing=*/false));
      }
    } else {
      if (out) parts.push_back(AdjacencyViaHash(labels, /*outgoing=*/true));
      if (in) {
        current_ = input;
        parts.push_back(AdjacencyViaHash(labels, /*outgoing=*/false));
      }
    }
    if (parts.size() == 2) {
      // Bi-directional: UNION ALL of the two chains (paper Fig. 7 TEMP_2_4).
      auto sel = SelectStarFrom(parts[0]);
      SelectStmt::SetOp set_op;
      set_op.kind = sql::SetOpKind::kUnionAll;
      set_op.rhs = SelectStarFrom(parts[1]);
      sel->set_ops.push_back(std::move(set_op));
      Emit(std::move(sel));
    } else {
      current_ = parts[0];
    }
    ++path_len_;
    kind_ = ElementKind::kVertex;
    return Status::OK();
  }

  /// §3.5/§4.3: single look-up traversal through the EA copy.
  std::string AdjacencyViaEa(const std::vector<std::string>& labels,
                             bool outgoing) {
    auto sel = std::make_shared<SelectStmt>();
    SelectItem item;
    item.expr = Col("p", outgoing ? "OUTV" : "INV");
    item.alias = "val";
    sel->items.push_back(std::move(item));
    AppendPathItem(sel.get());
    AddFromCurrent(sel.get());
    TableRef ea;
    ea.table_name = core::kEaTable;
    ea.alias = "p";
    sel->from.push_back(std::move(ea));
    std::vector<ExprPtr> conds;
    conds.push_back(Bin(BinaryOp::kEq, Col("v", "val"),
                        Col("p", outgoing ? "INV" : "OUTV")));
    if (ExprPtr lc = LabelCondition(Col("p", "LBL"), labels)) {
      conds.push_back(std::move(lc));
    }
    sel->where = AndAll(std::move(conds));
    return EmitNamed(std::move(sel));
  }

  /// The OPA/OSA (or IPA/ISA) template of Table 8: unnest the column
  /// triads, then resolve multi-value lists with a left-outer join.
  std::string AdjacencyViaHash(const std::vector<std::string>& labels,
                               bool outgoing) {
    const char* primary = outgoing ? core::kOpaTable : core::kIpaTable;
    const char* secondary = outgoing ? core::kOsaTable : core::kIsaTable;
    const coloring::ColoredHash& hash =
        outgoing ? schema_->out_hash : schema_->in_hash;
    const size_t colors = outgoing ? schema_->out_colors : schema_->in_colors;

    // Color pruning: only unnest triads the labels could hash to.
    std::set<size_t> triads;
    if (!labels.empty() && options_.prune_colors_by_label) {
      for (const auto& l : labels) triads.insert(hash.ColorOf(l) % colors);
    } else {
      for (size_t c = 0; c < colors; ++c) triads.insert(c);
    }

    // Step A: unnest.
    auto unnest = std::make_shared<SelectStmt>();
    SelectItem item;
    item.expr = Col("t", "val");
    item.alias = "val";
    unnest->items.push_back(std::move(item));
    AppendPathItem(unnest.get());
    AddFromCurrent(unnest.get());
    TableRef prim;
    prim.table_name = primary;
    prim.alias = "p";
    unnest->from.push_back(std::move(prim));
    TableRef values;
    values.kind = TableRefKind::kUnnestValues;
    values.alias = "t";
    values.column_aliases = {"lbl", "val"};
    for (size_t c : triads) {
      values.values_rows.push_back(
          {Col("p", core::LblCol(c)), Col("p", core::ValCol(c))});
    }
    unnest->from.push_back(std::move(values));
    std::vector<ExprPtr> conds;
    conds.push_back(Bin(BinaryOp::kEq, Col("v", "val"), Col("p", "VID")));
    conds.push_back(
        Bin(BinaryOp::kGe, Col("p", "VID"), Lit(rel::Value(int64_t{0}))));
    conds.push_back(sql::Un(UnaryOp::kIsNotNull, Col("t", "val")));
    if (ExprPtr lc = LabelCondition(Col("t", "lbl"), labels)) {
      conds.push_back(std::move(lc));
    }
    unnest->where = AndAll(std::move(conds));
    const std::string unnest_name = EmitNamed(std::move(unnest));

    // Step B: resolve multi-value lists through OSA/ISA.
    auto resolve = std::make_shared<SelectStmt>();
    SelectItem val_item;
    val_item.expr = Func("COALESCE", {Col("s", "VAL"), Col("p", "val")});
    val_item.alias = "val";
    resolve->items.push_back(std::move(val_item));
    if (track_paths_) {
      SelectItem path_item;
      path_item.expr = Col("p", "path");
      path_item.alias = "path";
      resolve->items.push_back(std::move(path_item));
    }
    TableRef from_unnest;
    from_unnest.table_name = unnest_name;
    from_unnest.alias = "p";
    resolve->from.push_back(std::move(from_unnest));
    TableRef osa;
    osa.table_name = secondary;
    osa.alias = "s";
    osa.join = sql::JoinType::kLeftOuter;
    osa.on = Bin(BinaryOp::kEq, Col("p", "val"), Col("s", "VALID"));
    resolve->from.push_back(std::move(osa));
    return EmitNamed(std::move(resolve));
  }

  /// outE / inE / bothE: edge ids come from EA.
  Status EdgesOf(const std::vector<std::string>& labels, bool out, bool in) {
    RETURN_NOT_OK(ExpectKind(ElementKind::kVertex, "edge step"));
    start_select_ = nullptr;
    auto one = [&](bool outgoing) {
      auto sel = std::make_shared<SelectStmt>();
      SelectItem item;
      item.expr = Col("p", "EID");
      item.alias = "val";
      sel->items.push_back(std::move(item));
      AppendPathItem(sel.get());
      AddFromCurrent(sel.get());
      TableRef ea;
      ea.table_name = core::kEaTable;
      ea.alias = "p";
      sel->from.push_back(std::move(ea));
      std::vector<ExprPtr> conds;
      conds.push_back(Bin(BinaryOp::kEq, Col("v", "val"),
                          Col("p", outgoing ? "INV" : "OUTV")));
      if (ExprPtr lc = LabelCondition(Col("p", "LBL"), labels)) {
        conds.push_back(std::move(lc));
      }
      sel->where = AndAll(std::move(conds));
      return EmitNamed(std::move(sel));
    };
    const std::string input = current_;
    std::vector<std::string> parts;
    if (out) parts.push_back(one(true));
    if (in) {
      current_ = input;
      parts.push_back(one(false));
    }
    if (parts.size() == 2) {
      auto sel = SelectStarFrom(parts[0]);
      SelectStmt::SetOp set_op;
      set_op.kind = sql::SetOpKind::kUnionAll;
      set_op.rhs = SelectStarFrom(parts[1]);
      sel->set_ops.push_back(std::move(set_op));
      Emit(std::move(sel));
    } else {
      current_ = parts[0];
      // Single-direction EA step: the next attribute filter can merge into
      // this CTE (VertexQuery rewrite).
      edge_select_ = ctes_.back().select;
    }
    ++path_len_;
    kind_ = ElementKind::kEdge;
    return Status::OK();
  }

  /// outV / inV / bothV: edge → endpoint(s).
  Status EndpointOf(bool source, bool target) {
    RETURN_NOT_OK(ExpectKind(ElementKind::kEdge, "endpoint step"));
    start_select_ = nullptr;
    auto sel = std::make_shared<SelectStmt>();
    if (source && target) {
      SelectItem item;
      item.expr = Col("t", "val");
      item.alias = "val";
      sel->items.push_back(std::move(item));
      AppendPathItem(sel.get());
      AddFromCurrent(sel.get());
      TableRef ea;
      ea.table_name = core::kEaTable;
      ea.alias = "p";
      sel->from.push_back(std::move(ea));
      TableRef values;
      values.kind = TableRefKind::kUnnestValues;
      values.alias = "t";
      values.column_aliases = {"val"};
      values.values_rows.push_back({Col("p", "INV")});
      values.values_rows.push_back({Col("p", "OUTV")});
      sel->from.push_back(std::move(values));
      sel->where = Bin(BinaryOp::kEq, Col("v", "val"), Col("p", "EID"));
    } else {
      SelectItem item;
      item.expr = Col("p", source ? "INV" : "OUTV");
      item.alias = "val";
      sel->items.push_back(std::move(item));
      AppendPathItem(sel.get());
      AddFromCurrent(sel.get());
      TableRef ea;
      ea.table_name = core::kEaTable;
      ea.alias = "p";
      sel->from.push_back(std::move(ea));
      sel->where = Bin(BinaryOp::kEq, Col("v", "val"), Col("p", "EID"));
    }
    Emit(std::move(sel));
    ++path_len_;
    kind_ = ElementKind::kVertex;
    return Status::OK();
  }

  // ----------------------------------------------------------- filters ----

  Status HasFilter(const Pipe& pipe) {
    if (kind_ == ElementKind::kValue) {
      return Status::NotImplemented("has() on value elements");
    }
    const bool vertices = kind_ == ElementKind::kVertex;
    ExprPtr condition;
    if (!vertices && pipe.key == "label") {
      // Edge label filter translates to the EA LBL column.
      if (pipe.kind != PipeKind::kHas || !pipe.has_value) {
        return Status::NotImplemented("label filter needs a value");
      }
      condition = Bin(CmpToSql(pipe.cmp), Col("p", "LBL"), PipeValue(pipe));
    } else {
      ExprPtr attr = Func(
          "JSON_VAL", {Col("p", "ATTR"), Lit(rel::Value(pipe.key))});
      switch (pipe.kind) {
        case PipeKind::kHas:
          condition = pipe.has_value
                          ? Bin(CmpToSql(pipe.cmp), std::move(attr),
                                PipeValue(pipe))
                          : sql::Un(UnaryOp::kIsNotNull, std::move(attr));
          break;
        case PipeKind::kHasNot:
          condition = sql::Un(UnaryOp::kIsNull, std::move(attr));
          break;
        default:  // interval: [lo, hi)
          condition = Bin(
              BinaryOp::kAnd,
              Bin(BinaryOp::kGe, attr, PipeValue(pipe)),
              Bin(BinaryOp::kLt, attr, PipeValue2(pipe)));
          break;
      }
    }
    // GraphQuery merge: has() right after the start pipe extends its WHERE.
    if (TryMergeIntoStart(condition)) return Status::OK();
    // VertexQuery merge: a filter right after outE/inE extends that CTE.
    if (!vertices && edge_select_ != nullptr) {
      edge_select_->where =
          edge_select_->where == nullptr
              ? condition
              : sql::Bin(BinaryOp::kAnd, edge_select_->where, condition);
      return Status::OK();
    }

    auto sel = std::make_shared<SelectStmt>();
    SelectItem star;
    star.is_star = true;
    star.star_qualifier = "v";
    sel->items.push_back(std::move(star));
    AddFromCurrent(sel.get());
    TableRef attr_table;
    attr_table.table_name = vertices ? core::kVaTable : core::kEaTable;
    attr_table.alias = "p";
    sel->from.push_back(std::move(attr_table));
    sel->where =
        Bin(BinaryOp::kAnd,
            Bin(BinaryOp::kEq, Col("v", "val"),
                Col("p", vertices ? "VID" : "EID")),
            condition);
    Emit(std::move(sel));
    return Status::OK();
  }

  Status Dedup() {
    start_select_ = nullptr;
    auto sel = std::make_shared<SelectStmt>();
    if (track_paths_) {
      // DISTINCT over values while keeping one witness path per value.
      SelectItem val_item;
      val_item.expr = Col("v", "val");
      val_item.alias = "val";
      sel->items.push_back(std::move(val_item));
      SelectItem path_item;
      path_item.expr = Func("MIN", {Col("v", "path")});
      path_item.alias = "path";
      sel->items.push_back(std::move(path_item));
      sel->group_by.push_back(Col("v", "val"));
    } else {
      sel->distinct = true;
      SelectItem val_item;
      val_item.expr = Col("v", "val");
      val_item.alias = "val";
      sel->items.push_back(std::move(val_item));
    }
    AddFromCurrent(sel.get());
    Emit(std::move(sel));
    return Status::OK();
  }

  Status Range(const Pipe& pipe) {
    start_select_ = nullptr;
    auto sel = SelectStarFrom(current_);
    sel->offset = pipe.lo;
    if (pipe.hi >= pipe.lo) {
      // hi - lo cannot overflow (parser enforces lo >= 0), but + 1 can when
      // hi == INT64_MAX; saturate instead.
      const int64_t span = pipe.hi - pipe.lo;
      sel->limit = span == std::numeric_limits<int64_t>::max() ? span : span + 1;
    }
    Emit(std::move(sel));
    return Status::OK();
  }

  Status SimplePath() {
    if (!track_paths_) {
      return Status::Internal("simplePath requires path tracking");
    }
    start_select_ = nullptr;
    auto sel = std::make_shared<SelectStmt>();
    SelectItem star;
    star.is_star = true;
    star.star_qualifier = "v";
    sel->items.push_back(std::move(star));
    AddFromCurrent(sel.get());
    sel->where = Bin(
        BinaryOp::kEq,
        Func("IS_SIMPLE_PATH",
             {Func("PATH_APPEND", {Col("v", "path"), Col("v", "val")})}),
        Lit(rel::Value(int64_t{1})));
    Emit(std::move(sel));
    return Status::OK();
  }

  Status PathPipe() {
    if (!track_paths_) {
      return Status::Internal("path requires path tracking");
    }
    start_select_ = nullptr;
    auto sel = std::make_shared<SelectStmt>();
    SelectItem item;
    item.expr = Func("PATH_APPEND", {Col("v", "path"), Col("v", "val")});
    item.alias = "val";
    sel->items.push_back(std::move(item));
    AddFromCurrent(sel.get());
    Emit(std::move(sel));
    kind_ = ElementKind::kValue;
    return Status::OK();
  }

  Status Back(const Pipe& pipe) {
    auto it = as_points_.find(pipe.key);
    if (it == as_points_.end()) {
      return Status::InvalidArgument("back() to unknown step '" + pipe.key +
                                     "'");
    }
    const auto& [position, saved_kind] = it->second;
    if (position == path_len_) return Status::OK();  // no-op
    start_select_ = nullptr;
    auto sel = std::make_shared<SelectStmt>();
    SelectItem val_item;
    val_item.expr = Func("PATH_ELEM", {Col("v", "path"),
                                       Lit(rel::Value(position))});
    val_item.alias = "val";
    sel->items.push_back(std::move(val_item));
    SelectItem path_item;
    path_item.expr = Func("PATH_PREFIX", {Col("v", "path"),
                                          Lit(rel::Value(position))});
    path_item.alias = "path";
    sel->items.push_back(std::move(path_item));
    AddFromCurrent(sel.get());
    Emit(std::move(sel));
    path_len_ = position;
    kind_ = saved_kind;
    return Status::OK();
  }

  Status ExceptRetain(const Pipe& pipe, bool negated) {
    auto it = aggregates_.find(pipe.key);
    if (it == aggregates_.end()) {
      return Status::InvalidArgument("except/retain of unknown set '" +
                                     pipe.key + "'");
    }
    start_select_ = nullptr;
    auto sub = std::make_shared<SelectStmt>();
    SelectItem sub_item;
    sub_item.expr = Col("val");
    sub->items.push_back(std::move(sub_item));
    TableRef sub_ref;
    sub_ref.table_name = it->second;
    sub->from.push_back(std::move(sub_ref));

    auto sel = std::make_shared<SelectStmt>();
    SelectItem star;
    star.is_star = true;
    star.star_qualifier = "v";
    sel->items.push_back(std::move(star));
    AddFromCurrent(sel.get());
    sel->where = InSubquery(Col("v", "val"), std::move(sub), negated);
    Emit(std::move(sel));
    return Status::OK();
  }

  /// and(...) / or(...): each branch runs from the current table with local
  /// path tracking; the surviving original values are path[0] (Table 8).
  Status AndOrFilter(const Pipe& pipe) {
    start_select_ = nullptr;
    std::vector<ExprPtr> memberships;
    for (const Pipeline& branch : pipe.branches) {
      ASSIGN_OR_RETURN(std::string branch_out, TranslateBranch(branch));
      auto sub = std::make_shared<SelectStmt>();
      SelectItem item;
      item.expr = Func("COALESCE", {Func("PATH_ELEM", {Col("p", "path"),
                                                       Lit(rel::Value(
                                                           int64_t{0}))}),
                                    Col("p", "val")});
      item.alias = "val";
      sub->items.push_back(std::move(item));
      TableRef ref;
      ref.table_name = branch_out;
      ref.alias = "p";
      sub->from.push_back(std::move(ref));
      memberships.push_back(
          InSubquery(Col("v", "val"), std::move(sub), /*negated=*/false));
    }
    ExprPtr condition;
    for (auto& m : memberships) {
      if (condition == nullptr) {
        condition = std::move(m);
      } else {
        condition = Bin(pipe.kind == PipeKind::kAndFilter ? BinaryOp::kAnd
                                                          : BinaryOp::kOr,
                        std::move(condition), std::move(m));
      }
    }
    auto sel = std::make_shared<SelectStmt>();
    SelectItem star;
    star.is_star = true;
    star.star_qualifier = "v";
    sel->items.push_back(std::move(star));
    AddFromCurrent(sel.get());
    sel->where = std::move(condition);
    Emit(std::move(sel));
    return Status::OK();
  }

  Status CopySplit(const Pipe& pipe) {
    start_select_ = nullptr;
    std::vector<std::string> outs;
    ElementKind merged_kind = kind_;
    for (const Pipeline& branch : pipe.branches) {
      State branch_state(schema_, options_, track_paths_, /*single_hop=*/false);
      branch_state.SeedFrom(*this);
      RETURN_NOT_OK(branch_state.Run(branch));
      RETURN_NOT_OK(AbsorbBranch(&branch_state));
      outs.push_back(branch_state.current_);
      merged_kind = branch_state.kind_;
    }
    auto sel = SelectStarFrom(outs[0]);
    for (size_t i = 1; i < outs.size(); ++i) {
      SelectStmt::SetOp set_op;
      set_op.kind = sql::SetOpKind::kUnionAll;
      set_op.rhs = SelectStarFrom(outs[i]);
      sel->set_ops.push_back(std::move(set_op));
    }
    Emit(std::move(sel));
    kind_ = merged_kind;
    // Branch bodies may have different lengths; path positions after a
    // copySplit are no longer well-defined, so as()-points are cleared.
    as_points_.clear();
    return Status::OK();
  }

  Status IfThenElse(const Pipe& pipe) {
    if (pipe.branches.size() != 3 || pipe.branches[0].pipes.size() != 1 ||
        pipe.branches[0].pipes[0].kind != PipeKind::kHas) {
      return Status::NotImplemented(
          "ifThenElse supports {it.<key> OP literal} tests");
    }
    start_select_ = nullptr;
    const Pipe& test = pipe.branches[0].pipes[0];
    const bool vertices = kind_ == ElementKind::kVertex;
    ExprPtr attr =
        Func("JSON_VAL", {Col("p", "ATTR"), Lit(rel::Value(test.key))});
    ExprPtr then_cond = Bin(CmpToSql(test.cmp), attr, PipeValue(test));
    // Elements whose test is false OR whose attribute is absent go to else.
    ExprPtr else_cond =
        Bin(BinaryOp::kOr, sql::Un(UnaryOp::kIsNull, attr),
            sql::Un(UnaryOp::kNot,
                    Bin(CmpToSql(test.cmp), attr, PipeValue(test))));

    auto filtered = [&](ExprPtr cond) {
      auto sel = std::make_shared<SelectStmt>();
      SelectItem star;
      star.is_star = true;
      star.star_qualifier = "v";
      sel->items.push_back(std::move(star));
      AddFromCurrent(sel.get());
      TableRef attr_table;
      attr_table.table_name = vertices ? core::kVaTable : core::kEaTable;
      attr_table.alias = "p";
      sel->from.push_back(std::move(attr_table));
      sel->where = Bin(BinaryOp::kAnd,
                       Bin(BinaryOp::kEq, Col("v", "val"),
                           Col("p", vertices ? "VID" : "EID")),
                       std::move(cond));
      return EmitNamed(std::move(sel));
    };
    const std::string saved_current = current_;
    const ElementKind saved_kind = kind_;
    const int64_t saved_len = path_len_;

    current_ = filtered(std::move(then_cond));
    std::string then_out = current_;
    ElementKind then_kind = kind_;
    {
      State branch_state(schema_, options_, track_paths_, /*single_hop=*/false);
      branch_state.SeedFrom(*this);
      RETURN_NOT_OK(branch_state.Run(pipe.branches[1]));
      RETURN_NOT_OK(AbsorbBranch(&branch_state));
      then_out = branch_state.current_;
      then_kind = branch_state.kind_;
    }
    current_ = saved_current;
    kind_ = saved_kind;
    path_len_ = saved_len;
    current_ = filtered(std::move(else_cond));
    std::string else_out = current_;
    {
      State branch_state(schema_, options_, track_paths_, /*single_hop=*/false);
      branch_state.SeedFrom(*this);
      RETURN_NOT_OK(branch_state.Run(pipe.branches[2]));
      RETURN_NOT_OK(AbsorbBranch(&branch_state));
      else_out = branch_state.current_;
    }
    auto sel = SelectStarFrom(then_out);
    SelectStmt::SetOp set_op;
    set_op.kind = sql::SetOpKind::kUnionAll;
    set_op.rhs = SelectStarFrom(else_out);
    sel->set_ops.push_back(std::move(set_op));
    Emit(std::move(sel));
    kind_ = then_kind;
    as_points_.clear();
    return Status::OK();
  }

  // -------------------------------------------------------------- loop ----

  Status Loop(const Pipeline& pipeline, size_t index) {
    const Pipe& pipe = pipeline.pipes[index];
    if (pipe.loop_steps <= 0 ||
        static_cast<size_t>(pipe.loop_steps) > index) {
      return Status::InvalidArgument("loop() reaches before the start pipe");
    }
    const size_t body_begin = index - static_cast<size_t>(pipe.loop_steps);
    if (pipe.loop_count >= 0) {
      // Fixed depth: unroll. The body already ran once; loop(n){it.loops<k}
      // executes it k-1 more times (total k).
      for (int64_t rep = 1; rep < pipe.loop_count; ++rep) {
        for (size_t j = body_begin; j < index; ++j) {
          RETURN_NOT_OK(ApplyPipe(pipeline, j));
        }
      }
      return Status::OK();
    }
    // Unbounded loop → recursive CTE with fixpoint (dedup) semantics. The
    // body must be a single adjacency step so it fits the recursive step
    // select; it runs over the EA copy (the paper's recursive-SQL fallback).
    if (track_paths_) {
      return Status::NotImplemented(
          "unbounded loop with path tracking (stored-procedure fallback)");
    }
    if (pipe.loop_steps != 1) {
      return Status::NotImplemented(
          "unbounded loop body must be one adjacency step");
    }
    const Pipe& body = pipeline.pipes[body_begin];
    bool out = body.kind == PipeKind::kOut || body.kind == PipeKind::kBoth;
    bool in = body.kind == PipeKind::kIn || body.kind == PipeKind::kBoth;
    if (!out && !in) {
      return Status::NotImplemented(
          "unbounded loop body must be out()/in()/both()");
    }
    auto step = [&](bool outgoing, const std::string& rec_name) {
      auto sel = std::make_shared<SelectStmt>();
      SelectItem item;
      item.expr = Col("p", outgoing ? "OUTV" : "INV");
      item.alias = "val";
      sel->items.push_back(std::move(item));
      TableRef rec;
      rec.table_name = rec_name;
      rec.alias = "r";
      sel->from.push_back(std::move(rec));
      TableRef ea;
      ea.table_name = core::kEaTable;
      ea.alias = "p";
      sel->from.push_back(std::move(ea));
      std::vector<ExprPtr> conds;
      conds.push_back(Bin(BinaryOp::kEq, Col("r", "val"),
                          Col("p", outgoing ? "INV" : "OUTV")));
      if (ExprPtr lc = LabelCondition(Col("p", "LBL"), body.labels)) {
        conds.push_back(std::move(lc));
      }
      sel->where = AndAll(std::move(conds));
      return sel;
    };
    const std::string rec_name = NextName() + "_rec";
    auto base = SelectStarFrom(current_);
    SelectPtr step_sel;
    if (out && in) {
      step_sel = step(true, rec_name);
      SelectStmt::SetOp both_op;
      both_op.kind = sql::SetOpKind::kUnionAll;
      both_op.rhs = step(false, rec_name);
      step_sel->set_ops.push_back(std::move(both_op));
    } else {
      step_sel = step(out, rec_name);
    }
    SelectStmt::SetOp rec_op;
    rec_op.kind = sql::SetOpKind::kUnionAll;
    rec_op.rhs = std::move(step_sel);
    base->set_ops.push_back(std::move(rec_op));
    sql::Cte cte;
    cte.name = rec_name;
    cte.column_aliases = {"val"};
    cte.select = std::move(base);
    cte.recursive = true;
    ctes_.push_back(std::move(cte));
    current_ = rec_name;
    return Status::OK();
  }

  Status Count() {
    auto sel = std::make_shared<SelectStmt>();
    SelectItem item;
    item.expr = Func("COUNT", {sql::Star()});
    item.alias = "val";
    sel->items.push_back(std::move(item));
    AddFromCurrent(sel.get());
    final_select_ = std::move(sel);
    kind_ = ElementKind::kValue;
    return Status::OK();
  }

  // ----------------------------------------------------------- helpers ----

  /// Seeds a branch state to continue from this state's current table.
  void SeedFrom(const State& parent) {
    counter_ = parent.counter_;
    current_ = parent.current_;
    kind_ = parent.kind_;
    path_len_ = parent.path_len_;
    aggregates_ = parent.aggregates_;
    as_points_ = parent.as_points_;
  }

  /// Moves a finished branch's CTEs into this state.
  Status AbsorbBranch(State* branch) {
    if (branch->final_select_ != nullptr) {
      return Status::NotImplemented("count() inside a branch");
    }
    for (auto& cte : branch->ctes_) ctes_.push_back(std::move(cte));
    return Status::OK();
  }

  /// Translates a filter branch (and/or): fresh local path tracking rooted
  /// at the current table, so path[0] recovers the original element.
  Result<std::string> TranslateBranch(const Pipeline& branch) {
    State branch_state(schema_, options_, /*track_paths=*/true,
                       /*single_hop=*/false);
    branch_state.counter_ = counter_;
    branch_state.kind_ = kind_;
    branch_state.aggregates_ = aggregates_;
    // Entry CTE: reset the path so position 0 is the branch's input value.
    auto entry = std::make_shared<SelectStmt>();
    SelectItem val_item;
    val_item.expr = Col("v", "val");
    val_item.alias = "val";
    entry->items.push_back(std::move(val_item));
    SelectItem path_item;
    path_item.expr = Lit(rel::Value::Null());
    path_item.alias = "path";
    entry->items.push_back(std::move(path_item));
    TableRef ref;
    ref.table_name = current_;
    ref.alias = "v";
    entry->from.push_back(std::move(ref));
    sql::Cte cte;
    cte.name = branch_state.NextName();
    cte.select = std::move(entry);
    branch_state.ctes_.push_back(std::move(cte));
    branch_state.current_ = branch_state.ctes_.back().name;
    RETURN_NOT_OK(branch_state.Run(branch));
    RETURN_NOT_OK(AbsorbBranch(&branch_state));
    return branch_state.current_;
  }

  std::string NextName() {
    return util::StrFormat("TEMP_%lld", static_cast<long long>(++*counter_));
  }

  /// Emits a select as the next CTE and makes it current.
  void Emit(SelectPtr sel) {
    sql::Cte cte;
    cte.name = NextName();
    cte.select = std::move(sel);
    ctes_.push_back(std::move(cte));
    current_ = ctes_.back().name;
  }

  std::string EmitNamed(SelectPtr sel) {
    Emit(std::move(sel));
    return current_;
  }

  SelectPtr SelectStarFrom(const std::string& table) {
    auto sel = std::make_shared<SelectStmt>();
    SelectItem star;
    star.is_star = true;
    sel->items.push_back(std::move(star));
    TableRef ref;
    ref.table_name = table;
    sel->from.push_back(std::move(ref));
    return sel;
  }

  void AddFromCurrent(SelectStmt* sel) {
    TableRef ref;
    ref.table_name = current_;
    ref.alias = "v";
    sel->from.push_back(std::move(ref));
  }

  /// Adds the `(v.path || v.val) AS path` item of the [e]p templates.
  void AppendPathItem(SelectStmt* sel) {
    if (!track_paths_) return;
    SelectItem path_item;
    path_item.expr = Func("PATH_APPEND", {Col("v", "path"), Col("v", "val")});
    path_item.alias = "path";
    sel->items.push_back(std::move(path_item));
  }

  Status ExpectKind(ElementKind expected, const char* what) {
    if (kind_ != expected) {
      return Status::InvalidArgument(std::string(what) +
                                     " applied to wrong element kind");
    }
    return Status::OK();
  }

  const GraphSchema* schema_;
  const TranslatorOptions& options_;
  bool track_paths_;
  bool single_hop_;

  std::vector<sql::Cte> ctes_;
  std::string current_;
  ElementKind kind_ = ElementKind::kVertex;
  int64_t path_len_ = 0;
  int64_t counter_storage_ = 0;
  int64_t* counter_ = &counter_storage_;
  SelectPtr start_select_;
  // When the current CTE is a single-direction EA edge step (outE/inE),
  // attribute filters that follow fold into its WHERE — the paper's
  // VertexQuery rewrite (§4.5.1).
  SelectPtr edge_select_;
  SelectPtr final_select_;
  std::unordered_map<std::string, std::pair<int64_t, ElementKind>> as_points_;
  std::unordered_map<std::string, std::string> aggregates_;
};

Result<sql::SqlQuery> Translator::Translate(const Pipeline& pipeline,
                                            PipeAttribution* attribution) const {
  if (pipeline.pipes.empty()) {
    return Status::InvalidArgument("empty pipeline");
  }
  const bool track_paths = NeedsPaths(pipeline);
  const bool single_hop = CountAdjacencySteps(pipeline) == 1;
  State state(schema_, options_, track_paths, single_hop);
  RETURN_NOT_OK(state.Run(pipeline, attribution));
  return state.Finish();
}

}  // namespace gremlin
}  // namespace sqlgraph
