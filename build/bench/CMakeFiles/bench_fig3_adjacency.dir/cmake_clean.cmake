file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_adjacency.dir/bench_fig3_adjacency.cc.o"
  "CMakeFiles/bench_fig3_adjacency.dir/bench_fig3_adjacency.cc.o.d"
  "bench_fig3_adjacency"
  "bench_fig3_adjacency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
