# Empty compiler generated dependencies file for dbpedia_traversal.
# This may be replaced when dependencies are built.
