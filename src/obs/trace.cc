#include "obs/trace.h"

#include <algorithm>

#include "util/string_util.h"

namespace sqlgraph {
namespace obs {

std::string FormatSpanTable(const std::vector<TraceSpan>& spans) {
  size_t ctx_w = 5, op_w = 8;
  for (const TraceSpan& s : spans) {
    ctx_w = std::max(ctx_w, s.context.size());
    op_w = std::max(op_w, s.op.size());
  }
  std::string out = util::StrFormat("%-*s  %-*s  %10s  %12s\n",
                                    static_cast<int>(ctx_w), "stage",
                                    static_cast<int>(op_w), "operator",
                                    "rows", "time");
  for (const TraceSpan& s : spans) {
    out += util::StrFormat(
        "%-*s  %-*s  %10llu  %9.3f ms\n", static_cast<int>(ctx_w),
        s.context.c_str(), static_cast<int>(op_w), s.op.c_str(),
        static_cast<unsigned long long>(s.rows),
        static_cast<double>(s.ns) / 1e6);
  }
  return out;
}

}  // namespace obs
}  // namespace sqlgraph
