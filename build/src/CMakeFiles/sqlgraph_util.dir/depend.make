# Empty dependencies file for sqlgraph_util.
# This may be replaced when dependencies are built.
