# Empty compiler generated dependencies file for sqlgraph_core.
# This may be replaced when dependencies are built.
