#include "sql/ast.h"

#include "util/string_util.h"

namespace sqlgraph {
namespace sql {

ExprPtr Lit(rel::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Param(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr Param(std::string name, int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  e->param_name = std::move(name);
  return e;
}

ExprPtr Col(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Col(std::string column) { return Col("", std::move(column)); }

ExprPtr Bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Un(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunc;
  e->func_name = util::ToLower(name);
  // Canonical upper-case function names.
  for (auto& c : e->func_name) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  e->args = std::move(args);
  return e;
}

ExprPtr CastTo(ExprPtr inner, rel::ColumnType type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCast;
  e->lhs = std::move(inner);
  e->cast_type = type;
  return e;
}

ExprPtr Star() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr InList(ExprPtr probe, std::vector<ExprPtr> values, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInList;
  e->lhs = std::move(probe);
  e->in_list = std::move(values);
  e->negated = negated;
  return e;
}

ExprPtr InSubquery(ExprPtr probe, SelectPtr subquery, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInSubquery;
  e->lhs = std::move(probe);
  e->subquery = std::move(subquery);
  e->negated = negated;
  return e;
}

namespace {
bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "MIN" || name == "MAX" ||
         name == "AVG";
}
}  // namespace

bool ContainsAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kFunc:
      if (IsAggregateName(e->func_name)) return true;
      for (const auto& a : e->args) {
        if (ContainsAggregate(a)) return true;
      }
      return false;
    case ExprKind::kBinary:
      return ContainsAggregate(e->lhs) || ContainsAggregate(e->rhs);
    case ExprKind::kUnary:
    case ExprKind::kCast:
      return ContainsAggregate(e->lhs);
    case ExprKind::kInList: {
      if (ContainsAggregate(e->lhs)) return true;
      for (const auto& a : e->in_list) {
        if (ContainsAggregate(a)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace sql
}  // namespace sqlgraph
