#include "wal/log_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sqlgraph {
namespace wal {

using util::Result;
using util::Status;

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path,
                                                   SyncMode mode) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("wal: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<LogWriter>(new LogWriter(path, fd, mode));
}

LogWriter::~LogWriter() { (void)Close(); }

Status LogWriter::WriteAll(const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd_, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("wal: write to " + path_ + " failed: " +
                              std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status LogWriter::Fsync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal("wal: fsync of " + path_ + " failed: " +
                            std::strerror(errno));
  }
  counters_.fsyncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogWriter::Append(const Record& rec) {
  std::string frame;
  EncodeRecord(rec, &frame);

  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("wal: writer is closed");
  if (!io_error_.ok()) return io_error_;
  counters_.records.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes.fetch_add(frame.size(), std::memory_order_relaxed);

  if (mode_ != SyncMode::kBatched) {
    // kNone: buffered write; kPerCommit: write + private fsync. Both keep
    // the writer mutex for the whole I/O — the strict baseline serializes
    // by design and kNone's write() is cheap.
    RETURN_NOT_OK(io_error_ = WriteAll(frame.data(), frame.size()));
    if (mode_ == SyncMode::kPerCommit) {
      RETURN_NOT_OK(io_error_ = Fsync());
      counters_.groups.fetch_add(1, std::memory_order_relaxed);
      counters_.grouped_records.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }

  // Group commit: enqueue, then either follow an active leader or lead the
  // next batch ourselves.
  pending_ += frame;
  ++pending_records_;
  const uint64_t my_seq = ++next_seq_;
  while (durable_seq_ < my_seq && io_error_.ok()) {
    if (leader_active_) {
      cv_.wait(lock);
      continue;
    }
    leader_active_ = true;
    std::string batch;
    batch.swap(pending_);
    const uint64_t batch_records = pending_records_;
    pending_records_ = 0;
    const uint64_t batch_seq = next_seq_;
    lock.unlock();
    Status st = WriteAll(batch.data(), batch.size());
    if (st.ok()) st = Fsync();
    lock.lock();
    if (!st.ok()) io_error_ = st;
    durable_seq_ = batch_seq;
    counters_.groups.fetch_add(1, std::memory_order_relaxed);
    counters_.grouped_records.fetch_add(batch_records,
                                        std::memory_order_relaxed);
    leader_active_ = false;
    cv_.notify_all();
  }
  return io_error_;
}

Status LogWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  if (!io_error_.ok()) return io_error_;
  // Batched mode drains pending_ from within Append, so by the time we hold
  // the mutex with no active leader there is nothing left to write.
  while (leader_active_) cv_.wait(lock);
  if (!pending_.empty()) {
    Status st = WriteAll(pending_.data(), pending_.size());
    if (!st.ok()) return io_error_ = st;
    pending_.clear();
    pending_records_ = 0;
    durable_seq_ = next_seq_;
  }
  return io_error_ = Fsync();
}

Status LogWriter::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::OK();
  }
  Status st = Sync();
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return st;
}

}  // namespace wal
}  // namespace sqlgraph
