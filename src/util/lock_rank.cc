#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define SQLGRAPH_HAVE_BACKTRACE 1
#endif
#endif

namespace sqlgraph {
namespace util {

namespace lock_rank_internal {

namespace {

constexpr int kMaxFrames = 16;

/// One lock currently held (or being acquired) by this thread, with the
/// call stack of its acquisition so a violation can show *both* sides.
struct Held {
  const void* mu;
  LockRankInfo info;
  void* frames[kMaxFrames];
  int depth;
};

/// Per-thread stack of held ranked locks. Acquisition order is preserved;
/// releases may happen out of order (WriteLock destroys its exclusive and
/// shared guard vectors separately), so release removes by identity rather
/// than popping.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

int CaptureFrames(void** frames) {
#ifdef SQLGRAPH_HAVE_BACKTRACE
  return backtrace(frames, kMaxFrames);
#else
  (void)frames;
  return 0;
#endif
}

void DumpFrames(void* const* frames, int depth) {
#ifdef SQLGRAPH_HAVE_BACKTRACE
  if (depth > 0) backtrace_symbols_fd(frames, depth, /*stderr*/ 2);
#else
  (void)frames;
  (void)depth;
#endif
}

/// Default: validate in debug builds, stay out of the way in release;
/// SQLGRAPH_LOCK_RANK=0/1 overrides either way.
bool DefaultChecking() {
  const char* env = std::getenv("SQLGRAPH_LOCK_RANK");
  if (env != nullptr && env[0] != '\0') return env[0] != '0';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

[[noreturn]] void ReportViolation(const char* what, const Held& held,
                                  const LockRankInfo& incoming) {
  std::fprintf(stderr,
               "lock-rank violation: %s \"%s\" (rank %d, order %d) while "
               "holding \"%s\" (rank %d, order %d)\n",
               what, incoming.name, static_cast<int>(incoming.rank),
               incoming.order, held.info.name,
               static_cast<int>(held.info.rank), held.info.order);
  std::fprintf(stderr, "stack of the violating acquisition:\n");
#ifdef SQLGRAPH_HAVE_BACKTRACE
  void* now[kMaxFrames];
  DumpFrames(now, backtrace(now, kMaxFrames));
#endif
  std::fprintf(stderr, "stack where \"%s\" was acquired:\n", held.info.name);
  DumpFrames(held.frames, held.depth);
  std::abort();
}

}  // namespace

std::atomic<bool> g_checking{DefaultChecking()};

void AcquireSlow(const void* mu, const LockRankInfo& info) {
  std::vector<Held>& stack = HeldStack();
  for (const Held& held : stack) {
    if (held.mu == mu) {
      ReportViolation("recursively acquiring", held, info);
    }
    if (held.info.rank > info.rank ||
        (held.info.rank == info.rank && held.info.order >= info.order)) {
      ReportViolation("acquiring", held, info);
    }
  }
  Held entry;
  entry.mu = mu;
  entry.info = info;
  entry.depth = CaptureFrames(entry.frames);
  stack.push_back(entry);
}

void ReleaseSlow(const void* mu) {
  std::vector<Held>& stack = HeldStack();
  // Newest matching entry; tolerate a miss (checking may have been enabled
  // after this lock was acquired).
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace lock_rank_internal

bool LockRankCheckingEnabled() {
  return lock_rank_internal::g_checking.load(std::memory_order_relaxed);
}

void SetLockRankCheckingEnabled(bool enabled) {
  lock_rank_internal::g_checking.store(enabled, std::memory_order_relaxed);
}

}  // namespace util
}  // namespace sqlgraph
