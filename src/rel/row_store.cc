#include "rel/row_store.h"

#include <cassert>

namespace sqlgraph {
namespace rel {

// ---------------------------------------------------------------- Vector --

RowId VectorRowStore::Append(Row row) {
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  return rows_.size() - 1;
}

util::Status VectorRowStore::Get(RowId rid, Row* out) const {
  if (rid >= rows_.size() || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  *out = rows_[rid];
  return util::Status::OK();
}

util::Status VectorRowStore::Update(RowId rid, Row row) {
  if (rid >= rows_.size() || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  rows_[rid] = std::move(row);
  return util::Status::OK();
}

util::Status VectorRowStore::Delete(RowId rid) {
  if (rid >= rows_.size() || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  live_[rid] = false;
  rows_[rid].clear();
  rows_[rid].shrink_to_fit();
  --live_count_;
  return util::Status::OK();
}

util::Status VectorRowStore::Restore(RowId rid, Row row) {
  if (rid >= rows_.size()) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  if (live_[rid]) {
    return util::Status::InvalidArgument("row " + std::to_string(rid) +
                                         " is live; Restore needs a tombstone");
  }
  rows_[rid] = std::move(row);
  live_[rid] = true;
  ++live_count_;
  return util::Status::OK();
}

bool VectorRowStore::IsLive(RowId rid) const {
  return rid < rows_.size() && live_[rid];
}

void VectorRowStore::Scan(
    const std::function<void(RowId, const Row&)>& visit) const {
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (live_[rid]) visit(rid, rows_[rid]);
  }
}

size_t VectorRowStore::SerializedBytes() const {
  size_t total = 0;
  std::string scratch;
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (!live_[rid]) continue;
    scratch.clear();
    EncodeRow(rows_[rid], &scratch);
    total += scratch.size();
  }
  return total;
}

// ----------------------------------------------------------------- Paged --

PagedRowStore::PagedRowStore(BufferPool* pool, size_t num_columns,
                             size_t rows_per_page)
    : pool_(pool),
      store_id_(pool->NextStoreId()),
      num_columns_(num_columns),
      rows_per_page_(rows_per_page) {
  assert(rows_per_page_ > 0);
}

void PagedRowStore::SealTailIfFull() {
  if (tail_.size() < rows_per_page_) return;
  std::string blob;
  for (const Row& r : tail_) EncodeRow(r, &blob);
  serialized_bytes_ += blob.size();
  page_blobs_.push_back(std::move(blob));
  tail_.clear();
}

RowId PagedRowStore::Append(Row row) {
  assert(row.size() == num_columns_);
  tail_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  const RowId rid = num_rows_++;
  SealTailIfFull();
  return rid;
}

std::shared_ptr<const DecodedPage> PagedRowStore::FetchPage(
    uint32_t page_index) const {
  const PageId id{store_id_, page_index};
  if (auto cached = pool_->Lookup(id)) return cached;
  // Miss: decode the blob (this is the real cost the pool budget controls).
  const std::string& blob = page_blobs_[page_index];
  auto page = std::make_shared<DecodedPage>();
  page->rows.reserve(rows_per_page_);
  size_t offset = 0;
  while (offset < blob.size()) {
    Row row;
    util::Status st = DecodeRow(blob, num_columns_, &offset, &row);
    // We only decode blobs this store encoded; failure is a bug, asserted in
    // debug builds and unreachable in release.
    assert(st.ok());
    (void)st;
    page->byte_size += 64;
    for (const Value& v : row) page->byte_size += v.ByteSize();
    page->rows.push_back(std::move(row));
  }
  pool_->Insert(id, page);
  return page;
}

void PagedRowStore::StorePage(uint32_t page_index, DecodedPage page) {
  std::string blob;
  for (const Row& r : page.rows) EncodeRow(r, &blob);
  serialized_bytes_ -= page_blobs_[page_index].size();
  serialized_bytes_ += blob.size();
  page_blobs_[page_index] = std::move(blob);
  page.byte_size = 64;
  for (const Row& r : page.rows) {
    for (const Value& v : r) page.byte_size += v.ByteSize();
  }
  pool_->Insert(PageId{store_id_, page_index},
                std::make_shared<DecodedPage>(std::move(page)));
}

util::Status PagedRowStore::Get(RowId rid, Row* out) const {
  if (rid >= num_rows_ || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  const size_t page_index = rid / rows_per_page_;
  const size_t slot = rid % rows_per_page_;
  if (page_index >= page_blobs_.size()) {
    // Row still in the unsealed tail.
    *out = tail_[rid - page_blobs_.size() * rows_per_page_];
    return util::Status::OK();
  }
  auto page = FetchPage(static_cast<uint32_t>(page_index));
  *out = page->rows[slot];
  return util::Status::OK();
}

util::Status PagedRowStore::Update(RowId rid, Row row) {
  if (rid >= num_rows_ || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  const size_t page_index = rid / rows_per_page_;
  const size_t slot = rid % rows_per_page_;
  if (page_index >= page_blobs_.size()) {
    tail_[rid - page_blobs_.size() * rows_per_page_] = std::move(row);
    return util::Status::OK();
  }
  auto page = FetchPage(static_cast<uint32_t>(page_index));
  DecodedPage updated = *page;
  updated.rows[slot] = std::move(row);
  StorePage(static_cast<uint32_t>(page_index), std::move(updated));
  return util::Status::OK();
}

util::Status PagedRowStore::Delete(RowId rid) {
  if (rid >= num_rows_ || !live_[rid]) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  live_[rid] = false;
  --live_count_;
  return util::Status::OK();
}

util::Status PagedRowStore::Restore(RowId rid, Row row) {
  if (rid >= num_rows_) {
    return util::Status::NotFound("row " + std::to_string(rid));
  }
  if (live_[rid]) {
    return util::Status::InvalidArgument("row " + std::to_string(rid) +
                                         " is live; Restore needs a tombstone");
  }
  live_[rid] = true;
  ++live_count_;
  // Deletion only flips the live bit, but the slot may since have been
  // overwritten by an unrelated Update-path re-encode; write the content
  // back unconditionally.
  const size_t page_index = rid / rows_per_page_;
  const size_t slot = rid % rows_per_page_;
  if (page_index >= page_blobs_.size()) {
    tail_[rid - page_blobs_.size() * rows_per_page_] = std::move(row);
    return util::Status::OK();
  }
  auto page = FetchPage(static_cast<uint32_t>(page_index));
  DecodedPage updated = *page;
  updated.rows[slot] = std::move(row);
  StorePage(static_cast<uint32_t>(page_index), std::move(updated));
  return util::Status::OK();
}

bool PagedRowStore::IsLive(RowId rid) const {
  return rid < num_rows_ && live_[rid];
}

size_t PagedRowStore::SerializedBytes() const {
  // Sealed pages are pre-accounted; the unsealed tail is encoded on demand.
  size_t total = serialized_bytes_;
  std::string scratch;
  for (const Row& row : tail_) {
    scratch.clear();
    EncodeRow(row, &scratch);
    total += scratch.size();
  }
  return total;
}

void PagedRowStore::Scan(
    const std::function<void(RowId, const Row&)>& visit) const {
  RowId rid = 0;
  for (size_t p = 0; p < page_blobs_.size(); ++p) {
    auto page = FetchPage(static_cast<uint32_t>(p));
    for (const Row& row : page->rows) {
      if (live_[rid]) visit(rid, row);
      ++rid;
    }
  }
  for (const Row& row : tail_) {
    if (live_[rid]) visit(rid, row);
    ++rid;
  }
}

}  // namespace rel
}  // namespace sqlgraph
