// Shared helpers for the libFuzzer targets in this directory.
//
// Targets are plain `LLVMFuzzerTestOneInput` translation units. Under clang
// they link -fsanitize=fuzzer; under GCC they link standalone_main.cc, which
// replays corpus files and runs a bounded deterministic mutation loop. Either
// way a property failure must abort the process (that is the only signal a
// fuzzer understands), hence FUZZ_ASSERT instead of any Status plumbing.

#ifndef SQLGRAPH_FUZZ_FUZZ_UTIL_H_
#define SQLGRAPH_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>

#define FUZZ_ASSERT(cond, ...)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                          \
      std::fprintf(stderr, "  " __VA_ARGS__);                           \
      std::fprintf(stderr, "\n");                                       \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

namespace sqlgraph {
namespace fuzz {

/// Structured view over the raw fuzz input: consuming reader for byte-coded
/// operations. All Take* calls are total — an exhausted input yields zeros,
/// so op decoding never branches on bounds.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  size_t remaining() const { return pos_ < size_ ? size_ - pos_ : 0; }

  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint32_t TakeU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | TakeByte();
    return v;
  }

  int64_t TakeInt64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | TakeByte();
    return static_cast<int64_t>(v);
  }

  /// Up to `max_len` bytes as a string (shorter when input runs out).
  std::string TakeString(size_t max_len) {
    const size_t n = remaining() < max_len ? remaining() : max_len;
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Everything not yet consumed.
  std::string_view Rest() const {
    return std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                            remaining());
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Unique-per-process scratch directory, removed on destruction. Fuzz
/// targets that need files (WAL, snapshots) write only in here.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    char tmpl[256];
    std::snprintf(tmpl, sizeof(tmpl), "/tmp/sqlgraph_%s_XXXXXX", tag);
    const char* made = mkdtemp(tmpl);
    FUZZ_ASSERT(made != nullptr, "mkdtemp failed for tag %s", tag);
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const char* name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Overwrites `path` with `data` (abort on I/O failure — the fuzz scratch
/// dir failing is an environment error, not a finding).
inline void WriteFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  FUZZ_ASSERT(f != nullptr, "fopen %s", path.c_str());
  if (!data.empty()) {
    FUZZ_ASSERT(std::fwrite(data.data(), 1, data.size(), f) == data.size(),
                "short write to %s", path.c_str());
  }
  FUZZ_ASSERT(std::fclose(f) == 0, "fclose %s", path.c_str());
}

}  // namespace fuzz
}  // namespace sqlgraph

#endif  // SQLGRAPH_FUZZ_FUZZ_UTIL_H_
