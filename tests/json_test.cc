// Tests for src/json: value model, parser, writer, round trips.

#include "gtest/gtest.h"
#include "json/json_parser.h"
#include "json/json_value.h"

namespace sqlgraph {
namespace json {
namespace {

TEST(JsonValueTest, ScalarTypes) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(int64_t{29}).is_int());
  EXPECT_TRUE(JsonValue(0.4).is_double());
  EXPECT_TRUE(JsonValue("marko").is_string());
  EXPECT_TRUE(JsonValue(int64_t{29}).is_number());
}

TEST(JsonValueTest, ObjectSetFindErase) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", "marko");
  obj.Set("age", 29);
  EXPECT_EQ(obj.size(), 2u);
  ASSERT_NE(obj.Find("name"), nullptr);
  EXPECT_EQ(obj.Find("name")->AsString(), "marko");
  EXPECT_EQ(obj.Find("age")->AsInt(), 29);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  obj.Set("age", 30);  // replace
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.Find("age")->AsInt(), 30);
  EXPECT_TRUE(obj.Erase("name"));
  EXPECT_FALSE(obj.Erase("name"));
  EXPECT_EQ(obj.size(), 1u);
}

TEST(JsonValueTest, ArrayAppend) {
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.AsArray()[0].AsInt(), 1);
  EXPECT_EQ(arr.AsArray()[1].AsString(), "two");
}

TEST(JsonValueTest, CopyOnWriteIsolation) {
  JsonValue a = JsonValue::Object();
  a.Set("k", 1);
  JsonValue b = a;          // shares representation
  b.Set("k", 2);            // must not affect a
  EXPECT_EQ(a.Find("k")->AsInt(), 1);
  EXPECT_EQ(b.Find("k")->AsInt(), 2);
}

TEST(JsonValueTest, EqualityOrderInsensitiveObjects) {
  JsonValue a = JsonValue::Object();
  a.Set("x", 1);
  a.Set("y", 2);
  JsonValue b = JsonValue::Object();
  b.Set("y", 2);
  b.Set("x", 1);
  EXPECT_EQ(a, b);
  b.Set("x", 3);
  EXPECT_NE(a, b);
}

TEST(JsonValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(JsonValue(int64_t{3}), JsonValue(3.0));
  EXPECT_NE(JsonValue(int64_t{3}), JsonValue(3.5));
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->AsBool(), true);
  EXPECT_EQ(Parse("42")->AsInt(), 42);
  EXPECT_EQ(Parse("-17")->AsInt(), -17);
  EXPECT_DOUBLE_EQ(Parse("0.5")->AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParserTest, ParsesNestedDocument) {
  auto r = Parse(R"({"knows":[{"eid":7,"val":2},{"eid":8,"val":4}],)"
                 R"("created":[{"eid":9,"val":3}]})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& doc = r.value();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* knows = doc.Find("knows");
  ASSERT_NE(knows, nullptr);
  ASSERT_TRUE(knows->is_array());
  EXPECT_EQ(knows->AsArray().size(), 2u);
  EXPECT_EQ(knows->AsArray()[1].Find("val")->AsInt(), 4);
}

TEST(JsonParserTest, StringEscapes) {
  auto r = Parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonParserTest, UnicodeEscapeToUtf8) {
  auto r = Parse(R"("é")");  // é
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AsString(), "\xc3\xa9");
}

TEST(JsonParserTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("12 34").ok());
  EXPECT_FALSE(Parse("{'a':1}").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(JsonParserTest, WhitespaceTolerant) {
  auto r = Parse(" { \"a\" : [ 1 , 2 ] } ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Find("a")->AsArray().size(), 2u);
}

TEST(JsonWriterTest, CompactRoundTrip) {
  const std::string text =
      R"({"name":"marko","age":29,"langs":["java","groovy"],"w":0.5,"ok":true,"n":null})";
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok());
  const std::string rewritten = Write(parsed.value());
  auto reparsed = Parse(rewritten);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed.value(), reparsed.value());
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  JsonValue v(std::string("line1\nline2\x01"));
  const std::string text = Write(v);
  auto round = Parse(text);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().AsString(), "line1\nline2\x01");
}

TEST(JsonWriterTest, PrettyIsReparseable) {
  auto doc = Parse(R"({"a":{"b":[1,2,{"c":null}]}})");
  ASSERT_TRUE(doc.ok());
  auto round = Parse(WritePretty(doc.value()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(doc.value(), round.value());
}

TEST(JsonValueTest, ByteSizeGrowsWithContent) {
  JsonValue small = JsonValue::Object();
  small.Set("k", 1);
  JsonValue big = JsonValue::Object();
  big.Set("k", std::string(1000, 'x'));
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 900);
}

// Property-style sweep: random documents round-trip through text.
class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

JsonValue RandomJson(uint64_t seed, int depth) {
  uint64_t s = seed;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  switch (next() % (depth > 0 ? 6 : 4)) {
    case 0: return JsonValue();
    case 1: return JsonValue(static_cast<int64_t>(next() % 100000) - 50000);
    case 2: return JsonValue(static_cast<double>(next() % 1000) / 8.0);
    case 3: {
      std::string str;
      const size_t len = next() % 12;
      for (size_t i = 0; i < len; ++i) {
        str.push_back(static_cast<char>('a' + next() % 26));
      }
      return JsonValue(std::move(str));
    }
    case 4: {
      JsonValue arr = JsonValue::Array();
      const size_t len = next() % 4;
      for (size_t i = 0; i < len; ++i) arr.Append(RandomJson(next(), depth - 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::Object();
      const size_t len = next() % 4;
      for (size_t i = 0; i < len; ++i) {
        obj.Set("k" + std::to_string(i), RandomJson(next(), depth - 1));
      }
      return obj;
    }
  }
}

TEST_P(JsonRoundTripTest, RandomDocumentRoundTrips) {
  JsonValue doc = RandomJson(static_cast<uint64_t>(GetParam()) * 2654435761u + 1,
                             3);
  auto round = Parse(Write(doc));
  ASSERT_TRUE(round.ok()) << Write(doc);
  EXPECT_EQ(doc, round.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace json
}  // namespace sqlgraph
