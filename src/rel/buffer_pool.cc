#include "rel/buffer_pool.h"

#include "obs/metrics.h"

namespace sqlgraph {
namespace rel {

namespace {
// Process-wide registry export, aggregated across pool instances; the
// per-instance hits()/misses() accessors keep their per-pool meaning.
obs::Counter* HitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("rel.buffer_pool.hits");
  return c;
}
obs::Counter* MissCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("rel.buffer_pool.misses");
  return c;
}
obs::Counter* EvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("rel.buffer_pool.evictions");
  return c;
}
}  // namespace

std::shared_ptr<const DecodedPage> BufferPool::Lookup(PageId id) {
  util::MutexLock lock(&mu_);
  auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    MissCounter()->Increment();
    return nullptr;
  }
  ++hits_;
  HitCounter()->Increment();
  // Move to front of LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->page;
}

void BufferPool::Insert(PageId id, std::shared_ptr<const DecodedPage> page) {
  util::MutexLock lock(&mu_);
  auto it = map_.find(id);
  if (it != map_.end()) {
    used_.Write() -= it->second->page->byte_size;
    lru_.erase(it->second);
    map_.erase(it);
  }
  used_.Write() += page->byte_size;
  lru_.push_front(Entry{id, std::move(page)});
  map_[id] = lru_.begin();
  EvictIfNeeded();
}

void BufferPool::Invalidate(PageId id) {
  util::MutexLock lock(&mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  used_.Write() -= it->second->page->byte_size;
  lru_.erase(it->second);
  map_.erase(it);
}

void BufferPool::InvalidateStore(uint32_t store_id) {
  util::MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->id.store_id == store_id) {
      used_.Write() -= it->page->byte_size;
      map_.erase(it->id);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::Clear() {
  util::MutexLock lock(&mu_);
  lru_.clear();
  map_.clear();
  used_.Write() = 0;
  hits_ = misses_ = evictions_ = 0;
}

void BufferPool::set_capacity(size_t bytes) {
  util::MutexLock lock(&mu_);
  capacity_ = bytes;
  EvictIfNeeded();
}

void BufferPool::EvictIfNeeded() {
  while (used_.Read() > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_.Write() -= victim.page->byte_size;
    map_.erase(victim.id);
    lru_.pop_back();
    ++evictions_;
    EvictionCounter()->Increment();
  }
}

}  // namespace rel
}  // namespace sqlgraph
