// Tests for the cross-table invariant auditor (src/sqlgraph/check.cc).
//
// Positive: stores produced by the loader, CRUD paths, Compact and WAL
// recovery audit clean. Negative: each table family is corrupted through
// the raw rel::Table interface (bypassing the CRUD procedures, which is
// exactly what the auditor exists to catch) and the report must flag the
// corruption with the right ViolationClass.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "sqlgraph/check.h"
#include "sqlgraph/snapshot.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace core {
namespace {

using rel::Row;
using rel::RowId;
using rel::Value;

json::JsonValue Attr(const char* key, json::JsonValue value) {
  json::JsonValue obj = json::JsonValue::Object();
  obj.Set(key, std::move(value));
  return obj;
}

graph::PropertyGraph SmallGraph() {
  graph::PropertyGraph g;
  for (int i = 0; i < 6; ++i) {
    g.AddVertex(Attr("name", json::JsonValue("v" + std::to_string(i))));
  }
  (void)g.AddEdge(0, 1, "knows", Attr("w", json::JsonValue(1)));
  (void)g.AddEdge(0, 2, "knows", json::JsonValue::Object());
  (void)g.AddEdge(0, 3, "knows", json::JsonValue::Object());
  (void)g.AddEdge(1, 2, "created", json::JsonValue::Object());
  (void)g.AddEdge(4, 5, "likes", json::JsonValue::Object());
  return g;
}

std::unique_ptr<SqlGraphStore> BuildStore() {
  StoreConfig config;
  config.max_adjacency_colors = 2;  // forces shared columns and lists
  auto built = SqlGraphStore::Build(SmallGraph(), config);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// First live row satisfying `pred`, as (rid, row).
std::optional<std::pair<RowId, Row>> FindRow(
    const rel::Table* table, const std::function<bool(const Row&)>& pred) {
  std::optional<std::pair<RowId, Row>> found;
  table->Scan([&](RowId rid, const Row& row) {
    if (!found.has_value() && pred(row)) found.emplace(rid, row);
  });
  return found;
}

TEST(CheckTest, CleanStorePasses) {
  auto store = BuildStore();
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.rows_audited, 0u);
  EXPECT_EQ(report.total_violations, 0u);
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

TEST(CheckTest, CleanAfterCrudAndCompact) {
  auto store = BuildStore();
  auto vid = store->AddVertex(Attr("name", json::JsonValue("new")));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(store->AddEdge(*vid, 0, "knows", json::JsonValue::Object()).ok());
  ASSERT_TRUE(store->SetVertexAttr(0, "age", json::JsonValue(int64_t{9})).ok());
  ASSERT_TRUE(store->RemoveVertex(2).ok());
  ASSERT_TRUE(store->RemoveEdge(4).ok());
  EXPECT_TRUE(store->CheckConsistency().ok())
      << store->CheckConsistency().ToString();
  ASSERT_TRUE(store->Compact().ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CheckTest, DetectsDuplicateAdjacency) {
  // VA/EA carry unique primary keys, so duplicate ids there are stopped at
  // the rel layer; OPA is where a duplicate can physically appear. Seed a
  // second row for vertex 1 repeating its "created" triad (eid 3 → 2): the
  // label and the edge id are now both doubled in the out direction.
  auto store = BuildStore();
  const size_t colors = store->schema().out_colors;
  Row dup = {Value(int64_t{1}), Value(int64_t{1})};
  for (size_t c = 0; c < colors; ++c) {
    if (store->schema().out_hash.ColorOf("created") % colors == c) {
      dup.insert(dup.end(), {Value(int64_t{3}), Value(std::string("created")),
                             Value(int64_t{2})});
    } else {
      dup.insert(dup.end(), {Value(), Value(), Value()});
    }
  }
  ASSERT_TRUE(store->db()->GetTable(kOpaTable)->Insert(std::move(dup)).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kDuplicateId), 1u);
}

TEST(CheckTest, DetectsMalformedVertexAttr) {
  auto store = BuildStore();
  rel::Table* va = store->db()->GetTable(kVaTable);
  auto row = FindRow(va, [](const Row& r) { return r[0].AsInt() == 3; });
  ASSERT_TRUE(row.has_value());
  // A JSON *array* attribute document violates the "object" contract.
  ASSERT_TRUE(
      va->Update(row->first, {Value(int64_t{3}), Value(json::JsonValue::Array())})
          .ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kJsonMalformed), 1u);
}

TEST(CheckTest, DetectsEaRowForUnknownVertex) {
  auto store = BuildStore();
  ASSERT_TRUE(store->db()
                  ->GetTable(kEaTable)
                  ->Insert({Value(int64_t{77}), Value(int64_t{1234}),
                            Value(int64_t{0}), Value(std::string("knows")),
                            Value(json::JsonValue::Object())})
                  .ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kEaAdjacency), 1u);
}

TEST(CheckTest, DetectsEaAdjacencyDisagreement) {
  auto store = BuildStore();
  rel::Table* ea = store->db()->GetTable(kEaTable);
  auto row = FindRow(ea, [](const Row& r) { return r[0].AsInt() == 0; });
  ASSERT_TRUE(row.has_value());
  Row tampered = row->second;
  tampered[3] = Value(std::string("tampered-label"));
  ASSERT_TRUE(ea->Update(row->first, std::move(tampered)).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kEaAdjacency), 1u);
}

TEST(CheckTest, DetectsMissingEaRow) {
  auto store = BuildStore();
  rel::Table* ea = store->db()->GetTable(kEaTable);
  auto row = FindRow(ea, [](const Row& r) { return r[0].AsInt() == 3; });
  ASSERT_TRUE(row.has_value());
  ASSERT_TRUE(ea->Delete(row->first).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  // The adjacency side dangles, and the EA→adjacency direction is fine;
  // both adjacency directions (OPA and IPA) report the dangling edge.
  EXPECT_GE(report.CountOf(ViolationClass::kAdjacencyDangling), 1u);
}

TEST(CheckTest, DetectsBadSpillFlag) {
  auto store = BuildStore();
  rel::Table* opa = store->db()->GetTable(kOpaTable);
  auto row = FindRow(opa, [](const Row& r) { return r[0].AsInt() == 0; });
  ASSERT_TRUE(row.has_value());
  Row tampered = row->second;
  tampered[1] = Value(int64_t{5});
  ASSERT_TRUE(opa->Update(row->first, std::move(tampered)).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kSpillColoring), 1u);
}

TEST(CheckTest, DetectsLabelInWrongColoredColumn) {
  // The conflict-free coloring folds this small graph into one column, so
  // force the modulo hash to get a second colored column to move into.
  StoreConfig config;
  config.max_adjacency_colors = 2;
  config.use_coloring = false;
  auto built = SqlGraphStore::Build(SmallGraph(), config);
  ASSERT_TRUE(built.ok());
  auto store = std::move(built).value();
  const size_t colors = store->schema().out_colors;
  ASSERT_GE(colors, 2u);
  rel::Table* opa = store->db()->GetTable(kOpaTable);
  // Vertex 0's "knows" triad sits at its colored column; move the whole
  // triad to the other column (also not where the hash puts it).
  const size_t c = store->schema().out_hash.ColorOf("knows") % colors;
  const size_t wrong = (c + 1) % colors;
  auto row = FindRow(opa, [&](const Row& r) {
    return r[0].AsInt() == 0 && !r[3 + 3 * c].is_null();
  });
  ASSERT_TRUE(row.has_value());
  Row tampered = row->second;
  tampered[2 + 3 * wrong] = tampered[2 + 3 * c];
  tampered[3 + 3 * wrong] = tampered[3 + 3 * c];
  tampered[4 + 3 * wrong] = tampered[4 + 3 * c];
  tampered[2 + 3 * c] = Value();
  tampered[3 + 3 * c] = Value();
  tampered[4 + 3 * c] = Value();
  ASSERT_TRUE(opa->Update(row->first, std::move(tampered)).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kSpillColoring), 1u);
}

TEST(CheckTest, DetectsOrphanOverflowList) {
  auto store = BuildStore();
  ASSERT_TRUE(store->db()
                  ->GetTable(kOsaTable)
                  ->Insert({Value(kLidBase + 999), Value(int64_t{0}),
                            Value(int64_t{1})})
                  .ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kListLinkage), 1u);
}

TEST(CheckTest, DetectsListIdBelowBase) {
  auto store = BuildStore();
  ASSERT_TRUE(store->db()
                  ->GetTable(kIsaTable)
                  ->Insert({Value(int64_t{17}), Value(int64_t{0}),
                            Value(int64_t{1})})
                  .ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kListLinkage), 1u);
}

TEST(CheckTest, DetectsHalfDeletedVertex) {
  auto store = BuildStore();
  // Negate vertex 4's OPA row without touching VA: the store's soft delete
  // always does both, so a lone negation is corruption.
  rel::Table* opa = store->db()->GetTable(kOpaTable);
  auto row = FindRow(opa, [](const Row& r) { return r[0].AsInt() == 4; });
  ASSERT_TRUE(row.has_value());
  Row tampered = row->second;
  tampered[0] = Value(int64_t{-4 - 1});
  ASSERT_TRUE(opa->Update(row->first, std::move(tampered)).ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kSoftDelete), 1u);
}

TEST(CheckTest, DetectsCounterBehindStoredIds) {
  auto store = BuildStore();
  ASSERT_TRUE(
      store->db()
          ->GetTable(kVaTable)
          ->Insert({Value(int64_t{1000000}), Value(json::JsonValue::Object())})
          .ok());
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(ViolationClass::kCounter), 1u);
}

TEST(CheckTest, ReportTruncatesButKeepsCounting) {
  auto store = BuildStore();
  rel::Table* osa = store->db()->GetTable(kOsaTable);
  for (int64_t i = 0; i < 150; ++i) {
    // 150 orphan overflow lists → >100 violations.
    ASSERT_TRUE(osa->Insert({Value(kLidBase + 100000 + i), Value(int64_t{0}),
                             Value(int64_t{1})})
                    .ok());
  }
  const ConsistencyReport report = store->CheckConsistency();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.violations.size(), ConsistencyReport::kMaxViolations);
  EXPECT_GT(report.total_violations, ConsistencyReport::kMaxViolations);
}

TEST(CheckTest, SnapshotRoundTripAuditsClean) {
  auto store = BuildStore();
  ASSERT_TRUE(store->RemoveVertex(1).ok());  // include soft-deleted state
  const std::string path =
      std::string(::testing::TempDir()) + "/check_roundtrip.sqlg";
  ASSERT_TRUE(SaveSnapshot(*store, path).ok());
  auto reopened = OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const ConsistencyReport report = (*reopened)->CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace core
}  // namespace sqlgraph
