#include "wal/log_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sqlgraph {
namespace wal {

using util::Result;
using util::Status;

Result<LogReadResult> ReadLogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("wal segment " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string buf = ss.str();

  LogReadResult result;
  result.file_bytes = buf.size();
  size_t offset = 0;
  while (offset < buf.size()) {
    Record rec;
    Status st = DecodeRecord(buf, &offset, &rec);
    if (!st.ok()) {
      result.clean = false;
      result.tail_error = st.ToString();
      break;
    }
    result.records.push_back(std::move(rec));
  }
  result.valid_bytes = offset;
  return result;
}

Status TruncateLog(const std::string& path, uint64_t size) {
  // Truncate through a descriptor and fsync it: without the sync, another
  // crash could resurrect the discarded tail bytes beyond the new append
  // position, corrupting records written after recovery.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("wal: cannot open " + path + " for truncate: " +
                            std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("wal: truncate of " + path + " failed: " + err);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("wal: fsync of truncated " + path + " failed: " +
                            err);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace wal
}  // namespace sqlgraph
