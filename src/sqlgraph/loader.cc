#include "sqlgraph/loader.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace sqlgraph {
namespace core {

using graph::Edge;
using graph::EdgeId;
using graph::PropertyGraph;
using graph::VertexId;
using rel::Row;
using rel::Value;
using util::Result;
using util::Status;

GraphSchema AnalyzeGraph(const graph::PropertyGraph& graph,
                         const StoreConfig& config) {
  GraphSchema schema;
  if (config.use_coloring) {
    coloring::CooccurrenceGraph out_cooc;
    coloring::CooccurrenceGraph in_cooc;
    std::vector<std::string> labels;
    for (VertexId v = 0; v < static_cast<VertexId>(graph.NumVertices()); ++v) {
      labels.clear();
      for (EdgeId e : graph.OutEdges(v)) labels.push_back(graph.edge(e).label);
      if (!labels.empty()) out_cooc.AddGroup(labels);
      labels.clear();
      for (EdgeId e : graph.InEdges(v)) labels.push_back(graph.edge(e).label);
      if (!labels.empty()) in_cooc.AddGroup(labels);
    }
    schema.out_hash =
        coloring::ColoredHash::Build(out_cooc, config.max_adjacency_colors);
    schema.in_hash =
        coloring::ColoredHash::Build(in_cooc, config.max_adjacency_colors);
  } else {
    std::vector<std::string> labels;
    for (const auto& [label, count] : graph.LabelHistogram()) {
      (void)count;
      labels.push_back(label);
    }
    schema.out_hash =
        coloring::ColoredHash::BuildModulo(labels, config.max_adjacency_colors);
    schema.in_hash =
        coloring::ColoredHash::BuildModulo(labels, config.max_adjacency_colors);
  }
  schema.out_colors = std::max<size_t>(1, schema.out_hash.num_colors());
  schema.in_colors = std::max<size_t>(1, schema.in_hash.num_colors());
  if (config.max_adjacency_colors > 0) {
    schema.out_colors =
        std::min(schema.out_colors, config.max_adjacency_colors);
    schema.in_colors = std::min(schema.in_colors, config.max_adjacency_colors);
  }
  return schema;
}

namespace {

/// One in-progress adjacency row: per column triad, an optional entry.
struct PendingEntry {
  bool used = false;
  Value eid;    // NULL for multi-valued
  Value label;
  Value val;    // neighbor vid or lid
};

/// Shreds one vertex's adjacency (one direction) into rows; appends them to
/// the table and multi-value lists to the secondary table.
struct DirectionLoader {
  rel::Table* primary;
  rel::Table* secondary;
  const coloring::ColoredHash* hash;
  size_t colors;
  int64_t* next_lid;
  size_t spill_rows = 0;
  size_t secondary_rows = 0;

  /// `entries`: label → list of (eid, neighbor vid), insertion-ordered.
  Status LoadVertex(
      VertexId vid,
      const std::vector<std::pair<std::string,
                                  std::vector<std::pair<EdgeId, VertexId>>>>&
          entries) {
    if (entries.empty()) return Status::OK();
    std::vector<std::vector<PendingEntry>> rows;
    for (const auto& [label, edge_list] : entries) {
      const size_t c = hash->ColorOf(label) % colors;
      // Find the first row whose column c is free (spill on conflict).
      size_t r = 0;
      while (r < rows.size() && rows[r][c].used) ++r;
      if (r == rows.size()) rows.emplace_back(colors);
      PendingEntry& slot = rows[r][c];
      slot.used = true;
      slot.label = Value(label);
      if (edge_list.size() == 1) {
        slot.eid = Value(static_cast<int64_t>(edge_list[0].first));
        slot.val = Value(static_cast<int64_t>(edge_list[0].second));
      } else {
        const int64_t lid = (*next_lid)++;
        slot.eid = Value::Null();
        slot.val = Value(lid);
        for (const auto& [eid, nbr] : edge_list) {
          RETURN_NOT_OK(secondary
                            ->Insert({Value(lid), Value(static_cast<int64_t>(eid)),
                                      Value(static_cast<int64_t>(nbr))})
                            .status());
          ++secondary_rows;
        }
      }
    }
    const int64_t spill_flag = rows.size() > 1 ? 1 : 0;
    spill_rows += rows.size() - 1;
    for (const auto& row : rows) {
      Row out;
      out.reserve(2 + 3 * colors);
      out.push_back(Value(static_cast<int64_t>(vid)));
      out.push_back(Value(spill_flag));
      for (const auto& slot : row) {
        if (slot.used) {
          out.push_back(slot.eid);
          out.push_back(slot.label);
          out.push_back(slot.val);
        } else {
          out.push_back(Value::Null());
          out.push_back(Value::Null());
          out.push_back(Value::Null());
        }
      }
      RETURN_NOT_OK(primary->Insert(std::move(out)).status());
    }
    return Status::OK();
  }
};

/// Groups a vertex's edges by label, preserving first-seen label order.
std::vector<std::pair<std::string, std::vector<std::pair<EdgeId, VertexId>>>>
GroupByLabel(const PropertyGraph& graph, const std::vector<EdgeId>& edge_ids,
             bool use_dst) {
  std::vector<std::pair<std::string, std::vector<std::pair<EdgeId, VertexId>>>>
      grouped;
  std::unordered_map<std::string, size_t> index;
  for (EdgeId e : edge_ids) {
    const Edge& edge = graph.edge(e);
    const VertexId nbr = use_dst ? edge.dst : edge.src;
    auto [it, inserted] = index.emplace(edge.label, grouped.size());
    if (inserted) grouped.emplace_back(edge.label, decltype(grouped)::value_type::second_type{});
    grouped[it->second].second.emplace_back(e, nbr);
  }
  return grouped;
}

}  // namespace

Result<LoadStats> BulkLoad(const PropertyGraph& graph,
                           const GraphSchema& schema,
                           const StoreConfig& config, rel::Database* db,
                           int64_t* next_lid) {
  RETURN_NOT_OK(schema.CreateTables(db, config));
  rel::Table* opa = db->GetTable(kOpaTable);
  rel::Table* ipa = db->GetTable(kIpaTable);
  rel::Table* osa = db->GetTable(kOsaTable);
  rel::Table* isa = db->GetTable(kIsaTable);
  rel::Table* va = db->GetTable(kVaTable);
  rel::Table* ea = db->GetTable(kEaTable);

  DirectionLoader out_loader{opa, osa, &schema.out_hash, schema.out_colors,
                             next_lid};
  DirectionLoader in_loader{ipa, isa, &schema.in_hash, schema.in_colors,
                            next_lid};

  for (VertexId v = 0; v < static_cast<VertexId>(graph.NumVertices()); ++v) {
    RETURN_NOT_OK(va->Insert({Value(static_cast<int64_t>(v)),
                              Value(graph.vertex(v).attrs)})
                      .status());
    RETURN_NOT_OK(out_loader.LoadVertex(
        v, GroupByLabel(graph, graph.OutEdges(v), /*use_dst=*/true)));
    RETURN_NOT_OK(in_loader.LoadVertex(
        v, GroupByLabel(graph, graph.InEdges(v), /*use_dst=*/false)));
  }
  for (const Edge& edge : graph.edges()) {
    RETURN_NOT_OK(ea->Insert({Value(static_cast<int64_t>(edge.id)),
                              Value(static_cast<int64_t>(edge.src)),
                              Value(static_cast<int64_t>(edge.dst)),
                              Value(edge.label), Value(edge.attrs)})
                      .status());
  }
  RETURN_NOT_OK(schema.CreateIndexes(db, config));

  LoadStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.out_colors = schema.out_colors;
  stats.in_colors = schema.in_colors;
  stats.num_out_labels = schema.out_hash.num_labels();
  stats.num_in_labels = schema.in_hash.num_labels();
  auto max_bucket = [](const coloring::ColoredHash& h) {
    size_t best = 0;
    for (size_t b : h.ColorHistogram()) best = std::max(best, b);
    return best;
  };
  stats.max_out_bucket = max_bucket(schema.out_hash);
  stats.max_in_bucket = max_bucket(schema.in_hash);
  stats.out_spill_rows = out_loader.spill_rows;
  stats.in_spill_rows = in_loader.spill_rows;
  stats.osa_rows = out_loader.secondary_rows;
  stats.isa_rows = in_loader.secondary_rows;
  if (stats.num_vertices > 0) {
    stats.out_spill_pct = 100.0 * static_cast<double>(stats.out_spill_rows) /
                          static_cast<double>(stats.num_vertices);
    stats.in_spill_pct = 100.0 * static_cast<double>(stats.in_spill_rows) /
                         static_cast<double>(stats.num_vertices);
  }
  return stats;
}

}  // namespace core
}  // namespace sqlgraph
