#include "graph/analytics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rel/database.h"
#include "rel/schema.h"
#include "rel/table.h"
#include "sql/executor.h"
#include "sqlgraph/schema.h"
#include "sqlgraph/store.h"
#include "util/status.h"

namespace sqlgraph {
namespace graph {
namespace {

using util::Result;
using util::Status;

constexpr char kEdgeScratch[] = "__an_edge";
constexpr char kUndScratch[] = "__an_und";
constexpr char kCanonScratch[] = "__an_cedge";
constexpr char kRankScratch[] = "__an_rank";
constexpr char kLabelScratch[] = "__an_lbl";

/// Live adjacency snapshot: vertex ids plus directed (src, dst) edge pairs.
/// Soft-deleted rows (negative ids, §4.5.2) are excluded.
struct Adjacency {
  std::vector<int64_t> vids;
  std::vector<std::pair<int64_t, int64_t>> edges;  // (src, dst) = (INV, OUTV)
};

Result<Adjacency> SnapshotAdjacency(core::SqlGraphStore* store) {
  Adjacency adj;
  const rel::Table* va = store->db()->GetTable(core::kVaTable);
  const rel::Table* ea = store->db()->GetTable(core::kEaTable);
  if (va == nullptr || ea == nullptr) {
    return Status::Internal("store is missing VA/EA tables");
  }
  va->Scan([&](rel::RowId, const rel::Row& row) {
    const int64_t vid = row[0].AsInt();
    if (vid >= 0) adj.vids.push_back(vid);
  });
  std::sort(adj.vids.begin(), adj.vids.end());
  // EA(EID, INV, OUTV, LBL, ATTR): this codebase stores the edge source in
  // INV and the destination in OUTV (see graph/property_graph.h), so the
  // edge runs INV -> OUTV.
  ea->Scan([&](rel::RowId, const rel::Row& row) {
    const int64_t eid = row[0].AsInt();
    const int64_t inv = row[1].AsInt();
    const int64_t outv = row[2].AsInt();
    if (eid >= 0 && inv >= 0 && outv >= 0) adj.edges.emplace_back(inv, outv);
  });
  return adj;
}

/// Drops (if present) and recreates an index-free scratch table so the
/// planner has no choice but sequential scan + hash join over it.
Result<rel::Table*> ResetScratch(
    rel::Database* db, const std::string& name,
    const std::vector<std::pair<std::string, rel::ColumnType>>& cols) {
  util::Status dropped = db->DropTable(name);  // absent on first use
  (void)dropped;
  rel::Schema schema;
  for (const auto& [col, type] : cols) schema.AddColumn(col, type);
  return db->CreateTable(name, std::move(schema));
}

/// RAII cleanup: analytics scratch tables never outlive the call.
class ScratchDropper {
 public:
  ScratchDropper(rel::Database* db, std::vector<std::string> names)
      : db_(db), names_(std::move(names)) {}
  ~ScratchDropper() {
    for (const auto& n : names_) {
      util::Status dropped = db_->DropTable(n);
      (void)dropped;
    }
  }

 private:
  rel::Database* db_;
  std::vector<std::string> names_;
};

Status FillEdgeTable(rel::Table* table,
                     const std::vector<std::pair<int64_t, int64_t>>& edges) {
  for (const auto& [src, dst] : edges) {
    RETURN_NOT_OK(
        table->Insert({rel::Value(src), rel::Value(dst)}).status());
  }
  return Status::OK();
}

sql::Executor MakeExecutor(core::SqlGraphStore* store,
                           const AnalyticsOptions& options) {
  sql::Executor::Options eopts;
  eopts.vectorized = options.vectorized;
  return sql::Executor(store->db(), eopts);
}

}  // namespace

Result<PageRankResult> PageRank(core::SqlGraphStore* store,
                                const AnalyticsOptions& options) {
  ASSIGN_OR_RETURN(Adjacency adj, SnapshotAdjacency(store));
  PageRankResult result;
  const size_t n = adj.vids.size();
  if (n == 0) return result;

  std::unordered_map<int64_t, int64_t> outdeg;
  outdeg.reserve(n);
  for (const auto& [src, dst] : adj.edges) ++outdeg[src];

  rel::Database* db = store->db();
  ScratchDropper dropper(db, {kEdgeScratch, kRankScratch});
  ASSIGN_OR_RETURN(rel::Table * edge_table,
                   ResetScratch(db, kEdgeScratch,
                                {{"SRC", rel::ColumnType::kInt64},
                                 {"DST", rel::ColumnType::kInt64}}));
  RETURN_NOT_OK(FillEdgeTable(edge_table, adj.edges));

  std::unordered_map<int64_t, double> rank;
  rank.reserve(n);
  for (int64_t vid : adj.vids) rank[vid] = 1.0 / static_cast<double>(n);

  sql::Executor exec = MakeExecutor(store, options);
  const std::string query =
      "SELECT t.DST AS VID, SUM(r.CONTRIB) AS S "
      "FROM __an_rank r, __an_edge t WHERE t.SRC = r.VID GROUP BY t.DST";
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ASSIGN_OR_RETURN(rel::Table * rank_table,
                     ResetScratch(db, kRankScratch,
                                  {{"VID", rel::ColumnType::kInt64},
                                   {"CONTRIB", rel::ColumnType::kDouble}}));
    for (int64_t vid : adj.vids) {
      auto deg = outdeg.find(vid);
      if (deg == outdeg.end()) continue;  // dangling: contributes nothing
      RETURN_NOT_OK(rank_table
                        ->Insert({rel::Value(vid),
                                  rel::Value(rank[vid] /
                                             static_cast<double>(
                                                 deg->second))})
                        .status());
    }
    ASSIGN_OR_RETURN(sql::ResultSet res, exec.ExecuteSql(query));
    std::unordered_map<int64_t, double> next;
    next.reserve(n);
    for (int64_t vid : adj.vids) next[vid] = base;
    for (const auto& row : res.rows) {
      next[row[0].AsInt()] += options.damping * row[1].AsDouble();
    }
    double delta = 0;
    for (const auto& [vid, r] : next) delta += std::fabs(r - rank[vid]);
    rank = std::move(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) break;
  }

  result.ranks.reserve(n);
  for (int64_t vid : adj.vids) result.ranks.emplace_back(vid, rank[vid]);
  return result;
}

Result<WccResult> WeaklyConnectedComponents(core::SqlGraphStore* store,
                                            const AnalyticsOptions& options) {
  ASSIGN_OR_RETURN(Adjacency adj, SnapshotAdjacency(store));
  WccResult result;
  const size_t n = adj.vids.size();
  if (n == 0) return result;

  rel::Database* db = store->db();
  ScratchDropper dropper(db, {kUndScratch, kLabelScratch});
  std::vector<std::pair<int64_t, int64_t>> und;
  und.reserve(adj.edges.size() * 2);
  for (const auto& [src, dst] : adj.edges) {
    und.emplace_back(src, dst);
    und.emplace_back(dst, src);
  }
  ASSIGN_OR_RETURN(rel::Table * und_table,
                   ResetScratch(db, kUndScratch,
                                {{"SRC", rel::ColumnType::kInt64},
                                 {"DST", rel::ColumnType::kInt64}}));
  RETURN_NOT_OK(FillEdgeTable(und_table, und));

  std::unordered_map<int64_t, int64_t> label;
  label.reserve(n);
  for (int64_t vid : adj.vids) label[vid] = vid;

  sql::Executor exec = MakeExecutor(store, options);
  const std::string query =
      "SELECT e.DST AS VID, MIN(l.LBL) AS M "
      "FROM __an_lbl l, __an_und e WHERE e.SRC = l.VID GROUP BY e.DST";
  // Min-label propagation converges within |V| rounds on any graph.
  for (size_t iter = 0; iter < n + 1; ++iter) {
    ASSIGN_OR_RETURN(rel::Table * lbl_table,
                     ResetScratch(db, kLabelScratch,
                                  {{"VID", rel::ColumnType::kInt64},
                                   {"LBL", rel::ColumnType::kInt64}}));
    for (const auto& [vid, lbl] : label) {
      RETURN_NOT_OK(
          lbl_table->Insert({rel::Value(vid), rel::Value(lbl)}).status());
    }
    ASSIGN_OR_RETURN(sql::ResultSet res, exec.ExecuteSql(query));
    bool changed = false;
    for (const auto& row : res.rows) {
      const int64_t vid = row[0].AsInt();
      const int64_t m = row[1].AsInt();
      auto it = label.find(vid);
      if (it != label.end() && m < it->second) {
        it->second = m;
        changed = true;
      }
    }
    result.iterations = static_cast<int>(iter) + 1;
    if (!changed) break;
  }

  result.components.reserve(n);
  for (int64_t vid : adj.vids) result.components.emplace_back(vid, label[vid]);
  return result;
}

Result<int64_t> TriangleCount(core::SqlGraphStore* store,
                              const AnalyticsOptions& options) {
  ASSIGN_OR_RETURN(Adjacency adj, SnapshotAdjacency(store));
  // Canonical undirected edge set: (min, max), self-loops dropped,
  // parallel/reciprocal duplicates collapsed.
  std::set<std::pair<int64_t, int64_t>> canon;
  for (const auto& [src, dst] : adj.edges) {
    if (src == dst) continue;
    canon.emplace(std::min(src, dst), std::max(src, dst));
  }
  if (canon.empty()) return int64_t{0};

  rel::Database* db = store->db();
  ScratchDropper dropper(db, {kCanonScratch});
  ASSIGN_OR_RETURN(rel::Table * canon_table,
                   ResetScratch(db, kCanonScratch,
                                {{"SRC", rel::ColumnType::kInt64},
                                 {"DST", rel::ColumnType::kInt64}}));
  for (const auto& [src, dst] : canon) {
    RETURN_NOT_OK(
        canon_table->Insert({rel::Value(src), rel::Value(dst)}).status());
  }

  sql::Executor exec = MakeExecutor(store, options);
  // Triangle a < b < c matches exactly once: e1=(a,b), e2=(b,c), e3=(a,c).
  ASSIGN_OR_RETURN(
      sql::ResultSet res,
      exec.ExecuteSql(
          "SELECT COUNT(*) AS N FROM __an_cedge e1, __an_cedge e2, "
          "__an_cedge e3 WHERE e2.SRC = e1.DST AND e3.SRC = e1.SRC AND "
          "e3.DST = e2.DST"));
  if (res.rows.size() != 1 || res.rows[0].empty()) {
    return Status::Internal("triangle count query returned no row");
  }
  return res.rows[0][0].AsInt();
}

}  // namespace graph
}  // namespace sqlgraph
