#include "rel/index.h"

#include <algorithm>

namespace sqlgraph {
namespace rel {

namespace {
template <typename Map>
util::Status InsertImpl(Map* map, size_t* entries, bool unique,
                        const std::string& name, const IndexKey& key,
                        RowId rid) {
  auto& bucket = (*map)[key];
  if (unique && !bucket.empty()) {
    return util::Status::AlreadyExists("duplicate key in unique index " + name);
  }
  bucket.push_back(rid);
  ++*entries;
  return util::Status::OK();
}

template <typename Map>
void RemoveImpl(Map* map, size_t* entries, const IndexKey& key, RowId rid) {
  auto it = map->find(key);
  if (it == map->end()) return;
  auto& bucket = it->second;
  auto pos = std::find(bucket.begin(), bucket.end(), rid);
  if (pos == bucket.end()) return;
  bucket.erase(pos);
  --*entries;
  if (bucket.empty()) map->erase(it);
}
}  // namespace

Value Index::ExtractJsonVal(const Value& column_value) const {
  if (!column_value.is_json()) return Value::Null();
  const json::JsonValue* member = column_value.AsJson().Find(json_key_);
  if (member == nullptr) return Value::Null();
  switch (member->type()) {
    case json::JsonType::kNull: return Value::Null();
    case json::JsonType::kBool: return Value(member->AsBool());
    case json::JsonType::kInt: return Value(member->AsInt());
    case json::JsonType::kDouble: return Value(member->AsDouble());
    case json::JsonType::kString: return Value(member->AsString());
    default: return Value(*member);  // arrays/objects stay JSON
  }
}

util::Status HashIndex::Insert(const IndexKey& key, RowId rid) {
  return InsertImpl(&map_, &entries_, unique_, name_, key, rid);
}

void HashIndex::Remove(const IndexKey& key, RowId rid) {
  RemoveImpl(&map_, &entries_, key, rid);
}

void HashIndex::Lookup(const IndexKey& key, std::vector<RowId>* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

util::Status OrderedIndex::Insert(const IndexKey& key, RowId rid) {
  return InsertImpl(&map_, &entries_, unique_, name_, key, rid);
}

void OrderedIndex::Remove(const IndexKey& key, RowId rid) {
  RemoveImpl(&map_, &entries_, key, rid);
}

void OrderedIndex::Lookup(const IndexKey& key, std::vector<RowId>* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

void OrderedIndex::Range(const Value& lo, bool lo_inclusive, const Value& hi,
                         bool hi_inclusive, std::vector<RowId>* out) const {
  auto it = map_.begin();
  if (!lo.is_null()) {
    IndexKey lo_key;
    lo_key.parts.push_back(lo);
    it = lo_inclusive ? map_.lower_bound(lo_key) : map_.upper_bound(lo_key);
    // upper_bound on a 1-part key still admits composite keys with the same
    // first part; advance past them for the exclusive case.
    if (!lo_inclusive) {
      while (it != map_.end() && !it->first.parts.empty() &&
             it->first.parts[0] == lo) {
        ++it;
      }
    }
  }
  for (; it != map_.end(); ++it) {
    if (!hi.is_null() && !it->first.parts.empty()) {
      const int c = it->first.parts[0].Compare(hi);
      if (c > 0 || (c == 0 && !hi_inclusive)) break;
    }
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

}  // namespace rel
}  // namespace sqlgraph
