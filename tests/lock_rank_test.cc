// Tests for the runtime lock-rank validator (util/lock_rank.h) and the
// annotated mutex shims (util/thread_annotations.h).
//
// Death tests prove that a hierarchy inversion aborts with the documented
// "lock-rank violation" diagnostic instead of deadlocking; the positive
// tests drive every acquisition shape the real subsystems use (ascending
// ranks, same-rank sub-orders, out-of-order release, condvar-style
// unlock/relock) with checking force-enabled, and an end-to-end test runs
// concurrent store CRUD + checkpoints + SQL under the validator so any rank
// misassignment in the production hierarchy aborts the suite. These tests
// must also run clean under TSan (ci/check.sh builds the suite with
// -fsanitize=thread).

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "json/json_parser.h"
#include "rel/buffer_pool.h"
#include "rel/lock_manager.h"
#include "sqlgraph/store.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"
#include "wal/durability.h"

namespace sqlgraph {
namespace util {
namespace {

namespace fs = std::filesystem;

/// Force-enables rank checking for one test and restores the previous
/// setting afterwards (tier-1 runs in Release, where the default is off).
class ScopedRankChecking {
 public:
  explicit ScopedRankChecking(bool enabled)
      : prev_(LockRankCheckingEnabled()) {
    SetLockRankCheckingEnabled(enabled);
  }
  ~ScopedRankChecking() { SetLockRankCheckingEnabled(prev_); }

 private:
  const bool prev_;
};

// ------------------------------------------------------------ inversions --

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(LockRank::kWalRotate, "low");
  Mutex high(LockRank::kBufferPool, "high");
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        high.lock();
        low.lock();  // rank 10 after rank 50: inversion
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SharedAcquisitionIsAlsoChecked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex low(LockRank::kWalRotate, "rotate");
  Mutex high(LockRank::kWalWriter, "writer");
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        high.lock();
        low.lock_shared();  // shared mode does not excuse the inversion
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankEqualOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two stripes with the same (rank, order) pair — acquiring the second
  // while holding the first is exactly the two-stripe deadlock.
  SharedMutex a(LockRank::kRowStripe, "stripe", 7);
  SharedMutex b(LockRank::kRowStripe, "stripe", 7);
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        a.lock();
        b.lock();
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankDescendingOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex s3(LockRank::kStoreTable, "table_isa", 3);
  SharedMutex s1(LockRank::kStoreTable, "table_ipa", 1);
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        s3.lock();
        s1.lock();  // descending TableIdx order
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kBufferPool, "pool");
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        mu.lock();
        mu.lock();  // std::mutex UB, caught before it deadlocks
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, TryLockSuccessIsChecked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(LockRank::kThreadPool, "pool");
  Mutex high(LockRank::kMetricsRegistry, "metrics");
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        high.lock();
        // The try_lock succeeds (nobody holds `low`), which still leaves
        // this thread holding locks in an undocumented order.
        (void)low.try_lock();
      },
      "lock-rank violation");
}

// -------------------------------------------------------- positive paths --

TEST(LockRankTest, AscendingRanksAreClean) {
  ScopedRankChecking check(true);
  SharedMutex rotate(LockRank::kWalRotate, "rotate");
  SharedMutex table(LockRank::kStoreTable, "table_va", 4);
  SharedMutex counter(LockRank::kStoreCounter, "counter");
  Mutex writer(LockRank::kWalWriter, "writer");
  Mutex metrics(LockRank::kMetricsRegistry, "metrics");
  // The CRUD commit shape: rotate(shared) → table → counter → wal → metrics.
  rotate.lock_shared();
  table.lock();
  counter.lock();
  metrics.lock();
  metrics.unlock();
  counter.unlock();
  writer.lock();
  writer.unlock();
  table.unlock();
  rotate.unlock_shared();
}

TEST(LockRankTest, SameRankAscendingOrderIsClean) {
  ScopedRankChecking check(true);
  rel::LockManager lm;
  // PairExclusiveGuard sorts stripes ascending; random key pairs must never
  // trip the validator.
  for (uint64_t a = 0; a < 32; ++a) {
    rel::LockManager::PairExclusiveGuard guard(&lm, a, a * 977 + 13);
  }
}

TEST(LockRankTest, OutOfOrderReleaseIsClean) {
  ScopedRankChecking check(true);
  // WriteLock's guard vectors destroy in non-LIFO order; release must
  // remove by identity, not pop, or the next acquisition misfires.
  Mutex a(LockRank::kWalRotate, "a");
  Mutex b(LockRank::kBufferPool, "b");
  a.lock();
  b.lock();
  a.unlock();  // released before b despite being acquired first
  b.unlock();
  a.lock();  // stack must be empty again
  a.unlock();
}

TEST(LockRankTest, UnrankedMutexesAreNotTracked) {
  ScopedRankChecking check(true);
  Mutex ranked(LockRank::kMetricsRegistry, "metrics");
  Mutex unranked;  // default-constructed: annotations only
  ranked.lock();
  unranked.lock();  // would be an inversion if the unranked lock ranked
  unranked.unlock();
  ranked.unlock();
}

TEST(LockRankTest, DisabledCheckingIgnoresInversions) {
  ScopedRankChecking check(false);
  Mutex low(LockRank::kWalRotate, "low");
  Mutex high(LockRank::kBufferPool, "high");
  high.lock();
  low.lock();  // inversion, but the validator is off
  low.unlock();
  high.unlock();
}

TEST(LockRankTest, WaitReacquisitionReenters) {
  ScopedRankChecking check(true);
  // condition_variable_any routes its unlock/relock through the shim; the
  // relock after a wait must re-enter the rank stack cleanly. Simulate the
  // unlock/relock pair std::unique_lock performs around a wait.
  Mutex mu(LockRank::kWalWriter, "writer");
  std::unique_lock<Mutex> lock(mu);
  lock.unlock();
  lock.lock();
}

// --------------------------------------------------- production hierarchy --

json::JsonValue Attrs(std::initializer_list<std::pair<const char*, int>> kv) {
  json::JsonValue obj = json::JsonValue::Object();
  for (const auto& [k, v] : kv) obj.Set(k, json::JsonValue(int64_t{v}));
  return obj;
}

// Concurrent CRUD + SQL + checkpoints with the validator on: every lock
// acquisition the store makes is checked against the documented hierarchy,
// so a misranked mutex aborts here rather than deadlocking in production.
TEST(LockRankTest, StoreWorkloadRespectsHierarchy) {
  ScopedRankChecking check(true);
  core::StoreConfig config;
  config.durability_dir =
      std::string(::testing::TempDir()) + "/lock_rank_store";
  fs::remove_all(config.durability_dir);
  auto store = wal::OpenDurableStore(config);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto v = (*store)->AddVertex(Attrs({{"n", i}}));
        if (!v.ok()) {
          failed = true;
          return;
        }
        if (i > 0) {
          auto e = (*store)->AddEdge(*v - 1, *v, "next", Attrs({}));
          if (!e.ok()) failed = true;
          (void)(*store)->Out(*v - 1);
          (void)(*store)->CountOutEdges(*v - 1, "next");
        }
        if (t == 0 && i % 16 == 0) {
          if (!(*store)->Checkpoint().ok()) failed = true;
        }
        if (i % 8 == 0) {
          auto rs = (*store)->ExecuteSql("SELECT COUNT(*) FROM VA");
          if (!rs.ok()) failed = true;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  fs::remove_all(config.durability_dir);
}

// ------------------------------------------- buffer-pool race regressions --

// Regression: hits()/misses()/evictions()/cached_bytes()/capacity() used to
// read their counters without the pool mutex — a data race against any
// concurrent Lookup/Insert (TSan catches reversions of the fix here).
TEST(BufferPoolStatsTest, AccessorsAreRaceFreeAgainstWriters) {
  rel::BufferPool pool(1 << 16);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      sink += pool.hits() + pool.misses() + pool.evictions() +
              pool.cached_bytes() + pool.capacity();
    }
    EXPECT_GE(sink, 0u);
  });
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (uint32_t i = 0; i < 500; ++i) {
        auto page = std::make_shared<rel::DecodedPage>();
        page->byte_size = 512;
        const rel::PageId id{static_cast<uint32_t>(t), i};
        pool.Insert(id, std::move(page));
        (void)pool.Lookup(id);
        (void)pool.Lookup(rel::PageId{static_cast<uint32_t>(t), i + 1});
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // Every Lookup above was counted exactly once under the lock.
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kWriters) * 1000u);
}

// Regression: NextStoreId() used to be `return next_store_id_++;` with no
// synchronization — concurrent paged-store creation could hand out the same
// store id twice, silently mixing two stores' pages in the pool.
TEST(BufferPoolStatsTest, NextStoreIdIsUniqueUnderConcurrency) {
  rel::BufferPool pool(1 << 16);
  constexpr int kThreads = 4;
  constexpr int kIdsPerThread = 250;
  std::vector<std::vector<uint32_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kIdsPerThread);
      for (int i = 0; i < kIdsPerThread; ++i) ids[t].push_back(pool.NextStoreId());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint32_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate store id handed out";
}

}  // namespace
}  // namespace util
}  // namespace sqlgraph
