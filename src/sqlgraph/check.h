// Cross-table invariant auditor for the Fig. 5 schema.
//
// SqlGraphStore::CheckConsistency() (src/sqlgraph/check.cc) walks all six
// tables and verifies every invariant the paper's schema implies but the
// relational substrate cannot express as a constraint:
//
//  * EA's redundant (INV, OUTV, LBL) copy agrees with OPA/OSA and IPA/ISA,
//  * OSA/ISA overflow lists are linked from exactly one triad each,
//  * labels sit in the triad column the coloring hash assigns them and
//    SPILL flags match the row multiplicity,
//  * soft-deleted ids (VID → -VID-1, §4.5.2) stay consistent across tables
//    and never alias a live id,
//  * VA/EA attribute documents are well-formed JSON objects,
//  * id counters run ahead of every stored id.
//
// The report is structured so tests (tests/check_test.cc), the fuzzing
// harness (src/fuzz/fuzz_store_ops.cc) and operators (examples --check) can
// all assert on violation classes rather than parse text.

#ifndef SQLGRAPH_SQLGRAPH_CHECK_H_
#define SQLGRAPH_SQLGRAPH_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sqlgraph {
namespace core {

enum class ViolationClass {
  kTableShape = 0,     // missing table, wrong column count/type in a row
  kDuplicateId,        // duplicate VA/EA keys, duplicate label triads or eids
  kEaAdjacency,        // EA row and OPA/IPA adjacency disagree
  kAdjacencyDangling,  // adjacency references an edge/vertex that is gone
  kListLinkage,        // OSA/ISA overflow list linkage broken
  kSpillColoring,      // triad in wrong colored column or SPILL flag wrong
  kSoftDelete,         // negated ids inconsistent across tables
  kJsonMalformed,      // VA/EA ATTR not a well-formed JSON object
  kCounter,            // id counter not ahead of stored ids
};

const char* ViolationClassName(ViolationClass c);

struct Violation {
  ViolationClass cls;
  std::string table;   // table the violation anchors to
  int64_t id = 0;      // vid/eid/lid involved (0 when not applicable)
  std::string detail;  // human-readable description

  std::string ToString() const;
};

struct ConsistencyReport {
  /// Detail cap: scanning continues past it (total_violations keeps
  /// counting) but further Violation entries are dropped.
  static constexpr size_t kMaxViolations = 100;

  std::vector<Violation> violations;
  size_t total_violations = 0;  // true count, including dropped entries
  bool truncated = false;       // violations hit kMaxViolations
  size_t rows_audited = 0;      // rows scanned across all six tables

  bool ok() const { return total_violations == 0; }
  /// Number of recorded violations of one class (capped entries only).
  size_t CountOf(ViolationClass c) const;
  /// Multi-line summary: one header line plus one line per violation.
  std::string ToString() const;
};

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_CHECK_H_
