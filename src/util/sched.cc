// Deterministic schedule-exploration controller. See sched.h for the model.
//
// Execution model: each participant body runs on its own thread, but the
// controller serializes them — a thread only runs between two of its own
// scheduling points while every other participant is parked. The driver
// (the Explorer's calling thread) waits until all participants are parked,
// computes the enabled set from its lock model, asks the strategy for a
// decision, applies the decision's model and happens-before effects, and
// grants exactly one thread. A schedule is therefore reproduced exactly by
// replaying its decision sequence.
//
// Invariant that keeps the real mutexes honest: the model grants an
// acquisition only when its lock state says the mutex is free, and the
// model marks a mutex free only after the holder has physically unlocked
// (release hooks run after the real unlock; no other participant runs in
// between). So the real lock call a granted thread performs can never
// block outside the controller's sight.

#include "util/sched.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/rng.h"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define SQLGRAPH_SCHED_HAVE_BACKTRACE 1
#endif
#endif

namespace sqlgraph {
namespace util {
namespace sched {

namespace internal {
std::atomic<bool> g_active{false};
}  // namespace internal

namespace {

// ----------------------------------------------------------- backtraces --

constexpr int kMaxFrames = 24;

struct Stack {
  void* frames[kMaxFrames];
  int n = 0;

  void Capture() {
#ifdef SQLGRAPH_SCHED_HAVE_BACKTRACE
    n = backtrace(frames, kMaxFrames);
#else
    n = 0;
#endif
  }

  std::string Symbolize() const {
#ifdef SQLGRAPH_SCHED_HAVE_BACKTRACE
    if (n <= 0) return "    <backtrace empty>\n";
    char** syms = backtrace_symbols(frames, n);
    if (syms == nullptr) return "    <backtrace_symbols failed>\n";
    std::string out;
    for (int i = 0; i < n; ++i) {
      out += "    ";
      out += syms[i];
      out += "\n";
    }
    free(syms);
    return out;
#else
    return "    <backtrace unavailable on this platform>\n";
#endif
  }
};

// -------------------------------------------------------- ops & clocks --

enum class OpKind {
  kNone,
  kAcquire,
  kTryAcquire,  // post-attempt point; `acquired` says whether it succeeded
  kRelease,
  kVar,
  kWaitUntil,
  kYield,
  kChoose,
};

struct OpSig {
  OpKind kind = OpKind::kNone;
  const void* obj = nullptr;
  const char* name = "";
  bool shared = false;    // lock mode
  bool write = false;     // var ops
  bool atomic = false;    // var ops
  bool acquired = false;  // try-acquire outcome

  bool SameAs(const OpSig& o) const {
    return kind == o.kind && obj == o.obj && shared == o.shared &&
           write == o.write && atomic == o.atomic;
  }
};

// Independence relation for sleep-set partial-order reduction. Two
// transitions are dependent when executing them in either order can lead
// to different states or different enabled sets; we only ever *prune* on
// independence, so conservative (dependent) answers cost coverage speed,
// never soundness.
bool Dependent(const OpSig& a, const OpSig& b) {
  // WaitUntil predicates can observe anything.
  if (a.kind == OpKind::kWaitUntil || b.kind == OpKind::kWaitUntil)
    return true;
  if (a.kind == OpKind::kYield || b.kind == OpKind::kYield) return false;
  if (a.kind == OpKind::kChoose || b.kind == OpKind::kChoose) return false;
  if (a.obj != b.obj) return false;
  if (a.kind == OpKind::kVar && b.kind == OpKind::kVar)
    return a.write || b.write;  // two reads commute
  return true;  // lock operations on the same lock
}

struct VC {
  std::vector<uint64_t> v;

  explicit VC(size_t n = 0) : v(n, 0) {}
  void JoinFrom(const VC& o) {
    for (size_t i = 0; i < v.size(); ++i) v[i] = std::max(v[i], o.v[i]);
  }
  bool LeqThan(const VC& o) const {
    for (size_t i = 0; i < v.size(); ++i)
      if (v[i] > o.v[i]) return false;
    return true;
  }
};

struct Access {
  int thread = -1;
  bool write = false;
  VC clock;
  Stack stack;
};

struct VarState {
  std::string name;
  bool has_write = false;
  Access last_write;
  std::vector<Access> reads;  // reads since the last write
  VC sync;                    // SharedAtomic synchronization clock
};

struct LockState {
  int excl = -1;               // participant holding exclusively, or -1
  std::vector<int> shared;     // participants holding shared
  VC vc_excl;  // joined from exclusive releases (readers acquire from it)
  VC vc_all;   // joined from all releases (writers acquire from it)
};

struct Participant {
  int idx = -1;
  OpSig op;
  Stack op_stack;  // capture site of a pending var access
  const std::function<bool()>* pred = nullptr;
  uint64_t choose_n = 0;
  uint64_t choose_result = 0;
  bool parked = false;
  bool granted = false;
  bool finished = false;
  VC clock;
  std::condition_variable cv;
};

class Controller;
Controller* g_ctrl = nullptr;
thread_local Participant* t_self = nullptr;

// Thrown from a *blocked* lock acquisition when the schedule aborts
// (deadlock, budget, failure elsewhere): the thread does not hold the
// mutex yet, and falling through to the real lock could block forever on
// a genuine deadlock cycle. RAII in the body releases everything already
// held; the participant wrapper catches it. All other scheduling points
// return normally on abort (their real operation is safe to finish).
struct ScheduleAborted {};

// --------------------------------------------------------- strategies --

class Strategy {
 public:
  virtual ~Strategy() = default;
  // Returns the participant to schedule, or a negative code:
  // kStale (bad replay token / nondeterministic body) or kPruned
  // (sleep-set blocked — schedule is redundant, abort quietly).
  static constexpr int kStale = -1;
  static constexpr int kPruned = -2;
  virtual int PickThread(Controller& c, const std::vector<int>& enabled) = 0;
  // Value for a Choose(n) decision; n as upper bound, or kStale.
  virtual int64_t PickValue(Controller& c, uint64_t n) = 0;
  virtual std::string StaleReason() const { return "strategy failure"; }
};

// ---------------------------------------------------------- controller --

class Controller {
 public:
  Controller(size_t n, const SchedOptions& opts, Strategy* strat)
      : n_(n), opts_(opts), strat_(strat) {
    for (size_t i = 0; i < n; ++i) {
      ps_.push_back(std::make_unique<Participant>());
      ps_[i]->idx = static_cast<int>(i);
      ps_[i]->clock = VC(n);
    }
  }

  // ----- participant side -------------------------------------------

  // Parks the calling participant with `op` pending and blocks until the
  // driver grants it (true) or the schedule aborts (false).
  bool Park(Participant* p, const OpSig& op) {
    std::unique_lock<std::mutex> l(m_);
    // Free-run is the terminal teardown: nobody parks anymore, blocked
    // acquisitions are torn down by their callers (AcquirePoint throws).
    // A plain abort keeps parking cooperative — the driver drains every
    // participant to completion under the lock model (see Drive).
    if (free_run_) return false;
    p->op = op;
    // A successful try_lock holds the mutex *physically* before this point
    // runs (the shims cannot hook in front of the real try). The model must
    // reflect the hold now, not at grant time: in the window where the
    // successful try is parked but unapplied, the driver would see the
    // mutex as free and could grant another thread's acquisition of it —
    // which then blocks for real, outside the controller's sight, wedging
    // the schedule.
    if (op.kind == OpKind::kTryAcquire && op.acquired) {
      ApplyAcquireLocked(p, p->op);
    }
    // Releases are symmetric: the shims physically unlock *before* this
    // point (the model must never mark a mutex free while a descheduled
    // holder still owns it — but the converse also bites). While a parked
    // release is unapplied the mutex is physically free, so another
    // runner's real try_lock can succeed; if the model still showed the
    // old holder, that success would corrupt the lock state and drop the
    // release's happens-before edge (reporting false races between
    // properly lock-ordered accesses).
    if (op.kind == OpKind::kRelease) {
      ApplyReleaseLocked(p, p->op);
    }
    p->parked = true;
    driver_cv_.notify_one();
    p->cv.wait(l, [&] { return p->granted || free_run_; });
    p->parked = false;
    if (!p->granted) return false;
    p->granted = false;
    return true;
  }

  void Finish(Participant* p) {
    std::lock_guard<std::mutex> l(m_);
    p->finished = true;
    driver_cv_.notify_one();
  }

  void FailFromBody(const std::string& msg) {
    std::lock_guard<std::mutex> l(m_);
    if (failure_.empty()) failure_ = msg;
    AbortLocked();
  }

  // ----- driver side ------------------------------------------------

  void Drive() {
    std::unique_lock<std::mutex> l(m_);
    while (true) {
      driver_cv_.wait(l, [&] { return AllSettledLocked(); });
      if (AllFinishedLocked()) break;
      if (free_run_) continue;  // threads tearing down on their own
      if (aborted_) {
        DrainOneLocked();
        continue;
      }
      if (steps_ >= opts_.max_steps) {
        SetFailureLocked("schedule exceeded max_steps budget");
        AbortLocked();
        continue;
      }
      // Pass-through grants: a parked release or try-acquire applied its
      // effects back when it parked (the physical lock operation had
      // already happened — see Park), so granting it changes nothing any
      // other participant can observe. It is not a decision; letting the
      // strategy branch over it would only multiply equivalent schedules.
      // Every interleaving of *visible* ops stays reachable because the
      // passed-through thread parks again at its next visible op, where
      // the strategy chooses normally.
      {
        int passthrough = -1;
        for (const auto& p : ps_) {
          if (!p->finished && (p->op.kind == OpKind::kRelease ||
                               p->op.kind == OpKind::kTryAcquire)) {
            passthrough = p->idx;
            break;
          }
        }
        if (passthrough >= 0) {
          Participant* p = ps_[passthrough].get();
          p->granted = true;
          p->cv.notify_one();
          continue;
        }
      }
      std::vector<int> enabled = EnabledLocked();
      if (enabled.empty()) {
        SetFailureLocked(DescribeDeadlockLocked());
        AbortLocked();
        continue;
      }
      int t = strat_->PickThread(*this, enabled);
      if (t == Strategy::kPruned) {
        pruned_ = true;
        AbortLocked();
        continue;
      }
      if (t < 0 ||
          std::find(enabled.begin(), enabled.end(), t) == enabled.end()) {
        SetFailureLocked(strat_->StaleReason());
        AbortLocked();
        continue;
      }
      choices_.push_back(static_cast<uint32_t>(t));
      Participant* p = ps_[t].get();
      static const bool trace = std::getenv("SQLGRAPH_SCHED_TRACE") != nullptr;
      if (trace) {
        fprintf(stderr, "[sched] step %llu grant T%d kind=%d obj=%p %s\n",
                static_cast<unsigned long long>(steps_), t,
                static_cast<int>(p->op.kind), p->op.obj,
                p->op.name ? p->op.name : "");
      }
      ApplyEffectsLocked(p);
      if (p->op.kind == OpKind::kChoose) {
        int64_t v = strat_->PickValue(*this, p->choose_n);
        if (v < 0 || static_cast<uint64_t>(v) >= p->choose_n) {
          SetFailureLocked(strat_->StaleReason());
          AbortLocked();
          continue;
        }
        choices_.push_back(static_cast<uint32_t>(v));
        p->choose_result = static_cast<uint64_t>(v);
      }
      ++steps_;
      // Grant before checking for a just-recorded race: the chosen op's
      // effects are already in the model, so the thread must perform it —
      // the drain below retires everything else. The token stays the
      // decision prefix up to the failure, which replays identically.
      p->granted = true;
      p->cv.notify_one();
      if (!failure_.empty()) AbortLocked();
    }
  }

  // One drain step: after an abort (failure, race, prune), participants
  // keep parking cooperatively and the driver retires them with a fixed
  // first-enabled policy — deterministic, unrecorded, still honoring the
  // lock model so bodies unwind through their normal code paths (store
  // destructors may take locks; tearing them down with an exception would
  // terminate). Only when nothing is enabled (a genuine deadlock cycle,
  // or a WaitUntil whose predicate can no longer come true) or the drain
  // budget is exhausted does teardown fall back to free-run.
  void DrainOneLocked() {
    if (++drain_steps_ > opts_.max_steps * 2 + 1000) {
      FreeRunLocked();
      return;
    }
    std::vector<int> enabled = EnabledLocked();
    if (enabled.empty()) {
      FreeRunLocked();
      return;
    }
    Participant* p = ps_[enabled.front()].get();
    ApplyEffectsLocked(p);
    if (p->op.kind == OpKind::kChoose) p->choose_result = 0;
    p->granted = true;
    p->cv.notify_one();
  }

  // Pending op of a participant; only meaningful while all are parked.
  const OpSig& OpOf(int t) const { return ps_[t]->op; }

  size_t n_;
  const SchedOptions& opts_;
  Strategy* strat_;
  std::mutex m_;
  std::condition_variable driver_cv_;
  std::vector<std::unique_ptr<Participant>> ps_;
  std::map<const void*, LockState> locks_;
  std::map<const void*, VarState> vars_;
  std::vector<uint32_t> choices_;
  std::vector<RaceReport> races_;
  uint64_t steps_ = 0;
  uint64_t drain_steps_ = 0;
  bool aborted_ = false;
  bool free_run_ = false;
  bool pruned_ = false;
  std::string failure_;

 private:
  bool AllSettledLocked() const {
    // In free-run the freed threads no longer park; wait for them to
    // finish. While draining (aborted_ but not free_run_) the normal
    // all-parked condition still applies.
    if (free_run_) return AllFinishedLocked();
    for (const auto& p : ps_) {
      // A granted participant still shows parked=true until it wakes and
      // clears the flag in Park(); it is in flight, not settled — without
      // this the driver would re-schedule against its stale op.
      if (!p->finished && (!p->parked || p->granted)) return false;
    }
    return true;
  }

  bool AllFinishedLocked() const {
    for (const auto& p : ps_)
      if (!p->finished) return false;
    return true;
  }

  std::vector<int> EnabledLocked() {
    std::vector<int> enabled;
    for (const auto& p : ps_) {
      if (p->finished) continue;
      switch (p->op.kind) {
        case OpKind::kAcquire: {
          const LockState& ls = locks_[p->op.obj];
          bool free_for_excl = ls.excl == -1 && ls.shared.empty();
          bool free_for_shared = ls.excl == -1;
          if (p->op.shared ? free_for_shared : free_for_excl)
            enabled.push_back(p->idx);
          break;
        }
        case OpKind::kWaitUntil:
          // Evaluated on the driver thread with every participant parked;
          // hook gates pass through (no registered participant), so the
          // predicate may read SharedVars freely.
          if (p->pred != nullptr && (*p->pred)()) enabled.push_back(p->idx);
          break;
        default:
          enabled.push_back(p->idx);
          break;
      }
    }
    return enabled;
  }

  std::string DescribeDeadlockLocked() const {
    std::ostringstream os;
    os << "deadlock: no enabled participant (";
    for (const auto& p : ps_) {
      if (p->finished) continue;
      os << "T" << p->idx << ":"
         << (p->op.kind == OpKind::kAcquire
                 ? std::string(p->op.shared ? "acquire_shared " : "acquire ") +
                       (p->op.name[0] ? p->op.name : "mutex")
                 : std::string("wait_until"))
         << "; ";
    }
    os << ")";
    return os.str();
  }

  void SetFailureLocked(const std::string& msg) {
    if (failure_.empty()) failure_ = msg;
  }

  // Stops exploration; the driver switches to draining (see
  // DrainOneLocked). Parked participants stay parked until drained.
  void AbortLocked() { aborted_ = true; }

  // Terminal teardown: wake everyone; Park returns false from now on, so
  // blocked acquisitions unwind via ScheduleAborted and waits return
  // false.
  void FreeRunLocked() {
    free_run_ = true;
    for (auto& p : ps_) p->cv.notify_one();
  }

  void TickLocked(Participant* p) { ++p->clock.v[p->idx]; }

  void ApplyAcquireLocked(Participant* p, const OpSig& op) {
    LockState& ls = locks_[op.obj];
    if (ls.vc_excl.v.empty()) ls.vc_excl = VC(n_);
    if (ls.vc_all.v.empty()) ls.vc_all = VC(n_);
    if (op.shared) {
      ls.shared.push_back(p->idx);
      p->clock.JoinFrom(ls.vc_excl);
    } else {
      ls.excl = p->idx;
      p->clock.JoinFrom(ls.vc_all);
    }
  }

  void ApplyReleaseLocked(Participant* p, const OpSig& op) {
    LockState& ls = locks_[op.obj];
    if (ls.vc_excl.v.empty()) ls.vc_excl = VC(n_);
    if (ls.vc_all.v.empty()) ls.vc_all = VC(n_);
    if (op.shared) {
      ls.shared.erase(std::remove(ls.shared.begin(), ls.shared.end(), p->idx),
                      ls.shared.end());
      ls.vc_all.JoinFrom(p->clock);
    } else {
      ls.excl = -1;
      ls.vc_excl.JoinFrom(p->clock);
      ls.vc_all.JoinFrom(p->clock);
    }
    TickLocked(p);
  }

  void ApplyEffectsLocked(Participant* p) {
    const OpSig& op = p->op;
    switch (op.kind) {
      case OpKind::kAcquire:
        ApplyAcquireLocked(p, op);
        break;
      case OpKind::kTryAcquire:
      case OpKind::kRelease:
        // Effects were applied when the op parked — see Park(); by then
        // the physical acquisition/release had already happened, so the
        // model had to catch up immediately. The grant is just the
        // preemption opportunity.
        break;
      case OpKind::kVar:
        ApplyVarLocked(p);
        TickLocked(p);
        break;
      case OpKind::kWaitUntil:
        // The predicate may have observed any participant's writes; join
        // everyone so post-wait reads do not report false races (this is
        // the cooperative analogue of a condition-variable handoff).
        for (const auto& q : ps_)
          if (q->idx != p->idx) p->clock.JoinFrom(q->clock);
        break;
      default:
        break;
    }
  }

  void ApplyVarLocked(Participant* p) {
    const OpSig& op = p->op;
    VarState& vs = vars_[op.obj];
    if (vs.sync.v.empty()) vs.sync = VC(n_);
    if (vs.name.empty() && op.name[0]) vs.name = op.name;
    if (op.atomic) {
      // Atomics synchronize: no race possible, bidirectional join.
      p->clock.JoinFrom(vs.sync);
      vs.sync.JoinFrom(p->clock);
      return;
    }
    // No race bookkeeping while draining an aborted schedule: the first
    // failure is the report, drain accesses are just unwinding.
    if (!opts_.check_races || aborted_) return;
    Access cur;
    cur.thread = p->idx;
    cur.write = op.write;
    // The recorded event covers the access itself (the tick the caller
    // applies right after this); without the increment a fresh access
    // compares ≤ against clocks that never synchronized with it.
    cur.clock = p->clock;
    cur.clock.v[p->idx] += 1;
    cur.stack = p->op_stack;
    auto unordered = [&](const Access& prev) {
      return prev.thread != p->idx && !prev.clock.LeqThan(p->clock);
    };
    if (op.write) {
      if (vs.has_write && unordered(vs.last_write))
        RecordRaceLocked(vs, vs.last_write, cur);
      for (const Access& r : vs.reads)
        if (unordered(r)) {
          RecordRaceLocked(vs, r, cur);
          break;
        }
      vs.reads.clear();
      vs.last_write = cur;
      vs.has_write = true;
    } else {
      if (vs.has_write && unordered(vs.last_write))
        RecordRaceLocked(vs, vs.last_write, cur);
      vs.reads.push_back(cur);
    }
  }

  void RecordRaceLocked(const VarState& vs, const Access& a,
                        const Access& b) {
    if (!races_.empty()) return;  // first race wins; replay shows the rest
    auto describe = [](const Access& x) {
      std::ostringstream os;
      os << "thread T" << x.thread << " " << (x.write ? "write" : "read")
         << " at:\n"
         << x.stack.Symbolize();
      return os.str();
    };
    RaceReport r;
    r.var = vs.name.empty() ? "<unnamed SharedVar>" : vs.name;
    r.first = describe(a);
    r.second = describe(b);
    SetFailureLocked("data race on SharedVar '" + r.var + "' (" +
                     (a.write ? "write" : "read") + " by T" +
                     std::to_string(a.thread) + " vs " +
                     (b.write ? "write" : "read") + " by T" +
                     std::to_string(b.thread) + ")");
    races_.push_back(std::move(r));
  }
};

// --------------------------------------------------------- PCT strategy --

class PctStrategy : public Strategy {
 public:
  PctStrategy(uint64_t seed, size_t n, int depth, uint64_t horizon)
      : rng_(seed) {
    prio_.resize(n);
    for (size_t i = 0; i < n; ++i) prio_[i] = n - i;  // distinct
    for (size_t i = n; i > 1; --i)
      std::swap(prio_[i - 1], prio_[rng_.Uniform(i)]);
    horizon = std::max<uint64_t>(horizon, 8);
    int inversions = std::max(depth - 1, 0);
    for (int d = 0; d < inversions; ++d)
      change_steps_.push_back(1 + rng_.Uniform(horizon));
    std::sort(change_steps_.begin(), change_steps_.end());
  }

  int PickThread(Controller&, const std::vector<int>& enabled) override {
    ++step_;
    while (!change_steps_.empty() && step_ >= change_steps_.front()) {
      // Priority inversion: demote the currently strongest enabled thread
      // below everyone, exposing ordering bugs PCT-style.
      change_steps_.erase(change_steps_.begin());
      int top = ArgmaxPrio(enabled);
      prio_[top] = next_low_--;
    }
    return ArgmaxPrio(enabled);
  }

  int64_t PickValue(Controller&, uint64_t n) override {
    return static_cast<int64_t>(rng_.Uniform(n));
  }

 private:
  int ArgmaxPrio(const std::vector<int>& enabled) const {
    int best = enabled[0];
    for (int t : enabled)
      if (prio_[t] > prio_[best]) best = t;
    return best;
  }

  Rng rng_;
  std::vector<int64_t> prio_;
  std::vector<uint64_t> change_steps_;
  uint64_t step_ = 0;
  int64_t next_low_ = 0;  // decreasing: each demotion lands below the last
};

// --------------------------------------------------------- DFS strategy --

// Bounded exhaustive enumeration with sleep sets. Each decision along the
// current schedule is a path node; after a schedule completes, the
// deepest node with an unexplored (non-sleeping) candidate advances and
// the prefix replays. Sleep sets prune schedules that only commute
// independent transitions of an already-explored sibling.
class DfsStrategy : public Strategy {
 public:
  int PickThread(Controller& c, const std::vector<int>& enabled) override {
    if (cursor_ < path_.size()) {
      Node& nd = path_[cursor_];
      if (nd.value_decision || nd.candidates != enabled) {
        stale_ = "DFS prefix replay diverged: participant bodies are "
                 "nondeterministic (use seeded Rng only)";
        return kStale;
      }
      ++cursor_;
      return nd.candidates[nd.pick];
    }
    Node nd;
    nd.value_decision = false;
    nd.candidates = enabled;
    for (int t : enabled) nd.ops.push_back(c.OpOf(t));
    // Inherit the sleep set: a sleeping sibling stays asleep unless the
    // transition just taken is dependent with its op.
    for (size_t i = path_.size(); i-- > 0;) {
      const Node& par = path_[i];
      if (par.value_decision) continue;
      const OpSig& taken = par.ops[par.pick];
      for (const auto& s : par.sleep)
        if (!Dependent(s.second, taken)) nd.sleep.push_back(s);
      break;
    }
    size_t pick = 0;
    while (pick < nd.candidates.size() &&
           InSleep(nd.sleep, nd.candidates[pick]))
      ++pick;
    if (pick == nd.candidates.size()) return kPruned;  // sleep-set blocked
    nd.pick = pick;
    path_.push_back(std::move(nd));
    ++cursor_;
    return path_.back().candidates[pick];
  }

  int64_t PickValue(Controller&, uint64_t n) override {
    if (cursor_ < path_.size()) {
      Node& nd = path_[cursor_];
      if (!nd.value_decision || nd.candidates.size() != n) {
        stale_ = "DFS prefix replay diverged on Choose()";
        return kStale;
      }
      ++cursor_;
      return nd.candidates[nd.pick];
    }
    Node nd;
    nd.value_decision = true;
    for (uint64_t v = 0; v < n; ++v)
      nd.candidates.push_back(static_cast<int>(v));
    nd.pick = 0;
    path_.push_back(std::move(nd));
    ++cursor_;
    return 0;
  }

  std::string StaleReason() const override { return stale_; }

  // Advances to the next unexplored schedule; false when the space is
  // exhausted.
  bool Advance() {
    while (!path_.empty()) {
      Node& nd = path_.back();
      if (nd.value_decision) {
        if (nd.pick + 1 < nd.candidates.size()) {
          ++nd.pick;
          cursor_ = 0;
          return true;
        }
        path_.pop_back();
        continue;
      }
      nd.sleep.push_back({nd.candidates[nd.pick], nd.ops[nd.pick]});
      size_t next = nd.pick + 1;
      while (next < nd.candidates.size() &&
             InSleep(nd.sleep, nd.candidates[next]))
        ++next;
      if (next < nd.candidates.size()) {
        nd.pick = next;
        cursor_ = 0;
        return true;
      }
      path_.pop_back();
    }
    return false;
  }

 private:
  struct Node {
    bool value_decision = false;
    std::vector<int> candidates;  // enabled threads, or Choose values
    std::vector<OpSig> ops;       // candidate ops (thread decisions)
    size_t pick = 0;              // index into candidates
    std::vector<std::pair<int, OpSig>> sleep;
  };

  static bool InSleep(const std::vector<std::pair<int, OpSig>>& sleep,
                      int t) {
    for (const auto& s : sleep)
      if (s.first == t) return true;
    return false;
  }

  std::vector<Node> path_;
  size_t cursor_ = 0;
  std::string stale_;
};

// ------------------------------------------------------ replay strategy --

constexpr char kTokenPrefix[] = "sched:v1:";

std::string EncodeToken(const std::vector<uint32_t>& choices) {
  std::string out = kTokenPrefix;
  for (uint32_t c : choices) {
    if (c < 10) {
      out += static_cast<char>('0' + c);
    } else if (c < 36) {
      out += static_cast<char>('a' + (c - 10));
    } else {
      out += "~" + std::to_string(c) + "~";
    }
  }
  return out;
}

bool DecodeToken(const std::string& token, std::vector<uint32_t>* out) {
  if (token.rfind(kTokenPrefix, 0) != 0) return false;
  for (size_t i = strlen(kTokenPrefix); i < token.size(); ++i) {
    char ch = token[i];
    if (ch >= '0' && ch <= '9') {
      out->push_back(static_cast<uint32_t>(ch - '0'));
    } else if (ch >= 'a' && ch <= 'z') {
      out->push_back(static_cast<uint32_t>(ch - 'a' + 10));
    } else if (ch == '~') {
      size_t end = token.find('~', i + 1);
      if (end == std::string::npos) return false;
      out->push_back(
          static_cast<uint32_t>(std::stoul(token.substr(i + 1, end - i - 1))));
      i = end;
    } else {
      return false;
    }
  }
  return true;
}

class ReplayStrategy : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<uint32_t> decisions)
      : decisions_(std::move(decisions)) {}

  int PickThread(Controller&, const std::vector<int>& enabled) override {
    if (i_ >= decisions_.size()) {
      stale_ = "replay token exhausted before the schedule completed";
      return kStale;
    }
    int t = static_cast<int>(decisions_[i_++]);
    if (std::find(enabled.begin(), enabled.end(), t) == enabled.end()) {
      stale_ = "replay token names thread T" + std::to_string(t) +
               " which is not enabled at this point (stale token or "
               "nondeterministic bodies)";
      return kStale;
    }
    return t;
  }

  int64_t PickValue(Controller&, uint64_t n) override {
    if (i_ >= decisions_.size() || decisions_[i_] >= n) {
      stale_ = "replay token has an out-of-range Choose() value";
      return kStale;
    }
    return static_cast<int64_t>(decisions_[i_++]);
  }

  std::string StaleReason() const override { return stale_; }

 private:
  std::vector<uint32_t> decisions_;
  size_t i_ = 0;
  std::string stale_;
};

// ------------------------------------------------------- schedule runner --

struct ScheduleOutcome {
  bool failed = false;
  bool pruned = false;
  std::string failure;
  std::string token;
  std::vector<RaceReport> races;
  uint64_t steps = 0;
};

ScheduleOutcome RunOneSchedule(Strategy* strat, const SchedOptions& opts,
                               const std::vector<std::function<void()>>&
                                   bodies) {
  if (opts.setup) opts.setup();
  Controller ctrl(bodies.size(), opts, strat);
  g_ctrl = &ctrl;
  internal::g_active.store(true, std::memory_order_seq_cst);
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&ctrl, &bodies, i] {
      Participant* self = ctrl.ps_[i].get();
      t_self = self;
      try {
        bodies[i]();
      } catch (const ScheduleAborted&) {
        // Blocked acquisition torn down mid-abort; body unwound via RAII.
      }
      t_self = nullptr;
      ctrl.Finish(self);
    });
  }
  ctrl.Drive();
  for (auto& th : threads) th.join();
  internal::g_active.store(false, std::memory_order_seq_cst);
  g_ctrl = nullptr;

  ScheduleOutcome out;
  out.pruned = ctrl.pruned_;
  out.steps = ctrl.steps_;
  out.races = std::move(ctrl.races_);
  out.failure = ctrl.failure_;
  if (!out.pruned && out.failure.empty() && opts.invariant) {
    std::string err = opts.invariant();
    if (!err.empty()) out.failure = "invariant violated: " + err;
  }
  out.failed = !out.failure.empty();
  if (out.failed) out.token = EncodeToken(ctrl.choices_);
  return out;
}

void FillFailure(ScheduleResult* r, const ScheduleOutcome& out) {
  r->ok = false;
  r->failure = out.failure;
  r->token = out.token;
  r->races = out.races;
  r->steps = out.steps;
}

}  // namespace

// -------------------------------------------------------- explorer API --

ScheduleResult Explorer::RunPct(
    const std::vector<std::function<void()>>& bodies) {
  ScheduleResult r;
  uint64_t horizon = 256;
  for (int trial = 0; trial < opts_.trials; ++trial) {
    PctStrategy strat(opts_.seed + static_cast<uint64_t>(trial),
                      bodies.size(), opts_.pct_depth, horizon);
    ScheduleOutcome out = RunOneSchedule(&strat, opts_, bodies);
    ++r.schedules;
    horizon = std::max<uint64_t>(out.steps, 8);
    if (out.failed) {
      FillFailure(&r, out);
      r.failure += " [pct seed " +
                   std::to_string(opts_.seed + static_cast<uint64_t>(trial)) +
                   ", replay token " + r.token + "]";
      return r;
    }
  }
  return r;
}

ScheduleResult Explorer::RunDfs(
    const std::vector<std::function<void()>>& bodies) {
  ScheduleResult r;
  DfsStrategy strat;
  while (true) {
    if (r.schedules >= opts_.max_schedules) return r;  // budget; not exhausted
    ScheduleOutcome out = RunOneSchedule(&strat, opts_, bodies);
    ++r.schedules;
    if (out.failed) {
      FillFailure(&r, out);
      r.failure += " [replay token " + r.token + "]";
      return r;
    }
    if (!strat.Advance()) {
      r.exhausted = true;
      return r;
    }
  }
}

ScheduleResult Explorer::Replay(
    const std::string& token,
    const std::vector<std::function<void()>>& bodies) {
  ScheduleResult r;
  std::vector<uint32_t> decisions;
  if (!DecodeToken(token, &decisions)) {
    r.ok = false;
    r.failure = "malformed schedule token: " + token;
    return r;
  }
  ReplayStrategy strat(std::move(decisions));
  ScheduleOutcome out = RunOneSchedule(&strat, opts_, bodies);
  r.schedules = 1;
  r.steps = out.steps;
  if (out.failed) FillFailure(&r, out);
  return r;
}

// -------------------------------------------------- participant surface --

void Yield() {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return;
  OpSig op;
  op.kind = OpKind::kYield;
  g_ctrl->Park(p, op);
}

bool WaitUntil(std::function<bool()> pred) {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return pred();
  p->pred = &pred;
  OpSig op;
  op.kind = OpKind::kWaitUntil;
  bool ok = g_ctrl->Park(p, op);
  p->pred = nullptr;
  return ok;
}

void Fail(const std::string& message) {
  if (t_self == nullptr || g_ctrl == nullptr) {
    fprintf(stderr, "sched::Fail outside a schedule: %s\n", message.c_str());
    return;
  }
  g_ctrl->FailFromBody(message);
}

uint64_t Choose(uint64_t n) {
  Participant* p = t_self;
  if (n <= 1 || p == nullptr || g_ctrl == nullptr) return 0;
  p->choose_n = n;
  OpSig op;
  op.kind = OpKind::kChoose;
  if (!g_ctrl->Park(p, op)) return 0;
  return p->choose_result;
}

// ---------------------------------------------------------- hook bodies --

namespace internal {

void AcquirePoint(const void* mu, bool shared) {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return;
  OpSig op;
  op.kind = OpKind::kAcquire;
  op.obj = mu;
  op.shared = shared;
  if (!g_ctrl->Park(p, op)) throw ScheduleAborted{};
}

void ReleasePoint(const void* mu, bool shared) {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return;
  OpSig op;
  op.kind = OpKind::kRelease;
  op.obj = mu;
  op.shared = shared;
  g_ctrl->Park(p, op);
}

void TryAcquirePoint(const void* mu, bool shared, bool acquired) {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return;
  OpSig op;
  op.kind = OpKind::kTryAcquire;
  op.obj = mu;
  op.shared = shared;
  op.acquired = acquired;
  g_ctrl->Park(p, op);
}

void VarPoint(const void* var, const char* name, bool write, bool atomic) {
  Participant* p = t_self;
  if (p == nullptr || g_ctrl == nullptr) return;
  OpSig op;
  op.kind = OpKind::kVar;
  op.obj = var;
  op.name = name;
  op.write = write;
  op.atomic = atomic;
  if (!atomic && g_ctrl->opts_.check_races) p->op_stack.Capture();
  g_ctrl->Park(p, op);
}

}  // namespace internal

// ------------------------------------------------------------ self-test --

namespace {
// -1 = not yet initialized from the environment.
std::atomic<int> g_selftest{-1};

int SelfTestFromEnv() {
  const char* e = std::getenv("SQLGRAPH_SCHED_SELFTEST");
  if (e == nullptr) return static_cast<int>(SelfTest::kNone);
  if (strcmp(e, "race") == 0) return static_cast<int>(SelfTest::kRace);
  if (strcmp(e, "reorder") == 0) return static_cast<int>(SelfTest::kReorder);
  return static_cast<int>(SelfTest::kNone);
}
}  // namespace

SelfTest SelfTestMode() {
  int v = g_selftest.load(std::memory_order_relaxed);
  if (v < 0) {
    v = SelfTestFromEnv();
    g_selftest.store(v, std::memory_order_relaxed);
  }
  return static_cast<SelfTest>(v);
}

void SetSelfTestModeForTest(SelfTest mode) {
  g_selftest.store(static_cast<int>(mode), std::memory_order_relaxed);
}

}  // namespace sched
}  // namespace util
}  // namespace sqlgraph
