// Fuzz target: WAL frame decoding and torn-tail recovery (src/wal).
//
// Treats the input as the raw bytes of a log segment. Properties:
//  * DecodeRecord never crashes and always makes progress or stops,
//  * records that decode re-encode to frames that decode back equal,
//  * ReadLogFile over the bytes + TruncateLog(valid_bytes) converges: the
//    truncated file re-reads clean with exactly the same records.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "wal/log_reader.h"
#include "wal/record.h"

using sqlgraph::fuzz::TempDir;
using sqlgraph::fuzz::WriteFile;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // --- In-memory frame walk -------------------------------------------
  size_t offset = 0;
  while (offset < bytes.size()) {
    sqlgraph::wal::Record rec;
    const size_t before = offset;
    if (!sqlgraph::wal::DecodeRecord(bytes, &offset, &rec).ok()) {
      FUZZ_ASSERT(offset == before, "failed decode moved the offset");
      break;
    }
    FUZZ_ASSERT(offset > before, "successful decode did not advance");
    // Round-trip: what decoded must re-encode to something that decodes
    // back to the same record.
    std::string reencoded;
    sqlgraph::wal::EncodeRecord(rec, &reencoded);
    size_t roff = 0;
    sqlgraph::wal::Record redecoded;
    FUZZ_ASSERT(
        sqlgraph::wal::DecodeRecord(reencoded, &roff, &redecoded).ok(),
        "re-encoded frame failed to decode");
    FUZZ_ASSERT(redecoded == rec, "record round-trip mismatch");
  }

  // --- File-level recovery convergence --------------------------------
  static TempDir* dir = new TempDir("fuzz_wal");
  const std::string path = dir->File("segment.wal");
  WriteFile(path, bytes);

  auto first = sqlgraph::wal::ReadLogFile(path);
  FUZZ_ASSERT(first.ok(), "ReadLogFile errored on arbitrary bytes: %s",
              first.status().ToString().c_str());
  FUZZ_ASSERT(first.value().valid_bytes <= first.value().file_bytes,
              "valid prefix longer than the file");
  FUZZ_ASSERT(
      sqlgraph::wal::TruncateLog(path, first.value().valid_bytes).ok(),
      "TruncateLog failed");

  auto second = sqlgraph::wal::ReadLogFile(path);
  FUZZ_ASSERT(second.ok(), "re-read after truncate errored");
  FUZZ_ASSERT(second.value().clean, "truncated log still reads dirty: %s",
              second.value().tail_error.c_str());
  FUZZ_ASSERT(second.value().valid_bytes == first.value().valid_bytes,
              "valid prefix changed across truncate");
  FUZZ_ASSERT(second.value().records == first.value().records,
              "records changed across truncate");
  return 0;
}
