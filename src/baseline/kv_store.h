// KvStore: a Titan-0.4-on-BerkeleyDB-like graph store.
//
// All graph data lives in one ordered key/value map (the BerkeleyDB B-tree):
// vertex rows, out-edge rows colocated under the source vertex's key prefix,
// in-direction index rows, and an edge-id lookup row. Every value is a
// serialized (JSON text) blob, so each access pays a real
// serialization/deserialization cost — Titan's dominant overhead.
//
// Concurrency model mirrors NativeStore: one store-global exclusive lock per
// operation including the simulated round trip (Rexster-style request
// serialization; see DESIGN.md §4/§5).

#ifndef SQLGRAPH_BASELINE_KV_STORE_H_
#define SQLGRAPH_BASELINE_KV_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/blueprints.h"
#include "graph/property_graph.h"
#include "util/thread_annotations.h"

namespace sqlgraph {
namespace baseline {

struct KvStoreConfig {
  uint32_t round_trip_micros = 0;
  std::vector<std::string> indexed_keys;
};

class KvStore : public GraphDb {
 public:
  static util::Result<std::unique_ptr<KvStore>> Build(
      const graph::PropertyGraph& graph, KvStoreConfig config = KvStoreConfig());

  std::string name() const override { return "KvStore(titan-like)"; }

  util::Result<VertexId> AddVertex(json::JsonValue attrs) override;
  util::Result<json::JsonValue> GetVertex(VertexId vid) override;
  util::Status SetVertexAttr(VertexId vid, const std::string& key,
                             json::JsonValue value) override;
  util::Status RemoveVertex(VertexId vid) override;
  util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                               const std::string& label,
                               json::JsonValue attrs) override;
  util::Result<EdgeRecord> GetEdge(EdgeId eid) override;
  util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                           json::JsonValue value) override;
  util::Status RemoveEdge(EdgeId eid) override;
  util::Result<std::optional<EdgeId>> FindEdge(VertexId src,
                                               const std::string& label,
                                               VertexId dst) override;
  util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) override;
  util::Result<int64_t> CountOutEdges(VertexId src,
                                      const std::string& label) override;
  util::Result<std::vector<VertexId>> Out(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> In(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> OutE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> InE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> AllVertices() override;
  util::Result<std::vector<EdgeId>> AllEdges() override;
  util::Result<std::vector<VertexId>> VerticesByAttr(
      const std::string& key, const rel::Value& value) override;
  size_t SerializedBytes() const override;

 private:
  explicit KvStore(KvStoreConfig config) : config_(std::move(config)) {}

  // Key builders. Hex-padded ids keep lexicographic == numeric order.
  static std::string VKey(VertexId vid);
  static std::string OKey(VertexId src, const std::string& label, EdgeId eid);
  static std::string OPrefix(VertexId src, const std::string& label);
  static std::string IKey(VertexId dst, const std::string& label, EdgeId eid);
  static std::string IPrefix(VertexId dst, const std::string& label);
  static std::string EKey(EdgeId eid);
  static std::string XKey(const std::string& attr_key, const std::string& v,
                          VertexId vid);

  // Internal (lock already held) edge insertion/removal.
  util::Status PutEdgeLocked(EdgeId eid, VertexId src, VertexId dst,
                             const std::string& label,
                             const json::JsonValue& attrs) REQUIRES(big_lock_);
  util::Status RemoveEdgeLocked(EdgeId eid) REQUIRES(big_lock_);
  util::Result<EdgeRecord> GetEdgeLocked(EdgeId eid) const
      REQUIRES(big_lock_);
  void IndexVertexLocked(VertexId vid, const json::JsonValue& attrs, bool add)
      REQUIRES(big_lock_);

  KvStoreConfig config_;
  // Deliberately coarse (Rexster-style request serialization, DESIGN.md §5).
  // kBaselineStore: baseline stores never nest with SQLGraph locks; only
  // metrics may follow.
  mutable util::Mutex big_lock_{util::LockRank::kBaselineStore,
                                "kv_big_lock"};
  std::map<std::string, std::string> kv_ GUARDED_BY(big_lock_);
  int64_t next_vertex_id_ GUARDED_BY(big_lock_) = 0;
  int64_t next_edge_id_ GUARDED_BY(big_lock_) = 0;
  size_t bytes_ GUARDED_BY(big_lock_) = 0;  // running serialized size
};

}  // namespace baseline
}  // namespace sqlgraph

#endif  // SQLGRAPH_BASELINE_KV_STORE_H_
