// Tests for the observability layer (src/obs): counter/gauge/histogram
// semantics, histogram quantile error bounds (unit + property test against
// exact sorted-vector quantiles), the sharded hot path under concurrency
// (the TSan stage of ci/check.sh runs this suite), the registry dumps, and
// EXPLAIN ANALYZE — including the soft-delete regression: deleted vertices
// must vanish from operator row counts and Gremlin results, before and
// after Compact.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gremlin/runtime.h"
#include "gtest/gtest.h"
#include "json/json_value.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqlgraph/store.h"
#include "util/rng.h"

namespace sqlgraph {
namespace {

using core::SqlGraphStore;
using core::StoreConfig;
using graph::PropertyGraph;
using graph::VertexId;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// ----------------------------------------------------- counters & gauges --

TEST(CounterTest, AddsAndMergesShards) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, DisabledWritesAreDropped) {
  Counter c;
  obs::SetMetricsEnabled(false);
  c.Add(100);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 5);
}

// ------------------------------------------------------ histogram buckets --

TEST(HistogramTest, BucketIndexIsMonotonicAndBoundsContainValue) {
  size_t prev = 0;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16},
                     uint64_t{17}, uint64_t{100}, uint64_t{1000},
                     uint64_t{123456}, uint64_t{1} << 30, uint64_t{1} << 39}) {
    const size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "bucket index not monotonic at " << v;
    prev = idx;
    uint64_t lo = 0, hi = 0;
    Histogram::BucketBounds(idx, &lo, &hi);
    EXPECT_LE(lo, v) << "value " << v << " below bucket " << idx;
    EXPECT_GE(hi, v) << "value " << v << " above bucket " << idx;
  }
  // Oversized samples clamp into the final bucket instead of overflowing.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.Record(v);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, Histogram::kSubBuckets);
  // Values below kSubBuckets land in unit-width buckets: quantiles exact.
  EXPECT_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_EQ(snap.Quantile(1.0), Histogram::kSubBuckets - 1);
}

TEST(HistogramTest, QuantilesWithinRelativeErrorBound) {
  // Property test: random samples, compare p50/p95/p99 against the exact
  // nearest-rank quantile of the sorted vector. Bucket relative width is
  // 1/16 (6.25%); the midpoint estimate stays within half that plus
  // nearest-rank slack — assert a conservative 12.5%.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(0x9157 + seed * 7919);
    Histogram h;
    std::vector<uint64_t> samples;
    const size_t n = 2000 + rng.Uniform(3000);
    for (size_t i = 0; i < n; ++i) {
      // Log-uniform spread across many bucket scales, capped below the
      // histogram's 2^40 clamp (clamped samples forfeit the bound).
      const uint64_t v = rng.Next() >> (26 + rng.Uniform(38));
      samples.push_back(v);
      h.Record(v);
    }
    std::sort(samples.begin(), samples.end());
    auto snap = h.TakeSnapshot();
    ASSERT_EQ(snap.total, samples.size());
    for (double q : {0.5, 0.95, 0.99}) {
      const double exact = static_cast<double>(
          samples[static_cast<size_t>(q * static_cast<double>(n - 1))]);
      const double est = snap.Quantile(q);
      const double err = std::abs(est - exact) / std::max(exact, 1.0);
      EXPECT_LE(err, 0.125) << "seed " << seed << " q " << q << ": exact "
                            << exact << " est " << est;
    }
  }
}

TEST(HistogramTest, ShardedMergePreservesQuantileBound) {
  // Same bound after concurrent writers scatter samples across shards.
  Histogram h;
  std::vector<uint64_t> all;
  std::mutex all_mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h, &all, &all_mu, t] {
      util::Rng rng(0x77AB + static_cast<uint64_t>(t));
      std::vector<uint64_t> mine;
      for (int i = 0; i < 4000; ++i) {
        const uint64_t v = rng.Next() >> (24 + rng.Uniform(32));
        mine.push_back(v);
        h.Record(v);
      }
      std::lock_guard<std::mutex> lock(all_mu);
      all.insert(all.end(), mine.begin(), mine.end());
    });
  }
  for (auto& th : threads) th.join();
  std::sort(all.begin(), all.end());
  auto snap = h.TakeSnapshot();
  ASSERT_EQ(snap.total, all.size());
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact = static_cast<double>(
        all[static_cast<size_t>(q * static_cast<double>(all.size() - 1))]);
    const double est = snap.Quantile(q);
    EXPECT_LE(std::abs(est - exact) / std::max(exact, 1.0), 0.125)
        << "q " << q;
  }
}

// ------------------------------------------------- concurrency / registry --

TEST(MetricsConcurrencyTest, WritersAndDumperRaceCleanly) {
  // The metrics hot path is the one piece of obs that runs inside every
  // query: hammer one counter + one histogram from writer threads while a
  // dumper merges shards and renders JSON. TSan (ci/check.sh) must see no
  // races; the final merged count must equal what the writers added.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.race.counter");
  Histogram* h = registry.GetHistogram("test.race.hist");
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.DumpJson();
      (void)h->TakeSnapshot();
      (void)c->Value();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      util::Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerWriter; ++i) {
        c->Increment();
        h->Record(rng.Uniform(1 << 20));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(h->TakeSnapshot().total,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(MetricsRegistryTest, NamesAreStableAndDumpsContainThem) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  EXPECT_EQ(a, registry.GetCounter("x.count"));  // same object by name
  a->Add(3);
  registry.GetHistogram("x.lat")->Record(1000);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("x.count"), std::string::npos);
  const std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"x.count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.lat\""), std::string::npos);
  registry.ResetAll();
  EXPECT_EQ(a->Value(), 0u);
}

// ----------------------------------------------------------- trace spans --

TEST(ScopedSpanTest, NullSinkIsNoOpAndFinishIsIdempotent) {
  obs::ScopedSpan null_span(nullptr, "ctx", "op");  // must not crash
  null_span.add_rows(3);

  std::vector<obs::TraceSpan> sink;
  {
    obs::ScopedSpan span(&sink, "TEMP_1", "seq scan");
    span.set_rows(7);
    span.Finish();
    span.Finish();  // second finish is a no-op
  }
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].context, "TEMP_1");
  EXPECT_EQ(sink[0].op, "seq scan");
  EXPECT_EQ(sink[0].rows, 7u);
  const std::string table = obs::FormatSpanTable(sink);
  EXPECT_NE(table.find("seq scan"), std::string::npos);
}

// -------------------------------------------------------- EXPLAIN ANALYZE --

json::JsonValue Attr(const char* key, const char* value) {
  json::JsonValue obj = json::JsonValue::Object();
  obj.Set(key, std::string(value));
  return obj;
}

/// 1 hub + `spokes` leaf vertices, hub → each leaf with label "rel".
PropertyGraph HubGraph(size_t spokes) {
  PropertyGraph g;
  g.AddVertex(Attr("kind", "hub"));
  for (size_t i = 0; i < spokes; ++i) {
    const VertexId leaf = g.AddVertex(Attr("kind", "leaf"));
    (void)g.AddEdge(0, leaf, "rel", json::JsonValue::Object());
  }
  return g;
}

TEST(ExplainAnalyzeTest, SqlPrefixReturnsOperatorRows) {
  auto store = SqlGraphStore::Build(HubGraph(5));
  ASSERT_TRUE(store.ok());
  auto r = (*store)->ExecuteSql("explain analyze SELECT * FROM OPA");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns.size(), 4u);
  EXPECT_EQ(r->columns[0], "stage");
  EXPECT_EQ(r->columns[1], "operator");
  EXPECT_EQ(r->columns[2], "rows");
  EXPECT_EQ(r->columns[3], "time_ms");
  ASSERT_FALSE(r->rows.empty());
  bool saw_scan = false;
  for (const auto& row : r->rows) {
    if (row[1].AsString().find("scan") != std::string::npos) saw_scan = true;
    EXPECT_GE(row[3].AsDouble(), 0.0);
  }
  EXPECT_TRUE(saw_scan);
}

TEST(ExplainAnalyzeTest, GremlinAttributesOperatorsToEveryTable8Pipe) {
  StoreConfig config;
  config.va_hash_indexes = {"kind"};
  auto store = SqlGraphStore::Build(HubGraph(6), config);
  ASSERT_TRUE(store.ok());
  gremlin::GremlinRuntime runtime(store->get());
  const char* queries[] = {
      "g.V.has('kind','leaf').count()",
      "g.V(0).out()",
      "g.V(0).out('rel')",
      "g.V.has('kind','hub').out().dedup().count()",
      "g.V(0).out().out().count()",
      "g.V(0).outE('rel').inV().dedup().count()",
      "g.V(0).as('x').out().back('x').dedup().count()",
      "g.V(0).out().path()",
  };
  for (const char* q : queries) {
    auto explain = runtime.ExplainAnalyze(q);
    ASSERT_TRUE(explain.ok()) << q << ": " << explain.status().ToString();
    ASSERT_FALSE(explain->pipes.empty()) << q;
    size_t attributed = 0;
    for (const auto& p : explain->pipes) {
      attributed += p.spans.size();
      for (const auto& s : p.spans) {
        // Every attributed span ran in a CTE this pipe emitted.
        EXPECT_NE(std::find(p.ctes.begin(), p.ctes.end(), s.context),
                  p.ctes.end())
            << q << ": span " << s.op << " in " << s.context;
      }
    }
    // Per-operator stats exist and land on pipes (the final SELECT's spans
    // are allowed to stay unattributed).
    EXPECT_GT(attributed + explain->final_spans.size(), 0u) << q;
    EXPECT_GT(attributed, 0u) << q;
    EXPECT_FALSE(explain->ToString().empty()) << q;
  }
}

TEST(ExplainAnalyzeTest, GremlinRowsMatchActualResults) {
  auto store = SqlGraphStore::Build(HubGraph(4));
  ASSERT_TRUE(store.ok());
  gremlin::GremlinRuntime runtime(store->get());
  auto explain = runtime.ExplainAnalyze("g.V(0).out()");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->result.rows.size(), 4u);
  // The out() pipe's reported row count is what the query returned.
  ASSERT_FALSE(explain->pipes.empty());
  EXPECT_EQ(explain->pipes.back().rows, 4u);
}

TEST(ExplainAnalyzeTest, BatchedExecutorKeepsSpanRowsAndPipeMapping) {
  // Regression for the vectorized executor: EXPLAIN ANALYZE must attribute
  // the same operators with the same per-operator row counts as the
  // row-at-a-time executor — seq-scan spans count scanned (not surviving)
  // rows, join spans count emitted rows — and the Gremlin pipe mapping must
  // survive batching untouched.
  StoreConfig vec_config;
  vec_config.va_hash_indexes = {"kind"};
  vec_config.vectorized = true;
  StoreConfig row_config = vec_config;
  row_config.vectorized = false;
  auto vec_store = SqlGraphStore::Build(HubGraph(8), vec_config);
  ASSERT_TRUE(vec_store.ok());
  auto row_store = SqlGraphStore::Build(HubGraph(8), row_config);
  ASSERT_TRUE(row_store.ok());

  const char* sql_queries[] = {
      // Seq scan + residual filter: the scan span reports all rows scanned.
      "explain analyze SELECT * FROM EA WHERE LBL = 'rel'",
      // Hash join + aggregate (no index on the derived CTE).
      "explain analyze WITH deg AS (SELECT INV AS V FROM EA) "
      "SELECT e.INV, COUNT(*) FROM EA e, VA v WHERE v.VID = e.INV "
      "GROUP BY e.INV",
  };
  for (const char* q : sql_queries) {
    auto vec = (*vec_store)->ExecuteSql(q);
    ASSERT_TRUE(vec.ok()) << q << ": " << vec.status().ToString();
    auto row = (*row_store)->ExecuteSql(q);
    ASSERT_TRUE(row.ok()) << q << ": " << row.status().ToString();
    ASSERT_EQ(vec->rows.size(), row->rows.size()) << q;
    for (size_t i = 0; i < vec->rows.size(); ++i) {
      // (stage, operator, rows) identical; time_ms may differ.
      EXPECT_EQ(vec->rows[i][0], row->rows[i][0]) << q << " span " << i;
      EXPECT_EQ(vec->rows[i][1], row->rows[i][1]) << q << " span " << i;
      EXPECT_EQ(vec->rows[i][2], row->rows[i][2])
          << q << " span " << i << " (" << vec->rows[i][1].AsString() << ")";
    }
  }

  // Gremlin pipe attribution: same pipes, same span ops/rows/contexts in
  // both modes on a multi-pipe Table-8 pipeline.
  gremlin::GremlinRuntime vec_runtime(vec_store->get());
  gremlin::GremlinRuntime row_runtime(row_store->get());
  const char* pipelines[] = {
      "g.V.has('kind','hub').out().dedup().count()",
      "g.V(0).outE('rel').inV().dedup().count()",
  };
  for (const char* q : pipelines) {
    auto vec = vec_runtime.ExplainAnalyze(q);
    ASSERT_TRUE(vec.ok()) << q << ": " << vec.status().ToString();
    auto row = row_runtime.ExplainAnalyze(q);
    ASSERT_TRUE(row.ok()) << q << ": " << row.status().ToString();
    ASSERT_EQ(vec->pipes.size(), row->pipes.size()) << q;
    for (size_t p = 0; p < vec->pipes.size(); ++p) {
      EXPECT_EQ(vec->pipes[p].rows, row->pipes[p].rows) << q << " pipe " << p;
      ASSERT_EQ(vec->pipes[p].spans.size(), row->pipes[p].spans.size())
          << q << " pipe " << p;
      for (size_t s = 0; s < vec->pipes[p].spans.size(); ++s) {
        EXPECT_EQ(vec->pipes[p].spans[s].op, row->pipes[p].spans[s].op)
            << q << " pipe " << p << " span " << s;
        EXPECT_EQ(vec->pipes[p].spans[s].rows, row->pipes[p].spans[s].rows)
            << q << " pipe " << p << " span "
            << vec->pipes[p].spans[s].op;
        EXPECT_EQ(vec->pipes[p].spans[s].context,
                  row->pipes[p].spans[s].context)
            << q << " pipe " << p << " span " << s;
      }
    }
    EXPECT_EQ(vec->result.rows, row->result.rows) << q;
  }
}

TEST(ExplainAnalyzeTest, SoftDeletedVerticesVanishFromRowCounts) {
  // Regression for the §4.5.2 soft-delete filter: after RemoveVertex, both
  // the Gremlin result and the attributed operator row counts must exclude
  // the deleted vertex (its VID went negative), before AND after Compact.
  auto store = SqlGraphStore::Build(HubGraph(6));
  ASSERT_TRUE(store.ok());
  gremlin::GremlinRuntime runtime(store->get());

  auto rows_of = [&](const char* q) -> int64_t {
    auto explain = runtime.ExplainAnalyze(q);
    EXPECT_TRUE(explain.ok()) << q;
    if (!explain.ok()) return -1;
    // Deleted vertices must not appear in the result...
    const int col = explain->result.FindColumn("val");
    EXPECT_GE(col, 0);
    for (const auto& row : explain->result.rows) {
      EXPECT_GE(row[static_cast<size_t>(col)].AsInt(), 0)
          << "negative VID leaked: " << q;
    }
    // ...nor inflate the final pipe's operator row count.
    return static_cast<int64_t>(explain->pipes.back().rows);
  };

  EXPECT_EQ(rows_of("g.V(0).out()"), 6);

  // Delete two leaves (vids 1 and 2).
  ASSERT_TRUE((*store)->RemoveVertex(1).ok());
  ASSERT_TRUE((*store)->RemoveVertex(2).ok());
  EXPECT_EQ(rows_of("g.V(0).out()"), 4);
  auto count = runtime.Count("g.V.count()");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5);  // hub + 4 surviving leaves

  // Compact purges the negated rows; results must be identical.
  ASSERT_TRUE((*store)->Compact().ok());
  EXPECT_EQ(rows_of("g.V(0).out()"), 4);
  count = runtime.Count("g.V.count()");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5);
}

TEST(ExplainAnalyzeTest, SubsystemCountersFlowThroughDefaultRegistry) {
  // End-to-end: running queries moves the process-wide counters the
  // executor exports.
  auto store = SqlGraphStore::Build(HubGraph(3));
  ASSERT_TRUE(store.ok());
  Counter* queries =
      MetricsRegistry::Default().GetCounter("sql.queries");
  const uint64_t before = queries->Value();
  ASSERT_TRUE((*store)->ExecuteSql("SELECT * FROM OPA").ok());
  EXPECT_GT(queries->Value(), before);
  const std::string dump = MetricsRegistry::Default().DumpJson();
  EXPECT_NE(dump.find("sql.queries"), std::string::npos);
}

}  // namespace
}  // namespace sqlgraph
