# Empty dependencies file for sqlgraph_coloring.
# This may be replaced when dependencies are built.
