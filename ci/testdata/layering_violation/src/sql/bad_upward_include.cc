// Planted layering violation for ci/check.sh: a file in the sql module
// (which sits below sqlgraph and gremlin in the CMake link DAG) including
// a gremlin header. ci/lint_layering.py must flag this edge; check.sh
// asserts the non-zero exit so a silently weakened lint fails CI.
#include "gremlin/runtime.h"
#include "sql/ast.h"

namespace sqlgraph {
namespace sql {

int PlannedViolation() { return 0; }

}  // namespace sql
}  // namespace sqlgraph
