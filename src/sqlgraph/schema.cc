#include "sqlgraph/schema.h"

#include "util/string_util.h"

namespace sqlgraph {
namespace core {

std::string EidCol(size_t i) { return util::StrFormat("EID%zu", i); }
std::string LblCol(size_t i) { return util::StrFormat("LBL%zu", i); }
std::string ValCol(size_t i) { return util::StrFormat("VAL%zu", i); }

namespace {

rel::Schema AdjacencySchema(size_t colors) {
  rel::Schema s;
  s.AddColumn("VID", rel::ColumnType::kInt64, /*nullable=*/false);
  s.AddColumn("SPILL", rel::ColumnType::kInt64, /*nullable=*/false);
  for (size_t i = 0; i < colors; ++i) {
    s.AddColumn(EidCol(i), rel::ColumnType::kInt64);
    s.AddColumn(LblCol(i), rel::ColumnType::kString);
    s.AddColumn(ValCol(i), rel::ColumnType::kInt64);
  }
  return s;
}

rel::Schema SecondarySchema() {
  rel::Schema s;
  s.AddColumn("VALID", rel::ColumnType::kInt64, /*nullable=*/false);
  s.AddColumn("EID", rel::ColumnType::kInt64, /*nullable=*/false);
  s.AddColumn("VAL", rel::ColumnType::kInt64, /*nullable=*/false);
  return s;
}

}  // namespace

util::Status GraphSchema::CreateTables(rel::Database* db,
                                       const StoreConfig& config) const {
  RETURN_NOT_OK(
      db->CreateTable(kOpaTable, AdjacencySchema(out_colors), config.storage)
          .status());
  RETURN_NOT_OK(
      db->CreateTable(kIpaTable, AdjacencySchema(in_colors), config.storage)
          .status());
  RETURN_NOT_OK(
      db->CreateTable(kOsaTable, SecondarySchema(), config.storage).status());
  RETURN_NOT_OK(
      db->CreateTable(kIsaTable, SecondarySchema(), config.storage).status());

  rel::Schema va;
  va.AddColumn("VID", rel::ColumnType::kInt64, /*nullable=*/false);
  va.AddColumn("ATTR", rel::ColumnType::kJson);
  RETURN_NOT_OK(db->CreateTable(kVaTable, std::move(va), config.storage)
                    .status());

  rel::Schema ea;
  ea.AddColumn("EID", rel::ColumnType::kInt64, /*nullable=*/false);
  ea.AddColumn("INV", rel::ColumnType::kInt64, /*nullable=*/false);
  ea.AddColumn("OUTV", rel::ColumnType::kInt64, /*nullable=*/false);
  ea.AddColumn("LBL", rel::ColumnType::kString, /*nullable=*/false);
  ea.AddColumn("ATTR", rel::ColumnType::kJson);
  return db->CreateTable(kEaTable, std::move(ea), config.storage).status();
}

util::Status GraphSchema::CreateIndexes(rel::Database* db,
                                        const StoreConfig& config) const {
  rel::Table* opa = db->GetTable(kOpaTable);
  rel::Table* ipa = db->GetTable(kIpaTable);
  rel::Table* osa = db->GetTable(kOsaTable);
  rel::Table* isa = db->GetTable(kIsaTable);
  rel::Table* va = db->GetTable(kVaTable);
  rel::Table* ea = db->GetTable(kEaTable);
  if (!opa || !ipa || !osa || !isa || !va || !ea) {
    return util::Status::Internal("SQLGraph tables missing");
  }
  RETURN_NOT_OK(opa->CreateIndex("OPA_VID", {"VID"}, rel::IndexKind::kHash));
  RETURN_NOT_OK(ipa->CreateIndex("IPA_VID", {"VID"}, rel::IndexKind::kHash));
  RETURN_NOT_OK(osa->CreateIndex("OSA_VALID", {"VALID"},
                                 rel::IndexKind::kHash));
  RETURN_NOT_OK(isa->CreateIndex("ISA_VALID", {"VALID"},
                                 rel::IndexKind::kHash));
  RETURN_NOT_OK(va->CreateIndex("VA_PK", {"VID"}, rel::IndexKind::kHash,
                                /*unique=*/true));
  RETURN_NOT_OK(ea->CreateIndex("EA_PK", {"EID"}, rel::IndexKind::kHash,
                                /*unique=*/true));
  RETURN_NOT_OK(ea->CreateIndex("EA_INV", {"INV"}, rel::IndexKind::kHash));
  RETURN_NOT_OK(ea->CreateIndex("EA_OUTV", {"OUTV"}, rel::IndexKind::kHash));
  // The SP/OP-style combined indexes of Fig. 5.
  RETURN_NOT_OK(
      ea->CreateIndex("EA_INV_LBL", {"INV", "LBL"}, rel::IndexKind::kHash));
  RETURN_NOT_OK(
      ea->CreateIndex("EA_OUTV_LBL", {"OUTV", "LBL"}, rel::IndexKind::kHash));
  for (const auto& key : config.va_hash_indexes) {
    RETURN_NOT_OK(va->CreateJsonIndex("VA_ATTR_" + key, "ATTR", key,
                                      rel::IndexKind::kHash));
  }
  for (const auto& key : config.va_ordered_indexes) {
    RETURN_NOT_OK(va->CreateJsonIndex("VA_ATTRO_" + key, "ATTR", key,
                                      rel::IndexKind::kOrdered));
  }
  return util::Status::OK();
}

}  // namespace core
}  // namespace sqlgraph
