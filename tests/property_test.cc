// Property-based tests:
//  * random CRUD sequences on SqlGraphStore checked against a trivial
//    reference model (adjacency maps),
//  * randomly generated Gremlin pipelines executed by the SQL translation
//    AND the pipe-at-a-time interpreter over the Neo4j-like store — two
//    independent engines that must agree on every query,
//  * a concurrent CRUD stress run followed by a cross-table consistency
//    audit of the store.

#include <algorithm>
#include <map>
#include <set>
#include <thread>

#include "baseline/gremlin_interp.h"
#include "baseline/native_store.h"
#include "gremlin/runtime.h"
#include "gtest/gtest.h"
#include "sqlgraph/store.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace sqlgraph {
namespace {

using core::SqlGraphStore;
using graph::EdgeId;
using graph::PropertyGraph;
using graph::VertexId;

json::JsonValue Attr(const char* key, int64_t value) {
  json::JsonValue obj = json::JsonValue::Object();
  obj.Set(key, value);
  return obj;
}

// ------------------------------------------------- CRUD vs reference model --

/// The simplest possible property-graph implementation, used as the oracle.
struct ReferenceModel {
  struct Edge {
    VertexId src, dst;
    std::string label;
    bool alive = true;
  };
  std::set<VertexId> vertices;
  std::map<EdgeId, Edge> edges;

  std::multiset<VertexId> Out(VertexId v, const std::string& label) const {
    std::multiset<VertexId> out;
    for (const auto& [eid, e] : edges) {
      if (e.alive && e.src == v && (label.empty() || e.label == label)) {
        out.insert(e.dst);
      }
    }
    return out;
  }
  std::multiset<VertexId> In(VertexId v, const std::string& label) const {
    std::multiset<VertexId> out;
    for (const auto& [eid, e] : edges) {
      if (e.alive && e.dst == v && (label.empty() || e.label == label)) {
        out.insert(e.src);
      }
    }
    return out;
  }
};

class RandomCrudTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCrudTest, StoreMatchesReferenceModel) {
  util::Rng rng(0xC0FFEE + static_cast<uint64_t>(GetParam()) * 7919);
  auto built = SqlGraphStore::Build(PropertyGraph());
  ASSERT_TRUE(built.ok());
  SqlGraphStore& store = **built;
  ReferenceModel model;
  const std::vector<std::string> labels = {"a", "b", "c", "d", "e"};

  for (int step = 0; step < 300; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.25 || model.vertices.size() < 2) {
      auto vid = store.AddVertex(Attr("step", step));
      ASSERT_TRUE(vid.ok());
      model.vertices.insert(*vid);
    } else if (roll < 0.65) {
      // Random edge between live vertices.
      auto pick = [&] {
        auto it = model.vertices.begin();
        std::advance(it, static_cast<long>(rng.Uniform(model.vertices.size())));
        return *it;
      };
      const VertexId src = pick(), dst = pick();
      const std::string& label = labels[rng.Uniform(labels.size())];
      auto eid = store.AddEdge(src, dst, label, Attr("step", step));
      ASSERT_TRUE(eid.ok());
      model.edges[*eid] = {src, dst, label, true};
    } else if (roll < 0.8 && !model.edges.empty()) {
      // Remove a random live edge (possibly twice: second must NotFound).
      auto it = model.edges.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.edges.size())));
      if (it->second.alive) {
        ASSERT_TRUE(store.RemoveEdge(it->first).ok());
        it->second.alive = false;
      } else {
        EXPECT_TRUE(store.RemoveEdge(it->first).IsNotFound());
      }
    } else if (roll < 0.9 && model.vertices.size() > 2) {
      // Remove a random vertex (soft delete).
      auto it = model.vertices.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.vertices.size())));
      const VertexId vid = *it;
      ASSERT_TRUE(store.RemoveVertex(vid).ok());
      model.vertices.erase(it);
      for (auto& [eid, e] : model.edges) {
        if (e.src == vid || e.dst == vid) e.alive = false;
      }
    } else if (!model.vertices.empty()) {
      auto it = model.vertices.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.vertices.size())));
      ASSERT_TRUE(store.SetVertexAttr(*it, "touched",
                                      json::JsonValue(int64_t{step}))
                      .ok());
    }

    // Periodic deep check against the oracle.
    if (step % 50 == 49) {
      for (VertexId v : model.vertices) {
        for (const std::string& label : {std::string(), labels[0], labels[2]}) {
          auto got = store.Out(v, label);
          ASSERT_TRUE(got.ok());
          std::multiset<VertexId> got_set(got->begin(), got->end());
          // The store may retain dangling references to soft-deleted
          // vertices (paper §4.5.2) — drop them before comparing.
          std::multiset<VertexId> cleaned;
          for (VertexId n : got_set) {
            if (model.vertices.count(n)) cleaned.insert(n);
          }
          EXPECT_EQ(cleaned, model.Out(v, label))
              << "out(" << v << ", '" << label << "') at step " << step;
          auto got_in = store.In(v, label);
          ASSERT_TRUE(got_in.ok());
          std::multiset<VertexId> in_cleaned;
          for (VertexId n : *got_in) {
            if (model.vertices.count(n)) in_cleaned.insert(n);
          }
          EXPECT_EQ(in_cleaned, model.In(v, label));
        }
      }
    }
  }
  // Compaction must preserve the reachable graph exactly (and purge the
  // soft-deleted rows, making the cleaned/raw distinction vanish).
  ASSERT_TRUE(store.Compact().ok());
  for (VertexId v : model.vertices) {
    auto got = store.Out(v, "");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::multiset<VertexId>(got->begin(), got->end()),
              model.Out(v, ""));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrudTest, ::testing::Range(0, 10));

// ------------------------------------------- random pipeline differential --

/// Generates a random supported pipeline over the label alphabet.
std::string RandomPipeline(util::Rng* rng, size_t num_vertices) {
  static const char* kLabels[] = {"a", "b", "c"};
  std::string q = "g.V";
  if (rng->Chance(0.5)) {
    q = util::StrFormat("g.V(%llu)",
                        static_cast<unsigned long long>(
                            rng->Uniform(num_vertices)));
  }
  const int steps = 1 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < steps; ++i) {
    switch (rng->Uniform(7)) {
      case 0: q += util::StrFormat(".out('%s')", kLabels[rng->Uniform(3)]); break;
      case 1: q += util::StrFormat(".in('%s')", kLabels[rng->Uniform(3)]); break;
      case 2: q += ".both()"; break;
      case 3: q += ".out()"; break;
      case 4: q += ".dedup()"; break;
      case 5:
        q += util::StrFormat(".has('w', T.%s, %llu)",
                             rng->Chance(0.5) ? "gt" : "lte",
                             static_cast<unsigned long long>(rng->Uniform(10)));
        break;
      default: q += util::StrFormat(".outE('%s').inV()",
                                    kLabels[rng->Uniform(3)]);
    }
  }
  return q + ".count()";
}

class RandomPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineTest, TranslationAgreesWithInterpreter) {
  util::Rng rng(0xBEEF + static_cast<uint64_t>(GetParam()) * 104729);
  // Random small graph with 'w' weights.
  PropertyGraph g;
  const size_t n = 20 + rng.Uniform(30);
  for (size_t i = 0; i < n; ++i) {
    g.AddVertex(Attr("w", static_cast<int64_t>(rng.Uniform(10))));
  }
  static const char* kLabels[] = {"a", "b", "c"};
  const size_t edges = n * 3;
  for (size_t i = 0; i < edges; ++i) {
    (void)g.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
                    static_cast<VertexId>(rng.Uniform(n)),
                    kLabels[rng.Uniform(3)], json::JsonValue::Object());
  }
  auto store = SqlGraphStore::Build(g);
  ASSERT_TRUE(store.ok());
  gremlin::GremlinRuntime runtime(store->get());
  auto native = baseline::NativeStore::Build(g);
  ASSERT_TRUE(native.ok());
  baseline::GremlinInterpreter interp(native->get());

  for (int trial = 0; trial < 25; ++trial) {
    const std::string q = RandomPipeline(&rng, n);
    auto a = runtime.Count(q);
    auto b = interp.Count(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest, ::testing::Range(0, 14));

// ------------------------------------------------------ concurrent stress --

TEST(ConcurrentCrudTest, StoreStaysConsistentUnderConcurrency) {
  PropertyGraph g;
  const size_t n = 200;
  for (size_t i = 0; i < n; ++i) g.AddVertex(Attr("i", static_cast<int64_t>(i)));
  for (size_t i = 0; i < n; ++i) {
    (void)g.AddEdge(static_cast<VertexId>(i),
                    static_cast<VertexId>((i + 1) % n), "ring",
                    json::JsonValue::Object());
  }
  auto built = SqlGraphStore::Build(g);
  ASSERT_TRUE(built.ok());
  SqlGraphStore& store = **built;

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&store, t] {
      util::Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 300; ++i) {
        const VertexId a = static_cast<VertexId>(rng.Uniform(n));
        const VertexId b = static_cast<VertexId>(rng.Uniform(n));
        switch (rng.Uniform(6)) {
          case 0: (void)store.AddEdge(a, b, "x", json::JsonValue::Object()); break;
          case 1: {
            auto found = store.FindEdge(a, "x", b);
            if (found.ok() && found->has_value()) (void)store.RemoveEdge(**found);
            break;
          }
          case 2: (void)store.GetVertex(a); break;
          case 3: (void)store.Out(a); break;
          case 4: (void)store.GetOutEdges(a, "ring"); break;
          default:
            (void)store.SetVertexAttr(a, "touched", json::JsonValue(int64_t{i}));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Consistency audit: every EA edge must be reachable through the
  // adjacency tables in both directions.
  auto edges = store.ExecuteSql("SELECT EID, INV, OUTV, LBL FROM EA");
  ASSERT_TRUE(edges.ok());
  size_t checked = 0;
  for (const auto& row : edges->rows) {
    const VertexId src = row[1].AsInt();
    const VertexId dst = row[2].AsInt();
    const std::string& label = row[3].AsString();
    auto out = store.Out(src, label);
    ASSERT_TRUE(out.ok());
    EXPECT_NE(std::find(out->begin(), out->end(), dst), out->end())
        << "edge " << row[0].ToString() << " missing from OPA";
    auto in = store.In(dst, label);
    ASSERT_TRUE(in.ok());
    EXPECT_NE(std::find(in->begin(), in->end(), src), in->end())
        << "edge " << row[0].ToString() << " missing from IPA";
    if (++checked > 400) break;  // bounded audit
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace sqlgraph
