// Plan-IR verifier: an LLVM-verifier-style static analysis pass over the
// logical plan tree (the CTE chain + final SELECT that IS this engine's
// query IR) and over the PlanMemo a prepared statement is about to replay.
// It runs after planning and before execution — on by default in Debug
// builds, behind Executor::Options::verify_plans / StoreConfig::verify_plans
// otherwise — and returns a structured PlanVerifyReport instead of letting a
// malformed plan execute.
//
// Check catalog (one VerifyCheck per class):
//
//   kColumnResolution   every column reference resolves in the scope its
//                       operator evaluates under (FROM-chain env, set-op
//                       output env, HAVING's aggregate-output env, ...);
//                       every table name resolves to a CTE or base table.
//   kTypeSoundness      expressions cannot hit EvalExpr's type errors on any
//                       row: arithmetic whose operand is statically a
//                       string/bool/json, LIKE with a non-string pattern,
//                       negation of a non-number, JSON_VAL with a non-string
//                       key, wrong scalar-function arity, unknown functions,
//                       aggregates in scalar context, bare `*` outside
//                       COUNT(*); plus equi-join keys whose two sides have
//                       statically known, different types (a join that can
//                       only ever produce an empty — i.e. silently wrong —
//                       result).
//   kOperatorInvariant  aggregate select items are aggregates or GROUP BY
//                       expressions, no `*` under aggregation, set-op arity
//                       agreement, recursive CTEs shaped <base> UNION [ALL]
//                       <step>, CTE column-alias arity, VALUES row arity,
//                       JSON_EDGES column-count bounds, IN subqueries
//                       returning one column.
//   kMemoReplay         a PlanMemo entry replays against the database it was
//                       recorded on: memoized indexes exist with matching
//                       key arity, selection bitmaps match the conjunct
//                       count they were recorded for, and a memo recorded
//                       under one schema epoch is rejected under another.
//   kPipeAttribution    every CTE of a Gremlin translation maps back to
//                       exactly one source pipe (gremlin/runtime.cc feeds
//                       the attribution in; this layer never sees pipes).
//
// Soundness contract: column types are dynamic in this engine, so the type
// checker only reports errors that are certain from literals and operator
// result types — a column reference types as Unknown and is never flagged.
// A reported issue therefore means the plan either errors at runtime as soon
// as the offending operator evaluates a row, or violates a planner
// invariant that silently corrupts results (type-confused join keys, stale
// memos). Empirically the verifier accepts every plan the Gremlin
// translator, the differential harness, and the fuzz corpora generate (see
// tests/verify_test.cc).

#ifndef SQLGRAPH_SQL_VERIFY_H_
#define SQLGRAPH_SQL_VERIFY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rel/database.h"
#include "sql/ast.h"
#include "util/status.h"

namespace sqlgraph {
namespace sql {

class PlanMemo;

enum class VerifyCheck {
  kColumnResolution,
  kTypeSoundness,
  kOperatorInvariant,
  kMemoReplay,
  kPipeAttribution,
};

/// Stable lint-style name, e.g. "column-resolution".
const char* VerifyCheckName(VerifyCheck check);

/// One defect. `context` is the CTE name or "final" (mirroring ExecStats
/// trace/span contexts); `operator_name` names the faulty operator the way
/// EXPLAIN ANALYZE spans do ("project", "aggregate", "join e2", ...).
struct PlanVerifyIssue {
  VerifyCheck check = VerifyCheck::kColumnResolution;
  std::string context;
  std::string operator_name;
  std::string message;

  /// "[column-resolution] final/project: cannot resolve column v.zzz"
  std::string ToString() const;
};

struct PlanVerifyReport {
  std::vector<PlanVerifyIssue> issues;

  bool ok() const { return issues.empty(); }
  void Add(VerifyCheck check, std::string context, std::string operator_name,
           std::string message);
  /// All issues, one per line.
  std::string ToString() const;
  /// OK when clean; otherwise InvalidArgument carrying every issue line,
  /// prefixed "plan verification failed".
  util::Status ToStatus() const;
};

/// Verifies the logical plan tree against `db`: column resolution, type
/// soundness, operator invariants. Appends to `*report`.
void VerifyPlan(const SqlQuery& query, const rel::Database& db,
                PlanVerifyReport* report);

/// Convenience: fresh report (includes the self-test plants, see below).
PlanVerifyReport VerifyPlan(const SqlQuery& query, const rel::Database& db);

/// Verifies every access/join/outer plan `memo` recorded for `query`'s
/// table refs against `db` (kMemoReplay). Run after the memo has filled —
/// the executor schedules this on a prepared statement's second execution
/// (PlanMemo::ClaimVerifyStage).
void VerifyMemo(const SqlQuery& query, const rel::Database& db,
                const PlanMemo& memo, PlanVerifyReport* report);

/// Statically rejects replaying a plan compiled under `plan_epoch` against
/// a database at `current_epoch` (kMemoReplay). The plan-cache path
/// re-prepares stale handles instead; this guards the cache-less
/// ExecutePrepared path, which would otherwise replay the stale memo
/// silently.
void VerifyMemoEpoch(uint64_t plan_epoch, uint64_t current_epoch,
                     PlanVerifyReport* report);

/// Gremlin pipe-attribution completeness: every CTE of `query` appears in
/// exactly one pipe's CTE list, and every attributed CTE exists. `pipes` is
/// (pipe name, CTE names) — the gremlin layer flattens its PipeAttribution
/// into this shape so the sql layer stays below gremlin in the module DAG.
void VerifyCteAttribution(
    const SqlQuery& query,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& pipes,
    PlanVerifyReport* report);

// ---------------------------------------------------------------------------
// Mutation self-tests (the PR-9 pattern): SQLGRAPH_VERIFY_SELFTEST plants a
// known defect through the real checking machinery and CI asserts the
// verifier rejects it with a diagnostic naming the operator. Modes:
//
//   SQLGRAPH_VERIFY_SELFTEST=dangling-column   a projection referencing a
//                                              column no input produces
//   SQLGRAPH_VERIFY_SELFTEST=join-key-type     an equi-join key comparing
//                                              an int column with a string
//   SQLGRAPH_VERIFY_SELFTEST=stale-epoch       a memo replayed one schema
//                                              epoch after it was recorded
//
// The plants are synthetic plan fragments checked by the same walkers as
// real queries, so a silently weakened checker fails CI.

enum class VerifySelfTest {
  kNone = 0,
  kDanglingColumn,
  kTypeConfusedJoinKey,
  kStaleEpochMemo,
};

/// Lazily parsed from SQLGRAPH_VERIFY_SELFTEST (unset/unknown → kNone).
VerifySelfTest VerifySelfTestMode();

/// Test override (bypasses the environment).
void SetVerifySelfTestModeForTest(VerifySelfTest mode);

/// Runs the active self-test plant through the real checkers, appending its
/// diagnostics to `*report`. No-op in mode kNone. Called by the executor
/// whenever it verifies a plan; callable directly from tests.
void AddVerifySelfTestPlants(PlanVerifyReport* report);

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_VERIFY_H_
