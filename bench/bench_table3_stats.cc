// Paper Table 3 — characteristics of the hash tables: number of hashed
// labels, hashed bucket size, spill percentage, long-string rows and
// multi-value rows, for the vertex-attribute hash table and the
// outgoing/incoming adjacency hash tables.
//
//   ./bench_table3_stats [--scale=0.3]

#include "bench_common.h"
#include "sqlgraph/micro_schemas.h"
#include "util/string_util.h"

using namespace sqlgraph;
using namespace sqlgraph::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "--scale", 0.3);
  graph::PropertyGraph g = BuildDbpediaGraph(scale);
  auto store = core::SqlGraphStore::Build(g, DbpediaStoreConfig());
  if (!store.ok()) return 1;
  auto hash_attr = core::HashAttrStore::Build(g);
  if (!hash_attr.ok()) return 1;

  const core::LoadStats& adj = (*store)->load_stats();
  const core::HashAttrStore::Stats& va = (*hash_attr)->stats();

  Banner("Table 3 — hash table characteristics");
  TextTable table({"", "VertexAttr Hash", "Outgoing Adjacency",
                   "Incoming Adjacency"});
  table.AddRow({"No. of Hashed Labels", std::to_string(va.num_keys),
                std::to_string(adj.num_out_labels),
                std::to_string(adj.num_in_labels)});
  table.AddRow({"Hashed Bucket Size", std::to_string(va.max_bucket),
                std::to_string(adj.max_out_bucket),
                std::to_string(adj.max_in_bucket)});
  table.AddRow({"Spill Rows Percentage",
                util::StrFormat("%.1f%%", va.spill_pct),
                util::StrFormat("%.1f%%", adj.out_spill_pct),
                util::StrFormat("%.1f%%", adj.in_spill_pct)});
  table.AddRow({"Long String Table Rows",
                std::to_string(va.long_string_rows), "0", "0"});
  table.AddRow({"Multi-Value Table Rows",
                std::to_string(va.multi_value_rows),
                std::to_string(adj.osa_rows), std::to_string(adj.isa_rows)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(paper, 300M-edge DBpedia: VA-hash 53K labels / bucket 106 / 3.2%% "
      "spills / 586K long strings / 49M multi-value;\n outgoing 13K / 125 / "
      "0%% / 0 / 244M; incoming 13K / 19 / 0.6%% / 0 / 243M)\n");
  std::printf("\nSchema widths: OPA %zu triads, IPA %zu triads; storage "
              "footprint %s\n",
              (*store)->schema().out_colors, (*store)->schema().in_colors,
              util::HumanBytes((*store)->SerializedBytes()).c_str());
  return 0;
}
