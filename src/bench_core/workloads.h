// Benchmark workload definitions: the paper's Table 1 adjacency queries,
// Table 2 attribute-lookup queries, the 11 long-path queries (Fig. 3/6/8b)
// and the 20 DBpedia benchmark queries (Fig. 8a), all expressed over the
// synthetic DBpedia-like dataset.

#ifndef SQLGRAPH_BENCH_CORE_WORKLOADS_H_
#define SQLGRAPH_BENCH_CORE_WORKLOADS_H_

#include <string>
#include <vector>

#include "graph/dbpedia_gen.h"
#include "rel/value.h"
#include "sqlgraph/micro_schemas.h"

namespace sqlgraph {
namespace bench {

/// One Table-1-style traversal query: fixed start tag, label, hop count.
struct AdjacencyQuery {
  int id;                // 1..11, the paper's numbering
  std::string start_tag; // qtag attribute marking the starting vertices
  std::string label;     // isPartOf (directed) or team (undirected)
  int hops;
  bool both;             // traverse ignoring direction (team queries)

  /// Renders the query as Gremlin text (ends with .dedup().count()).
  std::string ToGremlin() const;
};

/// The paper's Table 1 set (lq1..lq11).
std::vector<AdjacencyQuery> Table1Queries();

/// One Table-2-style attribute lookup.
struct AttributeQuery {
  int id;  // 1..16
  std::string key;
  core::HashAttrStore::QueryKind kind;
  rel::Value operand;  // pattern / comparison constant (unused for NotNull)

  /// The equivalent SQL over the VA JSON table (COUNT(*) form).
  std::string ToJsonSql() const;
};

/// The paper's Table 2 set: 8 attributes × {not-null, value filter}.
std::vector<AttributeQuery> Table2Queries();

/// The 20 DBpedia benchmark queries of Fig. 8a (SPARQL set converted to
/// Gremlin, per Appendix B), as Gremlin text. Query 15 (index 14) is the
/// pathological one Titan timed out on.
std::vector<std::string> DbpediaBenchmarkQueries();

/// Keys that get attribute indexes (both in SQLGraph's VA and in baseline
/// stores), per §3.3's "user adds specialized indexes for queried keys".
std::vector<std::string> IndexedAttributeKeys();
std::vector<std::string> OrderedIndexedAttributeKeys();

}  // namespace bench
}  // namespace sqlgraph

#endif  // SQLGRAPH_BENCH_CORE_WORKLOADS_H_
