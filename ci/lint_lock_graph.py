#!/usr/bin/env python3
"""Static lock-graph lint: the documented lock hierarchy must match the code.

Three checks, all pure text analysis (no toolchain needed):

  1. Hierarchy drift: the (rank, name) table in src/util/lock_rank.h's
     LockRank enum must match the hierarchy bullet in DESIGN.md section 7
     ("The hierarchy") — same rank numbers, same order, nothing missing,
     nothing extra. The enum is what the runtime validator enforces; the
     DESIGN table is what humans read before adding a lock. They drift
     silently because nothing compiles the prose.
  2. Dead ranks: every enumerator except kUnranked must be constructed
     (or SetRank'd) somewhere under src/ — a rank nobody uses is either
     dead documentation or a lock that silently lost its validation.
  3. Unguarded mutexes: every util::Mutex / util::SharedMutex member
     declared under src/ must be referenced by at least one GUARDED_BY /
     PT_GUARDED_BY / REQUIRES / REQUIRES_SHARED / ACQUIRE annotation in
     the same file, unless allowlisted below with a reason. A mutex no
     annotation mentions protects nothing the thread-safety analysis can
     see — usually a member that lost its annotations in a refactor.

Exit status 0 when clean, 1 with findings on stderr. --root points the
lint at another tree (used by ci/check.sh to assert the checks fail on
the synthetic drift fixture in ci/testdata/lock_graph_drift).
"""

import argparse
import pathlib
import re
import sys

# Mutex members whose protection is a documented protocol rather than
# per-member GUARDED_BY annotations. Keep reasons current: an entry here
# silences check 3 for that member.
ALLOWLIST = {
    ("src/sqlgraph/store.h", "table_locks_"):
        "guards the six rel::Table objects behind WriteLock/ReadLockAll "
        "(sorted acquisition protocol, DESIGN.md section 7), not members "
        "of SqlGraphStore itself",
    ("src/rel/lock_manager.h", "stripes_"):
        "row-range lock stripes; they guard rows addressed by key hash, "
        "not any declared member",
}

# The shim/validator/explorer layers declare or name mutexes as part of
# their own machinery; they are not lock *users*.
SCAN_EXCLUDE = (
    "src/util/thread_annotations.h",
    "src/util/lock_rank.h",
    "src/util/lock_rank.cc",
    "src/util/sched.h",
    "src/util/sched.cc",
)

MEMBER_RE = re.compile(
    r"(?:^|[^<\w:])(?:util::)?(?:Mutex|SharedMutex)\s+([A-Za-z]\w*_)\s*[{\[;]")
ARRAY_RE = re.compile(
    r"std::array<\s*(?:util::)?(?:Mutex|SharedMutex)\b[^>]*>\s+([A-Za-z]\w*_)")
ENUM_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,")
DESIGN_PAIR_RE = re.compile(r"[\w.\-\]]\((\d+)(?:,[^)]*)?\)")


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def parse_enum(root: pathlib.Path, findings: list) -> dict:
    """LockRank enumerators as {name: rank}, excluding kUnranked."""
    path = root / "src/util/lock_rank.h"
    if not path.is_file():
        findings.append(f"{path}: missing (cannot lint lock hierarchy)")
        return {}
    text = strip_comments(path.read_text())
    m = re.search(r"enum class LockRank[^{]*\{(.*?)\};", text, flags=re.S)
    if m is None:
        findings.append(f"{path}: LockRank enum not found")
        return {}
    ranks = {}
    for name, value in ENUM_RE.findall(m.group(1)):
        if name != "Unranked":
            ranks[name] = int(value)
    if not ranks:
        findings.append(f"{path}: LockRank enum has no ranked entries")
    return ranks


def parse_design(root: pathlib.Path, findings: list) -> list:
    """Rank numbers from DESIGN.md's hierarchy bullet, in written order."""
    path = root / "DESIGN.md"
    if not path.is_file():
        findings.append(f"{path}: missing (cannot lint lock hierarchy)")
        return []
    text = path.read_text()
    marker = text.find("**The hierarchy**")
    if marker < 0:
        findings.append(f"{path}: '**The hierarchy**' bullet not found")
        return []
    span = re.search(r"`([^`]+)`", text[marker:])
    if span is None:
        findings.append(f"{path}: hierarchy bullet has no backtick table")
        return []
    return [int(v) for v in DESIGN_PAIR_RE.findall(span.group(1))]


def check_hierarchy(ranks: dict, design: list, findings: list) -> None:
    expected = sorted(ranks.values())
    by_value = {v: k for k, v in ranks.items()}
    for v in expected:
        if v not in design:
            findings.append(
                f"DESIGN.md hierarchy drift: rank {v} (LockRank::k"
                f"{by_value[v]}) is in src/util/lock_rank.h but missing "
                "from the section-7 hierarchy table")
    for v in design:
        if v not in expected:
            findings.append(
                f"DESIGN.md hierarchy drift: rank {v} appears in the "
                "section-7 hierarchy table but has no LockRank enumerator")
    if sorted(design) == expected and design != expected:
        findings.append(
            "DESIGN.md hierarchy drift: section-7 table lists the right "
            f"ranks in the wrong order ({design} vs {expected})")


def source_files(root: pathlib.Path):
    src = root / "src"
    if not src.is_dir():
        return
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel in SCAN_EXCLUDE:
            continue
        yield rel, path.read_text()


def check_dead_ranks(root: pathlib.Path, ranks: dict, findings: list) -> None:
    used = set()
    for _, text in source_files(root):
        for m in re.finditer(r"LockRank::k(\w+)", text):
            used.add(m.group(1))
    for name in sorted(ranks):
        if name not in used:
            findings.append(
                f"dead rank: LockRank::k{name} ({ranks[name]}) is never "
                "constructed or SetRank'd under src/")


def check_guarded_members(root: pathlib.Path, findings: list) -> None:
    found_any = False
    for rel, text in source_files(root):
        code = strip_comments(text)
        members = set(MEMBER_RE.findall(code)) | set(ARRAY_RE.findall(code))
        for member in sorted(members):
            found_any = True
            if (rel, member) in ALLOWLIST:
                continue
            uses = re.findall(
                r"(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED"
                r"|ACQUIRE|ACQUIRE_SHARED)\(\s*" + re.escape(member),
                code)
            if not uses:
                findings.append(
                    f"{rel}: mutex member '{member}' has no GUARDED_BY/"
                    "REQUIRES annotation in this file (add annotations, "
                    "or allowlist it in ci/lint_lock_graph.py with the "
                    "protocol that protects it)")
    if not found_any:
        findings.append("src/: no mutex members found (wrong --root?)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repo root to lint (default: this script's repository)")
    args = ap.parse_args()

    findings: list = []
    ranks = parse_enum(args.root, findings)
    design = parse_design(args.root, findings)
    if ranks and design:
        check_hierarchy(ranks, design, findings)
    if ranks:
        check_dead_ranks(args.root, ranks, findings)
    check_guarded_members(args.root, findings)

    if findings:
        for f in findings:
            print(f"lint_lock_graph: {f}", file=sys.stderr)
        print(f"lint_lock_graph: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_lock_graph: ok "
          f"({len(ranks)} ranks, hierarchy table in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
