#include "json/json_value.h"

namespace sqlgraph {
namespace json {

bool JsonValue::operator==(const JsonValue& other) const {
  if (type() != other.type()) {
    // Allow int/double cross-type numeric equality (JSON has one number type).
    if (is_number() && other.is_number()) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  switch (type()) {
    case JsonType::kNull: return true;
    case JsonType::kBool: return AsBool() == other.AsBool();
    case JsonType::kInt: return AsInt() == other.AsInt();
    case JsonType::kDouble: return AsDouble() == other.AsDouble();
    case JsonType::kString: return AsString() == other.AsString();
    case JsonType::kArray: {
      const JsonArray& a = AsArray();
      const JsonArray& b = other.AsArray();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
    case JsonType::kObject: {
      const JsonObject& a = AsObject();
      const JsonObject& b = other.AsObject();
      if (a.size() != b.size()) return false;
      // Order-insensitive member comparison.
      for (const auto& [k, v] : a) {
        const JsonValue* bv = other.Find(k);
        if (bv == nullptr || !(v == *bv)) return false;
      }
      return true;
    }
  }
  return false;
}

size_t JsonValue::ByteSize() const {
  switch (type()) {
    case JsonType::kNull: return 1;
    case JsonType::kBool: return 1;
    case JsonType::kInt: return 8;
    case JsonType::kDouble: return 8;
    case JsonType::kString: return 8 + AsString().size();
    case JsonType::kArray: {
      size_t total = 8;
      for (const auto& v : AsArray()) total += v.ByteSize();
      return total;
    }
    case JsonType::kObject: {
      size_t total = 8;
      for (const auto& [k, v] : AsObject()) total += 8 + k.size() + v.ByteSize();
      return total;
    }
  }
  return 0;
}

}  // namespace json
}  // namespace sqlgraph
