// Tests for the graph-coloring hash (src/coloring).

#include "coloring/coloring.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace sqlgraph {
namespace coloring {
namespace {

TEST(CooccurrenceTest, GroupsCreateEdges) {
  CooccurrenceGraph g;
  g.AddGroup({"knows", "created"});
  g.AddGroup({"likes", "created"});
  EXPECT_EQ(g.num_labels(), 3u);
  const uint32_t knows = g.Intern("knows");
  const uint32_t created = g.Intern("created");
  const uint32_t likes = g.Intern("likes");
  EXPECT_TRUE(g.neighbors(knows).count(created));
  EXPECT_TRUE(g.neighbors(created).count(likes));
  EXPECT_FALSE(g.neighbors(knows).count(likes));
}

TEST(CooccurrenceTest, DuplicatesInGroupIgnored) {
  CooccurrenceGraph g;
  g.AddGroup({"a", "a", "a"});
  EXPECT_EQ(g.num_labels(), 1u);
  EXPECT_TRUE(g.neighbors(g.Intern("a")).empty());
}

TEST(ColoredHashTest, CooccurringLabelsGetDifferentColors) {
  // The paper's Fig. 2b example: knows+created co-occur, likes+created
  // co-occur, so created must differ from both; knows and likes may share.
  CooccurrenceGraph g;
  g.AddGroup({"knows", "created"});
  g.AddGroup({"likes", "created"});
  ColoredHash hash = ColoredHash::Build(g);
  EXPECT_NE(hash.ColorOf("knows"), hash.ColorOf("created"));
  EXPECT_NE(hash.ColorOf("likes"), hash.ColorOf("created"));
  EXPECT_LE(hash.num_colors(), 2u);
}

TEST(ColoredHashTest, DisjointClustersShareColors) {
  CooccurrenceGraph g;
  for (int cluster = 0; cluster < 10; ++cluster) {
    std::vector<std::string> group;
    for (int i = 0; i < 4; ++i) {
      group.push_back("c" + std::to_string(cluster) + "_" + std::to_string(i));
    }
    g.AddGroup(group);
  }
  ColoredHash hash = ColoredHash::Build(g);
  // 40 labels, but only 4 co-occur at a time → exactly 4 colors.
  EXPECT_EQ(hash.num_colors(), 4u);
  EXPECT_EQ(hash.num_labels(), 40u);
  size_t max_bucket = 0;
  for (size_t b : hash.ColorHistogram()) max_bucket = std::max(max_bucket, b);
  EXPECT_EQ(max_bucket, 10u);  // column overloading across clusters
}

TEST(ColoredHashTest, ProperColoringOnRandomGraphs) {
  // Property: without a cap, the greedy coloring is proper — no two
  // co-occurring labels share a color.
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    CooccurrenceGraph g;
    const size_t num_labels = 5 + rng.Uniform(30);
    for (int group = 0; group < 40; ++group) {
      std::vector<std::string> labels;
      const size_t size = 1 + rng.Uniform(5);
      for (size_t i = 0; i < size; ++i) {
        labels.push_back("l" + std::to_string(rng.Uniform(num_labels)));
      }
      g.AddGroup(labels);
    }
    ColoredHash hash = ColoredHash::Build(g);
    for (uint32_t v = 0; v < g.num_labels(); ++v) {
      for (uint32_t u : g.neighbors(v)) {
        EXPECT_NE(hash.ColorOf(g.labels()[v]), hash.ColorOf(g.labels()[u]))
            << g.labels()[v] << " vs " << g.labels()[u];
      }
    }
  }
}

TEST(ColoredHashTest, CapForcesConflicts) {
  CooccurrenceGraph g;
  std::vector<std::string> big_group;
  for (int i = 0; i < 10; ++i) big_group.push_back("x" + std::to_string(i));
  g.AddGroup(big_group);  // clique of 10 needs 10 colors
  ColoredHash hash = ColoredHash::Build(g, /*max_colors=*/4);
  EXPECT_LE(hash.num_colors(), 4u);
}

TEST(ColoredHashTest, UnknownLabelFallsBackToModulo) {
  CooccurrenceGraph g;
  g.AddGroup({"a", "b"});
  ColoredHash hash = ColoredHash::Build(g);
  EXPECT_FALSE(hash.Knows("zzz"));
  EXPECT_LT(hash.ColorOf("zzz"), hash.num_colors());
  // Deterministic.
  EXPECT_EQ(hash.ColorOf("zzz"), hash.ColorOf("zzz"));
}

TEST(ColoredHashTest, ModuloBaselineUsesRequestedColors) {
  std::vector<std::string> labels;
  for (int i = 0; i < 100; ++i) labels.push_back("l" + std::to_string(i));
  ColoredHash hash = ColoredHash::BuildModulo(labels, 8);
  EXPECT_EQ(hash.num_colors(), 8u);
  for (const auto& l : labels) EXPECT_LT(hash.ColorOf(l), 8u);
}

TEST(ColoredHashTest, EmptyGraph) {
  CooccurrenceGraph g;
  ColoredHash hash = ColoredHash::Build(g);
  EXPECT_EQ(hash.num_colors(), 1u);
  EXPECT_LT(hash.ColorOf("anything"), 1u);
}

}  // namespace
}  // namespace coloring
}  // namespace sqlgraph
