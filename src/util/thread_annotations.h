// Clang thread-safety annotations plus annotated mutex shims.
//
// The macros below expand to Clang's thread-safety attributes when the
// compiler supports them (clang with -Wthread-safety; the CI lint stage
// builds the tree with -Wthread-safety -Werror) and to nothing everywhere
// else, so GCC builds see plain std::mutex/std::shared_mutex semantics and
// zero overhead beyond the lock-rank hooks.
//
// Usage pattern:
//
//   class Cache {
//     void Insert(K k, V v) EXCLUDES(mu_);
//     size_t EvictLocked() REQUIRES(mu_);
//    private:
//     mutable util::Mutex mu_{util::LockRank::kPlanCache, "plan_cache"};
//     std::map<K, V> entries_ GUARDED_BY(mu_);
//   };
//
// The Mutex/SharedMutex shims wrap std::mutex/std::shared_mutex, carry the
// CAPABILITY attribute the analysis keys on, and feed every acquisition
// through the runtime lock-rank validator (util/lock_rank.h). They satisfy
// the standard Lockable/SharedLockable concepts, so std::lock_guard,
// std::unique_lock, std::shared_lock, and std::condition_variable_any all
// work unchanged — and because those wrappers call lock()/unlock() on the
// shim, rank tracking stays correct across condition-variable waits.

#ifndef SQLGRAPH_UTIL_THREAD_ANNOTATIONS_H_
#define SQLGRAPH_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"
#include "util/sched.h"

// ---------------------------------------------------------------- macros --

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SQLGRAPH_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef SQLGRAPH_TSA_ATTR
#define SQLGRAPH_TSA_ATTR(x)  // not supported by this compiler
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SQLGRAPH_TSA_ATTR(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SQLGRAPH_TSA_ATTR(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) SQLGRAPH_TSA_ATTR(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SQLGRAPH_TSA_ATTR(pt_guarded_by(x))
#endif
#ifndef REQUIRES
#define REQUIRES(...) SQLGRAPH_TSA_ATTR(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  SQLGRAPH_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) SQLGRAPH_TSA_ATTR(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  SQLGRAPH_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) SQLGRAPH_TSA_ATTR(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  SQLGRAPH_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) SQLGRAPH_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  SQLGRAPH_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) SQLGRAPH_TSA_ATTR(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) SQLGRAPH_TSA_ATTR(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SQLGRAPH_TSA_ATTR(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS SQLGRAPH_TSA_ATTR(no_thread_safety_analysis)
#endif

namespace sqlgraph {
namespace util {

// ----------------------------------------------------------------- shims --

/// std::mutex with the CAPABILITY attribute and lock-rank validation.
/// Default-constructed instances are unranked (tracked by the annotations
/// only); give process-hierarchy mutexes their rank at construction, or via
/// SetRank() for array members (before any concurrent use).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name, int order = 0)
      : info_{rank, order, name} {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Assigns the rank of an array element (std::array cannot forward
  /// constructor arguments). Must happen before any concurrent use.
  void SetRank(LockRank rank, const char* name, int order = 0) {
    info_ = LockRankInfo{rank, order, name};
  }

  void lock() ACQUIRE() {
    // The schedule controller must decide *before* the thread can block:
    // it only schedules this acquisition once its lock model says the
    // mutex is free, so the real call below never blocks mid-schedule.
    sched::OnLockAcquire(this);
    // Validate before blocking so an inversion aborts instead of
    // deadlocking.
    LockRankOnAcquire(this, info_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      sched::OnTryLock(this, /*shared=*/false, /*acquired=*/false);
      return false;
    }
    // A successful out-of-order try_lock is still a hierarchy violation:
    // the thread now holds locks in an undocumented order.
    LockRankOnAcquire(this, info_);
    sched::OnTryLock(this, /*shared=*/false, /*acquired=*/true);
    return true;
  }
  void unlock() RELEASE() {
    LockRankOnRelease(this, info_);
    mu_.unlock();
    // After the physical unlock, so the controller never marks the mutex
    // free while a descheduled holder still owns it.
    sched::OnLockRelease(this);
  }

 private:
  std::mutex mu_;
  LockRankInfo info_;
};

/// std::shared_mutex with the CAPABILITY attribute and lock-rank
/// validation. Shared and exclusive acquisitions both enter the per-thread
/// rank stack — the hierarchy constrains order, not mode.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name, int order = 0)
      : info_{rank, order, name} {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// See Mutex::SetRank.
  void SetRank(LockRank rank, const char* name, int order = 0) {
    info_ = LockRankInfo{rank, order, name};
  }

  void lock() ACQUIRE() {
    sched::OnLockAcquire(this);
    LockRankOnAcquire(this, info_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      sched::OnTryLock(this, /*shared=*/false, /*acquired=*/false);
      return false;
    }
    LockRankOnAcquire(this, info_);
    sched::OnTryLock(this, /*shared=*/false, /*acquired=*/true);
    return true;
  }
  void unlock() RELEASE() {
    LockRankOnRelease(this, info_);
    mu_.unlock();
    sched::OnLockRelease(this);
  }

  void lock_shared() ACQUIRE_SHARED() {
    sched::OnLockAcquire(this, /*shared=*/true);
    LockRankOnAcquire(this, info_);
    mu_.lock_shared();
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) {
      sched::OnTryLock(this, /*shared=*/true, /*acquired=*/false);
      return false;
    }
    LockRankOnAcquire(this, info_);
    sched::OnTryLock(this, /*shared=*/true, /*acquired=*/true);
    return true;
  }
  void unlock_shared() RELEASE_SHARED() {
    LockRankOnRelease(this, info_);
    mu_.unlock_shared();
    sched::OnLockRelease(this, /*shared=*/true);
  }

 private:
  std::shared_mutex mu_;
  LockRankInfo info_;
};

/// RAII exclusive lock the analysis understands (std::lock_guard is not
/// annotated). Prefer this over std::lock_guard<Mutex> in annotated code.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace util
}  // namespace sqlgraph

#endif  // SQLGRAPH_UTIL_THREAD_ANNOTATIONS_H_
