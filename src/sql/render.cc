#include "sql/render.h"

#include "util/string_util.h"

namespace sqlgraph {
namespace sql {

namespace {

int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return 1;
    case BinaryOp::kAnd: return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike: return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kConcat: return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv: return 5;
  }
  return 0;
}

const char* OpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

std::string RenderLiteral(const rel::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_bool()) return v.AsBool() ? "TRUE" : "FALSE";
  if (v.is_string()) return util::SqlQuote(v.AsString());
  if (v.is_json()) return "JSON " + util::SqlQuote(v.ToString());
  return v.ToString();
}

void RenderExprTo(const Expr& e, int parent_prec, std::string* out);

void RenderExprTo(const ExprPtr& e, int parent_prec, std::string* out) {
  RenderExprTo(*e, parent_prec, out);
}

void RenderExprTo(const Expr& e, int parent_prec, std::string* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      out->append(RenderLiteral(e.literal));
      return;
    case ExprKind::kColumnRef:
      if (!e.qualifier.empty()) {
        out->append(e.qualifier);
        out->push_back('.');
      }
      out->append(e.column);
      return;
    case ExprKind::kParam:
      if (!e.param_name.empty()) {
        out->push_back(':');
        out->append(e.param_name);
      } else {
        out->push_back('?');
      }
      return;
    case ExprKind::kStar:
      out->push_back('*');
      return;
    case ExprKind::kBinary: {
      const int prec = Precedence(e.bin_op);
      const bool paren = prec < parent_prec;
      if (paren) out->push_back('(');
      RenderExprTo(e.lhs, prec, out);
      out->push_back(' ');
      out->append(OpToken(e.bin_op));
      out->push_back(' ');
      RenderExprTo(e.rhs, prec + 1, out);
      if (paren) out->push_back(')');
      return;
    }
    case ExprKind::kUnary:
      switch (e.un_op) {
        case UnaryOp::kNot:
          out->append("NOT (");
          RenderExprTo(e.lhs, 0, out);
          out->push_back(')');
          return;
        case UnaryOp::kNeg:
          out->append("-(");
          RenderExprTo(e.lhs, 0, out);
          out->push_back(')');
          return;
        case UnaryOp::kIsNull:
          RenderExprTo(e.lhs, 6, out);
          out->append(" IS NULL");
          return;
        case UnaryOp::kIsNotNull:
          RenderExprTo(e.lhs, 6, out);
          out->append(" IS NOT NULL");
          return;
      }
      return;
    case ExprKind::kFunc: {
      out->append(e.func_name);
      out->push_back('(');
      if (e.distinct_arg) out->append("DISTINCT ");
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out->append(", ");
        RenderExprTo(e.args[i], 0, out);
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kCast:
      out->append("CAST(");
      RenderExprTo(e.lhs, 0, out);
      out->append(" AS ");
      out->append(rel::ColumnTypeName(e.cast_type));
      out->push_back(')');
      return;
    case ExprKind::kInList: {
      RenderExprTo(e.lhs, 6, out);
      out->append(e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < e.in_list.size(); ++i) {
        if (i) out->append(", ");
        RenderExprTo(e.in_list[i], 0, out);
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kInSubquery:
      RenderExprTo(e.lhs, 6, out);
      out->append(e.negated ? " NOT IN (" : " IN (");
      out->append(RenderSelect(*e.subquery));
      out->push_back(')');
      return;
  }
}

void RenderTableRef(const TableRef& ref, bool first, std::string* out) {
  if (!first) {
    switch (ref.join) {
      case JoinType::kComma: out->append(", "); break;
      case JoinType::kInner: out->append(" JOIN "); break;
      case JoinType::kLeftOuter: out->append(" LEFT OUTER JOIN "); break;
    }
  }
  switch (ref.kind) {
    case TableRefKind::kBaseTable:
      out->append(ref.table_name);
      if (!ref.alias.empty() && ref.alias != ref.table_name) {
        out->push_back(' ');
        out->append(ref.alias);
      }
      break;
    case TableRefKind::kUnnestValues: {
      out->append("TABLE(VALUES ");
      for (size_t i = 0; i < ref.values_rows.size(); ++i) {
        if (i) out->append(", ");
        out->push_back('(');
        for (size_t j = 0; j < ref.values_rows[i].size(); ++j) {
          if (j) out->append(", ");
          RenderExprTo(ref.values_rows[i][j], 0, out);
        }
        out->push_back(')');
      }
      out->append(") AS ");
      out->append(ref.alias);
      out->push_back('(');
      for (size_t i = 0; i < ref.column_aliases.size(); ++i) {
        if (i) out->append(", ");
        out->append(ref.column_aliases[i]);
      }
      out->push_back(')');
      break;
    }
    case TableRefKind::kUnnestJson: {
      out->append("TABLE(JSON_EDGES(");
      RenderExprTo(ref.json_doc, 0, out);
      out->append(")) AS ");
      out->append(ref.alias);
      out->push_back('(');
      for (size_t i = 0; i < ref.column_aliases.size(); ++i) {
        if (i) out->append(", ");
        out->append(ref.column_aliases[i]);
      }
      out->push_back(')');
      break;
    }
    case TableRefKind::kSubquery:
      out->push_back('(');
      out->append(RenderSelect(*ref.subquery));
      out->append(") ");
      out->append(ref.alias);
      break;
  }
  if (!first && ref.join != JoinType::kComma && ref.on != nullptr) {
    out->append(" ON ");
    RenderExprTo(ref.on, 0, out);
  }
}

void RenderSelectTo(const SelectStmt& s, std::string* out) {
  out->append("SELECT ");
  if (s.distinct) out->append("DISTINCT ");
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i) out->append(", ");
    const SelectItem& item = s.items[i];
    if (item.is_star) {
      if (!item.star_qualifier.empty()) {
        out->append(item.star_qualifier);
        out->push_back('.');
      }
      out->push_back('*');
    } else {
      RenderExprTo(item.expr, 0, out);
      if (!item.alias.empty()) {
        out->append(" AS ");
        out->append(item.alias);
      }
    }
  }
  if (!s.from.empty()) {
    out->append(" FROM ");
    for (size_t i = 0; i < s.from.size(); ++i) {
      RenderTableRef(s.from[i], i == 0, out);
    }
  }
  if (s.where != nullptr) {
    out->append(" WHERE ");
    RenderExprTo(s.where, 0, out);
  }
  if (!s.group_by.empty()) {
    out->append(" GROUP BY ");
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i) out->append(", ");
      RenderExprTo(s.group_by[i], 0, out);
    }
  }
  if (s.having != nullptr) {
    out->append(" HAVING ");
    RenderExprTo(s.having, 0, out);
  }
  for (const auto& set_op : s.set_ops) {
    switch (set_op.kind) {
      case SetOpKind::kUnionAll: out->append(" UNION ALL "); break;
      case SetOpKind::kUnion: out->append(" UNION "); break;
      case SetOpKind::kIntersect: out->append(" INTERSECT "); break;
      case SetOpKind::kExcept: out->append(" EXCEPT "); break;
    }
    RenderSelectTo(*set_op.rhs, out);
  }
  if (!s.order_by.empty()) {
    out->append(" ORDER BY ");
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) out->append(", ");
      RenderExprTo(s.order_by[i].expr, 0, out);
      if (!s.order_by[i].ascending) out->append(" DESC");
    }
  }
  if (s.limit.has_value()) {
    out->append(" LIMIT ");
    out->append(std::to_string(*s.limit));
  }
  if (s.offset.has_value()) {
    out->append(" OFFSET ");
    out->append(std::to_string(*s.offset));
  }
}

}  // namespace

std::string RenderExpr(const Expr& expr) {
  std::string out;
  RenderExprTo(expr, 0, &out);
  return out;
}

std::string RenderSelect(const SelectStmt& select) {
  std::string out;
  RenderSelectTo(select, &out);
  return out;
}

std::string Render(const SqlQuery& query) {
  std::string out;
  switch (query.txn_control) {
    case TxnControl::kBegin: return "BEGIN";
    case TxnControl::kCommit: return "COMMIT";
    case TxnControl::kRollback: return "ROLLBACK";
    case TxnControl::kNone: break;
  }
  if (!query.ctes.empty()) {
    bool any_recursive = false;
    for (const auto& cte : query.ctes) any_recursive |= cte.recursive;
    out.append(any_recursive ? "WITH RECURSIVE " : "WITH ");
    for (size_t i = 0; i < query.ctes.size(); ++i) {
      if (i) out.append(", ");
      const Cte& cte = query.ctes[i];
      out.append(cte.name);
      if (!cte.column_aliases.empty()) {
        out.push_back('(');
        for (size_t j = 0; j < cte.column_aliases.size(); ++j) {
          if (j) out.append(", ");
          out.append(cte.column_aliases[j]);
        }
        out.push_back(')');
      }
      out.append(" AS (");
      RenderSelectTo(*cte.select, &out);
      out.push_back(')');
    }
    out.push_back(' ');
  }
  RenderSelectTo(*query.final_select, &out);
  return out;
}

}  // namespace sql
}  // namespace sqlgraph
