// The SQLGraph relational schema (paper Fig. 5):
//
//   OPA(VID, SPILL, EID0, LBL0, VAL0, ..., EIDn, LBLn, VALn)  outgoing
//   IPA(VID, SPILL, EID0, LBL0, VAL0, ..., EIDm, LBLm, VALm)  incoming
//   OSA(VALID, EID, VAL)   multi-valued outgoing lists
//   ISA(VALID, EID, VAL)   multi-valued incoming lists
//   VA (VID, ATTR JSON)    vertex attributes
//   EA (EID, INV, OUTV, LBL, ATTR JSON)  edge attributes + redundant
//                                        adjacency copy (§3.5)
//
// Column triads are assigned to edge labels by the coloring hash (§3.4).
// VAL holds either a neighbor vertex id (single-valued label) or a list id
// ("lid") that keys into OSA/ISA (multi-valued label). List ids live in
// their own id range (>= kLidBase) so COALESCE-based templates can never
// confuse them with vertex ids. Soft-deleted ids are negative (§4.5.2).

#ifndef SQLGRAPH_SQLGRAPH_SCHEMA_H_
#define SQLGRAPH_SQLGRAPH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/coloring.h"
#include "rel/database.h"
#include "util/status.h"
#include "wal/options.h"

namespace sqlgraph {
namespace core {

/// First list id; vertex ids must stay below this.
inline constexpr int64_t kLidBase = int64_t{1} << 40;

inline constexpr char kOpaTable[] = "OPA";
inline constexpr char kIpaTable[] = "IPA";
inline constexpr char kOsaTable[] = "OSA";
inline constexpr char kIsaTable[] = "ISA";
inline constexpr char kVaTable[] = "VA";
inline constexpr char kEaTable[] = "EA";

struct StoreConfig {
  /// Cap on adjacency column triads per direction. The coloring may want
  /// fewer; more colors than this spill to extra rows.
  size_t max_adjacency_colors = 48;
  /// Ablation: disable the dataset-aware coloring and use a modulo hash
  /// with `max_adjacency_colors` columns.
  bool use_coloring = true;
  /// Storage backing: kPaged enables the buffer-pool memory experiments.
  rel::StorageMode storage = rel::StorageMode::kResident;
  /// Buffer pool budget (only meaningful with kPaged).
  size_t buffer_pool_bytes = 256ull << 20;
  /// Vertex-attribute keys to index (the "user-created indexes" of §3.3):
  /// hash for equality lookups, ordered for ranges/prefixes.
  std::vector<std::string> va_hash_indexes;
  std::vector<std::string> va_ordered_indexes;
  /// Batch-at-a-time SQL execution (sql::Executor::Options::vectorized).
  /// Off pins every query to the row-at-a-time operators — the differential
  /// tests run both settings against the same workload.
  bool vectorized = true;
  /// Durability root (src/wal). When non-empty the store write-ahead-logs
  /// every CRUD mutation into this directory; open/create such a store with
  /// wal::OpenDurableStore and persist it with SqlGraphStore::Checkpoint.
  /// Empty keeps the store purely in-memory (the pre-WAL behaviour).
  std::string durability_dir;
  /// When an acknowledged commit is on stable storage (see wal::SyncMode).
  wal::SyncMode wal_sync_mode = wal::SyncMode::kBatched;
  /// Run CheckConsistency() at the end of WAL recovery and fail the open on
  /// violations. Defaults on in Debug builds; costs a full scan of all six
  /// tables, so Release opts in explicitly.
#ifdef NDEBUG
  bool verify_on_recovery = false;
#else
  bool verify_on_recovery = true;
#endif
  /// Statically verify every SQL plan before execution and reject malformed
  /// ones with a structured diagnostic (sql/verify.h). Defaults on in Debug
  /// builds; prepared/cached statements amortize the check to two passes
  /// per plan, so Release can opt in at negligible cost.
#ifdef NDEBUG
  bool verify_plans = false;
#else
  bool verify_plans = true;
#endif
};

/// Column names of the i-th triad.
std::string EidCol(size_t i);
std::string LblCol(size_t i);
std::string ValCol(size_t i);

/// \brief Resolved schema: the label→column hashes and triad counts.
struct GraphSchema {
  coloring::ColoredHash out_hash;
  coloring::ColoredHash in_hash;
  size_t out_colors = 1;  // triads in OPA
  size_t in_colors = 1;   // triads in IPA

  /// Creates the six tables (without secondary indexes; the loader adds
  /// them after bulk insert).
  util::Status CreateTables(rel::Database* db, const StoreConfig& config) const;

  /// Creates the index set of Fig. 5: VID/VALID indexes, EA primary key and
  /// the INV+LBL / OUTV+LBL combined indexes, plus configured VA JSON
  /// indexes.
  util::Status CreateIndexes(rel::Database* db,
                             const StoreConfig& config) const;
};

/// Load-time statistics (paper Table 3).
struct LoadStats {
  size_t num_out_labels = 0;
  size_t num_in_labels = 0;
  size_t out_colors = 0;
  size_t in_colors = 0;
  size_t max_out_bucket = 0;   // "hashed bucket size"
  size_t max_in_bucket = 0;
  size_t out_spill_rows = 0;   // extra OPA rows beyond one per vertex
  size_t in_spill_rows = 0;
  double out_spill_pct = 0;    // spill rows / vertices
  double in_spill_pct = 0;
  size_t osa_rows = 0;         // "multi-value table rows"
  size_t isa_rows = 0;
  size_t num_vertices = 0;
  size_t num_edges = 0;
};

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_SCHEMA_H_
