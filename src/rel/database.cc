#include "rel/database.h"

namespace sqlgraph {
namespace rel {

util::Result<Table*> Database::CreateTable(const std::string& name,
                                           Schema schema, StorageMode mode) {
  if (tables_.count(name)) {
    return util::Status::AlreadyExists("table " + name + " exists");
  }
  std::unique_ptr<RowStore> store;
  if (mode == StorageMode::kPaged) {
    store = std::make_unique<PagedRowStore>(&pool_, schema.num_columns());
  } else {
    store = std::make_unique<VectorRowStore>();
  }
  auto table = std::make_unique<Table>(name, std::move(schema),
                                       std::move(store));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

util::Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound("table " + name);
  }
  tables_.erase(it);
  return util::Status::OK();
}

size_t Database::TotalSerializedBytes() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->SerializedBytes();
  }
  return total;
}

uint64_t Database::TotalMutations() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->mutation_count();
  }
  return total;
}

}  // namespace rel
}  // namespace sqlgraph
