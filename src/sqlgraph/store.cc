#include "sqlgraph/store.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "json/json_parser.h"
#include "obs/metrics.h"
#include "wal/log_writer.h"

namespace sqlgraph {
namespace core {

using rel::Row;
using rel::RowId;
using rel::Value;
using util::Result;
using util::Status;

namespace {
// Column offsets in OPA/IPA rows.
constexpr size_t kVidCol = 0;
constexpr size_t kSpillCol = 1;
size_t EidColIdx(size_t c) { return 2 + 3 * c; }
size_t LblColIdx(size_t c) { return 3 + 3 * c; }
size_t ValColIdx(size_t c) { return 4 + 3 * c; }

// EA column offsets.
constexpr size_t kEaEid = 0;
constexpr size_t kEaInv = 1;
constexpr size_t kEaOutv = 2;
constexpr size_t kEaLbl = 3;
constexpr size_t kEaAttr = 4;
}  // namespace

// ------------------------------------------------------------------ locks --

namespace {
/// Blocking lock acquisition with contended-path wait accounting. The
/// uncontended try_lock succeeds without touching the clock or the registry,
/// so the instrumentation is free exactly where the hot path is; only actual
/// waiters pay two clock reads plus two sharded counter updates.
template <typename Lock>
void AcquireTimed(Lock* lock) {
  if (lock->try_lock()) return;
  if (!obs::MetricsEnabled()) {
    lock->lock();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  lock->lock();
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  static obs::Counter* waits =
      obs::MetricsRegistry::Default().GetCounter("store.lock.waits");
  static obs::Histogram* wait_ns =
      obs::MetricsRegistry::Default().GetHistogram("store.lock.wait_ns");
  waits->Increment();
  wait_ns->Record(ns);
}
}  // namespace

/// Shared lock over every table, for whole-query execution.
class SqlGraphStore::ReadLockAll {
 public:
  explicit ReadLockAll(const SqlGraphStore* store) {
    for (int i = 0; i < kNumTables; ++i) {
      locks_[i] = std::shared_lock<util::SharedMutex>(store->table_locks_[i],
                                                      std::defer_lock);
      AcquireTimed(&locks_[i]);
    }
  }

 private:
  std::shared_lock<util::SharedMutex> locks_[kNumTables];
};

/// Mixed-mode lock over a subset of tables, acquired in fixed table order
/// (deadlock freedom).
class SqlGraphStore::WriteLock {
 public:
  struct Req {
    TableIdx table;
    bool exclusive;
  };
  WriteLock(const SqlGraphStore* store, std::vector<Req> reqs) {
    std::sort(reqs.begin(), reqs.end(),
              [](const Req& a, const Req& b) { return a.table < b.table; });
    for (const Req& r : reqs) {
      if (r.exclusive) {
        exclusive_.emplace_back(store->table_locks_[r.table], std::defer_lock);
        AcquireTimed(&exclusive_.back());
      } else {
        shared_.emplace_back(store->table_locks_[r.table], std::defer_lock);
        AcquireTimed(&shared_.back());
      }
    }
  }

 private:
  // Note: vectors keep acquisition order; both kinds interleave correctly
  // because reqs were sorted before acquisition.
  std::vector<std::unique_lock<util::SharedMutex>> exclusive_;
  std::vector<std::shared_lock<util::SharedMutex>> shared_;
};

/// Held (shared) across a whole CRUD mutation — table work plus WAL
/// append — so Checkpoint (exclusive) can never observe a commit whose
/// rows are in the snapshot but whose record lands in the post-snapshot
/// log segment. Acquired before any table lock; Checkpoint follows the
/// same order, so the lock hierarchy stays acyclic.
class SCOPED_CAPABILITY SqlGraphStore::CommitGuard {
 public:
  explicit CommitGuard(const SqlGraphStore* store)
      ACQUIRE_SHARED(store->wal_rotate_mu_)
      : lock_(store->wal_rotate_mu_, std::defer_lock) {
    AcquireTimed(&lock_);
  }
  ~CommitGuard() RELEASE() {}

 private:
  std::shared_lock<util::SharedMutex> lock_;
};

util::Status SqlGraphStore::LogWalEnqueue(const wal::Record& rec,
                                          uint64_t* ticket) {
  *ticket = 0;
  if (wal_writer_ == nullptr) return Status::OK();
  ASSIGN_OR_RETURN(*ticket, wal_writer_->Enqueue(rec));
  return Status::OK();
}

util::Status SqlGraphStore::LogWalWait(uint64_t ticket) {
  if (ticket == 0 || wal_writer_ == nullptr) return Status::OK();
  return wal_writer_->WaitDurable(ticket);
}

// ------------------------------------------------------------------ build --

Result<std::unique_ptr<SqlGraphStore>> SqlGraphStore::Build(
    const graph::PropertyGraph& graph, StoreConfig config) {
  auto store = std::unique_ptr<SqlGraphStore>(new SqlGraphStore(config));
  store->schema_ = AnalyzeGraph(graph, config);
  ASSIGN_OR_RETURN(store->load_stats_,
                   BulkLoad(graph, store->schema_, config, &store->db_,
                            &store->next_lid_));
  store->next_vertex_id_ = static_cast<int64_t>(graph.NumVertices());
  store->next_edge_id_ = static_cast<int64_t>(graph.NumEdges());
  return store;
}

// --------------------------------------------------------------- vertices --

Result<VertexId> SqlGraphStore::AddVertex(json::JsonValue attrs) {
  CommitGuard commit(this);
  int64_t vid;
  {
    util::WriterMutexLock counter(&counter_lock_);
    vid = next_vertex_id_++;
  }
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kAddVertex;
    rec.id = vid;
    rec.json = json::Write(attrs);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    RETURN_NOT_OK(db_.GetTable(kVaTable)
                      ->Insert({Value(vid), Value(std::move(attrs))})
                      .status());
    // Enqueued at the VA serialization point (see LogWalEnqueue); the
    // durability wait happens after the lock so committers can batch.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  RETURN_NOT_OK(LogWalWait(ticket));
  return static_cast<VertexId>(vid);
}

Result<json::JsonValue> SqlGraphStore::GetVertex(VertexId vid) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kVa, false}});
  const rel::Table* va = db_.GetTable(kVaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   va->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  if (rids.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  Row row;
  RETURN_NOT_OK(va->Get(rids[0], &row));
  return row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
}

Status SqlGraphStore::SetVertexAttr(VertexId vid, const std::string& key,
                                    json::JsonValue value) {
  CommitGuard commit(this);
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kSetVertexAttr;
    rec.id = static_cast<int64_t>(vid);
    rec.label = key;
    rec.json = json::Write(value);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    rel::Table* va = db_.GetTable(kVaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     va->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
    if (rids.empty()) {
      return Status::NotFound("vertex " + std::to_string(vid));
    }
    Row row;
    RETURN_NOT_OK(va->Get(rids[0], &row));
    json::JsonValue attrs =
        row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
    attrs.Set(key, std::move(value));
    RETURN_NOT_OK(va->Update(rids[0], {row[0], Value(std::move(attrs))}));
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::RemoveVertexAttr(VertexId vid, const std::string& key) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveVertexAttr;
  rec.id = static_cast<int64_t>(vid);
  rec.label = key;
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    rel::Table* va = db_.GetTable(kVaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     va->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
    if (rids.empty()) {
      return Status::NotFound("vertex " + std::to_string(vid));
    }
    Row row;
    RETURN_NOT_OK(va->Get(rids[0], &row));
    json::JsonValue attrs =
        row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
    attrs.Erase(key);
    RETURN_NOT_OK(va->Update(rids[0], {row[0], Value(std::move(attrs))}));
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::NegateAdjacencyRows(bool outgoing, VertexId vid) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  for (RowId rid : rids) {
    Row row;
    RETURN_NOT_OK(primary->Get(rid, &row));
    row[kVidCol] = Value(-static_cast<int64_t>(vid) - 1);
    RETURN_NOT_OK(primary->Update(rid, std::move(row)));
  }
  return Status::OK();
}

Status SqlGraphStore::RemoveVertex(VertexId vid) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveVertex;
  rec.id = static_cast<int64_t>(vid);
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    rel::Table* va = db_.GetTable(kVaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     va->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
    if (rids.empty()) {
      return Status::NotFound("vertex " + std::to_string(vid));
    }
    // Soft delete: VID → -VID-1 keeps the cross-table relationship of the
    // deleted rows intact (§4.5.2) while the VID >= 0 guards hide them.
    Row row;
    RETURN_NOT_OK(va->Get(rids[0], &row));
    row[0] = Value(-static_cast<int64_t>(vid) - 1);
    RETURN_NOT_OK(va->Update(rids[0], std::move(row)));
    // Enqueued at the VA serialization point: any conflicting vertex write
    // either committed (and enqueued) before this exclusive section or
    // sees the negated id afterwards, so the log order matches the lock
    // order. Replay tolerates the one race this point cannot order — an
    // edge write that lands between here and the EA cleanup below (see
    // OpenDurableStore).
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  {
    WriteLock lock(this, {{kOpa, true}});
    RETURN_NOT_OK(NegateAdjacencyRows(/*outgoing=*/true, vid));
  }
  {
    WriteLock lock(this, {{kIpa, true}});
    RETURN_NOT_OK(NegateAdjacencyRows(/*outgoing=*/false, vid));
  }
  // EA rows of incident edges are removed outright.
  {
    WriteLock lock(this, {{kEa, true}});
    rel::Table* ea = db_.GetTable(kEaTable);
    for (int col : {1, 2}) {  // INV, OUTV
      ASSIGN_OR_RETURN(
          std::vector<RowId> edge_rids,
          ea->LookupEq({col}, {{Value(static_cast<int64_t>(vid))}}));
      for (RowId rid : edge_rids) {
        RETURN_NOT_OK(ea->Delete(rid));
      }
    }
  }
  return LogWalWait(ticket);
}

// ------------------------------------------------------------------ edges --

Status SqlGraphStore::AddAdjacencyEntry(bool outgoing, VertexId vid,
                                        const std::string& label, EdgeId eid,
                                        VertexId nbr) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
  const coloring::ColoredHash& hash =
      outgoing ? schema_.out_hash : schema_.in_hash;
  const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;
  const size_t c = hash.ColorOf(label) % colors;

  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  Row row;
  // Pass 1: a row already holding this label in its triad.
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    const Value& lbl = row[LblColIdx(c)];
    if (lbl.is_null() || lbl.AsString() != label) continue;
    const Value val = row[ValColIdx(c)];
    if (!val.is_null() && val.AsInt() >= kLidBase) {
      // Already multi-valued: append to the secondary list.
      return secondary
          ->Insert({val, Value(static_cast<int64_t>(eid)),
                    Value(static_cast<int64_t>(nbr))})
          .status();
    }
    // Single-valued → convert to a list: a DDL-equivalent reshaping of the
    // adjacency storage, so cached plans must revalidate.
    int64_t lid;
    {
      util::WriterMutexLock counter(&counter_lock_);
      lid = next_lid_++;
    }
    RETURN_NOT_OK(secondary
                      ->Insert({Value(lid), row[EidColIdx(c)], val})
                      .status());
    RETURN_NOT_OK(secondary
                      ->Insert({Value(lid), Value(static_cast<int64_t>(eid)),
                                Value(static_cast<int64_t>(nbr))})
                      .status());
    row[EidColIdx(c)] = Value::Null();
    row[ValColIdx(c)] = Value(lid);
    BumpSchemaEpoch();
    return primary->Update(rid, std::move(row));
  }
  // Pass 2: a row with a free triad at column c (a label this vertex never
  // carried before occupies a fresh triad — another shape change).
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    if (!row[LblColIdx(c)].is_null()) continue;
    row[EidColIdx(c)] = Value(static_cast<int64_t>(eid));
    row[LblColIdx(c)] = Value(label);
    row[ValColIdx(c)] = Value(static_cast<int64_t>(nbr));
    BumpSchemaEpoch();
    return primary->Update(rid, std::move(row));
  }
  // Pass 3: hash conflict (or first row): spill to a new row. Only an
  // actual spill is DDL-equivalent; the first row of a fresh vertex is a
  // plain insert.
  const bool spilling = !rids.empty();
  if (spilling) {
    for (RowId rid : rids) {
      RETURN_NOT_OK(primary->Get(rid, &row));
      if (row[kSpillCol].AsInt() != 1) {
        row[kSpillCol] = Value(int64_t{1});
        RETURN_NOT_OK(primary->Update(rid, std::move(row)));
      }
    }
    BumpSchemaEpoch();
  }
  Row fresh(2 + 3 * colors, Value::Null());
  fresh[kVidCol] = Value(static_cast<int64_t>(vid));
  fresh[kSpillCol] = Value(spilling ? int64_t{1} : int64_t{0});
  fresh[EidColIdx(c)] = Value(static_cast<int64_t>(eid));
  fresh[LblColIdx(c)] = Value(label);
  fresh[ValColIdx(c)] = Value(static_cast<int64_t>(nbr));
  return primary->Insert(std::move(fresh)).status();
}

Status SqlGraphStore::RemoveAdjacencyEntry(bool outgoing, VertexId vid,
                                           const std::string& label,
                                           EdgeId eid) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
  const coloring::ColoredHash& hash =
      outgoing ? schema_.out_hash : schema_.in_hash;
  const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;
  const size_t c = hash.ColorOf(label) % colors;

  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  Row row;
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    const Value& lbl = row[LblColIdx(c)];
    if (lbl.is_null() || lbl.AsString() != label) continue;
    const Value val = row[ValColIdx(c)];
    bool clear_triad = false;
    if (!val.is_null() && val.AsInt() >= kLidBase) {
      ASSIGN_OR_RETURN(std::vector<RowId> list_rids,
                       secondary->LookupEq({0}, {{val}}));
      size_t remaining = list_rids.size();
      for (RowId lrid : list_rids) {
        Row entry;
        RETURN_NOT_OK(secondary->Get(lrid, &entry));
        if (entry[1].AsInt() == static_cast<int64_t>(eid)) {
          RETURN_NOT_OK(secondary->Delete(lrid));
          --remaining;
          break;
        }
      }
      clear_triad = remaining == 0;
    } else if (!row[EidColIdx(c)].is_null() &&
               row[EidColIdx(c)].AsInt() == static_cast<int64_t>(eid)) {
      clear_triad = true;
    } else {
      continue;  // same label in a spill row further on
    }
    if (clear_triad) {
      row[EidColIdx(c)] = Value::Null();
      row[LblColIdx(c)] = Value::Null();
      row[ValColIdx(c)] = Value::Null();
      // Drop the row entirely if it became empty and others remain.
      bool empty = true;
      for (size_t k = 0; k < colors; ++k) {
        if (!row[LblColIdx(k)].is_null()) {
          empty = false;
          break;
        }
      }
      if (empty && rids.size() > 1) {
        RETURN_NOT_OK(primary->Delete(rid));
      } else {
        RETURN_NOT_OK(primary->Update(rid, std::move(row)));
      }
    } else {
      RETURN_NOT_OK(primary->Update(rid, std::move(row)));
    }
    return Status::OK();
  }
  return Status::OK();  // entry absent: treat as idempotent delete
}

Result<EdgeId> SqlGraphStore::AddEdge(VertexId src, VertexId dst,
                                      const std::string& label,
                                      json::JsonValue attrs) {
  CommitGuard commit(this);
  // Fine-grained locking (the RDBMS analogue of row-level locks + short
  // latch sections): each table is locked only around its own mutation, so
  // concurrent readers of other tables proceed in parallel.
  {
    WriteLock lock(this, {{kVa, false}});
    const rel::Table* va = db_.GetTable(kVaTable);
    for (VertexId endpoint : {src, dst}) {
      ASSIGN_OR_RETURN(
          std::vector<RowId> rids,
          va->LookupEq({0}, {{Value(static_cast<int64_t>(endpoint))}}));
      if (rids.empty()) {
        return Status::NotFound("vertex " + std::to_string(endpoint));
      }
    }
  }
  int64_t eid;
  {
    util::WriterMutexLock counter(&counter_lock_);
    eid = next_edge_id_++;
  }
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kAddEdge;
    rec.id = eid;
    rec.src = static_cast<int64_t>(src);
    rec.dst = static_cast<int64_t>(dst);
    rec.label = label;
    rec.json = json::Write(attrs);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kEa, true}});
    RETURN_NOT_OK(db_.GetTable(kEaTable)
                      ->Insert({Value(eid), Value(static_cast<int64_t>(src)),
                                Value(static_cast<int64_t>(dst)), Value(label),
                                Value(std::move(attrs))})
                      .status());
    // Enqueued at the EA serialization point: no other commit can observe
    // this edge (FindEdge/SetEdgeAttr/RemoveEdge all go through EA) until
    // the exclusive section ends, so every dependent record lands after
    // this one in the log.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  {
    WriteLock lock(this, {{kOpa, true}, {kOsa, true}});
    RETURN_NOT_OK(AddAdjacencyEntry(/*outgoing=*/true, src, label,
                                    static_cast<EdgeId>(eid), dst));
  }
  {
    WriteLock lock(this, {{kIpa, true}, {kIsa, true}});
    RETURN_NOT_OK(AddAdjacencyEntry(/*outgoing=*/false, dst, label,
                                    static_cast<EdgeId>(eid), src));
  }
  RETURN_NOT_OK(LogWalWait(ticket));
  return static_cast<EdgeId>(eid);
}

Result<EdgeRecord> SqlGraphStore::GetEdge(EdgeId eid) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  const rel::Table* ea = db_.GetTable(kEaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   ea->LookupEq({0}, {{Value(static_cast<int64_t>(eid))}}));
  if (rids.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  Row row;
  RETURN_NOT_OK(ea->Get(rids[0], &row));
  EdgeRecord rec;
  rec.id = static_cast<EdgeId>(row[kEaEid].AsInt());
  rec.src = static_cast<VertexId>(row[kEaInv].AsInt());
  rec.dst = static_cast<VertexId>(row[kEaOutv].AsInt());
  rec.label = row[kEaLbl].AsString();
  rec.attrs = row[kEaAttr].is_json() ? row[kEaAttr].AsJson()
                                     : json::JsonValue::Object();
  return rec;
}

Status SqlGraphStore::SetEdgeAttr(EdgeId eid, const std::string& key,
                                  json::JsonValue value) {
  CommitGuard commit(this);
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kSetEdgeAttr;
    rec.id = static_cast<int64_t>(eid);
    rec.label = key;
    rec.json = json::Write(value);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kEa, true}});
    rel::Table* ea = db_.GetTable(kEaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     ea->LookupEq({0}, {{Value(static_cast<int64_t>(eid))}}));
    if (rids.empty()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    Row row;
    RETURN_NOT_OK(ea->Get(rids[0], &row));
    json::JsonValue attrs = row[kEaAttr].is_json()
                                ? row[kEaAttr].AsJson()
                                : json::JsonValue::Object();
    attrs.Set(key, std::move(value));
    row[kEaAttr] = Value(std::move(attrs));
    RETURN_NOT_OK(ea->Update(rids[0], std::move(row)));
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::RemoveEdgeAttr(EdgeId eid, const std::string& key) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveEdgeAttr;
  rec.id = static_cast<int64_t>(eid);
  rec.label = key;
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kEa, true}});
    rel::Table* ea = db_.GetTable(kEaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     ea->LookupEq({0}, {{Value(static_cast<int64_t>(eid))}}));
    if (rids.empty()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    Row row;
    RETURN_NOT_OK(ea->Get(rids[0], &row));
    json::JsonValue attrs = row[kEaAttr].is_json()
                                ? row[kEaAttr].AsJson()
                                : json::JsonValue::Object();
    attrs.Erase(key);
    row[kEaAttr] = Value(std::move(attrs));
    RETURN_NOT_OK(ea->Update(rids[0], std::move(row)));
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::RemoveEdge(EdgeId eid) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveEdge;
  rec.id = static_cast<int64_t>(eid);
  uint64_t ticket = 0;
  VertexId src, dst;
  std::string label;
  {
    WriteLock lock(this, {{kEa, true}});
    rel::Table* ea = db_.GetTable(kEaTable);
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     ea->LookupEq({0}, {{Value(static_cast<int64_t>(eid))}}));
    if (rids.empty()) {
      return Status::NotFound("edge " + std::to_string(eid));
    }
    Row row;
    RETURN_NOT_OK(ea->Get(rids[0], &row));
    src = static_cast<VertexId>(row[kEaInv].AsInt());
    dst = static_cast<VertexId>(row[kEaOutv].AsInt());
    label = row[kEaLbl].AsString();
    RETURN_NOT_OK(ea->Delete(rids[0]));
    // Enqueued at the EA serialization point: this lands strictly after
    // the kAddEdge record that made the edge findable, so replay never
    // sees a remove-before-add.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  {
    WriteLock lock(this, {{kOpa, true}, {kOsa, true}});
    RETURN_NOT_OK(RemoveAdjacencyEntry(/*outgoing=*/true, src, label, eid));
  }
  {
    WriteLock lock(this, {{kIpa, true}, {kIsa, true}});
    RETURN_NOT_OK(RemoveAdjacencyEntry(/*outgoing=*/false, dst, label, eid));
  }
  return LogWalWait(ticket);
}

Result<std::optional<EdgeId>> SqlGraphStore::FindEdge(
    VertexId src, const std::string& label, VertexId dst) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  binds.positional.emplace_back(label);
  binds.positional.emplace_back(static_cast<int64_t>(dst));
  ASSIGN_OR_RETURN(
      sql::ResultSet rs,
      RunTemplate(kTplFindEdge,
                  "SELECT EID FROM EA WHERE INV = ? AND LBL = ? AND OUTV = ?",
                  std::move(binds)));
  if (rs.rows.empty()) return std::optional<EdgeId>();
  return std::optional<EdgeId>(static_cast<EdgeId>(rs.rows[0][0].AsInt()));
}

// -------------------------------------------------------------- adjacency --

Result<std::vector<EdgeRecord>> SqlGraphStore::GetOutEdges(
    VertexId src, const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutEdgesAny,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE INV = ?",
                        std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutEdgesLbl,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE INV = ? AND LBL = ?",
                        std::move(binds)));
  }
  std::vector<EdgeRecord> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    EdgeRecord rec;
    rec.id = static_cast<EdgeId>(row[0].AsInt());
    rec.src = static_cast<VertexId>(row[1].AsInt());
    rec.dst = static_cast<VertexId>(row[2].AsInt());
    rec.label = row[3].AsString();
    rec.attrs = row[4].is_json() ? row[4].AsJson() : json::JsonValue::Object();
    out.push_back(std::move(rec));
  }
  return out;
}

Result<int64_t> SqlGraphStore::CountOutEdges(VertexId src,
                                             const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs,
                     RunTemplate(kTplCountAny,
                                 "SELECT COUNT(*) FROM EA WHERE INV = ?",
                                 std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplCountLbl,
                        "SELECT COUNT(*) FROM EA WHERE INV = ? AND LBL = ?",
                        std::move(binds)));
  }
  if (rs.rows.empty()) return int64_t{0};
  return rs.rows[0][0].AsInt();
}

Result<std::vector<VertexId>> SqlGraphStore::Out(
    VertexId vid, const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(vid));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs, RunTemplate(kTplOutAny,
                                     "SELECT OUTV FROM EA WHERE INV = ?",
                                     std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutLbl,
                        "SELECT OUTV FROM EA WHERE INV = ? AND LBL = ?",
                        std::move(binds)));
  }
  std::vector<VertexId> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    out.push_back(static_cast<VertexId>(row[0].AsInt()));
  }
  return out;
}

Result<std::vector<VertexId>> SqlGraphStore::In(
    VertexId vid, const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(vid));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs, RunTemplate(kTplInAny,
                                     "SELECT INV FROM EA WHERE OUTV = ?",
                                     std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplInLbl,
                        "SELECT INV FROM EA WHERE OUTV = ? AND LBL = ?",
                        std::move(binds)));
  }
  std::vector<VertexId> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    out.push_back(static_cast<VertexId>(row[0].AsInt()));
  }
  return out;
}

// --------------------------------------------------------------- querying --

namespace {
/// Consumes a leading (case-insensitive) `EXPLAIN ANALYZE` from `*text`.
bool StripExplainAnalyzePrefix(std::string_view* text) {
  constexpr std::string_view kKeyword = "EXPLAIN ANALYZE";
  size_t i = 0;
  while (i < text->size() && std::isspace(static_cast<unsigned char>((*text)[i]))) {
    ++i;
  }
  if (text->size() - i < kKeyword.size()) return false;
  for (size_t k = 0; k < kKeyword.size(); ++k) {
    if (std::toupper(static_cast<unsigned char>((*text)[i + k])) != kKeyword[k]) {
      return false;
    }
  }
  text->remove_prefix(i + kKeyword.size());
  return true;
}
/// Per-statement executor options derived from the store configuration.
sql::Executor::Options ExecOptionsFor(const StoreConfig& config) {
  sql::Executor::Options options;
  options.vectorized = config.vectorized;
  return options;
}
}  // namespace

sql::ResultSet SqlGraphStore::SpansToResultSet(
    const std::vector<obs::TraceSpan>& spans) {
  sql::ResultSet rs;
  rs.columns = {"stage", "operator", "rows", "time_ms"};
  for (const obs::TraceSpan& s : spans) {
    rs.rows.push_back({rel::Value(s.context), rel::Value(s.op),
                       rel::Value(static_cast<int64_t>(s.rows)),
                       rel::Value(static_cast<double>(s.ns) / 1e6)});
  }
  return rs;
}

Result<sql::ResultSet> SqlGraphStore::ExecuteSql(std::string_view text,
                                                 sql::ExecStats* stats) {
  std::string_view body = text;
  const bool analyze = StripExplainAnalyzePrefix(&body);
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_));
  exec.set_plan_cache(&plan_cache_, schema_epoch());
  exec.set_analyze(analyze);
  auto result = exec.ExecuteSql(body);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  if (analyze && result.ok()) return SpansToResultSet(exec.stats().spans);
  return result;
}

Result<sql::ResultSet> SqlGraphStore::Execute(const sql::SqlQuery& query,
                                              sql::ExecStats* stats) {
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_));
  auto result = exec.Execute(query);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

Result<sql::ResultSet> SqlGraphStore::ExecuteAnalyze(const sql::SqlQuery& query,
                                                     sql::ExecStats* stats) {
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_));
  exec.set_analyze(true);
  auto result = exec.Execute(query);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

Result<sql::PreparedQueryPtr> SqlGraphStore::Prepare(
    std::string_view text) const {
  // Parsing touches no tables: no locks needed.
  return plan_cache_.GetOrPrepare(text, schema_epoch(), nullptr);
}

Result<sql::ResultSet> SqlGraphStore::ExecutePrepared(
    const sql::PreparedQuery& prepared, const sql::ParamBindings& params,
    sql::ExecStats* stats) const {
  ReadLockAll lock(const_cast<SqlGraphStore*>(this));
  sql::Executor exec(const_cast<rel::Database*>(&db_), ExecOptionsFor(config_));
  exec.set_plan_cache(&plan_cache_, schema_epoch());
  auto result = exec.ExecutePrepared(prepared, params);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

sql::ExecStats SqlGraphStore::last_exec_stats() const {
  util::MutexLock guard(&stats_mu_);
  return last_stats_;
}

Result<sql::ResultSet> SqlGraphStore::RunTemplate(
    TemplateId id, const char* text, sql::ParamBindings params) const {
  const uint64_t epoch = schema_epoch();
  sql::PreparedQueryPtr prepared;
  {
    util::MutexLock guard(&tpl_mu_);
    prepared = templates_[id];
    if (prepared == nullptr || prepared->schema_epoch() != epoch) {
      // (Re-)compile through the shared plan cache; self-heals after any
      // schema-epoch bump.
      auto compiled = plan_cache_.GetOrPrepare(text, epoch, nullptr);
      if (!compiled.ok()) return compiled.status();
      prepared = std::move(compiled).value();
      templates_[id] = prepared;
    }
  }
  sql::Executor exec(const_cast<rel::Database*>(&db_), ExecOptionsFor(config_));
  exec.set_plan_cache(&plan_cache_, epoch);
  return exec.ExecutePrepared(*prepared, params);
}

// ------------------------------------------------------------ maintenance --

Status SqlGraphStore::Compact() {
  CommitGuard commit(this);
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kOpa, true},
                          {kIpa, true},
                          {kOsa, true},
                          {kIsa, true},
                          {kVa, true},
                          {kEa, true}});
    RETURN_NOT_OK(CompactLocked());
    // Enqueued while every table is still locked, so no commit can
    // interleave between the cleanup and its record.
    wal::Record rec;
    rec.type = wal::RecordType::kCompact;
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::CompactLocked() {
  // 1. Deleted vertex ids from VA's negative rows; drop those rows.
  std::unordered_set<int64_t> deleted;
  rel::Table* va = db_.GetTable(kVaTable);
  std::vector<RowId> doomed;
  va->Scan([&](RowId rid, const Row& row) {
    if (row[0].AsInt() < 0) {
      deleted.insert(-row[0].AsInt() - 1);
      doomed.push_back(rid);
    }
  });
  for (RowId rid : doomed) RETURN_NOT_OK(va->Delete(rid));
  if (deleted.empty()) return Status::OK();

  // 2. Adjacency cleanup in both directions: drop negated rows (collecting
  // their list ids) and clear triads that point at deleted vertices.
  for (bool outgoing : {true, false}) {
    rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
    rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
    const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;

    std::unordered_set<int64_t> dead_lids;
    std::vector<RowId> dead_rows;
    std::vector<std::pair<RowId, Row>> updates;
    primary->Scan([&](RowId rid, const Row& row) {
      if (row[kVidCol].AsInt() < 0) {
        for (size_t c = 0; c < colors; ++c) {
          const Value& val = row[ValColIdx(c)];
          if (!val.is_null() && val.AsInt() >= kLidBase) {
            dead_lids.insert(val.AsInt());
          }
        }
        dead_rows.push_back(rid);
        return;
      }
      Row patched = row;
      bool changed = false;
      for (size_t c = 0; c < colors; ++c) {
        const Value& val = patched[ValColIdx(c)];
        if (val.is_null()) continue;
        if (val.AsInt() < kLidBase && deleted.count(val.AsInt())) {
          patched[EidColIdx(c)] = Value::Null();
          patched[LblColIdx(c)] = Value::Null();
          patched[ValColIdx(c)] = Value::Null();
          changed = true;
        }
      }
      if (changed) updates.emplace_back(rid, std::move(patched));
    });
    for (RowId rid : dead_rows) RETURN_NOT_OK(primary->Delete(rid));
    for (auto& [rid, row] : updates) {
      RETURN_NOT_OK(primary->Update(rid, std::move(row)));
    }
    // Secondary lists: drop dead lists outright and dead targets from live
    // lists.
    std::vector<RowId> dead_entries;
    secondary->Scan([&](RowId rid, const Row& row) {
      if (dead_lids.count(row[0].AsInt()) || deleted.count(row[2].AsInt())) {
        dead_entries.push_back(rid);
      }
    });
    for (RowId rid : dead_entries) RETURN_NOT_OK(secondary->Delete(rid));
  }
  // Row layout changed under every cached plan: force re-preparation.
  BumpSchemaEpoch();
  return Status::OK();
}

// -------------------------------------------------------------- durability --

Status SqlGraphStore::ApplyWalRecord(const wal::Record& rec) {
  using wal::RecordType;
  switch (rec.type) {
    case RecordType::kAddVertex: {
      ASSIGN_OR_RETURN(json::JsonValue attrs, json::Parse(rec.json));
      if (!attrs.is_object()) attrs = json::JsonValue::Object();
      {
        WriteLock lock(this, {{kVa, true}});
        RETURN_NOT_OK(db_.GetTable(kVaTable)
                          ->Insert({Value(rec.id), Value(std::move(attrs))})
                          .status());
      }
      util::WriterMutexLock counter(&counter_lock_);
      next_vertex_id_ = std::max(next_vertex_id_, rec.id + 1);
      return Status::OK();
    }
    case RecordType::kAddEdge: {
      ASSIGN_OR_RETURN(json::JsonValue attrs, json::Parse(rec.json));
      if (!attrs.is_object()) attrs = json::JsonValue::Object();
      {
        WriteLock lock(this, {{kEa, true}});
        RETURN_NOT_OK(db_.GetTable(kEaTable)
                          ->Insert({Value(rec.id), Value(rec.src),
                                    Value(rec.dst), Value(rec.label),
                                    Value(std::move(attrs))})
                          .status());
      }
      {
        WriteLock lock(this, {{kOpa, true}, {kOsa, true}});
        RETURN_NOT_OK(AddAdjacencyEntry(
            /*outgoing=*/true, static_cast<VertexId>(rec.src), rec.label,
            static_cast<EdgeId>(rec.id), static_cast<VertexId>(rec.dst)));
      }
      {
        WriteLock lock(this, {{kIpa, true}, {kIsa, true}});
        RETURN_NOT_OK(AddAdjacencyEntry(
            /*outgoing=*/false, static_cast<VertexId>(rec.dst), rec.label,
            static_cast<EdgeId>(rec.id), static_cast<VertexId>(rec.src)));
      }
      util::WriterMutexLock counter(&counter_lock_);
      next_edge_id_ = std::max(next_edge_id_, rec.id + 1);
      return Status::OK();
    }
    case RecordType::kSetVertexAttr: {
      ASSIGN_OR_RETURN(json::JsonValue value, json::Parse(rec.json));
      return SetVertexAttr(static_cast<VertexId>(rec.id), rec.label,
                           std::move(value));
    }
    case RecordType::kSetEdgeAttr: {
      ASSIGN_OR_RETURN(json::JsonValue value, json::Parse(rec.json));
      return SetEdgeAttr(static_cast<EdgeId>(rec.id), rec.label,
                         std::move(value));
    }
    case RecordType::kRemoveVertexAttr:
      return RemoveVertexAttr(static_cast<VertexId>(rec.id), rec.label);
    case RecordType::kRemoveEdgeAttr:
      return RemoveEdgeAttr(static_cast<EdgeId>(rec.id), rec.label);
    case RecordType::kRemoveVertex:
      return RemoveVertex(static_cast<VertexId>(rec.id));
    case RecordType::kRemoveEdge:
      return RemoveEdge(static_cast<EdgeId>(rec.id));
    case RecordType::kCompact: {
      WriteLock lock(this, {{kOpa, true},
                            {kIpa, true},
                            {kOsa, true},
                            {kIsa, true},
                            {kVa, true},
                            {kEa, true}});
      return CompactLocked();
    }
  }
  return Status::ParseError("wal: unhandled record type");
}

wal::WalStats SqlGraphStore::wal_stats() const {
  util::ReaderMutexLock rotate(&wal_rotate_mu_);
  wal::WalStats stats = wal_recovery_stats_;
  if (wal_writer_ != nullptr) {
    const wal::WalCounters& c = wal_writer_->counters();
    stats.records += c.records.load(std::memory_order_relaxed);
    stats.bytes += c.bytes.load(std::memory_order_relaxed);
    stats.fsyncs += c.fsyncs.load(std::memory_order_relaxed);
    stats.groups += c.groups.load(std::memory_order_relaxed);
    stats.grouped_records += c.grouped_records.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace core
}  // namespace sqlgraph
