// Recursive-descent JSON parser and compact writer.

#ifndef SQLGRAPH_JSON_JSON_PARSER_H_
#define SQLGRAPH_JSON_JSON_PARSER_H_

#include <string>
#include <string_view>

#include "json/json_value.h"
#include "util/status.h"

namespace sqlgraph {
namespace json {

/// Parses a JSON document. Accepts the full JSON grammar (RFC 8259); \uXXXX
/// escapes are decoded to UTF-8, including surrogate pairs for codepoints
/// beyond the BMP (lone surrogates are a parse error). Nesting depth is capped
/// to keep recursion bounded on adversarial inputs.
util::Result<JsonValue> Parse(std::string_view text);

/// Serializes to compact JSON text (no whitespace, keys in stored order).
std::string Write(const JsonValue& value);

/// Serializes with 2-space indentation, for examples/docs output.
std::string WritePretty(const JsonValue& value);

}  // namespace json
}  // namespace sqlgraph

#endif  // SQLGRAPH_JSON_JSON_PARSER_H_
