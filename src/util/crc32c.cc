#include "util/crc32c.h"

#include <array>

namespace sqlgraph {
namespace util {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = T();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  // Slice-by-8 over the aligned middle.
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;  // little-endian hosts only (all our targets)
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return ~crc;
}

}  // namespace util
}  // namespace sqlgraph
