#include "baseline/sqlgraph_adapter.h"

#include <algorithm>

#include "util/string_util.h"

namespace sqlgraph {
namespace baseline {

using util::Result;
using util::Status;

Result<VertexId> SqlGraphAdapter::AddVertex(json::JsonValue attrs) {
  ChargeRoundTrip(rt_);
  return store_->AddVertex(std::move(attrs));
}

Result<json::JsonValue> SqlGraphAdapter::GetVertex(VertexId vid) {
  ChargeRoundTrip(rt_);
  return store_->GetVertex(vid);
}

Status SqlGraphAdapter::SetVertexAttr(VertexId vid, const std::string& key,
                                      json::JsonValue value) {
  ChargeRoundTrip(rt_);
  return store_->SetVertexAttr(vid, key, std::move(value));
}

Status SqlGraphAdapter::RemoveVertex(VertexId vid) {
  ChargeRoundTrip(rt_);
  return store_->RemoveVertex(vid);
}

Result<EdgeId> SqlGraphAdapter::AddEdge(VertexId src, VertexId dst,
                                        const std::string& label,
                                        json::JsonValue attrs) {
  ChargeRoundTrip(rt_);
  return store_->AddEdge(src, dst, label, std::move(attrs));
}

Result<EdgeRecord> SqlGraphAdapter::GetEdge(EdgeId eid) {
  ChargeRoundTrip(rt_);
  return store_->GetEdge(eid);
}

Status SqlGraphAdapter::SetEdgeAttr(EdgeId eid, const std::string& key,
                                    json::JsonValue value) {
  ChargeRoundTrip(rt_);
  return store_->SetEdgeAttr(eid, key, std::move(value));
}

Status SqlGraphAdapter::RemoveEdge(EdgeId eid) {
  ChargeRoundTrip(rt_);
  return store_->RemoveEdge(eid);
}

Result<std::optional<EdgeId>> SqlGraphAdapter::FindEdge(
    VertexId src, const std::string& label, VertexId dst) {
  ChargeRoundTrip(rt_);
  return store_->FindEdge(src, label, dst);
}

Result<std::vector<EdgeRecord>> SqlGraphAdapter::GetOutEdges(
    VertexId src, const std::string& label) {
  ChargeRoundTrip(rt_);
  return store_->GetOutEdges(src, label);
}

Result<int64_t> SqlGraphAdapter::CountOutEdges(VertexId src,
                                               const std::string& label) {
  ChargeRoundTrip(rt_);
  return store_->CountOutEdges(src, label);
}

Result<std::vector<VertexId>> SqlGraphAdapter::Out(
    VertexId vid, const std::vector<std::string>& labels) {
  ChargeRoundTrip(rt_);
  if (labels.empty()) return store_->Out(vid);
  std::vector<VertexId> out;
  for (const auto& l : labels) {
    ASSIGN_OR_RETURN(std::vector<VertexId> part, store_->Out(vid, l));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Result<std::vector<VertexId>> SqlGraphAdapter::In(
    VertexId vid, const std::vector<std::string>& labels) {
  ChargeRoundTrip(rt_);
  if (labels.empty()) return store_->In(vid);
  std::vector<VertexId> out;
  for (const auto& l : labels) {
    ASSIGN_OR_RETURN(std::vector<VertexId> part, store_->In(vid, l));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Result<std::vector<EdgeId>> SqlGraphAdapter::OutE(
    VertexId vid, const std::vector<std::string>& labels) {
  ChargeRoundTrip(rt_);
  std::vector<EdgeId> out;
  ASSIGN_OR_RETURN(std::vector<EdgeRecord> recs,
                   store_->GetOutEdges(vid, labels.size() == 1 ? labels[0] : ""));
  for (const auto& rec : recs) {
    if (labels.size() > 1 &&
        std::find(labels.begin(), labels.end(), rec.label) == labels.end()) {
      continue;
    }
    out.push_back(rec.id);
  }
  return out;
}

Result<std::vector<EdgeId>> SqlGraphAdapter::InE(
    VertexId vid, const std::vector<std::string>& labels) {
  ChargeRoundTrip(rt_);
  // In-edges via the EA OUTV index, through SQL.
  auto result = store_->ExecuteSql(
      "SELECT EID AS val, LBL AS lbl FROM EA WHERE OUTV = " +
      std::to_string(vid));
  RETURN_NOT_OK(result.status());
  std::vector<EdgeId> out;
  for (const auto& row : result->rows) {
    if (!labels.empty() &&
        std::find(labels.begin(), labels.end(), row[1].AsString()) ==
            labels.end()) {
      continue;
    }
    out.push_back(row[0].AsInt());
  }
  return out;
}

Result<std::vector<VertexId>> SqlGraphAdapter::AllVertices() {
  auto result = store_->ExecuteSql("SELECT VID AS val FROM VA WHERE VID >= 0");
  RETURN_NOT_OK(result.status());
  std::vector<VertexId> out;
  out.reserve(result->rows.size());
  for (const auto& row : result->rows) out.push_back(row[0].AsInt());
  const size_t batches = out.empty() ? 1 : (out.size() + kScanBatchSize - 1) /
                                               kScanBatchSize;
  for (size_t b = 0; b < batches; ++b) ChargeRoundTrip(rt_);
  return out;
}

Result<std::vector<EdgeId>> SqlGraphAdapter::AllEdges() {
  auto result = store_->ExecuteSql("SELECT EID AS val FROM EA");
  RETURN_NOT_OK(result.status());
  std::vector<EdgeId> out;
  out.reserve(result->rows.size());
  for (const auto& row : result->rows) out.push_back(row[0].AsInt());
  const size_t batches = out.empty() ? 1 : (out.size() + kScanBatchSize - 1) /
                                               kScanBatchSize;
  for (size_t b = 0; b < batches; ++b) ChargeRoundTrip(rt_);
  return out;
}

Result<std::vector<VertexId>> SqlGraphAdapter::VerticesByAttr(
    const std::string& key, const rel::Value& value) {
  ChargeRoundTrip(rt_);
  std::string sql = "SELECT VID AS val FROM VA WHERE VID >= 0 AND JSON_VAL("
                    "ATTR, " + util::SqlQuote(key) + ") = ";
  if (value.is_string()) {
    sql += util::SqlQuote(value.AsString());
  } else {
    sql += value.ToString();
  }
  auto result = store_->ExecuteSql(sql);
  RETURN_NOT_OK(result.status());
  std::vector<VertexId> out;
  out.reserve(result->rows.size());
  for (const auto& row : result->rows) out.push_back(row[0].AsInt());
  return out;
}

}  // namespace baseline
}  // namespace sqlgraph
