// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the checksum used by the WAL
// record frames and the snapshot section trailers. Software slice-by-8
// implementation; no hardware intrinsics so it runs identically everywhere.

#ifndef SQLGRAPH_UTIL_CRC32C_H_
#define SQLGRAPH_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sqlgraph {
namespace util {

/// Extends `crc` with `data`; pass 0 for the initial call.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

/// Masked form (RocksDB-style rotation + constant) stored in file frames so
/// that a frame whose payload happens to contain its own CRC, or a run of
/// zero bytes, never checksums to itself.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace util
}  // namespace sqlgraph

#endif  // SQLGRAPH_UTIL_CRC32C_H_
