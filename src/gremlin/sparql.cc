#include "gremlin/sparql.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "graph/rdf.h"
#include "util/string_util.h"

namespace sqlgraph {
namespace gremlin {

using util::Result;
using util::Status;

namespace {

// ------------------------------------------------------------- tokenizer --

struct Token {
  enum Type { kWord, kVariable, kIri, kLiteral, kSymbol, kEnd } type;
  std::string text;
  std::string lang;   // literal language tag
  size_t offset = 0;
};

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '?' || c == '$') {
      ++i;
      std::string name;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        name.push_back(text[i++]);
      }
      if (name.empty()) return Status::ParseError("empty variable name");
      out.push_back({Token::kVariable, std::move(name), "", start});
      continue;
    }
    if (c == '<') {
      ++i;
      std::string iri;
      while (i < n && text[i] != '>') iri.push_back(text[i++]);
      if (i == n) return Status::ParseError("unterminated IRI");
      ++i;
      out.push_back({Token::kIri, std::move(iri), "", start});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        value.push_back(text[i++]);
      }
      if (i == n) return Status::ParseError("unterminated literal");
      ++i;
      std::string lang;
      if (i < n && text[i] == '@') {
        ++i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                         text[i] == '-')) {
          lang.push_back(text[i++]);
        }
      } else if (i + 1 < n && text[i] == '^' && text[i + 1] == '^') {
        // ^^<datatype> — swallow the datatype IRI or prefixed name.
        i += 2;
        if (i < n && text[i] == '<') {
          while (i < n && text[i] != '>') ++i;
          if (i < n) ++i;
        } else {
          while (i < n && !std::isspace(static_cast<unsigned char>(text[i])) &&
                 text[i] != '.' && text[i] != '}') {
            ++i;
          }
        }
      }
      out.push_back({Token::kLiteral, std::move(value), std::move(lang), start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_' || text[i] == '-' || text[i] == ':')) {
        word.push_back(text[i++]);
      }
      out.push_back({Token::kWord, std::move(word), "", start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      std::string num;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.' || text[i] == '-' || text[i] == '+')) {
        num.push_back(text[i++]);
      }
      // A trailing '.' is the triple terminator, not part of the number.
      if (!num.empty() && num.back() == '.') {
        num.pop_back();
        --i;
      }
      out.push_back({Token::kLiteral, std::move(num), "", start});
      continue;
    }
    static const std::string kSingles = "{}.;,";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({Token::kSymbol, std::string(1, c), "", start});
      ++i;
      continue;
    }
    return Status::ParseError(util::StrFormat(
        "unexpected character '%c' at offset %zu in SPARQL", c, start));
  }
  out.push_back({Token::kEnd, "", "", n});
  return out;
}

// ---------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SparqlQuery> Parse() {
    SparqlQuery q;
    // PREFIX declarations.
    while (PeekWordCi("PREFIX")) {
      ++pos_;
      if (Peek().type != Token::kWord) return Err("expected prefix name");
      std::string pfx = Peek().text;  // "rdfs:" (may include the colon)
      ++pos_;
      if (!pfx.empty() && pfx.back() == ':') pfx.pop_back();
      if (Peek().type != Token::kIri) return Err("expected prefix IRI");
      prefixes_[pfx] = Peek().text;
      ++pos_;
    }
    if (!AcceptWordCi("SELECT")) return Err("expected SELECT");
    while (Peek().type == Token::kVariable) {
      q.select_vars.push_back(Peek().text);
      ++pos_;
    }
    if (q.select_vars.empty() && AcceptWordCi("*")) {
      // SELECT * — variables are inferred from the patterns.
    }
    if (!AcceptWordCi("WHERE")) return Err("expected WHERE");
    RETURN_NOT_OK(ExpectSymbol("{"));
    RETURN_NOT_OK(ParseBlock(&q.patterns, &q.optionals));
    if (Peek().type != Token::kEnd) return Err("trailing input");
    if (q.patterns.empty()) return Err("empty WHERE block");
    return q;
  }

 private:
  Status ParseBlock(std::vector<TriplePattern>* patterns,
                    std::vector<std::vector<TriplePattern>>* optionals) {
    SparqlTerm last_subject;
    bool have_subject = false;
    while (!PeekSymbol("}")) {
      if (PeekWordCi("OPTIONAL")) {
        ++pos_;
        RETURN_NOT_OK(ExpectSymbol("{"));
        std::vector<TriplePattern> inner;
        std::vector<std::vector<TriplePattern>> nested;  // not supported deep
        RETURN_NOT_OK(ParseBlock(&inner, &nested));
        if (!nested.empty()) {
          return Err("nested OPTIONAL is not supported");
        }
        if (optionals == nullptr) return Err("OPTIONAL not allowed here");
        optionals->push_back(std::move(inner));
        continue;
      }
      TriplePattern p;
      if (have_subject && (PeekSymbol(";"))) {
        // `;` continues the previous subject.
        ++pos_;
        if (PeekSymbol("}")) break;  // dangling ';'
        p.subject = last_subject;
      } else {
        ASSIGN_OR_RETURN(p.subject, ParseTerm());
      }
      ASSIGN_OR_RETURN(p.predicate, ParseTerm());
      if (!p.predicate.is_uri()) {
        return Err("predicate must be an IRI or prefixed name");
      }
      ASSIGN_OR_RETURN(p.object, ParseTerm());
      last_subject = p.subject;
      have_subject = true;
      patterns->push_back(std::move(p));
      if (AcceptSymbol(".")) continue;
      if (PeekSymbol(";")) continue;  // handled at loop head
      if (PeekSymbol("}")) break;
      return Err("expected '.', ';' or '}' after triple");
    }
    return ExpectSymbol("}");
  }

  Result<SparqlTerm> ParseTerm() {
    const Token& t = Peek();
    SparqlTerm term;
    switch (t.type) {
      case Token::kVariable:
        term.kind = SparqlTerm::kVariable;
        term.text = t.text;
        ++pos_;
        return term;
      case Token::kIri:
        term.kind = SparqlTerm::kUri;
        term.text = t.text;
        ++pos_;
        return term;
      case Token::kLiteral:
        term.kind = SparqlTerm::kLiteral;
        term.text = t.text;
        term.lang = t.lang;
        ++pos_;
        return term;
      case Token::kWord: {
        // `a` = rdf:type; otherwise a prefixed name pfx:local.
        if (t.text == "a") {
          term.kind = SparqlTerm::kUri;
          term.text = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
          ++pos_;
          return term;
        }
        const size_t colon = t.text.find(':');
        if (colon == std::string::npos) {
          return Err("expected a term, got '" + t.text + "'");
        }
        const std::string pfx = t.text.substr(0, colon);
        auto it = prefixes_.find(pfx);
        if (it == prefixes_.end()) {
          return Err("unknown prefix '" + pfx + "'");
        }
        term.kind = SparqlTerm::kUri;
        term.text = it->second + t.text.substr(colon + 1);
        ++pos_;
        return term;
      }
      default:
        return Err("expected a term");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool PeekSymbol(std::string_view s) const {
    return Peek().type == Token::kSymbol && Peek().text == s;
  }
  bool PeekWordCi(std::string_view w) const {
    return Peek().type == Token::kWord &&
           util::ToLower(Peek().text) == util::ToLower(std::string(w));
  }
  bool AcceptSymbol(std::string_view s) {
    if (PeekSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptWordCi(std::string_view w) {
    if (PeekWordCi(w)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) return Err("expected '" + std::string(s) + "'");
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset) + " in SPARQL");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

// ------------------------------------------------------------- converter --

/// Escapes a string for a single-quoted Gremlin literal.
std::string GremlinQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "'";
  return out;
}

/// Literal value as stored by the §3.1 conversion: plain text, or the
/// quoted "text"@lang form the DBpedia data uses for tagged literals.
std::string LiteralValue(const SparqlTerm& term) {
  if (term.lang.empty()) return term.text;
  return "\"" + term.text + "\"@" + term.lang;
}

/// Emits the Gremlin for one connected traversal over `patterns`. Appendix
/// B: start from the most selective anchor, then cover every pattern with
/// transform pipes, using as()/back() for branch points.
Result<std::string> ConvertPatterns(const std::vector<TriplePattern>& patterns) {
  std::vector<bool> done(patterns.size(), false);
  std::set<std::string> bound;     // bound (as-named) variables
  std::string current_var;         // variable the pipeline currently sits on
  std::string out = "g";

  auto local = [](const SparqlTerm& uri) {
    return graph::UriLocalName(uri.text);
  };

  // --- pick the anchor (most selective start, Appendix B) ---------------
  // Preference: object-URI pattern (g.V('uri', ...) then in(label)) >
  // subject-URI pattern > literal-valued pattern (attribute start).
  int anchor = -1;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].object.is_uri() && patterns[i].subject.is_variable()) {
      anchor = static_cast<int>(i);
      break;
    }
  }
  if (anchor < 0) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].subject.is_uri()) {
        anchor = static_cast<int>(i);
        break;
      }
    }
  }
  if (anchor < 0) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].object.is_literal() && patterns[i].subject.is_variable()) {
        anchor = static_cast<int>(i);
        break;
      }
    }
  }
  if (anchor < 0) {
    return Status::NotImplemented(
        "no groundable starting point (need a URI or literal)");
  }

  const TriplePattern& a = patterns[static_cast<size_t>(anchor)];
  done[static_cast<size_t>(anchor)] = true;
  if (a.object.is_uri() && a.subject.is_variable()) {
    out += ".V('uri', " + GremlinQuote(a.object.text) + ").in(" +
           GremlinQuote(local(a.predicate)) + ")";
    current_var = a.subject.text;
  } else if (a.subject.is_uri()) {
    out += ".V('uri', " + GremlinQuote(a.subject.text) + ")";
    if (a.object.is_variable()) {
      out += ".out(" + GremlinQuote(local(a.predicate)) + ")";
      current_var = a.object.text;
    } else if (a.object.is_literal()) {
      out += ".has(" + GremlinQuote(local(a.predicate)) + ", " +
             GremlinQuote(LiteralValue(a.object)) + ")";
      current_var = "__start";
    } else {  // URI object: existence filter via traversal
      out += ".out(" + GremlinQuote(local(a.predicate)) + ").has('uri', " +
             GremlinQuote(a.object.text) + ")";
      current_var = "__start";
    }
  } else {  // literal anchor
    out += ".V.has(" + GremlinQuote(local(a.predicate)) + ", " +
           GremlinQuote(LiteralValue(a.object)) + ")";
    current_var = a.subject.text;
  }
  if (!current_var.empty()) {
    out += ".as(" + GremlinQuote(current_var) + ")";
    bound.insert(current_var);
  }

  // --- cover the remaining patterns -------------------------------------
  auto goto_var = [&](const std::string& var) {
    if (current_var != var) {
      out += ".back(" + GremlinQuote(var) + ")";
      current_var = var;
    }
  };
  auto bind = [&](const std::string& var) {
    out += ".as(" + GremlinQuote(var) + ")";
    bound.insert(var);
    current_var = var;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (done[i]) continue;
      const TriplePattern& p = patterns[i];
      const bool subj_bound = p.subject.is_variable()
                                  ? bound.count(p.subject.text) > 0
                                  : p.subject.is_uri();
      const bool obj_bound = p.object.is_variable()
                                 ? bound.count(p.object.text) > 0
                                 : true;  // URI/literal objects are ground
      const std::string label = GremlinQuote(local(p.predicate));

      if (p.subject.is_variable() && subj_bound) {
        goto_var(p.subject.text);
        if (p.object.is_literal()) {
          out += ".has(" + label + ", " + GremlinQuote(LiteralValue(p.object)) +
                 ")";
        } else if (p.object.is_uri()) {
          // Existence filter: hop to the required target, then return to
          // the subject so later patterns (and the final count) still bind
          // the subject variable.
          out += ".out(" + label + ").has('uri', " +
                 GremlinQuote(p.object.text) + ").back(" +
                 GremlinQuote(p.subject.text) + ")";
        } else if (bound.count(p.object.text)) {
          return Status::NotImplemented(
              "cyclic pattern between two bound variables");
        } else {
          out += ".out(" + label + ")";
          bind(p.object.text);
        }
        done[i] = true;
        progressed = true;
        continue;
      }
      if (p.object.is_variable() && obj_bound && p.subject.is_variable()) {
        goto_var(p.object.text);
        out += ".in(" + label + ")";
        bind(p.subject.text);
        done[i] = true;
        progressed = true;
        continue;
      }
      if (p.subject.is_uri()) {
        // Disconnected ground-subject pattern; cannot splice into one
        // traversal without a join.
        return Status::NotImplemented("disconnected pattern group");
      }
    }
  }
  for (bool d : done) {
    if (!d) return Status::NotImplemented("disconnected pattern group");
  }
  return out + ".dedup().count()";
}

}  // namespace

Result<SparqlQuery> ParseSparql(std::string_view text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).Parse();
}

Result<SparqlConversion> SparqlToGremlin(const SparqlQuery& query) {
  SparqlConversion out;
  ASSIGN_OR_RETURN(out.main_query, ConvertPatterns(query.patterns));
  for (const auto& optional : query.optionals) {
    // Table 9: the OPTIONAL block is evaluated as a second traversal over
    // the main block's bindings — equivalent in result-set size to the
    // combined required pattern.
    std::vector<TriplePattern> combined = query.patterns;
    combined.insert(combined.end(), optional.begin(), optional.end());
    ASSIGN_OR_RETURN(std::string q, ConvertPatterns(combined));
    out.optional_queries.push_back(std::move(q));
  }
  return out;
}

Result<SparqlConversion> SparqlToGremlin(std::string_view text) {
  ASSIGN_OR_RETURN(SparqlQuery query, ParseSparql(text));
  return SparqlToGremlin(query);
}

}  // namespace gremlin
}  // namespace sqlgraph
