# Empty dependencies file for bench_fig9_linkbench.
# This may be replaced when dependencies are built.
