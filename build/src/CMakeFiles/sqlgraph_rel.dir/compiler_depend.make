# Empty compiler generated dependencies file for sqlgraph_rel.
# This may be replaced when dependencies are built.
