// Tests for src/util: Status/Result, RNG/Zipf, stats, strings, thread pool.

#include <atomic>
#include <set>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sqlgraph {
namespace util {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("row 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "row 42");
  EXPECT_EQ(st.ToString(), "NotFound: row 42");
}

TEST(StatusTest, CopyIsCheapAndEqualContent) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x * 2;
}

Status UseParse(int x, int* out) {
  ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParse(-5, &out).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, RanksWithinDomainAndSkewed) {
  Rng rng(42);
  ZipfSampler zipf(1000, 0.8);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = zipf.Sample(&rng);
    ASSERT_LT(r, 1000u);
    if (r < 10) ++head;
  }
  // With theta=0.8 the top-10 ranks should dominate well beyond uniform 1%.
  EXPECT_GT(head, 1500);
}

TEST(RunningStatTest, MeanAndStddev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.Add(i);
    all.Add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.Add(i * 1.5);
    all.Add(i * 1.5);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(SamplesTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(0.5), 50, 1);
  EXPECT_NEAR(s.Percentile(0.99), 99, 1);
  EXPECT_EQ(s.Percentile(0.0), 1);
  EXPECT_EQ(s.Percentile(1.0), 100);
}

TEST(StringUtilTest, SplitJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("isPartOf", "is"));
  EXPECT_FALSE(StartsWith("is", "isPartOf"));
  EXPECT_TRUE(EndsWith("weight", "ght"));
}

TEST(StringUtilTest, SqlLikeMatch) {
  EXPECT_TRUE(SqlLikeMatch("chicken", "%en"));
  EXPECT_FALSE(SqlLikeMatch("chickens", "%en"));
  EXPECT_TRUE(SqlLikeMatch("chicken", "chick%"));
  EXPECT_TRUE(SqlLikeMatch("chicken", "c_ick%"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  EXPECT_TRUE(SqlLikeMatch("a%b", "a%b"));
  EXPECT_TRUE(SqlLikeMatch("xyzen", "%y%en"));
  EXPECT_FALSE(SqlLikeMatch("xyen", "%z%en"));
}

TEST(StringUtilTest, SqlQuoteEscapesQuotes) {
  EXPECT_EQ(SqlQuote("it's"), "'it''s'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.0 GiB");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(10); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.ElapsedNanos(), 0u);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace util
}  // namespace sqlgraph
