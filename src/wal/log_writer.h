// Append-only WAL segment writer with group commit.
//
// Any number of threads call Append() concurrently; each call returns once
// its record is durable per the configured SyncMode:
//
//   kNone      write() only — the OS may lose the tail on a crash,
//   kBatched   the first committer to arrive becomes the batch leader,
//              writes every queued frame with one write() and covers all of
//              them with a single fsync() while later arrivals queue up for
//              the next batch (leader/follower group commit),
//   kPerCommit each Append() pays write()+fsync() under the writer mutex.
//
// I/O errors are sticky: after the first failed write or fsync every
// subsequent Append returns the same error, so a committer can never be
// acknowledged after its bytes failed to reach the file.

#ifndef SQLGRAPH_WAL_LOG_WRITER_H_
#define SQLGRAPH_WAL_LOG_WRITER_H_

#include <condition_variable>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/options.h"
#include "wal/record.h"

namespace sqlgraph {
namespace wal {

class LogWriter {
 public:
  /// Opens `path` for appending (created if absent; existing bytes are
  /// preserved — recovery truncates torn tails before reopening).
  static util::Result<std::unique_ptr<LogWriter>> Open(const std::string& path,
                                                       SyncMode mode);
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Frames and appends one record; blocks until durable per the SyncMode.
  /// Equivalent to Enqueue + WaitDurable.
  util::Status Append(const Record& rec);

  /// Two-phase append, first half: frames the record and fixes its position
  /// in the log. Cheap (no I/O) — callers invoke it while still holding the
  /// lock that serialized the mutation, so the log order of conflicting
  /// commits matches their apply order. Returns a ticket for WaitDurable.
  util::Result<uint64_t> Enqueue(const Record& rec);

  /// Two-phase append, second half: blocks until the ticket's record is
  /// durable per the SyncMode. Called after the serializing lock is
  /// released so concurrent committers can share one fsync (kBatched).
  util::Status WaitDurable(uint64_t ticket);

  /// Forces everything appended so far onto stable storage.
  util::Status Sync();

  /// Syncs and closes the file; further Appends fail. Idempotent.
  util::Status Close();

  const std::string& path() const { return path_; }
  SyncMode sync_mode() const { return mode_; }
  const WalCounters& counters() const { return counters_; }

 private:
  LogWriter(std::string path, int fd, SyncMode mode)
      : path_(std::move(path)), fd_(fd), mode_(mode) {}

  util::Status WriteAll(const char* data, size_t n);
  util::Status Fsync();
  util::Status FlushPendingLocked() REQUIRES(mu_);

  const std::string path_;
  // Protocol, not expressible as an annotation: fd_ is written either under
  // mu_ (kPerCommit, Close) or by the single active batch leader with mu_
  // dropped (kBatched group commit); Close/Sync wait out leader_active_
  // before touching it, so writers never overlap.
  int fd_;
  const SyncMode mode_;
  WalCounters counters_;

  // Taken while a store-side serializing lock is held (Enqueue is called
  // under the table lock so log order matches apply order) — hence it ranks
  // above kStoreTable/kStoreCounter and below kBufferPool.
  util::Mutex mu_{util::LockRank::kWalWriter, "wal_writer"};
  // condition_variable_any: wakes batch followers; routes unlock/relock
  // through the annotated mutex so rank tracking survives waits.
  std::condition_variable_any cv_;
  std::string pending_ GUARDED_BY(mu_);  // frames awaiting the next batch
  uint64_t pending_records_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;  // newest enqueued sequence
  // Group-commit protocol state. SharedVar: scheduling points + race
  // checking under the schedule explorer (util/sched.h), plain fields
  // otherwise. The cv-driven protocol itself is model-checked as a
  // protocol model in tests/sched_test.cc — real condition-variable waits
  // cannot be driven cooperatively.
  util::sched::SharedVar<uint64_t> durable_seq_
      GUARDED_BY(mu_){"wal.durable_seq"};  // newest durable sequence
  util::sched::SharedVar<bool> leader_active_
      GUARDED_BY(mu_){"wal.leader_active"};  // leader writing right now
  util::Status io_error_ GUARDED_BY(mu_);       // sticky first I/O failure
};

}  // namespace wal
}  // namespace sqlgraph

#endif  // SQLGRAPH_WAL_LOG_WRITER_H_
