# Empty dependencies file for bench_fig8_dbpedia.
# This may be replaced when dependencies are built.
