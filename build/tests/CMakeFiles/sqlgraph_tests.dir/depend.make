# Empty dependencies file for sqlgraph_tests.
# This may be replaced when dependencies are built.
