// Bulk loader: property graph → SQLGraph schema. Performs the coloring
// analysis (§3.4), shreds adjacency into OPA/OSA/IPA/ISA with spill
// handling, writes VA/EA, builds the Fig. 5 index set, and reports the
// Table-3 statistics.

#ifndef SQLGRAPH_SQLGRAPH_LOADER_H_
#define SQLGRAPH_SQLGRAPH_LOADER_H_

#include "graph/property_graph.h"
#include "rel/database.h"
#include "sqlgraph/schema.h"
#include "util/status.h"

namespace sqlgraph {
namespace core {

/// Analyzes label co-occurrence over the graph and builds the colored
/// hashes (or modulo hashes when config.use_coloring is false).
GraphSchema AnalyzeGraph(const graph::PropertyGraph& graph,
                         const StoreConfig& config);

/// Loads the graph into `db` using `schema`. Tables must not exist yet.
util::Result<LoadStats> BulkLoad(const graph::PropertyGraph& graph,
                                 const GraphSchema& schema,
                                 const StoreConfig& config, rel::Database* db,
                                 int64_t* next_lid);

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_LOADER_H_
