// Columnar batches for the vectorized executor.
//
// A ColumnBatch is the batch-at-a-time counterpart of std::vector<Row>: one
// ColumnVector per combined-row slot, all the same length. Each column keeps
// a byte-per-row null mask plus typed storage selected by the first non-NULL
// value appended (int64/double/bool/string); columns that turn out to hold
// mixed types promote themselves to boxed rel::Value storage, so dynamic
// typing keeps working at a per-column instead of per-cell cost. JSON
// documents always live in boxed storage.
//
// Literal operands broadcast as constant columns (one physical element,
// logical length n). Filters communicate through selection vectors —
// std::vector<uint32_t> of surviving row indexes — applied with Gather().

#ifndef SQLGRAPH_REL_COLUMN_BATCH_H_
#define SQLGRAPH_REL_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rel/value.h"

namespace sqlgraph {
namespace rel {

/// Rows per filter/eval chunk in the scan pipeline: big enough to amortize
/// per-vector dispatch, small enough that a chunk's columns stay cache
/// resident.
inline constexpr size_t kVectorChunkRows = 2048;

class ColumnVector {
 public:
  enum class Tag : uint8_t { kInt64, kDouble, kBool, kString, kBoxed };

  ColumnVector() = default;

  /// A column whose every row is `v` (one physical element).
  static ColumnVector Constant(const Value& v, size_t n);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Tag tag() const { return tag_; }
  bool is_constant() const { return constant_; }
  /// False until the first non-NULL value fixes the storage tag.
  bool typed() const { return typed_; }

  void Reserve(size_t n);
  void Clear();

  void Append(const Value& v);
  void AppendNull();
  /// Appends row `i` of `src` (cheap when the tags already agree).
  void AppendFrom(const ColumnVector& src, size_t i);
  /// Appends rows `sel[*]` of `src`.
  void AppendGather(const ColumnVector& src, const std::vector<uint32_t>& sel);

  bool IsNull(size_t i) const { return nulls_[phys(i)] != 0; }
  /// Boxes row `i` back into a Value (NULL rows yield Value::Null()).
  Value GetValue(size_t i) const;

  // Typed readers; valid only when tag() matches and !IsNull(i).
  int64_t IntAt(size_t i) const { return ints_[phys(i)]; }
  double DoubleAt(size_t i) const { return doubles_[phys(i)]; }
  bool BoolAt(size_t i) const { return bools_[phys(i)] != 0; }
  const std::string& StringAt(size_t i) const { return strings_[phys(i)]; }
  const Value& BoxedAt(size_t i) const { return boxed_[phys(i)]; }

  /// New column with rows `sel[*]` of this one. Constants stay constant.
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

 private:
  size_t phys(size_t i) const { return constant_ ? 0 : i; }
  /// Switches an all-NULL column to `t` storage.
  void Retag(Tag t);
  /// Reboxes every row into Value storage (mixed-type column).
  void PromoteToBoxed();
  /// Expands a constant into per-row storage so appends can proceed.
  void MaterializeConstant();
  std::vector<uint8_t>& ActiveNulls() { return nulls_; }

  Tag tag_ = Tag::kInt64;
  bool typed_ = false;
  bool constant_ = false;
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;  // 1 = NULL; placeholder stored in the slot
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> boxed_;
};

/// A batch of rows in columnar form; `cols` all share length `num_rows`.
struct ColumnBatch {
  std::vector<ColumnVector> cols;
  size_t num_rows = 0;

  size_t num_cols() const { return cols.size(); }

  /// Clears and re-shapes to `n` empty columns.
  void Reset(size_t n);
  void Reserve(size_t n);

  void AppendRow(const Row& row);
  /// Appends `full` through a column projection (empty = identity), the
  /// batched counterpart of Relation::Project — no intermediate Row.
  void AppendProjected(const Row& full, const std::vector<int>& projection);
  /// Appends row `i` of `src` column by column.
  void AppendRowFrom(const ColumnBatch& src, size_t i);
  /// Appends rows `sel[*]` of `src`.
  void AppendGather(const ColumnBatch& src, const std::vector<uint32_t>& sel);

  Row GetRow(size_t i) const;

  /// Keeps only rows `sel[*]`, in order.
  void KeepOnly(const std::vector<uint32_t>& sel);

  std::vector<Row> ToRows() const;
  static ColumnBatch FromRows(const std::vector<Row>& rows, size_t width);
};

}  // namespace rel
}  // namespace sqlgraph

#endif  // SQLGRAPH_REL_COLUMN_BATCH_H_
