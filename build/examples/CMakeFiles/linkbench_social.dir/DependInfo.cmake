
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/linkbench_social.cpp" "examples/CMakeFiles/linkbench_social.dir/linkbench_social.cpp.o" "gcc" "examples/CMakeFiles/linkbench_social.dir/linkbench_social.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlgraph_bench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_gremlin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_coloring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
