#include "sqlgraph/snapshot.h"

#include <cstdint>
#include <fstream>
#include <shared_mutex>
#include <sstream>

#include "rel/codec.h"

namespace sqlgraph {
namespace core {

using rel::GetVarint;
using rel::PutVarint;
using rel::Row;
using util::Result;
using util::Status;

namespace {

constexpr char kMagic[] = "SQLG1\n";
constexpr size_t kMagicLen = 6;

const char* const kTableOrder[] = {kOpaTable, kIpaTable, kOsaTable,
                                   kIsaTable, kVaTable,  kEaTable};

void PutString(const std::string& s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

Status GetString(const std::string& buf, size_t* offset, std::string* out) {
  uint64_t len = 0;
  RETURN_NOT_OK(GetVarint(buf, offset, &len));
  if (*offset + len > buf.size()) {
    return Status::OutOfRange("truncated string in snapshot");
  }
  out->assign(buf, *offset, len);
  *offset += len;
  return Status::OK();
}

void PutColoredHash(const coloring::ColoredHash& hash, std::string* out) {
  PutVarint(hash.num_colors(), out);
  const auto entries = hash.Entries();
  PutVarint(entries.size(), out);
  for (const auto& [label, color] : entries) {
    PutString(label, out);
    PutVarint(color, out);
  }
}

Result<coloring::ColoredHash> GetColoredHash(const std::string& buf,
                                             size_t* offset) {
  uint64_t num_colors = 0, count = 0;
  RETURN_NOT_OK(GetVarint(buf, offset, &num_colors));
  RETURN_NOT_OK(GetVarint(buf, offset, &count));
  std::vector<std::pair<std::string, size_t>> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string label;
    uint64_t color = 0;
    RETURN_NOT_OK(GetString(buf, offset, &label));
    RETURN_NOT_OK(GetVarint(buf, offset, &color));
    entries.emplace_back(std::move(label), static_cast<size_t>(color));
  }
  return coloring::ColoredHash::FromEntries(entries,
                                            static_cast<size_t>(num_colors));
}

void PutLoadStats(const LoadStats& s, std::string* out) {
  for (uint64_t v :
       {static_cast<uint64_t>(s.num_out_labels),
        static_cast<uint64_t>(s.num_in_labels),
        static_cast<uint64_t>(s.out_colors), static_cast<uint64_t>(s.in_colors),
        static_cast<uint64_t>(s.max_out_bucket),
        static_cast<uint64_t>(s.max_in_bucket),
        static_cast<uint64_t>(s.out_spill_rows),
        static_cast<uint64_t>(s.in_spill_rows),
        static_cast<uint64_t>(s.osa_rows), static_cast<uint64_t>(s.isa_rows),
        static_cast<uint64_t>(s.num_vertices),
        static_cast<uint64_t>(s.num_edges)}) {
    PutVarint(v, out);
  }
}

Status GetLoadStats(const std::string& buf, size_t* offset, LoadStats* s) {
  uint64_t v[12];
  for (auto& x : v) RETURN_NOT_OK(GetVarint(buf, offset, &x));
  s->num_out_labels = v[0];
  s->num_in_labels = v[1];
  s->out_colors = v[2];
  s->in_colors = v[3];
  s->max_out_bucket = v[4];
  s->max_in_bucket = v[5];
  s->out_spill_rows = v[6];
  s->in_spill_rows = v[7];
  s->osa_rows = v[8];
  s->isa_rows = v[9];
  s->num_vertices = v[10];
  s->num_edges = v[11];
  if (s->num_vertices > 0) {
    s->out_spill_pct = 100.0 * static_cast<double>(s->out_spill_rows) /
                       static_cast<double>(s->num_vertices);
    s->in_spill_pct = 100.0 * static_cast<double>(s->in_spill_rows) /
                      static_cast<double>(s->num_vertices);
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const SqlGraphStore& store, const std::string& path) {
  // Shared-lock every table for a consistent snapshot of a live store.
  std::shared_lock<std::shared_mutex> locks[SqlGraphStore::kNumTables];
  for (int i = 0; i < SqlGraphStore::kNumTables; ++i) {
    locks[i] = std::shared_lock<std::shared_mutex>(store.table_locks_[i]);
  }

  std::string buf;
  buf.append(kMagic, kMagicLen);
  PutColoredHash(store.schema_.out_hash, &buf);
  PutColoredHash(store.schema_.in_hash, &buf);
  PutVarint(store.schema_.out_colors, &buf);
  PutVarint(store.schema_.in_colors, &buf);
  PutVarint(static_cast<uint64_t>(store.next_vertex_id_), &buf);
  PutVarint(static_cast<uint64_t>(store.next_edge_id_), &buf);
  PutVarint(static_cast<uint64_t>(store.next_lid_ - kLidBase), &buf);
  PutLoadStats(store.load_stats_, &buf);

  for (const char* name : kTableOrder) {
    const rel::Table* table = store.db_.GetTable(name);
    if (table == nullptr) return Status::Internal("snapshot: missing table");
    PutString(name, &buf);
    const rel::Schema& schema = table->schema();
    PutVarint(schema.num_columns(), &buf);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      PutString(schema.column(c).name, &buf);
      buf.push_back(static_cast<char>(schema.column(c).type));
      buf.push_back(schema.column(c).nullable ? 1 : 0);
    }
    PutVarint(table->NumRows(), &buf);
    table->Scan([&buf](rel::RowId, const Row& row) { EncodeRow(row, &buf); });
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<std::unique_ptr<SqlGraphStore>> OpenSnapshot(const std::string& path,
                                                    StoreConfig config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("snapshot " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string buf = ss.str();
  if (buf.size() < kMagicLen || buf.compare(0, kMagicLen, kMagic) != 0) {
    return Status::ParseError(path + " is not a SQLGraph snapshot");
  }
  size_t offset = kMagicLen;

  auto store = std::unique_ptr<SqlGraphStore>(new SqlGraphStore(config));
  ASSIGN_OR_RETURN(store->schema_.out_hash, GetColoredHash(buf, &offset));
  ASSIGN_OR_RETURN(store->schema_.in_hash, GetColoredHash(buf, &offset));
  uint64_t out_colors = 0, in_colors = 0;
  RETURN_NOT_OK(GetVarint(buf, &offset, &out_colors));
  RETURN_NOT_OK(GetVarint(buf, &offset, &in_colors));
  store->schema_.out_colors = static_cast<size_t>(out_colors);
  store->schema_.in_colors = static_cast<size_t>(in_colors);
  uint64_t next_vid = 0, next_eid = 0, lid_delta = 0;
  RETURN_NOT_OK(GetVarint(buf, &offset, &next_vid));
  RETURN_NOT_OK(GetVarint(buf, &offset, &next_eid));
  RETURN_NOT_OK(GetVarint(buf, &offset, &lid_delta));
  store->next_vertex_id_ = static_cast<int64_t>(next_vid);
  store->next_edge_id_ = static_cast<int64_t>(next_eid);
  store->next_lid_ = kLidBase + static_cast<int64_t>(lid_delta);
  RETURN_NOT_OK(GetLoadStats(buf, &offset, &store->load_stats_));

  for (const char* expected_name : kTableOrder) {
    std::string name;
    RETURN_NOT_OK(GetString(buf, &offset, &name));
    if (name != expected_name) {
      return Status::ParseError("snapshot table order mismatch: " + name);
    }
    uint64_t num_columns = 0;
    RETURN_NOT_OK(GetVarint(buf, &offset, &num_columns));
    rel::Schema schema;
    for (uint64_t c = 0; c < num_columns; ++c) {
      std::string col_name;
      RETURN_NOT_OK(GetString(buf, &offset, &col_name));
      if (offset + 2 > buf.size()) {
        return Status::OutOfRange("truncated column header");
      }
      const auto type = static_cast<rel::ColumnType>(buf[offset]);
      const bool nullable = buf[offset + 1] != 0;
      offset += 2;
      schema.AddColumn(std::move(col_name), type, nullable);
    }
    ASSIGN_OR_RETURN(rel::Table * table,
                     store->db_.CreateTable(name, schema, config.storage));
    uint64_t row_count = 0;
    RETURN_NOT_OK(GetVarint(buf, &offset, &row_count));
    for (uint64_t r = 0; r < row_count; ++r) {
      Row row;
      RETURN_NOT_OK(rel::DecodeRow(buf, schema.num_columns(), &offset, &row));
      RETURN_NOT_OK(table->Insert(std::move(row)).status());
    }
  }
  if (offset != buf.size()) {
    return Status::ParseError("trailing bytes in snapshot");
  }
  // Rebuild the Fig. 5 index set (plus configured attribute indexes).
  RETURN_NOT_OK(store->schema_.CreateIndexes(&store->db_, config));
  return store;
}

}  // namespace core
}  // namespace sqlgraph
