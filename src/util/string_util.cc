#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace sqlgraph {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool SqlLikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative wildcard matcher with backtracking over the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

}  // namespace util
}  // namespace sqlgraph
