// Durable-store lifecycle: recovery and the checkpoint coordinator.
//
// On-disk layout of a durability directory:
//
//   snap-<K>.sqlg   checkpoint snapshot covering every log segment <= K
//   wal-<N>.log     log segment; the live segment is the highest N
//
// Invariants the checkpoint protocol maintains (and recovery tolerates
// every crash window of):
//   * at most one segment is ever live (N == K+1 for the newest snapshot K),
//   * a snapshot is written to a temp file and atomically renamed into
//     place, so a half-written snapshot is never visible under snap-*,
//   * pruning (old segments, older snapshots) happens strictly after the
//     covering snapshot is durable (the temp file is fsynced before the
//     rename); leftovers from a crash mid-prune are swept by the next
//     recovery or checkpoint,
//   * segments beyond a snapshot are contiguous; recovery refuses to
//     replay across a gap.
//
// Recovery: pick the newest snapshot that passes its checksums (falling
// back to an older one if a crash left a corrupt newer file), replay every
// segment beyond it in order, stop at the first invalid frame, truncate
// the torn tail, and reattach the group-commit writer. When anything was
// replayed a fresh checkpoint is taken immediately so the log stays short.

#ifndef SQLGRAPH_WAL_DURABILITY_H_
#define SQLGRAPH_WAL_DURABILITY_H_

#include <memory>

#include "graph/property_graph.h"
#include "sqlgraph/store.h"
#include "util/status.h"

namespace sqlgraph {
namespace wal {

/// Opens the durable store rooted at config.durability_dir, creating an
/// empty one (directory included) on first use. InvalidArgument when the
/// config carries no durability_dir.
util::Result<std::unique_ptr<core::SqlGraphStore>> OpenDurableStore(
    core::StoreConfig config);

/// Bulk-loads `graph` into a new durable store: builds through the coloring
/// analysis, writes the base checkpoint, and starts a fresh log.
/// AlreadyExists when the directory already holds a store.
util::Result<std::unique_ptr<core::SqlGraphStore>> BuildDurableStore(
    const graph::PropertyGraph& graph, core::StoreConfig config);

}  // namespace wal
}  // namespace sqlgraph

#endif  // SQLGRAPH_WAL_DURABILITY_H_
