// SqlGraphStore: the public API of the SQLGraph system.
//
// Construction bulk-loads a property graph through the coloring analysis
// into the Fig. 5 schema. Afterwards the store offers:
//
//  * Blueprints-style CRUD operations implemented as multi-table "stored
//    procedures" (§4.5.2) — each call is one logical round trip,
//  * vertex deletion as a soft delete (VID → -VID-1) with an offline
//    Compact() that performs the paper's "off-line cleanup",
//  * whole-query SQL execution (used by the Gremlin translator's output),
//  * concurrency via per-table reader/writer locks: queries take shared
//    locks, CRUD procedures take exclusive locks only on the tables they
//    mutate (the stand-in for the RDBMS's fine-grained locking; baselines
//    deliberately serialize whole requests — see DESIGN.md §5).

#ifndef SQLGRAPH_SQLGRAPH_STORE_H_
#define SQLGRAPH_SQLGRAPH_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"
#include "obs/trace.h"
#include "rel/database.h"
#include "sql/executor.h"
#include "sqlgraph/check.h"
#include "sqlgraph/loader.h"
#include "sqlgraph/schema.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/record.h"

namespace sqlgraph {
namespace wal {
class LogWriter;
// Defined in wal/durability.cc; the recovery path's door into the store.
struct StoreWalAccess;
}  // namespace wal

namespace core {

using graph::EdgeId;
using graph::VertexId;

class Txn;

/// One adjacency record returned by link queries.
struct EdgeRecord {
  EdgeId id;
  VertexId src;
  VertexId dst;
  std::string label;
  json::JsonValue attrs;
};

/// Lifetime transaction counters (see DESIGN.md §12). `aborted` counts every
/// non-committed end — explicit rollbacks, commit-time conflicts and apply
/// failures; `conflicts` counts just the first-committer-wins losers.
struct TxnStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t conflicts = 0;
  uint64_t active = 0;
};

class SqlGraphStore {
 public:
  /// Builds a store by bulk-loading `graph` (may be empty).
  static util::Result<std::unique_ptr<SqlGraphStore>> Build(
      const graph::PropertyGraph& graph, StoreConfig config = StoreConfig());

  // ------------------------------------------------------------ vertices --
  util::Result<VertexId> AddVertex(json::JsonValue attrs);
  util::Result<json::JsonValue> GetVertex(VertexId vid) const;
  util::Status SetVertexAttr(VertexId vid, const std::string& key,
                             json::JsonValue value);
  /// Drops one attribute key. OK whether or not the key existed; NotFound
  /// when the vertex itself is missing.
  util::Status RemoveVertexAttr(VertexId vid, const std::string& key);
  /// Soft delete (§4.5.2): negates the vertex's ids, removes its EA rows.
  util::Status RemoveVertex(VertexId vid);

  // --------------------------------------------------------------- edges --
  util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                               const std::string& label,
                               json::JsonValue attrs);
  util::Result<EdgeRecord> GetEdge(EdgeId eid) const;
  util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                           json::JsonValue value);
  /// Drops one attribute key (see RemoveVertexAttr).
  util::Status RemoveEdgeAttr(EdgeId eid, const std::string& key);
  util::Status RemoveEdge(EdgeId eid);
  /// First edge src -label-> dst, if any.
  util::Result<std::optional<EdgeId>> FindEdge(VertexId src,
                                               const std::string& label,
                                               VertexId dst) const;

  // ---------------------------------------------------------- adjacency --
  /// get_link_list: all out-edges of `src` with the label (label empty =
  /// any), with attributes. Served from EA via the combined index (§3.5).
  util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) const;
  util::Result<int64_t> CountOutEdges(VertexId src,
                                      const std::string& label) const;
  /// Neighbor vertex ids (out/in), optionally label-filtered.
  util::Result<std::vector<VertexId>> Out(VertexId vid,
                                          const std::string& label = "") const;
  util::Result<std::vector<VertexId>> In(VertexId vid,
                                         const std::string& label = "") const;

  // ------------------------------------------------------- transactions --
  /// Opens a snapshot-isolation transaction (DESIGN.md §12): reads are
  /// pinned to the commit timestamp current at Begin, mutations buffer in
  /// the handle and apply atomically at Commit() under first-committer-wins
  /// conflict detection. The handle is single-threaded; concurrent handles
  /// (and concurrent autocommit CRUD) are safe. Never fails; conflicts
  /// surface from Txn::Commit().
  std::unique_ptr<Txn> BeginTxn();
  /// Point-in-time transaction counters.
  TxnStats txn_stats() const;

  // ----------------------------------------------------------- querying --
  /// Executes a full SQL query (shared-locks all tables for its duration).
  /// Repeated identical text is served from the store's plan cache. When
  /// `stats` is non-null, the call's counters are copied there — a race-free
  /// alternative to last_exec_stats() under concurrency.
  ///
  /// Text starting with `EXPLAIN ANALYZE` (case-insensitive) executes the
  /// remainder with per-operator span recording and returns the span table
  /// (stage | operator | rows | time_ms) instead of the query's rows; the
  /// raw spans are in stats->spans for programmatic consumers.
  util::Result<sql::ResultSet> ExecuteSql(std::string_view text,
                                          sql::ExecStats* stats = nullptr);
  util::Result<sql::ResultSet> Execute(const sql::SqlQuery& query,
                                       sql::ExecStats* stats = nullptr);
  /// Executes `query` with per-operator span recording (EXPLAIN ANALYZE as
  /// an API): returns the query's normal results while `stats->spans` gets
  /// one entry per executed operator. Used by the Gremlin runtime to
  /// attribute operator stats back to pipes.
  util::Result<sql::ResultSet> ExecuteAnalyze(const sql::SqlQuery& query,
                                              sql::ExecStats* stats);

  /// Renders EXPLAIN ANALYZE spans as a result set
  /// (stage | operator | rows | time_ms).
  static sql::ResultSet SpansToResultSet(
      const std::vector<obs::TraceSpan>& spans);

  /// Compiles SQL text (with `?` / `:name` bind parameters) through the
  /// store's plan cache into a reusable statement.
  util::Result<sql::PreparedQueryPtr> Prepare(std::string_view text) const;
  /// Executes a prepared statement with bind values. A handle compiled under
  /// an older schema epoch is transparently re-prepared.
  util::Result<sql::ResultSet> ExecutePrepared(
      const sql::PreparedQuery& prepared, const sql::ParamBindings& params,
      sql::ExecStats* stats = nullptr) const;

  /// Execution statistics of the most recent Execute/ExecuteSql/
  /// ExecutePrepared call. Returned by value (copied under a mutex) so
  /// concurrent queries cannot tear the snapshot; prefer the per-call
  /// `stats` out-parameters when racing queries need attribution.
  sql::ExecStats last_exec_stats() const;

  /// Monotonic DDL-equivalent event counter: bumped when adjacency storage
  /// changes shape (single→list conversion, new label triad, spill row) and
  /// by Compact(). Cached plans from older epochs re-prepare on next use.
  uint64_t schema_epoch() const {
    return schema_epoch_.load(std::memory_order_acquire);
  }
  /// The shared plan cache (for inspection in tests and benchmarks).
  const sql::PlanCache& plan_cache() const { return plan_cache_; }

  // -------------------------------------------------------- maintenance --
  /// Offline cleanup: physically removes soft-deleted rows, their OSA/ISA
  /// lists, and dangling adjacency entries that point at deleted vertices.
  util::Status Compact();

  /// Cross-table invariant audit (src/sqlgraph/check.cc): verifies EA ↔
  /// OPA/OSA/IPA/ISA agreement, overflow-list linkage, coloring/SPILL
  /// consistency, soft-delete hygiene, JSON well-formedness and counter
  /// monotonicity. Shared-locks all tables for the duration, so the report
  /// is a consistent cut of a quiesced store; a store with CRUD calls in
  /// flight may show transient violations from multi-lock procedures.
  ConsistencyReport CheckConsistency() const;

  // --------------------------------------------------------- durability --
  /// True when a WAL writer is attached (config().durability_dir was set
  /// and the store came through wal::OpenDurableStore / BuildDurableStore).
  bool durable() const { return wal_writer_ != nullptr; }
  /// Checkpoint coordinator (implemented in wal/durability.cc): quiesces
  /// committers, snapshots the store next to the log, rotates to a fresh
  /// segment and prunes everything the snapshot covers. Skips the snapshot
  /// when nothing mutated since the last checkpoint. InvalidArgument on a
  /// non-durable store.
  util::Status Checkpoint();
  /// WAL counters plus recovery/checkpoint statistics (all zero when the
  /// store is not durable). Safe to call concurrently with committers.
  wal::WalStats wal_stats() const;

  rel::Database* db() { return &db_; }
  const rel::Database* db() const { return &db_; }
  const GraphSchema& schema() const { return schema_; }
  const LoadStats& load_stats() const { return load_stats_; }
  const StoreConfig& config() const { return config_; }

  /// Serialized footprint of all tables ("size on disk").
  size_t SerializedBytes() const { return db_.TotalSerializedBytes(); }

 private:
  friend util::Status SaveSnapshot(const SqlGraphStore& store,
                                   const std::string& path);
  friend util::Result<std::unique_ptr<SqlGraphStore>> OpenSnapshot(
      const std::string& path, StoreConfig config);
  friend struct wal::StoreWalAccess;
  friend class Txn;  // txn.cc drives the Apply*Locked/MVCC machinery below

  explicit SqlGraphStore(StoreConfig config)
      : config_(std::move(config)), db_(config_.buffer_pool_bytes) {
    // Rank the table locks (raw array; no ctor forwarding). The TableIdx
    // value is the same-rank sub-order, matching the ascending acquisition
    // order of ReadLockAll/WriteLock.
    static constexpr const char* kTableLockNames[kNumTables] = {
        "table_opa", "table_ipa", "table_osa", "table_isa",
        "table_va",  "table_ea"};
    for (int i = 0; i < kNumTables; ++i) {
      table_locks_[i].SetRank(util::LockRank::kStoreTable, kTableLockNames[i],
                              i);
    }
  }

  // Compact's table work, shared by the public call and WAL replay.
  // Caller holds exclusive locks on all six tables. `version_ts` tags
  // before-images for MVCC snapshot readers (0 = no recording).
  util::Status CompactLocked(uint64_t version_ts);

  // Adjacency maintenance shared by add/remove edge. Caller holds locks.
  util::Status AddAdjacencyEntry(bool outgoing, VertexId vid,
                                 const std::string& label, EdgeId eid,
                                 VertexId nbr, uint64_t version_ts);
  util::Status RemoveAdjacencyEntry(bool outgoing, VertexId vid,
                                    const std::string& label, EdgeId eid,
                                    uint64_t version_ts);
  util::Status NegateAdjacencyRows(bool outgoing, VertexId vid,
                                   uint64_t version_ts);

  // Lock helpers. Table order: OPA, IPA, OSA, ISA, VA, EA. Defined here
  // (constructors in store.cc) so txn.cc can take the same locks.
  enum TableIdx { kOpa = 0, kIpa, kOsa, kIsa, kVa, kEa, kNumTables };

  /// Shared lock over every table, for whole-query execution.
  class ReadLockAll {
   public:
    explicit ReadLockAll(const SqlGraphStore* store);

   private:
    std::shared_lock<util::SharedMutex> locks_[kNumTables];
  };

  /// Mixed-mode lock over a subset of tables, acquired in fixed table order
  /// (deadlock freedom). Requests must name distinct tables — the same
  /// mutex must not appear twice.
  class WriteLock {
   public:
    struct Req {
      TableIdx table;
      bool exclusive;
    };
    WriteLock(const SqlGraphStore* store, std::vector<Req> reqs);

   private:
    // Note: vectors keep acquisition order; both kinds interleave correctly
    // because reqs were sorted before acquisition.
    std::vector<std::unique_lock<util::SharedMutex>> exclusive_;
    std::vector<std::shared_lock<util::SharedMutex>> shared_;
  };

  /// Held (shared) across a whole CRUD mutation — table work plus WAL
  /// append — so Checkpoint (exclusive) can never observe a commit whose
  /// rows are in the snapshot but whose record lands in the post-snapshot
  /// log segment. Acquired before any table lock; Checkpoint follows the
  /// same order, so the lock hierarchy stays acyclic.
  class SCOPED_CAPABILITY CommitGuard {
   public:
    explicit CommitGuard(const SqlGraphStore* store)
        ACQUIRE_SHARED(store->wal_rotate_mu_);
    ~CommitGuard() RELEASE() {}

   private:
    std::shared_lock<util::SharedMutex> lock_;
  };

  rel::Table* TableAt(TableIdx t);

  // ---- MVCC internals (DESIGN.md §12) -----------------------------------
  // The table bodies of every CRUD mutation, factored out so the autocommit
  // paths, WAL replay, and Txn::Commit share one implementation. Callers
  // hold the locks listed per method; `version_ts` tags before-images.
  //
  //   ApplyAddVertexLocked        VA excl
  //   ApplySetVertexAttrLocked    VA excl
  //   ApplyRemoveVertexAttrLocked VA excl
  //   ApplyRemoveVertexLocked     VA+OPA+IPA+EA excl
  //   ApplyAddEdgeLocked          VA shared, EA+OPA+OSA+IPA+ISA excl
  //   ApplySetEdgeAttrLocked      EA excl
  //   ApplyRemoveEdgeAttrLocked   EA excl
  //   ApplyRemoveEdgeLocked       EA+OPA+OSA+IPA+ISA excl
  util::Status ApplyAddVertexLocked(int64_t vid, json::JsonValue attrs,
                                    uint64_t version_ts);
  util::Status ApplySetVertexAttrLocked(int64_t vid, const std::string& key,
                                        json::JsonValue value,
                                        uint64_t version_ts);
  util::Status ApplyRemoveVertexAttrLocked(int64_t vid, const std::string& key,
                                           uint64_t version_ts);
  // Appends the eids of the deleted incident edges to `removed_eids`.
  util::Status ApplyRemoveVertexLocked(int64_t vid, uint64_t version_ts,
                                       std::vector<int64_t>* removed_eids);
  util::Status ApplyAddEdgeLocked(int64_t eid, int64_t src, int64_t dst,
                                  const std::string& label,
                                  json::JsonValue attrs, uint64_t version_ts);
  util::Status ApplySetEdgeAttrLocked(int64_t eid, const std::string& key,
                                      json::JsonValue value,
                                      uint64_t version_ts);
  util::Status ApplyRemoveEdgeAttrLocked(int64_t eid, const std::string& key,
                                         uint64_t version_ts);
  util::Status ApplyRemoveEdgeLocked(int64_t eid, uint64_t version_ts);

  // Conflict-map keys: one entity per vertex/edge. AddEdge writes both
  // endpoint entities (it depends on them existing and bumps their
  // adjacency), so entity-level first-committer-wins is conservative but
  // never misses a true write conflict.
  static uint64_t VertexEntity(int64_t vid) {
    return static_cast<uint64_t>(vid) << 1;
  }
  static uint64_t EdgeEntity(int64_t eid) {
    return (static_cast<uint64_t>(eid) << 1) | 1;
  }

  /// Called inside a mutation's exclusive-lock section: returns 0 (skip
  /// version recording) when no transaction is active, else allocates the
  /// mutation's commit timestamp. The seq_cst pairing with RegisterTxnRead
  /// guarantees that a mutation which skips recording is fully applied
  /// before any snapshot that could need its before-image takes read_ts.
  uint64_t AllocVersionTs();
  /// Records `entities` in the conflict map at `version_ts` (when non-zero)
  /// and trims version logs of the exclusively-held `tables` up to the
  /// oldest active snapshot (everything, when none is active).
  void PublishAndTrimLocked(const std::vector<uint64_t>& entities,
                            uint64_t version_ts,
                            const std::vector<TableIdx>& tables);
  /// Rolls back the before-images a failed mutation recorded at
  /// `version_ts` on the exclusively-held `tables`, then returns `st` (or
  /// Internal if the revert itself failed and the store is inconsistent).
  util::Status UnwindLocked(util::Status st, uint64_t version_ts,
                            const std::vector<TableIdx>& tables);
  /// Begin/end of a snapshot: registers the pinned read timestamp so
  /// version-log GC and conflict-map GC know the oldest live snapshot.
  uint64_t RegisterTxnRead();
  void DeregisterTxnRead(uint64_t read_ts);

  /// Deliberately buggy watermark read used only under
  /// SQLGRAPH_SCHED_SELFTEST=race (sched.h mutation self-test): reads the
  /// snapshot registry without txn_mu_, which the happens-before checker
  /// must report. Analysis suppressed because the race is the point.
  uint64_t SelfTestRacyWatermark() const NO_THREAD_SAFETY_ANALYSIS {
    const auto& ts = active_read_ts_.Read();
    return ts.empty() ? ~uint64_t{0} : *ts.begin();
  }

  // Snapshot point reads used by Txn (read_ts = 0 reads live data).
  util::Result<json::JsonValue> GetVertexAt(int64_t vid,
                                            uint64_t read_ts) const;
  util::Result<EdgeRecord> GetEdgeAt(int64_t eid, uint64_t read_ts) const;
  util::Result<std::vector<EdgeRecord>> GetOutEdgesAt(VertexId src,
                                                      const std::string& label,
                                                      uint64_t read_ts) const;
  util::Result<std::vector<EdgeRecord>> GetInEdgesAt(VertexId dst,
                                                     const std::string& label,
                                                     uint64_t read_ts) const;
  util::Result<sql::ResultSet> ExecuteSqlInternal(std::string_view text,
                                                  uint64_t read_ts,
                                                  sql::ExecStats* stats);

  // Prepared adjacency templates over EA (the §3.5 combined-index fast
  // path); compiled lazily, self-healing on schema-epoch change.
  enum TemplateId {
    kTplOutEdgesAny = 0,
    kTplOutEdgesLbl,
    kTplCountAny,
    kTplCountLbl,
    kTplOutAny,
    kTplOutLbl,
    kTplInAny,
    kTplInLbl,
    kTplFindEdge,
    kTplInEdgesAny,
    kTplInEdgesLbl,
    kTplGetVertex,
    kTplGetEdge,
    kNumTemplates,
  };
  /// Executes one of the fixed adjacency templates with the given binds.
  /// Caller holds the table locks the template's SQL needs (templates read
  /// only EA, except kTplGetVertex which reads VA). Does not update
  /// last_stats_ — adjacency calls are the hot path and never carried stats
  /// before. A non-zero `read_ts` pins the execution to that MVCC snapshot.
  util::Result<sql::ResultSet> RunTemplate(TemplateId id, const char* text,
                                           sql::ParamBindings params,
                                           uint64_t read_ts = 0) const;
  void BumpSchemaEpoch() {
    schema_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Shared-locked by every CRUD mutation around its table work plus WAL
  // append; exclusively locked by Checkpoint so no commit can straddle the
  // snapshot/rotate boundary (which would double-apply on replay).
  class CommitGuard;
  /// Two-phase WAL append (no-ops on a non-durable store; *ticket = 0).
  /// LogWalEnqueue fixes the record's position in the log and MUST be
  /// called while still holding the exclusive lock of the table that
  /// serializes the mutation against its conflicts (VA for vertex records,
  /// EA for edge records, all tables for Compact): that makes the log
  /// order of conflicting commits match their apply order, so replay
  /// reconstructs the acknowledged state. LogWalWait blocks until the
  /// record is durable per the sync mode and is called after the table
  /// lock is released, letting concurrent committers share one fsync.
  /// Both run under wal_rotate_mu_ shared (via CommitGuard), so a
  /// checkpoint can never rotate the log between the two halves.
  util::Status LogWalEnqueue(const wal::Record& rec, uint64_t* ticket)
      REQUIRES_SHARED(wal_rotate_mu_);
  util::Status LogWalWait(uint64_t ticket) REQUIRES_SHARED(wal_rotate_mu_);
  /// Re-applies one WAL record during recovery; the ids inside the record
  /// are authoritative and the id counters advance past them. Only called
  /// by the recovery path before a writer is attached.
  util::Status ApplyWalRecord(const wal::Record& rec);

  StoreConfig config_;
  rel::Database db_;
  GraphSchema schema_;
  LoadStats load_stats_;
  // Id counters, guarded by counter_lock_. counter_lock_ ranks *above* the
  // table locks: AddAdjacencyEntry allocates spill lids while already
  // holding EA/OPA exclusively, so counters must always be acquirable under
  // table locks (standalone allocations in AddVertex/AddEdge release it
  // before touching a table lock, which the hierarchy also permits).
  int64_t next_vertex_id_ GUARDED_BY(counter_lock_) = 0;
  int64_t next_edge_id_ GUARDED_BY(counter_lock_) = 0;
  int64_t next_lid_ GUARDED_BY(counter_lock_) = kLidBase;
  // Acquired in ascending TableIdx order (ReadLockAll/WriteLock sort), which
  // the per-table sub-order encodes; ranked in the SqlGraphStore ctor
  // because a raw array cannot forward constructor arguments.
  mutable util::SharedMutex table_locks_[kNumTables];
  mutable util::SharedMutex counter_lock_{util::LockRank::kStoreCounter,
                                          "store_counter"};
  mutable sql::PlanCache plan_cache_{256};
  std::atomic<uint64_t> schema_epoch_{0};
  mutable util::Mutex stats_mu_{util::LockRank::kStoreStats, "store_stats"};
  mutable sql::ExecStats last_stats_ GUARDED_BY(stats_mu_);
  mutable util::Mutex tpl_mu_{util::LockRank::kStoreTemplates,
                              "store_templates"};
  mutable sql::PreparedQueryPtr templates_[kNumTemplates] GUARDED_BY(tpl_mu_);

  // ---- MVCC transaction state (DESIGN.md §12) ---------------------------
  // Last assigned commit timestamp. Starts at 1 (the bulk load is "commit
  // 1") so a snapshot's read_ts is always non-zero — executor Options treat
  // read_ts == 0 as "live". Advanced only while a transaction is active
  // (AllocVersionTs) so the idle store pays nothing. SharedAtomic so the
  // schedule explorer (util/sched.h) sees every access as a scheduling
  // point; identical to std::atomic when no explorer is active.
  util::sched::SharedAtomic<uint64_t> commit_ts_{1, "store.commit_ts"};
  // Open-transaction count; the gate mutations consult (seq_cst, paired
  // with RegisterTxnRead) to decide whether to record before-images.
  std::atomic<uint32_t> active_txns_{0};
  // Guards the snapshot registry and the first-committer-wins conflict map.
  // Ranks above the table locks (commit validates/publishes while holding
  // them) and below kWalWriter; never held across table or WAL work.
  mutable util::Mutex txn_mu_{util::LockRank::kTxnManager, "txn_manager"};
  // Pinned read timestamps of open transactions (multiset: concurrent
  // Begins can share a timestamp). Min element = version-log GC watermark.
  // SharedVar: schedule-explorer scheduling point + happens-before race
  // checking on every access (zero cost when no explorer is active).
  util::sched::SharedVar<std::multiset<uint64_t>> active_read_ts_
      GUARDED_BY(txn_mu_){"store.active_read_ts"};
  // entity → commit timestamp of its last committed write while any
  // transaction was active; cleared when the last transaction ends.
  std::unordered_map<uint64_t, uint64_t> entity_commit_ts_
      GUARDED_BY(txn_mu_);
  std::atomic<uint64_t> txns_begun_{0};
  std::atomic<uint64_t> txns_committed_{0};
  std::atomic<uint64_t> txns_aborted_{0};
  std::atomic<uint64_t> txn_conflicts_{0};

  // Durability binding, attached via wal::StoreWalAccess when
  // config_.durability_dir is set. wal_rotate_mu_ orders commits against
  // checkpoints and guards the binding fields themselves. It is the
  // outermost store lock (rank below every table lock): CommitGuard takes
  // it shared before the serializing table lock, and Checkpoint holds it
  // exclusive while taking table locks and syncing the writer.
  mutable util::SharedMutex wal_rotate_mu_{util::LockRank::kWalRotate,
                                           "wal_rotate"};
  std::shared_ptr<wal::LogWriter> wal_writer_ GUARDED_BY(wal_rotate_mu_);
  // Segment bookkeeping below is written under wal_rotate_mu_ exclusive.
  uint64_t wal_segment_ GUARDED_BY(wal_rotate_mu_) = 0;
  uint64_t wal_checkpoint_mutations_ GUARDED_BY(wal_rotate_mu_) = 0;
  wal::WalStats wal_recovery_stats_ GUARDED_BY(wal_rotate_mu_);
};

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_STORE_H_
