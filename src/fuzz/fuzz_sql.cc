// Fuzz target: SQL lexer → parser → renderer → planner → executor.
//
// Any input that parses must round-trip through the renderer (render →
// re-parse → render is a fixpoint), and must execute on a small demo store
// without crashing — execution errors (unknown table, type mismatch) are
// expected Status returns, not findings.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "graph/property_graph.h"
#include "sql/parser.h"
#include "sql/render.h"
#include "sqlgraph/store.h"

namespace {

using sqlgraph::core::SqlGraphStore;
using sqlgraph::core::StoreConfig;

SqlGraphStore* DemoStore() {
  static SqlGraphStore* store = [] {
    sqlgraph::graph::PropertyGraph g;
    auto attrs = [](const char* name, int64_t age) {
      auto a = sqlgraph::json::JsonValue::Object();
      a.Set("name", sqlgraph::json::JsonValue(name));
      a.Set("age", sqlgraph::json::JsonValue(age));
      return a;
    };
    const auto v0 = g.AddVertex(attrs("ada", 36));
    const auto v1 = g.AddVertex(attrs("bob", 29));
    const auto v2 = g.AddVertex(attrs("cyd", 52));
    (void)g.AddEdge(v0, v1, "knows", sqlgraph::json::JsonValue::Object());
    (void)g.AddEdge(v1, v2, "knows", sqlgraph::json::JsonValue::Object());
    (void)g.AddEdge(v0, v2, "likes", sqlgraph::json::JsonValue::Object());
    StoreConfig config;
    config.max_adjacency_colors = 2;
    // Run every fuzzed plan through sql/verify.h even in Release fuzz
    // builds: a structured rejection is an expected Status for arbitrary
    // SQL, but the verifier itself must never crash or hang.
    config.verify_plans = true;
    auto built = SqlGraphStore::Build(g, config);
    FUZZ_ASSERT(built.ok(), "demo store build failed: %s",
                built.status().ToString().c_str());
    return built.value().release();
  }();
  return store;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;  // parser work is superlinear in pathological text
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  auto parsed = sqlgraph::sql::ParseQuery(text);
  if (!parsed.ok()) return 0;

  const std::string rendered = sqlgraph::sql::Render(parsed.value());
  auto reparsed = sqlgraph::sql::ParseQuery(rendered);
  FUZZ_ASSERT(reparsed.ok(), "rendered SQL failed to re-parse: %s\n  SQL: %s",
              reparsed.status().ToString().c_str(), rendered.c_str());
  const std::string rendered2 = sqlgraph::sql::Render(reparsed.value());
  FUZZ_ASSERT(rendered == rendered2, "render not a fixpoint:\n  %s\n  %s",
              rendered.c_str(), rendered2.c_str());

  // Planner + executor: any Status outcome is fine, crashes/UB are not.
  (void)DemoStore()->Execute(parsed.value());
  return 0;
}
