#include "wal/log_reader.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sqlgraph {
namespace wal {

using util::Result;
using util::Status;

Result<LogReadResult> ReadLogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("wal segment " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string buf = ss.str();

  LogReadResult result;
  result.file_bytes = buf.size();
  size_t offset = 0;
  while (offset < buf.size()) {
    Record rec;
    Status st = DecodeRecord(buf, &offset, &rec);
    if (!st.ok()) {
      result.clean = false;
      result.tail_error = st.ToString();
      break;
    }
    result.records.push_back(std::move(rec));
  }
  result.valid_bytes = offset;
  return result;
}

Status TruncateLog(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal("wal: truncate of " + path + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace sqlgraph
