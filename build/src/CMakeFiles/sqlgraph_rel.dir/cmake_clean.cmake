file(REMOVE_RECURSE
  "CMakeFiles/sqlgraph_rel.dir/rel/buffer_pool.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/buffer_pool.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/codec.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/codec.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/database.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/database.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/index.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/index.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/row_store.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/row_store.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/table.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/table.cc.o.d"
  "CMakeFiles/sqlgraph_rel.dir/rel/value.cc.o"
  "CMakeFiles/sqlgraph_rel.dir/rel/value.cc.o.d"
  "libsqlgraph_rel.a"
  "libsqlgraph_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgraph_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
