// SPARQL → Gremlin conversion (paper Appendix B / Table 9).
//
// The paper's DBpedia benchmark queries were SPARQL; they were converted to
// Gremlin by (1) picking the most selective starting point (a literal-valued
// pattern or a URI), (2) expressing the remaining triple patterns as
// traversal pipes ordered by selectivity, using as()/back() to return to
// branch points, and (3) returning only the result-set size.
//
// This module implements that conversion for the SPARQL subset the
// benchmark uses: PREFIX declarations, SELECT with a WHERE block of triple
// patterns (URIs, prefixed names, variables, and literals with optional
// @lang tags), and OPTIONAL blocks (each converted to its own follow-up
// query, as the paper's Table 9 does with its second table pipe).

#ifndef SQLGRAPH_GREMLIN_SPARQL_H_
#define SQLGRAPH_GREMLIN_SPARQL_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace sqlgraph {
namespace gremlin {

/// One term of a triple pattern.
struct SparqlTerm {
  enum Kind { kVariable, kUri, kLiteral } kind = kVariable;
  std::string text;  // variable name (no '?'), absolute URI, or literal value
  std::string lang;  // literal @lang tag, if any

  bool is_variable() const { return kind == kVariable; }
  bool is_uri() const { return kind == kUri; }
  bool is_literal() const { return kind == kLiteral; }
};

struct TriplePattern {
  SparqlTerm subject;
  SparqlTerm predicate;  // always a URI in the supported subset
  SparqlTerm object;
};

struct SparqlQuery {
  std::vector<std::string> select_vars;        // without '?'
  std::vector<TriplePattern> patterns;         // the required block
  std::vector<std::vector<TriplePattern>> optionals;
};

/// Parses the SPARQL subset (PREFIX / SELECT / WHERE / OPTIONAL).
util::Result<SparqlQuery> ParseSparql(std::string_view text);

/// Result of the conversion: the main Gremlin query plus one query per
/// OPTIONAL block (paper Table 9 returns `[t1.size(), t2.size()]`; callers
/// run each query and read its count).
struct SparqlConversion {
  std::string main_query;
  std::vector<std::string> optional_queries;
};

/// Converts per Appendix B. The conversion assumes the §3.1 RDF→property-
/// graph mapping: object properties are edges labeled by the predicate's
/// local name, datatype properties are vertex attributes keyed by the local
/// name, and every resource vertex carries its `uri` attribute.
util::Result<SparqlConversion> SparqlToGremlin(const SparqlQuery& query);

/// Convenience: parse + convert.
util::Result<SparqlConversion> SparqlToGremlin(std::string_view text);

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_SPARQL_H_
