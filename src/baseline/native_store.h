// NativeStore: a Neo4j-1.9-like native graph store.
//
// Layout mirrors Neo4j's record files: fixed-size node records point at the
// head of a per-node relationship chain; relationship records are doubly
// linked per endpoint. Traversal is pointer chasing, one record at a time.
//
// Concurrency model (see DESIGN.md §4/§5): every public operation holds one
// store-global exclusive lock for its full duration *including* the
// simulated client round trip — the stand-in for the Neo4j 1.9 server's
// request-level serialization that the paper's Fig. 9 exposes.

#ifndef SQLGRAPH_BASELINE_NATIVE_STORE_H_
#define SQLGRAPH_BASELINE_NATIVE_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/blueprints.h"
#include "graph/property_graph.h"
#include "util/thread_annotations.h"

namespace sqlgraph {
namespace baseline {

struct NativeStoreConfig {
  /// Per-request client/server overhead in microseconds (0 = embedded).
  uint32_t round_trip_micros = 0;
  /// Attribute keys to maintain lookup indexes for.
  std::vector<std::string> indexed_keys;
};

class NativeStore : public GraphDb {
 public:
  static util::Result<std::unique_ptr<NativeStore>> Build(
      const graph::PropertyGraph& graph,
      NativeStoreConfig config = NativeStoreConfig());

  std::string name() const override { return "NativeStore(neo4j-like)"; }

  util::Result<VertexId> AddVertex(json::JsonValue attrs) override;
  util::Result<json::JsonValue> GetVertex(VertexId vid) override;
  util::Status SetVertexAttr(VertexId vid, const std::string& key,
                             json::JsonValue value) override;
  util::Status RemoveVertex(VertexId vid) override;
  util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                               const std::string& label,
                               json::JsonValue attrs) override;
  util::Result<EdgeRecord> GetEdge(EdgeId eid) override;
  util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                           json::JsonValue value) override;
  util::Status RemoveEdge(EdgeId eid) override;
  util::Result<std::optional<EdgeId>> FindEdge(VertexId src,
                                               const std::string& label,
                                               VertexId dst) override;
  util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) override;
  util::Result<int64_t> CountOutEdges(VertexId src,
                                      const std::string& label) override;
  util::Result<std::vector<VertexId>> Out(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> In(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> OutE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> InE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> AllVertices() override;
  util::Result<std::vector<EdgeId>> AllEdges() override;
  util::Result<std::vector<VertexId>> VerticesByAttr(
      const std::string& key, const rel::Value& value) override;
  size_t SerializedBytes() const override;

 private:
  static constexpr int64_t kNil = -1;

  struct NodeRecord {
    int64_t first_out = kNil;  // head of out-relationship chain
    int64_t first_in = kNil;
    bool in_use = false;
    json::JsonValue attrs;
  };
  struct RelRecord {
    VertexId src = 0;
    VertexId dst = 0;
    uint32_t label_id = 0;
    int64_t next_out = kNil;  // next rel with same src
    int64_t next_in = kNil;   // next rel with same dst
    bool in_use = false;
    json::JsonValue attrs;
  };

  explicit NativeStore(NativeStoreConfig config)
      : config_(std::move(config)) {}

  uint32_t InternLabel(const std::string& label) REQUIRES(big_lock_);
  bool LabelMatches(uint32_t label_id,
                    const std::vector<std::string>& labels) const
      REQUIRES(big_lock_);
  void IndexVertex(VertexId vid, const json::JsonValue& attrs)
      REQUIRES(big_lock_);
  void UnindexVertex(VertexId vid, const json::JsonValue& attrs)
      REQUIRES(big_lock_);
  // Unlinks a relationship from both endpoint chains.
  void UnlinkRel(int64_t rel_id) REQUIRES(big_lock_);
  util::Status CheckNode(VertexId vid) const REQUIRES(big_lock_);

  NativeStoreConfig config_;
  // Request-level serialization (see header). kBaselineStore: baseline
  // stores never nest with SQLGraph locks; only metrics may follow.
  mutable util::Mutex big_lock_{util::LockRank::kBaselineStore,
                                "native_big_lock"};
  std::vector<NodeRecord> nodes_ GUARDED_BY(big_lock_);
  std::vector<RelRecord> rels_ GUARDED_BY(big_lock_);
  std::vector<std::string> labels_ GUARDED_BY(big_lock_);
  std::unordered_map<std::string, uint32_t> label_ids_ GUARDED_BY(big_lock_);
  // (key, value-string) → vids, for configured indexed keys.
  std::unordered_map<std::string, std::vector<VertexId>> attr_index_
      GUARDED_BY(big_lock_);
};

}  // namespace baseline
}  // namespace sqlgraph

#endif  // SQLGRAPH_BASELINE_NATIVE_STORE_H_
