file(REMOVE_RECURSE
  "libsqlgraph_gremlin.a"
)
