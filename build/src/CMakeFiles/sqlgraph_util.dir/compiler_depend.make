# Empty compiler generated dependencies file for sqlgraph_util.
# This may be replaced when dependencies are built.
