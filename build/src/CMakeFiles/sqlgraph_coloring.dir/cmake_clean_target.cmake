file(REMOVE_RECURSE
  "libsqlgraph_coloring.a"
)
