// Database catalog: named tables sharing one buffer pool and lock manager.

#ifndef SQLGRAPH_REL_DATABASE_H_
#define SQLGRAPH_REL_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rel/buffer_pool.h"
#include "rel/lock_manager.h"
#include "rel/table.h"
#include "util/status.h"

namespace sqlgraph {
namespace rel {

class Database {
 public:
  /// `buffer_pool_bytes` only constrains tables created with
  /// StorageMode::kPaged; resident tables ignore it.
  explicit Database(size_t buffer_pool_bytes = 256ull << 20)
      : pool_(buffer_pool_bytes) {}

  /// Creates an empty table; fails if the name is taken.
  util::Result<Table*> CreateTable(const std::string& name, Schema schema,
                                   StorageMode mode = StorageMode::kResident);

  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  util::Status DropTable(const std::string& name);

  BufferPool* buffer_pool() { return &pool_; }
  LockManager* lock_manager() { return &locks_; }

  /// Serialized footprint of all tables ("size on disk").
  size_t TotalSerializedBytes() const;

  /// Sum of every table's mutation_count(): a cheap database-wide "anything
  /// changed?" signal for the WAL checkpoint coordinator.
  uint64_t TotalMutations() const;

  const std::unordered_map<std::string, std::unique_ptr<Table>>& tables()
      const {
    return tables_;
  }

 private:
  BufferPool pool_;
  LockManager locks_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace rel
}  // namespace sqlgraph

#endif  // SQLGRAPH_REL_DATABASE_H_
