file(REMOVE_RECURSE
  "CMakeFiles/sqlgraph_baseline.dir/baseline/gremlin_interp.cc.o"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/gremlin_interp.cc.o.d"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/kv_store.cc.o"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/kv_store.cc.o.d"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/native_store.cc.o"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/native_store.cc.o.d"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/sqlgraph_adapter.cc.o"
  "CMakeFiles/sqlgraph_baseline.dir/baseline/sqlgraph_adapter.cc.o.d"
  "libsqlgraph_baseline.a"
  "libsqlgraph_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgraph_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
