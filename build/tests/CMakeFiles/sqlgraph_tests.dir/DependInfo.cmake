
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/bench_core_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/bench_core_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/bench_core_test.cc.o.d"
  "/root/repo/tests/coloring_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/coloring_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/coloring_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/gremlin_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/gremlin_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/gremlin_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/json_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/json_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/json_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rel_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/rel_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/rel_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/sparql_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/sparql_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/sparql_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/sqlgraph_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/sqlgraph_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/sqlgraph_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/sqlgraph_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/sqlgraph_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlgraph_bench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_gremlin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_coloring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
