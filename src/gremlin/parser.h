// Parser for the textual Gremlin subset (Gremlin 1.x / Groovy syntax), e.g.
//   g.V.filter{it.tag=='w'}.both.dedup().count()
//   g.V('uri','http://x').out('isPartOf').out('isPartOf').dedup().count()
//   g.V(1).as('x').out('knows').loop(1){it.loops < 3}.path()

#ifndef SQLGRAPH_GREMLIN_PARSER_H_
#define SQLGRAPH_GREMLIN_PARSER_H_

#include <string_view>

#include "gremlin/pipe.h"
#include "util/status.h"

namespace sqlgraph {
namespace gremlin {

/// Parses a full query starting with `g.`.
util::Result<Pipeline> ParseGremlin(std::string_view text);

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_PARSER_H_
