// Gremlin → SQL translation (paper §4.3–§4.5, Table 8).
//
// The translator walks the pipeline once, emitting one CTE (or a small CTE
// group) per pipe, exactly in the shape of the paper's Fig. 7 example. It
// implements:
//
//  * the GraphQuery merge: has()/hasNot() filters directly after g.V / g.E
//    fold into the start CTE's WHERE clause (§4.5.1),
//  * the EA single-hop optimization: when the query contains exactly one
//    vertex-adjacency step, it is answered from the redundant EA copy
//    instead of the OPA/OSA join (§3.5, §4.3),
//  * color pruning: a labeled traversal only unnests the column triads the
//    label hash could have placed those labels in,
//  * path tracking ([e]p translation): enabled for the whole prefix when a
//    path / simplePath / back pipe appears downstream,
//  * fixed-depth loop unrolling, and recursive-CTE fallback for
//    loop(n){true} (transitive-closure semantics),
//  * soft-delete guards (VID >= 0, §4.5.2).

#ifndef SQLGRAPH_GREMLIN_TRANSLATOR_H_
#define SQLGRAPH_GREMLIN_TRANSLATOR_H_

#include <string>
#include <vector>

#include "gremlin/pipe.h"
#include "sql/ast.h"
#include "sqlgraph/schema.h"
#include "util/status.h"

namespace sqlgraph {
namespace gremlin {

/// Which CTEs each source pipe's translation emitted, in pipeline order.
/// CTE names are the join key between pipes and executor EXPLAIN ANALYZE
/// spans (whose `context` is the CTE being evaluated): an operator span
/// with context TEMP_3 belongs to the pipe whose entry lists TEMP_3. CTEs
/// emitted by nested branch pipelines (copySplit, and/or, ifThenElse)
/// attribute to the enclosing pipe.
struct PipeAttribution {
  struct Entry {
    std::string pipe;                ///< Source pipe, e.g. "out('knows')".
    std::vector<std::string> ctes;   ///< CTE names this pipe emitted.
  };
  std::vector<Entry> pipes;
};

struct TranslatorOptions {
  /// §3.5 redundancy exploitation: answer single-hop traversals from EA.
  bool prefer_ea_for_single_hop = true;
  /// Restrict unnested triads to the colors of the requested labels.
  bool prune_colors_by_label = true;
  /// Ablation (paper Fig. 6): answer EVERY adjacency step from the EA
  /// "triple table" instead of the shredded OPA/OSA join.
  bool force_ea_for_all_hops = false;
};

class Translator {
 public:
  explicit Translator(const core::GraphSchema* schema,
                      TranslatorOptions options = TranslatorOptions())
      : schema_(schema), options_(options) {}

  /// Translates a full pipeline into one SQL query. When `attribution` is
  /// non-null, records which CTEs each pipe produced (for EXPLAIN ANALYZE
  /// operator-to-pipe mapping).
  util::Result<sql::SqlQuery> Translate(
      const Pipeline& pipeline, PipeAttribution* attribution = nullptr) const;

 private:
  class State;
  const core::GraphSchema* schema_;
  TranslatorOptions options_;
};

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_TRANSLATOR_H_
