// Query-scoped trace spans: per-operator row counts and wall time.
//
// A span sink is just a vector owned by the caller (ExecStats keeps one per
// query), so traces never touch global state and two concurrent queries
// never share a sink. Instrumented code creates a ScopedSpan around each
// operator; when the sink pointer is null — the common, non-EXPLAIN-ANALYZE
// case — the constructor skips the clock read and the destructor does
// nothing, keeping the disabled cost at one branch.

#ifndef SQLGRAPH_OBS_TRACE_H_
#define SQLGRAPH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sqlgraph {
namespace obs {

/// One executed operator instance inside a query.
struct TraceSpan {
  std::string context;  ///< CTE name ("TEMP_3") or "final".
  std::string op;       ///< Operator, e.g. "seq scan VA", "hash join".
  uint64_t rows = 0;    ///< Rows the operator produced.
  uint64_t ns = 0;      ///< Wall time spent in the operator.
};

/// RAII recorder appending one TraceSpan to `sink` at scope exit.
class ScopedSpan {
 public:
  ScopedSpan(std::vector<TraceSpan>* sink, std::string context, std::string op)
      : sink_(sink) {
    if (sink_ == nullptr) return;
    span_.context = std::move(context);
    span_.op = std::move(op);
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() { Finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early, excluding trailing work (e.g. post-join filters)
  /// from its time. Idempotent; the destructor becomes a no-op after.
  void Finish() {
    if (sink_ == nullptr) return;
    span_.ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    sink_->push_back(std::move(span_));
    sink_ = nullptr;
  }

  void add_rows(uint64_t n) { span_.rows += n; }
  void set_rows(uint64_t n) { span_.rows = n; }

 private:
  std::vector<TraceSpan>* sink_;  // null = tracing off
  TraceSpan span_;
  std::chrono::steady_clock::time_point start_;
};

/// Fixed-width text table of spans (EXPLAIN ANALYZE style), one per line:
/// `context | operator | rows | time`.
std::string FormatSpanTable(const std::vector<TraceSpan>& spans);

}  // namespace obs
}  // namespace sqlgraph

#endif  // SQLGRAPH_OBS_TRACE_H_
