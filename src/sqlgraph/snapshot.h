// Store snapshots: serialize a whole SqlGraphStore (schema hashes, id
// counters, and every table's rows) to a single binary file and reopen it
// later without re-running the coloring analysis or the bulk load.
//
// Format (little-endian, varint-framed):
//   magic "SQLG2\n"
//   7 sections, each framed as u32 length + u32 masked CRC32C + payload:
//     header: out/in color counts, label→color maps, id counters
//     per table: name, schema, live row count, rows (rel/codec.h encoding)
//   trailer "SQLGEND\n"
//
// The per-section checksums and the EOF trailer let OpenSnapshot reject a
// truncated or bit-flipped file with a precise Status instead of decoding
// garbage — the WAL recovery path (src/wal) relies on this to fall back to
// an older snapshot after a crash mid-checkpoint.
//
// Secondary indexes are not stored; they are rebuilt on open (backfill),
// exactly as the bulk loader builds them.

#ifndef SQLGRAPH_SQLGRAPH_SNAPSHOT_H_
#define SQLGRAPH_SQLGRAPH_SNAPSHOT_H_

#include <memory>
#include <string>

#include "sqlgraph/store.h"
#include "util/status.h"

namespace sqlgraph {
namespace core {

/// Writes the store to `path` (overwrites). Takes shared locks, so it can
/// run against a live store between operations.
util::Status SaveSnapshot(const SqlGraphStore& store, const std::string& path);

/// Opens a snapshot written by SaveSnapshot. `config` controls storage mode
/// and which attribute indexes to (re)build; the adjacency coloring and
/// column layout come from the snapshot.
util::Result<std::unique_ptr<SqlGraphStore>> OpenSnapshot(
    const std::string& path, StoreConfig config = StoreConfig());

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_SNAPSHOT_H_
