#include "bench_core/workloads.h"

#include "util/string_util.h"

namespace sqlgraph {
namespace bench {

std::string AdjacencyQuery::ToGremlin() const {
  // Each hop dedups its frontier (BFS semantics), which is what makes the
  // paper's 3/6/9-hop result sizes saturate rather than explode; the loop
  // body is therefore two pipes (step + dedup).
  std::string out = util::StrFormat("g.V.has('%s', 1)", start_tag.c_str());
  const char* step = both ? "both" : "out";
  out += util::StrFormat(".%s('%s').dedup()", step, label.c_str());
  if (hops > 1) {
    out += util::StrFormat(".loop(2){it.loops < %d}", hops);
  }
  out += ".count()";
  return out;
}

std::vector<AdjacencyQuery> Table1Queries() {
  // Mirrors paper Table 1: ids 1-3 sweep hop count from the full leaf set;
  // 4-6 sweep input size at 5 hops; 7-11 are `team` traversals from 1, 1,
  // 1, 10 and 100 starting vertices.
  return {
      {1, "qleaf", "isPartOf", 3, false},
      {2, "qleaf", "isPartOf", 6, false},
      {3, "qleaf", "isPartOf", 9, false},
      {4, "qb100", "isPartOf", 5, false},
      {5, "qb1000", "isPartOf", 5, false},
      {6, "qb10000", "isPartOf", 5, false},
      {7, "qt1", "team", 4, true},
      {8, "qt1", "team", 6, true},
      {9, "qt1", "team", 8, true},
      {10, "qt10", "team", 6, true},
      {11, "qt100", "team", 6, true},
  };
}

std::string AttributeQuery::ToJsonSql() const {
  std::string cond;
  const std::string attr = "JSON_VAL(ATTR, " + util::SqlQuote(key) + ")";
  switch (kind) {
    case core::HashAttrStore::QueryKind::kNotNull:
      cond = attr + " IS NOT NULL";
      break;
    case core::HashAttrStore::QueryKind::kLike:
      cond = attr + " LIKE " + util::SqlQuote(operand.AsString());
      break;
    case core::HashAttrStore::QueryKind::kEqString:
      cond = attr + " = " + util::SqlQuote(operand.AsString());
      break;
    case core::HashAttrStore::QueryKind::kEqNumeric:
      cond = attr + " = " + operand.ToString();
      break;
  }
  return "SELECT COUNT(*) FROM VA WHERE " + cond;
}

std::vector<AttributeQuery> Table2Queries() {
  using K = core::HashAttrStore::QueryKind;
  return {
      {1, "national", K::kNotNull, rel::Value()},
      {2, "national", K::kLike, rel::Value("%en")},
      {3, "genre", K::kNotNull, rel::Value()},
      {4, "genre", K::kLike, rel::Value("%en")},
      {5, "title", K::kNotNull, rel::Value()},
      {6, "title", K::kLike, rel::Value("%en")},
      {7, "label", K::kNotNull, rel::Value()},
      {8, "label", K::kLike, rel::Value("%en")},
      {9, "regionAffiliation", K::kNotNull, rel::Value()},
      {10, "regionAffiliation", K::kEqString, rel::Value("1958")},
      {11, "populationDensitySqMi", K::kNotNull, rel::Value()},
      {12, "populationDensitySqMi", K::kEqNumeric, rel::Value(int64_t{100})},
      {13, "longm", K::kNotNull, rel::Value()},
      {14, "longm", K::kEqNumeric, rel::Value(int64_t{1})},
      {15, "wikiPageID", K::kNotNull, rel::Value()},
      {16, "wikiPageID", K::kEqNumeric, rel::Value(int64_t{29800007})},
  };
}

std::vector<std::string> DbpediaBenchmarkQueries() {
  // Converted-SPARQL style: each query starts from a selective URI or
  // attribute, traverses, and returns a result-set size (Appendix B keeps
  // only sizes to neutralize result marshalling differences).
  const char* kTeam0 = "http://dbpedia.org/resource/Team_0";
  const char* kTeam3 = "http://dbpedia.org/resource/Team_3";
  const char* kPlaceRoot = "http://dbpedia.org/resource/Place_L0_0";
  const char* kMisc7 = "http://dbpedia.org/resource/Misc_7";
  std::vector<std::string> queries;
  // dq1: members of one team (star lookup).
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('team').count()", kTeam0));
  // dq2: team members' other teams (2-hop with back-style filter).
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('team').out('team').dedup().count()", kTeam0));
  // dq3: national players of one team.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('team').has('national').count()", kTeam0));
  // dq4: places directly part of the root.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('isPartOf').count()", kPlaceRoot));
  // dq5: two levels below the root.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('isPartOf').in('isPartOf').dedup().count()",
      kPlaceRoot));
  // dq6: attribute filter then traversal (GraphQuery merge shape).
  queries.push_back(
      "g.V.has('qt100', 1).in('team').dedup().count()");
  // dq7: paper §4.1 example shape: filter + both + dedup + count.
  queries.push_back(
      "g.V.filter{it.qt10 == 1}.both.dedup().count()");
  // dq8: label lookup (non-selective attribute).
  queries.push_back("g.V.has('genre', 'Rocken').count()");
  // dq9: genre then outgoing misc relations.
  queries.push_back("g.V.has('genre', 'Rocken').out().dedup().count()");
  // dq10: misc entity neighborhood, 2 hops.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').out().out().dedup().count()", kMisc7));
  // dq11: undirected neighborhood of one misc entity.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').both.both.dedup().count()", kMisc7));
  // dq12: edge-attribute filter: outgoing edges extracted from Infobox.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').outE().has('section', 'Infobox').count()", kMisc7));
  // dq13: edges → targets (outV/inV round trip).
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').outE().inV().dedup().count()", kMisc7));
  // dq14: union of two teams' rosters (copySplit/merge).
  queries.push_back(util::StrFormat(
      "g.V.has('qt10', 1).copySplit(_().in('team'), "
      "_().in('team').out('team')).exhaustMerge().dedup().count()"));
  // dq15: the heavy one (Titan timed out in the paper): whole-graph filter
  // + 3-hop undirected expansion.
  queries.push_back(
      "g.V.has('qb10000', 1).both('isPartOf').both('isPartOf')"
      ".both('isPartOf').dedup().count()");
  // dq16: interval filter on a numeric attribute then traversal.
  queries.push_back(
      "g.V.interval('longm', 0, 5).out('isPartOf').dedup().count()");
  // dq17: and() of two traversal conditions.
  queries.push_back(util::StrFormat(
      "g.V.has('qt10', 1).and(_().in('team'), _().in('team').has('national'))"
      ".count()"));
  // dq18: aggregate/except: teammates of team 3 not in team 0.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('team').aggregate('x').out('team')"
      ".in('team').except('x').dedup().count()",
      kTeam3));
  // dq19: simplePath over a 3-hop place walk.
  queries.push_back(util::StrFormat(
      "g.V('uri', '%s').in('isPartOf').in('isPartOf').in('isPartOf')"
      ".simplePath().count()",
      kPlaceRoot));
  // dq20: hasNot (absence filter) on team vertices.
  queries.push_back(
      "g.V.has('qt100', 1).hasNot('regionAffiliation').in('team').count()");
  return queries;
}

std::vector<std::string> IndexedAttributeKeys() {
  return {"uri",  "qleaf", "qb100", "qb1000", "qb10000", "qt1",
          "qt10", "qt100", "genre", "national", "regionAffiliation",
          "label", "title", "type"};
}

std::vector<std::string> OrderedIndexedAttributeKeys() {
  return {"longm", "populationDensitySqMi", "wikiPageID"};
}

}  // namespace bench
}  // namespace sqlgraph
