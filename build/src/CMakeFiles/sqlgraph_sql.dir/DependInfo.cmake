
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/expr_eval.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/expr_eval.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/expr_eval.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/planner.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/planner.cc.o.d"
  "/root/repo/src/sql/render.cc" "src/CMakeFiles/sqlgraph_sql.dir/sql/render.cc.o" "gcc" "src/CMakeFiles/sqlgraph_sql.dir/sql/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlgraph_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
