# Empty compiler generated dependencies file for sqlgraph_gremlin.
# This may be replaced when dependencies are built.
