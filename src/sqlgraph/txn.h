// Snapshot-isolation transactions over SqlGraphStore (DESIGN.md §12).
//
// A Txn pins a read timestamp at Begin and buffers its mutations in the
// handle; nothing touches the tables until Commit(), which applies every
// buffered operation inside one exclusive lock section under
// first-committer-wins conflict detection and logs the whole transaction
// as a single atomic WAL commit unit. Readers therefore never block on an
// open transaction, and an open transaction never blocks writers — it only
// pins old row versions so its snapshot stays reconstructable.
//
//  * Reads (GetVertex/GetEdge/GetOutEdges/Out/In) see the snapshot plus the
//    transaction's own buffered writes (read-your-writes overlay).
//  * ExecuteSql runs whole queries against the bare snapshot — buffered
//    writes are NOT visible to SQL until Commit (documented divergence;
//    the overlay covers only the CRUD surface).
//  * Commit() returns a Conflict status when another transaction (or an
//    autocommit mutation) committed a write to any entity in this
//    transaction's write set after its read timestamp. The loser's buffered
//    work is discarded; retrying is the caller's loop.
//  * The handle is single-threaded. Distinct handles (and autocommit CRUD)
//    are safe concurrently.

#ifndef SQLGRAPH_SQLGRAPH_TXN_H_
#define SQLGRAPH_SQLGRAPH_TXN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sqlgraph/store.h"

namespace sqlgraph {
namespace core {

class Txn {
 public:
  ~Txn();  // an open handle rolls back
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // ---- buffered mutations (validated against snapshot + overlay) --------
  util::Result<VertexId> AddVertex(json::JsonValue attrs);
  util::Status SetVertexAttr(VertexId vid, const std::string& key,
                             json::JsonValue value);
  util::Status RemoveVertexAttr(VertexId vid, const std::string& key);
  util::Status RemoveVertex(VertexId vid);
  util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                               const std::string& label,
                               json::JsonValue attrs);
  util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                           json::JsonValue value);
  util::Status RemoveEdgeAttr(EdgeId eid, const std::string& key);
  util::Status RemoveEdge(EdgeId eid);

  // ---- snapshot + overlay reads -----------------------------------------
  util::Result<json::JsonValue> GetVertex(VertexId vid) const;
  util::Result<EdgeRecord> GetEdge(EdgeId eid) const;
  util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) const;
  util::Result<std::vector<VertexId>> Out(VertexId vid,
                                          const std::string& label = "") const;
  util::Result<std::vector<VertexId>> In(VertexId vid,
                                         const std::string& label = "") const;

  /// Whole-query SQL pinned to the snapshot. Buffered writes are invisible
  /// here (see the header comment).
  util::Result<sql::ResultSet> ExecuteSql(std::string_view text,
                                          sql::ExecStats* stats = nullptr);

  /// Applies the buffered operations atomically. Conflict status when this
  /// transaction loses first-committer-wins; any other failure aborts the
  /// transaction with the store unchanged. After Commit the handle is
  /// closed either way.
  util::Status Commit();
  /// Discards the buffered operations and closes the handle.
  util::Status Rollback();

  uint64_t read_ts() const { return read_ts_; }
  bool open() const { return state_ == State::kOpen; }
  /// Number of buffered (not yet committed) operations.
  size_t pending_ops() const { return ops_.size(); }

 private:
  friend class SqlGraphStore;  // BeginTxn constructs handles

  struct Op {
    enum class Kind {
      kAddVertex,
      kSetVertexAttr,
      kRemoveVertexAttr,
      kRemoveVertex,
      kAddEdge,
      kSetEdgeAttr,
      kRemoveEdgeAttr,
      kRemoveEdge,
    };
    Kind kind;
    int64_t id = 0;        // vid or eid
    int64_t src = 0;       // AddEdge
    int64_t dst = 0;       // AddEdge
    std::string key;       // attr key, or AddEdge label
    json::JsonValue value;  // attr value, or attrs object
  };
  enum class State { kOpen, kCommitted, kAborted };

  explicit Txn(SqlGraphStore* store);

  util::Status CheckOpen() const;
  /// Closes the handle: bookkeeping counters/metrics + snapshot release.
  void End(bool committed, bool conflict);

  // Overlay probes (snapshot ∘ buffered writes).
  bool VertexVisible(int64_t vid) const;
  bool EdgeRemoved(int64_t eid) const;
  // Applies this txn's buffered attr ops for `eid` / filters removed
  // endpoints; nullopt when the edge is overlay-deleted.
  std::optional<EdgeRecord> OverlayEdge(EdgeRecord rec) const;

  SqlGraphStore* store_;
  uint64_t read_ts_;
  State state_ = State::kOpen;
  std::vector<Op> ops_;

  // Read-your-writes overlay, maintained eagerly as ops are buffered. The
  // ordered replay source of truth is ops_; these maps only serve reads.
  std::unordered_map<int64_t, json::JsonValue> added_vertices_;
  std::unordered_set<int64_t> removed_vertices_;
  // key → new value; nullopt = key erased. Applied in buffer order.
  std::unordered_map<int64_t,
                     std::vector<std::pair<std::string,
                                           std::optional<json::JsonValue>>>>
      vertex_attr_ops_;
  std::unordered_map<int64_t, EdgeRecord> added_edges_;
  std::unordered_set<int64_t> removed_edges_;
  std::unordered_map<int64_t,
                     std::vector<std::pair<std::string,
                                           std::optional<json::JsonValue>>>>
      edge_attr_ops_;
};

/// A SQL session: routes BEGIN/COMMIT/ROLLBACK statements to the
/// transaction manager and everything else to the open transaction's
/// snapshot (or the store, in autocommit mode). One session per client;
/// not thread-safe.
class Session {
 public:
  explicit Session(SqlGraphStore* store) : store_(store) {}

  /// Executes one statement. Transaction-control statements return an
  /// empty result set; BEGIN inside an open transaction and
  /// COMMIT/ROLLBACK outside one are InvalidArgument.
  util::Result<sql::ResultSet> Execute(std::string_view text,
                                       sql::ExecStats* stats = nullptr);

  bool in_txn() const { return txn_ != nullptr && txn_->open(); }
  Txn* txn() { return txn_.get(); }

 private:
  SqlGraphStore* store_;
  std::unique_ptr<Txn> txn_;
};

}  // namespace core
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQLGRAPH_TXN_H_
