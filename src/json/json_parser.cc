#include "json/json_parser.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace sqlgraph {
namespace json {

namespace {

using util::Result;
using util::Status;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    RETURN_NOT_OK(ParseValue(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  // Bounds recursion on adversarial inputs like "[[[[...": each nesting level
  // costs two stack frames, so 256 stays well inside default stack limits even
  // under sanitizer instrumentation.
  static constexpr int kMaxDepth = 256;

  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        if (++depth_ > kMaxDepth) return Err("nesting too deep");
        Status s = ParseObject(out);
        --depth_;
        return s;
      }
      case '[': {
        if (++depth_ > kMaxDepth) return Err("nesting too deep");
        Status s = ParseArray(out);
        --depth_;
        return s;
      }
      case '"': return ParseString(out);
      case 't':
        RETURN_NOT_OK(Expect("true"));
        *out = JsonValue(true);
        return Status::OK();
      case 'f':
        RETURN_NOT_OK(Expect("false"));
        *out = JsonValue(false);
        return Status::OK();
      case 'n':
        RETURN_NOT_OK(Expect("null"));
        *out = JsonValue();
        return Status::OK();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // consume '{'
    JsonObject obj;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      *out = JsonValue(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Err("expected object key");
      JsonValue key;
      RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (Peek() != ':') return Err("expected ':' after key");
      ++pos_;
      SkipWs();
      JsonValue value;
      RETURN_NOT_OK(ParseValue(&value));
      obj.emplace_back(key.AsString(), std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      return Err("expected ',' or '}' in object");
    }
    *out = JsonValue(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // consume '['
    JsonArray arr;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      *out = JsonValue(std::move(arr));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      RETURN_NOT_OK(ParseValue(&value));
      arr.push_back(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        break;
      }
      return Err("expected ',' or ']' in array");
    }
    *out = JsonValue(std::move(arr));
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // consume opening quote
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': s.push_back('"'); break;
          case '\\': s.push_back('\\'); break;
          case '/': s.push_back('/'); break;
          case 'b': s.push_back('\b'); break;
          case 'f': s.push_back('\f'); break;
          case 'n': s.push_back('\n'); break;
          case 'r': s.push_back('\r'); break;
          case 't': s.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            RETURN_NOT_OK(ReadHex4(&cp));
            if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Err("unpaired low surrogate in \\u escape");
            }
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a \uXXXX low surrogate must follow, and the
              // pair combines into one supplementary-plane codepoint.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Err("high surrogate not followed by \\u escape");
              }
              pos_ += 2;
              unsigned lo = 0;
              RETURN_NOT_OK(ReadHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Err("high surrogate not followed by low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            AppendUtf8(cp, &s);
            break;
          }
          default: return Err("unknown escape");
        }
      } else {
        s.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool is_double = false;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Err("expected a value");
    std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        *out = JsonValue(v);
        return Status::OK();
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    std::string buf(tok);
    double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return Err("malformed number");
    *out = JsonValue(d);
    return Status::OK();
  }

  Status ReadHex4(unsigned* cp) {
    if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
    *cp = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      *cp <<= 4;
      if (h >= '0' && h <= '9') *cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') *cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') *cp |= static_cast<unsigned>(h - 'A' + 10);
      else return Err("bad hex digit in \\u escape");
    }
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* s) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status Expect(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Err("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return Status::OK();
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(util::StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(double d, std::string* out) {
  if (std::isfinite(d)) {
    if (d == 0 && std::signbit(d)) {
      // %.17g prints "-0", which re-parses as *int* 0 and then writes as
      // "0" — the only double whose text form is unstable across a
      // parse/write round trip. Keep it double-typed.
      out->append("-0.0");
    } else {
      out->append(util::StrFormat("%.17g", d));
    }
  } else {
    out->append("null");  // JSON has no Inf/NaN.
  }
}

void WriteImpl(const JsonValue& v, std::string* out, int indent, int depth) {
  auto newline = [&] {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (v.type()) {
    case JsonType::kNull: out->append("null"); break;
    case JsonType::kBool: out->append(v.AsBool() ? "true" : "false"); break;
    case JsonType::kInt: out->append(std::to_string(v.AsInt())); break;
    case JsonType::kDouble: WriteNumber(v.AsDouble(), out); break;
    case JsonType::kString: WriteString(v.AsString(), out); break;
    case JsonType::kArray: {
      out->push_back('[');
      const JsonArray& arr = v.AsArray();
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) out->push_back(',');
        ++depth;
        newline();
        --depth;
        WriteImpl(arr[i], out, indent, depth + 1);
      }
      if (!arr.empty()) newline();
      out->push_back(']');
      break;
    }
    case JsonType::kObject: {
      out->push_back('{');
      const JsonObject& obj = v.AsObject();
      for (size_t i = 0; i < obj.size(); ++i) {
        if (i) out->push_back(',');
        ++depth;
        newline();
        --depth;
        WriteString(obj[i].first, out);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        WriteImpl(obj[i].second, out, indent, depth + 1);
      }
      if (!obj.empty()) newline();
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> Parse(std::string_view text) { return Parser(text).Parse(); }

std::string Write(const JsonValue& value) {
  std::string out;
  WriteImpl(value, &out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string WritePretty(const JsonValue& value) {
  std::string out;
  WriteImpl(value, &out, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace json
}  // namespace sqlgraph
