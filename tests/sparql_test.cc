// Tests for the Appendix-B SPARQL→Gremlin converter.

#include "gremlin/parser.h"
#include "gremlin/runtime.h"
#include "gremlin/sparql.h"
#include "graph/rdf.h"
#include "gtest/gtest.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace gremlin {
namespace {

// ------------------------------------------------------------- parsing ----

TEST(SparqlParserTest, ParsesTable9Query) {
  // The paper's Table 9 example (dq2), verbatim structure.
  const char* text = R"(
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    PREFIX dbpedia-owl: <http://dbpedia.org/ontology/>
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX dbpedia-prop: <http://dbpedia.org/property/>
    PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
    SELECT ?var4 ?var8 ?var10 WHERE {
      ?var5 dbpedia-owl:thumbnail ?var4 ;
            rdf:type dbpedia-owl:Person ;
            rdfs:label "Montreal Carabins"@en ;
            dbpedia-prop:pageurl ?var8 .
      OPTIONAL { ?var5 foaf:homepage ?var10 . }
    }
  )";
  auto q = ParseSparql(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_vars,
            (std::vector<std::string>{"var4", "var8", "var10"}));
  ASSERT_EQ(q->patterns.size(), 4u);
  EXPECT_EQ(q->patterns[0].subject.text, "var5");
  EXPECT_EQ(q->patterns[0].predicate.text,
            "http://dbpedia.org/ontology/thumbnail");
  EXPECT_EQ(q->patterns[1].predicate.text,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_EQ(q->patterns[1].object.text, "http://dbpedia.org/ontology/Person");
  EXPECT_EQ(q->patterns[2].object.kind, SparqlTerm::kLiteral);
  EXPECT_EQ(q->patterns[2].object.text, "Montreal Carabins");
  EXPECT_EQ(q->patterns[2].object.lang, "en");
  ASSERT_EQ(q->optionals.size(), 1u);
  EXPECT_EQ(q->optionals[0].size(), 1u);
}

TEST(SparqlParserTest, SupportsAKeywordAndSemicolons) {
  auto q = ParseSparql(
      "PREFIX dbo: <http://x/o/> SELECT ?p WHERE { ?p a dbo:Team ; "
      "dbo:founded \"1908\" . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->patterns.size(), 2u);
  EXPECT_EQ(q->patterns[0].predicate.text,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_EQ(q->patterns[1].subject.text, "p");
}

TEST(SparqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x ?y ?z }").ok());   // no WHERE
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <u> }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x pfx:p ?y . }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(ParseSparql("").ok());
}

// ---------------------------------------------------------- conversion ----

/// Small RDF dataset in the shape the Table 9 query expects.
graph::PropertyGraph Table9Graph() {
  graph::PropertyGraph g;
  graph::RdfToPropertyGraph conv(&g);
  auto edge = [&](const char* s, const char* p, const char* o) {
    graph::Quad q;
    q.subject = s;
    q.predicate = p;
    q.object_resource = o;
    EXPECT_TRUE(conv.Add(q).ok());
  };
  auto attr = [&](const char* s, const char* p, const char* value) {
    graph::Quad q;
    q.subject = s;
    q.predicate = p;
    q.object_is_literal = true;
    q.object_literal = json::JsonValue(value);
    EXPECT_TRUE(conv.Add(q).ok());
  };
  const char* kPerson = "http://dbpedia.org/ontology/Person";
  const char* kType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  // Two Persons named "Montreal Carabins"@en; one has a thumbnail+pageurl,
  // and only that one has a homepage.
  edge("http://x/alice", kType, kPerson);
  attr("http://x/alice", "http://www.w3.org/2000/01/rdf-schema#label",
       "\"Montreal Carabins\"@en");
  edge("http://x/alice", "http://dbpedia.org/ontology/thumbnail",
       "http://x/thumb1");
  // pageurl is an object property in DBpedia (the Table 9 conversion
  // traverses it with out()), so it must be an edge here too.
  edge("http://x/alice", "http://dbpedia.org/property/pageurl",
       "http://pg/1");
  edge("http://x/alice", "http://xmlns.com/foaf/0.1/homepage", "http://x/home");
  edge("http://x/bob", kType, kPerson);
  attr("http://x/bob", "http://www.w3.org/2000/01/rdf-schema#label",
       "\"Montreal Carabins\"@en");
  // A Person with a different label (must not match).
  edge("http://x/carol", kType, kPerson);
  attr("http://x/carol", "http://www.w3.org/2000/01/rdf-schema#label",
       "\"Other\"@en");
  edge("http://x/carol", "http://dbpedia.org/ontology/thumbnail",
       "http://x/thumb2");
  return g;
}

TEST(SparqlConversionTest, Table9QueryRunsEndToEnd) {
  const char* text = R"(
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    PREFIX dbpedia-owl: <http://dbpedia.org/ontology/>
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX dbpedia-prop: <http://dbpedia.org/property/>
    PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
    SELECT ?var4 ?var8 ?var10 WHERE {
      ?var5 dbpedia-owl:thumbnail ?var4 ;
            rdf:type dbpedia-owl:Person ;
            rdfs:label "Montreal Carabins"@en ;
            dbpedia-prop:pageurl ?var8 .
      OPTIONAL { ?var5 foaf:homepage ?var10 . }
    }
  )";
  auto conv = SparqlToGremlin(text);
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  // Appendix B anchors at the most selective URI (the Person type).
  EXPECT_NE(conv->main_query.find("g.V('uri', "
                                  "'http://dbpedia.org/ontology/Person')"),
            std::string::npos)
      << conv->main_query;
  EXPECT_NE(conv->main_query.find(".in('type')"), std::string::npos);
  // Both emitted queries parse as Gremlin.
  ASSERT_TRUE(ParseGremlin(conv->main_query).ok()) << conv->main_query;
  ASSERT_EQ(conv->optional_queries.size(), 1u);
  ASSERT_TRUE(ParseGremlin(conv->optional_queries[0]).ok())
      << conv->optional_queries[0];

  // Execute on the Table-9-shaped dataset: alice alone matches the required
  // block (bob lacks thumbnail/pageurl), and alice has the OPTIONAL too.
  core::StoreConfig config;
  config.va_hash_indexes = {"uri", "label"};
  auto store = core::SqlGraphStore::Build(Table9Graph(), config);
  ASSERT_TRUE(store.ok());
  GremlinRuntime runtime(store->get());
  auto main_count = runtime.Count(conv->main_query);
  ASSERT_TRUE(main_count.ok())
      << conv->main_query << " -> " << main_count.status().ToString();
  EXPECT_EQ(*main_count, 1);
  auto opt_count = runtime.Count(conv->optional_queries[0]);
  ASSERT_TRUE(opt_count.ok()) << opt_count.status().ToString();
  EXPECT_EQ(*opt_count, 1);
}

TEST(SparqlConversionTest, LiteralAnchorWhenNoUri) {
  auto conv = SparqlToGremlin(
      "PREFIX p: <http://x/p/> SELECT ?s WHERE { ?s p:name \"Ada\" . "
      "?s p:knows ?o . }");
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  EXPECT_NE(conv->main_query.find("g.V.has('name', 'Ada')"), std::string::npos)
      << conv->main_query;
  EXPECT_TRUE(ParseGremlin(conv->main_query).ok());
}

TEST(SparqlConversionTest, UriSubjectAnchor) {
  auto conv = SparqlToGremlin(
      "PREFIX p: <http://x/p/> SELECT ?o WHERE { <http://x/e1> p:rel ?o . "
      "?o p:name \"Bo\" . }");
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  EXPECT_NE(conv->main_query.find("g.V('uri', 'http://x/e1')"),
            std::string::npos);
  EXPECT_NE(conv->main_query.find(".out('rel')"), std::string::npos);
  EXPECT_TRUE(ParseGremlin(conv->main_query).ok()) << conv->main_query;
}

TEST(SparqlConversionTest, UnsupportedShapesFailCleanly) {
  // All-variable pattern: nothing to anchor on.
  EXPECT_TRUE(SparqlToGremlin("SELECT ?s WHERE { ?s <http://x/p> ?o . }")
                  .status()
                  .IsNotImplemented());
  // Disconnected groups.
  EXPECT_FALSE(SparqlToGremlin(
                   "SELECT ?a WHERE { ?a <http://x/p> \"1\" . "
                   "?b <http://x/q> \"2\" . }")
                   .ok());
}

}  // namespace
}  // namespace gremlin
}  // namespace sqlgraph
