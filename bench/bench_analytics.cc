// Relational graph analytics (graph/analytics.h): PageRank, weakly-
// connected components, and triangle counting through the SQL executor in
// both modes — vectorized batch-at-a-time vs row-at-a-time — over the same
// store. Every case first cross-checks that the two modes produce identical
// results, then times them.
//
//   ./bench_analytics [--n=3000] [--deg=8] [--runs=4] [--quick] [--check]
//
// --quick shrinks the graph and run count for CI smoke use; --check exits
// non-zero if the vectorized executor is slower than row-at-a-time on any
// of the scan/join-heavy cases (the ci/check.sh perf-smoke gate).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/analytics.h"
#include "graph/property_graph.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace bench {
namespace {

/// Uniform random digraph: controllable density, deterministic seed.
graph::PropertyGraph RandomGraph(int64_t n, int64_t deg) {
  std::mt19937 rng(20150531);
  graph::PropertyGraph g;
  for (int64_t v = 0; v < n; ++v) g.AddVertex();
  std::uniform_int_distribution<int64_t> pick(0, n - 1);
  for (int64_t e = 0; e < n * deg; ++e) {
    (void)g.AddEdge(pick(rng), pick(rng), e % 2 ? "knows" : "likes");
  }
  return g;
}

struct CaseResult {
  std::string name;
  double vec_ms = 0;   // median
  double row_ms = 0;
  double speedup = 0;  // row / vec
};

graph::AnalyticsOptions ModeOpts(bool vectorized, int pr_iters) {
  graph::AnalyticsOptions opts;
  opts.vectorized = vectorized;
  opts.max_iterations = pr_iters;
  opts.tolerance = 0;  // fixed iteration count: identical work every run
  return opts;
}

}  // namespace
}  // namespace bench
}  // namespace sqlgraph

int main(int argc, char** argv) {
  using namespace sqlgraph;
  using namespace sqlgraph::bench;

  const bool quick = FlagBool(argc, argv, "--quick");
  const bool check = FlagBool(argc, argv, "--check");
  const int64_t n = FlagInt(argc, argv, "--n", quick ? 500 : 3000);
  const int64_t deg = FlagInt(argc, argv, "--deg", 8);
  const int runs = static_cast<int>(
      FlagInt(argc, argv, "--runs", quick ? 3 : 4));
  const int pr_iters = quick ? 4 : 8;

  Banner("graph analytics: vectorized vs row-at-a-time SQL execution");
  std::printf("graph: %lld vertices, avg out-degree %lld; %d timed runs\n",
              static_cast<long long>(n), static_cast<long long>(deg), runs);

  graph::PropertyGraph g = RandomGraph(n, deg);
  auto store = core::SqlGraphStore::Build(g);
  if (!store.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  core::SqlGraphStore* s = store->get();
  const graph::AnalyticsOptions vec_opts = ModeOpts(true, pr_iters);
  const graph::AnalyticsOptions row_opts = ModeOpts(false, pr_iters);

  // ---- correctness cross-check before timing anything ----
  {
    auto pv = graph::PageRank(s, vec_opts);
    auto pr = graph::PageRank(s, row_opts);
    if (!pv.ok() || !pr.ok()) {
      std::fprintf(stderr, "pagerank failed\n");
      return 1;
    }
    if (pv->ranks.size() != pr->ranks.size()) {
      std::fprintf(stderr, "pagerank mode mismatch: result sizes differ\n");
      return 1;
    }
    for (size_t i = 0; i < pv->ranks.size(); ++i) {
      if (pv->ranks[i].first != pr->ranks[i].first ||
          std::fabs(pv->ranks[i].second - pr->ranks[i].second) > 1e-12) {
        std::fprintf(stderr, "pagerank mode mismatch at vid %lld\n",
                     static_cast<long long>(pv->ranks[i].first));
        return 1;
      }
    }
    auto wv = graph::WeaklyConnectedComponents(s, vec_opts);
    auto wr = graph::WeaklyConnectedComponents(s, row_opts);
    if (!wv.ok() || !wr.ok() || wv->components != wr->components) {
      std::fprintf(stderr, "wcc mode mismatch\n");
      return 1;
    }
    auto tv = graph::TriangleCount(s, vec_opts);
    auto tr = graph::TriangleCount(s, row_opts);
    if (!tv.ok() || !tr.ok() || *tv != *tr) {
      std::fprintf(stderr, "triangle count mode mismatch\n");
      return 1;
    }
    std::printf("cross-check ok: %zu ranks, %zu components, %lld triangles\n",
                pv->ranks.size(), wv->components.size(),
                static_cast<long long>(*tv));
  }

  struct Case {
    const char* name;
    std::function<void(const graph::AnalyticsOptions&)> run;
  };
  const Case cases[] = {
      {"pagerank",
       [&](const graph::AnalyticsOptions& o) {
         auto r = graph::PageRank(s, o);
         if (!r.ok()) std::abort();
       }},
      {"wcc",
       [&](const graph::AnalyticsOptions& o) {
         auto r = graph::WeaklyConnectedComponents(s, o);
         if (!r.ok()) std::abort();
       }},
      {"triangles",
       [&](const graph::AnalyticsOptions& o) {
         auto r = graph::TriangleCount(s, o);
         if (!r.ok()) std::abort();
       }},
  };

  std::vector<CaseResult> results;
  for (const Case& c : cases) {
    util::Samples vec =
        TimedRuns(runs, [&] { c.run(vec_opts); });
    util::Samples row =
        TimedRuns(runs, [&] { c.run(row_opts); });
    CaseResult r;
    r.name = c.name;
    r.vec_ms = vec.Percentile(0.5);
    r.row_ms = row.Percentile(0.5);
    r.speedup = r.vec_ms > 0 ? r.row_ms / r.vec_ms : 0;
    results.push_back(r);
    std::printf("%-10s vectorized %9.2f ms   row-at-a-time %9.2f ms   "
                "speedup %.2fx\n",
                c.name, r.vec_ms, r.row_ms, r.speedup);
    JsonLine("bench_analytics")
        .Str("case", r.name)
        .Num("vertices", static_cast<double>(n))
        .Num("avg_degree", static_cast<double>(deg))
        .Num("vectorized_ms_p50", r.vec_ms)
        .Num("row_ms_p50", r.row_ms)
        .Num("speedup", r.speedup)
        .Emit();
  }

  if (check) {
    // Perf-smoke gate: the batch executor must not lose to the row executor
    // on the scan/join-heavy analytics (full-table scans + hash joins).
    bool ok = true;
    for (const CaseResult& r : results) {
      if (r.speedup < 1.0) {
        std::fprintf(stderr,
                     "PERF CHECK FAILED: %s vectorized %.2f ms slower than "
                     "row-at-a-time %.2f ms (speedup %.2fx < 1.0x)\n",
                     r.name.c_str(), r.vec_ms, r.row_ms, r.speedup);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("perf check ok: vectorized >= row-at-a-time on all cases\n");
  }
  return 0;
}
