# Empty dependencies file for linkbench_social.
# This may be replaced when dependencies are built.
