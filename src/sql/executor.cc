#include "sql/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "sql/expr_eval.h"
#include "sql/parser.h"
#include "sql/plan_memo.h"
#include "sql/planner.h"
#include "sql/render.h"
#include "sql/verify.h"

namespace sqlgraph {
namespace sql {

using rel::ColumnBatch;
using rel::ColumnVector;
using rel::Row;
using rel::Value;
using util::Result;
using util::Status;

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

/// Looks an index up by name (plans memoize names, not pointers, so a plan
/// can never dangle across table reorganizations).
const rel::Index* FindIndexByName(const rel::Table& table,
                                  const std::string& name) {
  for (const auto& index : table.indexes()) {
    if (index->name() == name) return index.get();
  }
  return nullptr;
}

}  // namespace

// PlanMemo now lives in sql/plan_memo.h so sql/verify.cc can statically
// cross-check recorded plans against the database they replay on.

namespace {

/// A resolved FROM item: either an indexable base table or materialized rows.
struct Relation {
  std::vector<std::string> columns;
  const rel::Table* base = nullptr;
  const ResultSet* borrowed = nullptr;
  std::shared_ptr<ResultSet> owned;
  // Column pruning (projection pushdown): when non-empty, only these
  // base-table column indexes are carried into join rows. Wide tables like
  // OPA (3 columns per triad) shrink to the handful of referenced columns.
  std::vector<int> projection;

  const std::vector<Row>* rows() const {
    if (borrowed != nullptr) return &borrowed->rows;
    if (owned != nullptr) return &owned->rows;
    return nullptr;
  }

  /// Applies the projection to a freshly fetched base-table row.
  Row Project(const Row& full) const {
    if (projection.empty()) return full;
    Row out;
    out.reserve(projection.size());
    for (int c : projection) out.push_back(full[static_cast<size_t>(c)]);
    return out;
  }
};

/// The inter-operator working set: either row-major rows (the legacy
/// operators) or a ColumnBatch (the vectorized ones). A batch enters the
/// pipeline at a base-table access when Options::vectorized is set;
/// operators without a batched implementation (outer joins, lateral
/// unnests, sorts) collapse it to rows and the pipeline continues
/// row-at-a-time from there.
struct WorkingSet {
  std::vector<Row> rows;
  ColumnBatch batch;
  bool is_batch = false;

  size_t size() const { return is_batch ? batch.num_rows : rows.size(); }

  void SetBatch(ColumnBatch b) {
    batch = std::move(b);
    is_batch = true;
    rows.clear();
  }

  /// Collapses to row mode (no-op when already there).
  std::vector<Row>* MutableRows() {
    if (is_batch) {
      rows = batch.ToRows();
      batch = ColumnBatch();
      is_batch = false;
    }
    return &rows;
  }
};

/// Collects which columns of `alias` the statement references anywhere
/// (select list, WHERE, JOIN ON, lateral VALUES, GROUP BY/HAVING/ORDER BY).
/// Returns false when everything is needed (star or unresolvable use).
bool CollectNeededColumns(const SelectStmt& s, const std::string& alias,
                          std::unordered_set<std::string>* needed) {
  bool all = false;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    if (e == nullptr || all) return;
    if (e->kind == ExprKind::kColumnRef) {
      // Unqualified references are conservatively attributed to every ref.
      if (e->qualifier.empty() || e->qualifier == alias) {
        needed->insert(e->column);
      }
      return;
    }
    if (e->kind == ExprKind::kStar) return;
    walk(e->lhs);
    walk(e->rhs);
    for (const auto& a : e->args) walk(a);
    for (const auto& a : e->in_list) walk(a);
    // Uncorrelated subqueries cannot reference this scope in our templates.
  };
  for (const auto& item : s.items) {
    if (item.is_star &&
        (item.star_qualifier.empty() || item.star_qualifier == alias)) {
      all = true;
    }
    walk(item.expr);
  }
  walk(s.where);
  walk(s.having);
  for (const auto& g : s.group_by) walk(g);
  for (const auto& o : s.order_by) walk(o.expr);
  for (const auto& ref : s.from) {
    walk(ref.on);
    walk(ref.json_doc);
    for (const auto& row : ref.values_rows) {
      for (const auto& e : row) walk(e);
    }
  }
  return !all;
}

/// Aggregate accumulator for one select item.
struct AggState {
  enum Kind { kCountStar, kCount, kCountDistinct, kSum, kMin, kMax, kAvg };
  Kind kind;
  int64_t count = 0;
  bool any_double = false;
  int64_t isum = 0;
  double dsum = 0;
  Value extreme;  // MIN/MAX
  std::unordered_set<Value, rel::ValueHash> distinct;

  void Add(const Value& v) {
    switch (kind) {
      case kCountStar:
        ++count;
        return;
      case kCount:
        if (!v.is_null()) ++count;
        return;
      case kCountDistinct:
        if (!v.is_null()) distinct.insert(v);
        return;
      case kSum:
      case kAvg:
        if (v.is_null()) return;
        ++count;
        if (v.is_double()) {
          any_double = true;
          dsum += v.AsDouble();
        } else {
          isum += v.AsInt();
          dsum += v.AsDouble();
        }
        return;
      case kMin:
      case kMax:
        if (v.is_null()) return;
        if (extreme.is_null()) {
          extreme = v;
        } else if ((kind == kMin && v.Compare(extreme) < 0) ||
                   (kind == kMax && v.Compare(extreme) > 0)) {
          extreme = v;
        }
        return;
    }
  }

  Value Finish() const {
    switch (kind) {
      case kCountStar:
      case kCount:
        return Value(count);
      case kCountDistinct:
        return Value(static_cast<int64_t>(distinct.size()));
      case kSum:
        if (count == 0) return Value::Null();
        return any_double ? Value(dsum) : Value(isum);
      case kAvg:
        if (count == 0) return Value::Null();
        return Value(dsum / static_cast<double>(count));
      case kMin:
      case kMax:
        return extreme;
    }
    return Value::Null();
  }
};

bool IsAggregateCall(const Expr& e, AggState::Kind* kind) {
  if (e.kind != ExprKind::kFunc) return false;
  if (e.func_name == "COUNT") {
    if (e.distinct_arg) {
      *kind = AggState::kCountDistinct;
    } else if (e.args.size() == 1 && e.args[0]->kind == ExprKind::kStar) {
      *kind = AggState::kCountStar;
    } else {
      *kind = AggState::kCount;
    }
    return true;
  }
  if (e.func_name == "SUM") {
    *kind = AggState::kSum;
    return true;
  }
  if (e.func_name == "MIN") {
    *kind = AggState::kMin;
    return true;
  }
  if (e.func_name == "MAX") {
    *kind = AggState::kMax;
    return true;
  }
  if (e.func_name == "AVG") {
    *kind = AggState::kAvg;
    return true;
  }
  return false;
}

/// Output column name for a select item.
std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
    return item.expr->column;
  }
  return "c" + std::to_string(index);
}

}  // namespace

// ===========================================================================

class Executor::Impl {
 public:
  Impl(rel::Database* db, const Options& options, ExecStats* stats,
       const ParamBindings* params, PlanMemo* memo)
      : db_(db), options_(options), stats_(stats), params_(params),
        memo_(memo), spans_(options.analyze ? &stats->spans : nullptr) {}

  Result<ResultSet> ExecuteQuery(const SqlQuery& q) {
    if (q.final_select == nullptr) {
      // Transaction-control statements (BEGIN/COMMIT/ROLLBACK) have no
      // select; they must be routed through a core::Session, not executed.
      return Status::InvalidArgument(
          "transaction-control statement outside a session");
    }
    for (const Cte& cte : q.ctes) {
      context_ = cte.name;
      if (cte.recursive) {
        obs::ScopedSpan span(spans_, context_, "recursive cte");
        RETURN_NOT_OK(ExecRecursiveCte(cte));
        span.set_rows(ctes_[cte.name].rows.size());
      } else {
        ASSIGN_OR_RETURN(ResultSet res, ExecSelect(*cte.select));
        RETURN_NOT_OK(ApplyCteAliases(cte, &res));
        ctes_[cte.name] = std::move(res);
      }
    }
    context_ = "final";
    return ExecSelect(*q.final_select);
  }

 private:
  // ------------------------------------------------------------- CTEs ----

  static Status ApplyCteAliases(const Cte& cte, ResultSet* res) {
    if (cte.column_aliases.empty()) return Status::OK();
    if (cte.column_aliases.size() != res->columns.size()) {
      return Status::InvalidArgument("CTE " + cte.name +
                                     " column alias arity mismatch");
    }
    res->columns = cte.column_aliases;
    return Status::OK();
  }

  Status ExecRecursiveCte(const Cte& cte) {
    const SelectStmt& whole = *cte.select;
    if (whole.set_ops.size() != 1) {
      return Status::NotImplemented(
          "recursive CTE must be <base> UNION [ALL] <step>");
    }
    SelectStmt base = whole;
    base.set_ops.clear();
    const SelectStmt& step = *whole.set_ops[0].rhs;

    // `base` is a stack-local copy, so its TableRef addresses are not stable
    // plan-memo keys; the step select aliases the shared AST and is fine.
    const bool memo_was_enabled = memo_enabled_;
    memo_enabled_ = false;
    Result<ResultSet> base_result = ExecSelect(base);
    memo_enabled_ = memo_was_enabled;
    if (!base_result.ok()) return base_result.status();
    ResultSet total = std::move(base_result).value();
    RETURN_NOT_OK(ApplyCteAliasesForRecursive(cte, &total));
    std::unordered_set<Row, RowHash, RowEq> seen(total.rows.begin(),
                                                 total.rows.end());
    ResultSet delta = total;
    int iter = 0;
    while (!delta.rows.empty()) {
      if (++iter > options_.max_recursion) {
        return Status::OutOfRange("recursive CTE " + cte.name + " exceeded " +
                                  std::to_string(options_.max_recursion) +
                                  " iterations");
      }
      ++stats_->recursive_iterations;
      ctes_[cte.name] = delta;  // bind the working table
      ASSIGN_OR_RETURN(ResultSet produced, ExecSelect(step));
      ResultSet next;
      next.columns = delta.columns;
      for (auto& row : produced.rows) {
        if (seen.insert(row).second) {
          total.rows.push_back(row);
          next.rows.push_back(std::move(row));
        }
      }
      delta = std::move(next);
    }
    ctes_[cte.name] = std::move(total);
    return Status::OK();
  }

  Status ApplyCteAliasesForRecursive(const Cte& cte, ResultSet* res) {
    return ApplyCteAliases(cte, res);
  }

  // ----------------------------------------------------------- SELECT ----

  Result<ResultSet> ExecSelect(const SelectStmt& s) {
    // With set operations, ORDER BY / LIMIT bind to the combined result and
    // may only reference output columns; otherwise the core handles them
    // with full input-scope resolution.
    const bool defer_order_limit = !s.set_ops.empty();
    ASSIGN_OR_RETURN(ResultSet out, ExecSelectCore(s, defer_order_limit));
    for (const auto& set_op : s.set_ops) {
      ASSIGN_OR_RETURN(ResultSet rhs, ExecSelect(*set_op.rhs));
      if (rhs.columns.size() != out.columns.size()) {
        return Status::InvalidArgument("set operation arity mismatch");
      }
      switch (set_op.kind) {
        case SetOpKind::kUnionAll:
          for (auto& r : rhs.rows) out.rows.push_back(std::move(r));
          break;
        case SetOpKind::kUnion: {
          std::unordered_set<Row, RowHash, RowEq> seen(out.rows.begin(),
                                                       out.rows.end());
          std::vector<Row> merged;
          merged.reserve(seen.size());
          {
            std::unordered_set<Row, RowHash, RowEq> emitted;
            for (auto& r : out.rows) {
              if (emitted.insert(r).second) merged.push_back(std::move(r));
            }
            for (auto& r : rhs.rows) {
              if (emitted.insert(r).second) merged.push_back(std::move(r));
            }
          }
          out.rows = std::move(merged);
          break;
        }
        case SetOpKind::kIntersect: {
          std::unordered_set<Row, RowHash, RowEq> right(rhs.rows.begin(),
                                                        rhs.rows.end());
          std::vector<Row> merged;
          std::unordered_set<Row, RowHash, RowEq> emitted;
          for (auto& r : out.rows) {
            if (right.count(r) && emitted.insert(r).second) {
              merged.push_back(std::move(r));
            }
          }
          out.rows = std::move(merged);
          break;
        }
        case SetOpKind::kExcept: {
          std::unordered_set<Row, RowHash, RowEq> right(rhs.rows.begin(),
                                                        rhs.rows.end());
          std::vector<Row> merged;
          std::unordered_set<Row, RowHash, RowEq> emitted;
          for (auto& r : out.rows) {
            if (!right.count(r) && emitted.insert(r).second) {
              merged.push_back(std::move(r));
            }
          }
          out.rows = std::move(merged);
          break;
        }
      }
    }
    if (defer_order_limit) RETURN_NOT_OK(ApplyOrderLimit(s, &out));
    return out;
  }

  Status ApplyOrderLimit(const SelectStmt& s, ResultSet* out) {
    if (!s.order_by.empty()) {
      obs::ScopedSpan span(spans_, context_, "sort (output)");
      span.set_rows(out->rows.size());
      ColumnEnv env;
      for (const auto& c : out->columns) env.Add("", c);
      // Precompute sort keys.
      std::vector<std::pair<std::vector<Value>, size_t>> keyed;
      keyed.reserve(out->rows.size());
      EvalContext ctx;
      ctx.params = params_;
      for (size_t i = 0; i < out->rows.size(); ++i) {
        std::vector<Value> key;
        key.reserve(s.order_by.size());
        for (const auto& item : s.order_by) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, env, out->rows[i], ctx));
          key.push_back(std::move(v));
        }
        keyed.emplace_back(std::move(key), i);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [&](const auto& a, const auto& b) {
                         for (size_t k = 0; k < s.order_by.size(); ++k) {
                           int c = a.first[k].Compare(b.first[k]);
                           if (!s.order_by[k].ascending) c = -c;
                           if (c != 0) return c < 0;
                         }
                         return false;
                       });
      std::vector<Row> sorted;
      sorted.reserve(out->rows.size());
      for (const auto& [key, idx] : keyed) {
        sorted.push_back(std::move(out->rows[idx]));
      }
      out->rows = std::move(sorted);
    }
    const int64_t offset = s.offset.value_or(0);
    if (offset > 0) {
      if (static_cast<size_t>(offset) >= out->rows.size()) {
        out->rows.clear();
      } else {
        out->rows.erase(out->rows.begin(), out->rows.begin() + offset);
      }
    }
    if (s.limit.has_value() &&
        out->rows.size() > static_cast<size_t>(*s.limit)) {
      out->rows.resize(static_cast<size_t>(*s.limit));
    }
    return Status::OK();
  }

  Status ApplyLimitOffset(const SelectStmt& s, ResultSet* out) {
    SelectStmt limit_only;
    limit_only.limit = s.limit;
    limit_only.offset = s.offset;
    return ApplyOrderLimit(limit_only, out);
  }

  /// Sorts the pre-projection rows by the ORDER BY expressions. Bare column
  /// references that name a select alias are substituted by the aliased
  /// expression (SQL's output-column ORDER BY), everything else resolves in
  /// the FROM scope.
  Status SortInputRows(const SelectStmt& s, const ColumnEnv& env,
                       const EvalContext& ctx, std::vector<Row>* rows) {
    std::vector<ExprPtr> order_exprs;
    for (const auto& item : s.order_by) {
      ExprPtr e = item.expr;
      if (e->kind == ExprKind::kColumnRef && e->qualifier.empty() &&
          env.TryResolve("", e->column) < 0) {
        for (const auto& sel : s.items) {
          if (!sel.is_star && sel.alias == e->column) {
            e = sel.expr;
            break;
          }
        }
      }
      order_exprs.push_back(std::move(e));
    }
    std::vector<std::pair<std::vector<Value>, size_t>> keyed;
    keyed.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      std::vector<Value> key;
      key.reserve(order_exprs.size());
      for (const auto& e : order_exprs) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env, (*rows)[i], ctx));
        key.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(key), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < s.order_by.size(); ++k) {
                         int c = a.first[k].Compare(b.first[k]);
                         if (!s.order_by[k].ascending) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(rows->size());
    for (const auto& [key, idx] : keyed) sorted.push_back(std::move((*rows)[idx]));
    *rows = std::move(sorted);
    return Status::OK();
  }

  // Core select: FROM/WHERE/aggregate/DISTINCT/projection, plus ORDER BY /
  // LIMIT unless deferred to the set-operation combiner.
  Result<ResultSet> ExecSelectCore(const SelectStmt& s,
                                   bool defer_order_limit) {
    EvalContext ctx;
    ctx.params = params_;
    RETURN_NOT_OK(MaterializeInSubqueries(s, &ctx));

    ColumnEnv env;
    WorkingSet ws;
    if (s.from.empty()) {
      ws.rows.emplace_back();  // one empty row: SELECT 1
    } else {
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(s.where, &conjuncts);
      std::vector<bool> consumed(conjuncts.size(), false);

      for (size_t ref_index = 0; ref_index < s.from.size(); ++ref_index) {
        const TableRef& ref = s.from[ref_index];
        RETURN_NOT_OK(JoinNextRef(s, ref, ref_index == 0, conjuncts,
                                  &consumed, &env, &ws, &ctx));
      }
      // Residual conjuncts (should all be consumed by now, but apply any
      // stragglers as a final filter for safety).
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (consumed[i]) continue;
        if (!IsFullyBound(*conjuncts[i], env)) {
          return Status::InvalidArgument("unresolvable predicate: " +
                                         RenderExpr(*conjuncts[i]));
        }
        RETURN_NOT_OK(FilterWorkingSet(*conjuncts[i], env, ctx, &ws));
        consumed[i] = true;
      }
    }

    // Aggregate or plain projection.
    bool has_aggregate = !s.group_by.empty();
    for (const auto& item : s.items) {
      if (!item.is_star && ContainsAggregate(item.expr)) has_aggregate = true;
    }
    if (has_aggregate) {
      obs::ScopedSpan span(spans_, context_, "aggregate");
      ASSIGN_OR_RETURN(ResultSet out, Aggregate(s, env, ws, ctx));
      span.set_rows(out.rows.size());
      span.Finish();
      if (!defer_order_limit) RETURN_NOT_OK(ApplyOrderLimit(s, &out));
      return out;
    }

    if (!defer_order_limit && !s.order_by.empty()) {
      obs::ScopedSpan span(spans_, context_, "sort");
      RETURN_NOT_OK(SortInputRows(s, env, ctx, ws.MutableRows()));
      span.set_rows(ws.rows.size());
    }
    ResultSet out;
    RETURN_NOT_OK(Project(s, env, ws, ctx, &out));
    if (s.distinct) Dedupe(&out);
    if (!defer_order_limit) RETURN_NOT_OK(ApplyLimitOffset(s, &out));
    return out;
  }

  // ------------------------------------------------------ join drivers ----

  Status JoinNextRef(const SelectStmt& s, const TableRef& ref, bool first,
                     const std::vector<ExprPtr>& conjuncts,
                     std::vector<bool>* consumed, ColumnEnv* env,
                     WorkingSet* ws, EvalContext* ctx) {
    ASSIGN_OR_RETURN(Relation relation, ResolveRef(ref));
    const std::string& alias = ref.exposure();
    if (relation.base != nullptr) {
      // Projection pushdown: carry only the referenced columns forward.
      std::unordered_set<std::string> needed;
      if (CollectNeededColumns(s, alias, &needed)) {
        std::vector<int> projection;
        std::vector<std::string> pruned_names;
        const rel::Schema& schema = relation.base->schema();
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          if (needed.count(schema.column(c).name)) {
            projection.push_back(static_cast<int>(c));
            pruned_names.push_back(schema.column(c).name);
          }
        }
        if (projection.size() < schema.num_columns()) {
          relation.projection = std::move(projection);
          relation.columns = std::move(pruned_names);
        }
      }
    }

    // Env after this ref joins in.
    ColumnEnv next_env = *env;
    std::vector<std::string> ref_columns;
    if (ref.kind == TableRefKind::kUnnestValues ||
        ref.kind == TableRefKind::kUnnestJson) {
      ref_columns = ref.column_aliases;
    } else {
      ref_columns = relation.columns;
    }
    for (const auto& c : ref_columns) next_env.Add(alias, c);

    // WHERE conjuncts that become decidable once this ref is joined.
    std::vector<ExprPtr> applicable;
    std::vector<size_t> applicable_ids;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if ((*consumed)[i]) continue;
      if (IsFullyBound(*conjuncts[i], next_env) &&
          (first || !IsFullyBound(*conjuncts[i], *env))) {
        applicable.push_back(conjuncts[i]);
        applicable_ids.push_back(i);
      } else if (first && IsFullyBound(*conjuncts[i], next_env)) {
        applicable.push_back(conjuncts[i]);
        applicable_ids.push_back(i);
      }
    }

    Status st;
    if (ref.join == JoinType::kLeftOuter) {
      st = LeftOuterJoin(ref, relation, alias, ref_columns, *env, next_env,
                         ws->MutableRows(), ctx);
      // WHERE-clause conjuncts on the nullable side apply after the join.
      if (st.ok()) {
        for (size_t k = 0; k < applicable.size(); ++k) {
          st = FilterRows(*applicable[k], next_env, *ctx, &ws->rows);
          if (!st.ok()) break;
          (*consumed)[applicable_ids[k]] = true;
        }
      }
      if (st.ok()) *env = std::move(next_env);
      return st;
    }

    if (ref.kind == TableRefKind::kUnnestValues ||
        ref.kind == TableRefKind::kUnnestJson) {
      // Filters fuse into the lateral expansion: candidate rows that fail
      // (e.g. the templates' t.val IS NOT NULL) are never materialized.
      st = ref.kind == TableRefKind::kUnnestValues
               ? UnnestValues(ref, next_env, applicable, ws->MutableRows(), ctx)
               : UnnestJson(ref, next_env, applicable, ws->MutableRows(), ctx);
      if (!st.ok()) return st;
      for (size_t k = 0; k < applicable.size(); ++k) {
        (*consumed)[applicable_ids[k]] = true;
      }
      *env = std::move(next_env);
      return Status::OK();
    } else if (first) {
      st = AccessFirst(ref, relation, alias, next_env, applicable,
                       &applicable_ids, consumed, ws, ctx);
      *env = std::move(next_env);
      return st;
    } else {
      st = JoinInner(ref, relation, alias, ref_columns, *env, next_env,
                     applicable, &applicable_ids, consumed, ws, ctx);
      if (st.ok()) *env = std::move(next_env);
      return st;
    }
  }

  Result<Relation> ResolveRef(const TableRef& ref) {
    Relation relation;
    switch (ref.kind) {
      case TableRefKind::kBaseTable: {
        auto it = ctes_.find(ref.table_name);
        if (it != ctes_.end()) {
          relation.borrowed = &it->second;
          relation.columns = it->second.columns;
          return relation;
        }
        const rel::Table* table = db_->GetTable(ref.table_name);
        if (table == nullptr) {
          return Status::NotFound("unknown table " + ref.table_name);
        }
        for (const auto& c : table->schema().columns()) {
          relation.columns.push_back(c.name);
        }
        if (options_.read_ts != 0 && table->HasVersionsAfter(options_.read_ts)) {
          // Snapshot pin with newer committed versions: materialize the
          // table as of read_ts. Leaving `base` null keeps every live-data
          // fast path (indexes, batched scans) off this relation.
          auto snap = std::make_shared<ResultSet>();
          snap->columns = relation.columns;
          table->ScanAt(options_.read_ts,
                        [&](const Row& row) { snap->rows.push_back(row); });
          stats_->rows_scanned += snap->rows.size();
          relation.owned = std::move(snap);
          return relation;
        }
        relation.base = table;
        return relation;
      }
      case TableRefKind::kSubquery: {
        ASSIGN_OR_RETURN(ResultSet res, ExecSelect(*ref.subquery));
        relation.owned = std::make_shared<ResultSet>(std::move(res));
        relation.columns = relation.owned->columns;
        return relation;
      }
      case TableRefKind::kUnnestValues:
      case TableRefKind::kUnnestJson:
        relation.columns = ref.column_aliases;
        return relation;
    }
    return Status::Internal("bad table ref kind");
  }

  /// Lateral TABLE(VALUES ...) expansion: every VALUES row is evaluated in
  /// the scope of each current row; fused filters drop candidates before
  /// they are materialized.
  Status UnnestValues(const TableRef& ref, const ColumnEnv& next_env,
                      const std::vector<ExprPtr>& filters,
                      std::vector<Row>* rows, EvalContext* ctx) {
    obs::ScopedSpan span(spans_, context_, "unnest values " + ref.exposure());
    std::vector<Row> out;
    const size_t arity = ref.column_aliases.size();
    Row scratch;
    for (const Row& current : *rows) {
      // One reusable scratch row per input row; the tail slots are
      // overwritten for every VALUES candidate.
      scratch.assign(current.begin(), current.end());
      scratch.resize(next_env.size());
      for (const auto& values_row : ref.values_rows) {
        if (values_row.size() != arity) {
          return Status::InvalidArgument("VALUES row arity mismatch");
        }
        for (size_t c = 0; c < arity; ++c) {
          // VALUES expressions reference the pre-join slots only.
          ASSIGN_OR_RETURN(Value v,
                           EvalExpr(*values_row[c], next_env, scratch, *ctx));
          scratch[current.size() + c] = std::move(v);
        }
        bool pass = true;
        for (const auto& f : filters) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*f, next_env, scratch, *ctx));
          if (!IsTruthy(v)) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(scratch);
      }
    }
    *rows = std::move(out);
    span.set_rows(rows->size());
    return Status::OK();
  }

  /// Lateral TABLE(JSON_EDGES(doc)) expansion: parses the serialized
  /// adjacency document of each current row and emits one row per edge
  /// entry — the engine-internal navigation cost a JSON column implies.
  Status UnnestJson(const TableRef& ref, const ColumnEnv& next_env,
                    const std::vector<ExprPtr>& filters, std::vector<Row>* rows,
                    EvalContext* ctx) {
    const size_t arity = ref.column_aliases.size();
    if (arity < 1 || arity > 3) {
      return Status::InvalidArgument("JSON_EDGES exposes 1-3 columns");
    }
    obs::ScopedSpan span(spans_, context_,
                         "unnest json_edges " + ref.exposure());
    std::vector<Row> out;
    Row scratch;
    for (const Row& current : *rows) {
      scratch.assign(current.begin(), current.end());
      scratch.resize(next_env.size());
      ASSIGN_OR_RETURN(Value doc_value,
                       EvalExpr(*ref.json_doc, next_env, scratch, *ctx));
      if (doc_value.is_null()) continue;
      json::JsonValue doc;
      if (doc_value.is_string()) {
        // Serialized document: the parse is the real per-access cost.
        ASSIGN_OR_RETURN(doc, json::Parse(doc_value.AsString()));
      } else if (doc_value.is_json()) {
        doc = doc_value.AsJson();
      } else {
        continue;
      }
      if (!doc.is_object()) continue;
      for (const auto& [label, list] : doc.AsObject()) {
        if (!list.is_array()) continue;
        for (const auto& entry : list.AsArray()) {
          const json::JsonValue* val = entry.Find("val");
          const json::JsonValue* eid = entry.Find("eid");
          size_t slot = current.size();
          if (arity >= 2) scratch[slot++] = Value(label);
          if (arity == 3) {
            scratch[slot++] = eid != nullptr && eid->is_int()
                                  ? Value(eid->AsInt())
                                  : Value::Null();
          }
          scratch[slot] = val != nullptr && val->is_int() ? Value(val->AsInt())
                                                          : Value::Null();
          bool pass = true;
          for (const auto& f : filters) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*f, next_env, scratch, *ctx));
            if (!IsTruthy(v)) {
              pass = false;
              break;
            }
          }
          if (pass) out.push_back(scratch);
        }
      }
    }
    *rows = std::move(out);
    span.set_rows(rows->size());
    return Status::OK();
  }

  /// Access path for the first FROM item.
  Status AccessFirst(const TableRef& ref, const Relation& relation,
                     const std::string& alias, const ColumnEnv& env,
                     const std::vector<ExprPtr>& applicable,
                     std::vector<size_t>* applicable_ids,
                     std::vector<bool>* consumed, WorkingSet* ws,
                     EvalContext* ctx) {
    ws->rows.clear();
    ws->batch = ColumnBatch();
    // Batch mode enters the pipeline here; CTE/subquery sources stay
    // row-major (their rows are already materialized ResultSets).
    ws->is_batch = options_.vectorized && relation.base != nullptr;
    if (ws->is_batch) ws->batch.Reset(relation.columns.size());
    std::vector<bool> used(applicable.size(), false);

    if (relation.base != nullptr && options_.enable_indexes) {
      RETURN_NOT_OK(
          TryIndexAccess(ref, relation, alias, applicable, &used, ws, *ctx));
    }
    if (ws->size() == 0 && !index_access_hit_) {
      // Full scan.
      ++stats_->table_scans;
      if (relation.base != nullptr) {
        Trace("seq scan " + relation.base->name());
        obs::ScopedSpan span(spans_, context_,
                             "seq scan " + relation.base->name());
        if (ws->is_batch) {
          size_t scanned = 0;
          RETURN_NOT_OK(
              ScanBatched(relation, env, applicable, &used, *ctx, ws, &scanned));
          span.set_rows(scanned);
        } else {
          relation.base->Scan([&](rel::RowId, const Row& row) {
            ++stats_->rows_scanned;
            ws->rows.push_back(relation.Project(row));
          });
          span.set_rows(ws->rows.size());
        }
      } else {
        obs::ScopedSpan span(spans_, context_, "scan " + ref.exposure());
        const std::vector<Row>* src = relation.rows();
        if (src == nullptr) return Status::Internal("relation has no rows");
        ws->rows.reserve(src->size());
        for (const auto& r : *src) ws->rows.push_back(r);
        stats_->rows_scanned += src->size();
        span.set_rows(src->size());
      }
    }
    index_access_hit_ = false;
    // Apply remaining predicates.
    for (size_t k = 0; k < applicable.size(); ++k) {
      if (!used[k]) {
        RETURN_NOT_OK(FilterWorkingSet(*applicable[k], env, *ctx, ws));
      }
      (*consumed)[(*applicable_ids)[k]] = true;
    }
    return Status::OK();
  }

  /// Vectorized full scan: fill a chunk of kVectorChunkRows, run every
  /// pending filter over it (gathering survivors between conjuncts so later
  /// predicates only see rows earlier ones passed, like the row path), and
  /// append what remains to the output batch. Marks the filters it fused in
  /// `*used`; `*scanned` reports total rows read for the scan span.
  Status ScanBatched(const Relation& relation, const ColumnEnv& env,
                     const std::vector<ExprPtr>& applicable,
                     std::vector<bool>* used, const EvalContext& ctx,
                     WorkingSet* ws, size_t* scanned) {
    std::vector<const Expr*> filters;
    for (size_t k = 0; k < applicable.size(); ++k) {
      if (!(*used)[k]) {
        filters.push_back(applicable[k].get());
        (*used)[k] = true;
      }
    }
    const size_t width = ws->batch.num_cols();
    ColumnBatch chunk;
    chunk.Reset(width);
    chunk.Reserve(rel::kVectorChunkRows);
    std::vector<uint32_t> sel;
    Status st;  // Scan's callback cannot return a status directly
    auto flush = [&]() {
      if (!st.ok() || chunk.num_rows == 0) return;
      const ColumnBatch* current = &chunk;
      ColumnBatch filtered;
      for (const Expr* f : filters) {
        sel.clear();
        st = EvalPredicateBatch(*f, env, *current, ctx, &sel);
        if (!st.ok()) return;
        if (sel.size() != current->num_rows) {
          ColumnBatch next;
          next.Reset(width);
          next.AppendGather(*current, sel);
          filtered = std::move(next);
          current = &filtered;
        }
        if (current->num_rows == 0) break;
      }
      for (size_t i = 0; i < current->num_rows; ++i) {
        ws->batch.AppendRowFrom(*current, i);
      }
      chunk.Reset(width);
      chunk.Reserve(rel::kVectorChunkRows);
    };
    relation.base->Scan([&](rel::RowId, const Row& row) {
      if (!st.ok()) return;
      ++stats_->rows_scanned;
      ++*scanned;
      chunk.AppendProjected(row, relation.projection);
      if (chunk.num_rows >= rel::kVectorChunkRows) flush();
    });
    flush();
    return st;
  }

  /// Attempts index-based retrieval for the first FROM item. Sets
  /// `index_access_hit_` and fills `rows` on success; marks the predicates
  /// it fully satisfied in `*used`. The access-path decision (which index,
  /// which predicates) is split from its execution so a prepared query can
  /// memoize the former and replay only the latter with fresh bind values.
  Status TryIndexAccess(const TableRef& ref, const Relation& relation,
                        const std::string& alias,
                        const std::vector<ExprPtr>& applicable,
                        std::vector<bool>* used, WorkingSet* ws,
                        const EvalContext& ctx) {
    const rel::Table& table = *relation.base;
    index_access_hit_ = false;

    if (MemoActive()) {
      if (auto plan = memo_->GetAccess(&ref);
          plan != nullptr && plan->n_applicable == applicable.size()) {
        return ExecAccessPlan(*plan, relation, used, ws, ctx);
      }
    }

    PlanMemo::AccessPlan plan = ChooseAccessPlan(table, alias, applicable);
    if (MemoActive()) memo_->PutAccess(&ref, plan);
    return ExecAccessPlan(plan, relation, used, ws, ctx);
  }

  /// Picks the access path for the first FROM item: the decision half of
  /// TryIndexAccess, independent of bind values.
  PlanMemo::AccessPlan ChooseAccessPlan(const rel::Table& table,
                                        const std::string& alias,
                                        const std::vector<ExprPtr>& applicable) {
    PlanMemo::AccessPlan plan;
    plan.n_applicable = applicable.size();

    // Recognize indexable predicates.
    std::vector<IndexablePredicate> preds;
    std::vector<size_t> pred_slot;
    for (size_t k = 0; k < applicable.size(); ++k) {
      IndexablePredicate p;
      if (MatchIndexablePredicate(applicable[k], alias, table, &p)) {
        preds.push_back(std::move(p));
        pred_slot.push_back(k);
      }
    }
    if (preds.empty()) return plan;  // kSeqScan

    // 1) Composite / single-column equality via regular indexes.
    std::unordered_map<int, size_t> eq_by_column;  // column_id -> preds idx
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i].kind == IndexablePredicate::kColumnEq) {
        eq_by_column.emplace(preds[i].column_id, i);
      }
    }
    const rel::Index* best = nullptr;
    for (const auto& index : table.indexes()) {
      if (index->is_json()) continue;
      bool covered = !index->column_ids().empty();
      for (int c : index->column_ids()) {
        if (!eq_by_column.count(c)) {
          covered = false;
          break;
        }
      }
      if (covered && (best == nullptr || index->column_ids().size() >
                                             best->column_ids().size())) {
        best = index.get();
      }
    }
    if (best != nullptr) {
      plan.kind = PlanMemo::AccessPlan::kIndexEq;
      plan.index_name = best->name();
      for (int c : best->column_ids()) {
        const size_t pi = eq_by_column[c];
        plan.eq_preds.push_back(preds[pi]);
        plan.eq_slots.push_back(pred_slot[pi]);
      }
      return plan;
    }

    // 2) JSON functional indexes.
    for (size_t i = 0; i < preds.size(); ++i) {
      const IndexablePredicate& p = preds[i];
      if (p.kind == IndexablePredicate::kJsonEq) {
        const rel::Index* idx =
            table.FindJsonIndex(p.column_id, p.json_key, rel::IndexKind::kHash);
        if (idx == nullptr) {
          idx = table.FindJsonIndex(p.column_id, p.json_key,
                                    rel::IndexKind::kOrdered);
        }
        if (idx == nullptr) continue;
        plan.kind = PlanMemo::AccessPlan::kJsonEq;
        plan.index_name = idx->name();
        plan.json_pred = p;
        plan.json_slot = pred_slot[i];
        return plan;
      }
      if (p.kind == IndexablePredicate::kJsonRange ||
          p.kind == IndexablePredicate::kJsonPrefix) {
        const rel::Index* idx = table.FindJsonIndex(p.column_id, p.json_key,
                                                    rel::IndexKind::kOrdered);
        if (idx == nullptr) continue;
        plan.kind = p.kind == IndexablePredicate::kJsonPrefix
                        ? PlanMemo::AccessPlan::kJsonPrefix
                        : PlanMemo::AccessPlan::kJsonRange;
        plan.index_name = idx->name();
        plan.json_pred = p;
        plan.json_slot = pred_slot[i];
        return plan;
      }
    }
    return plan;  // kSeqScan
  }

  /// Executes a chosen access plan, resolving bind parameters per call. A
  /// kSeqScan plan (or a vanished index) leaves `index_access_hit_` false so
  /// AccessFirst falls back to the full scan.
  Status ExecAccessPlan(const PlanMemo::AccessPlan& plan,
                        const Relation& relation, std::vector<bool>* used,
                        WorkingSet* ws, const EvalContext& ctx) {
    using AccessPlan = PlanMemo::AccessPlan;
    const rel::Table& table = *relation.base;
    switch (plan.kind) {
      case AccessPlan::kSeqScan:
        return Status::OK();
      case AccessPlan::kIndexEq: {
        const rel::Index* idx = FindIndexByName(table, plan.index_name);
        if (idx == nullptr) return Status::OK();
        rel::IndexKey key;
        for (size_t i = 0; i < plan.eq_preds.size(); ++i) {
          ASSIGN_OR_RETURN(Value v,
                           IndexablePredicateValue(plan.eq_preds[i], ctx));
          key.parts.push_back(std::move(v));
          (*used)[plan.eq_slots[i]] = true;
        }
        obs::ScopedSpan span(spans_, context_,
                             "index lookup " + table.name() + " via " +
                                 idx->name());
        std::vector<rel::RowId> rids;
        idx->Lookup(key, &rids);
        ++stats_->index_lookups;
        Trace("index lookup " + table.name() + " via " + idx->name());
        RETURN_NOT_OK(FetchRows(relation, rids, ws));
        span.set_rows(rids.size());
        index_access_hit_ = true;
        return Status::OK();
      }
      case AccessPlan::kJsonEq: {
        const rel::Index* idx = FindIndexByName(table, plan.index_name);
        if (idx == nullptr) return Status::OK();
        ASSIGN_OR_RETURN(Value v, IndexablePredicateValue(plan.json_pred, ctx));
        rel::IndexKey key;
        key.parts.push_back(std::move(v));
        obs::ScopedSpan span(spans_, context_,
                             "JSON index lookup " + table.name() + " via " +
                                 idx->name());
        std::vector<rel::RowId> rids;
        idx->Lookup(key, &rids);
        ++stats_->index_lookups;
        Trace("JSON index lookup " + table.name() + " via " + idx->name());
        RETURN_NOT_OK(FetchRows(relation, rids, ws));
        span.set_rows(rids.size());
        (*used)[plan.json_slot] = true;
        index_access_hit_ = true;
        return Status::OK();
      }
      case AccessPlan::kJsonRange:
      case AccessPlan::kJsonPrefix: {
        const rel::Index* idx = FindIndexByName(table, plan.index_name);
        if (idx == nullptr) return Status::OK();
        const auto* ordered = static_cast<const rel::OrderedIndex*>(idx);
        obs::ScopedSpan span(spans_, context_,
                             "JSON index range scan " + table.name() +
                                 " via " + idx->name());
        std::vector<rel::RowId> rids;
        if (plan.kind == AccessPlan::kJsonPrefix) {
          // [prefix, prefix + 0xFF): the residual LIKE still runs below.
          std::string hi = plan.json_pred.like_prefix;
          hi.push_back('\xff');
          ordered->Range(Value(plan.json_pred.like_prefix), true, Value(hi),
                         false, &rids);
        } else {
          ASSIGN_OR_RETURN(Value bound,
                           IndexablePredicateValue(plan.json_pred, ctx));
          switch (plan.json_pred.op) {
            case BinaryOp::kLt:
              ordered->Range(Value::Null(), true, bound, false, &rids);
              break;
            case BinaryOp::kLe:
              ordered->Range(Value::Null(), true, bound, true, &rids);
              break;
            case BinaryOp::kGt:
              ordered->Range(bound, false, Value::Null(), true, &rids);
              break;
            default:
              ordered->Range(bound, true, Value::Null(), true, &rids);
              break;
          }
        }
        ++stats_->index_range_scans;
        Trace("JSON index range scan " + table.name() + " via " + idx->name());
        RETURN_NOT_OK(FetchRows(relation, rids, ws));
        span.set_rows(rids.size());
        // Range bounds via ordered index can admit non-matching type ranks
        // (e.g. NULL bucket on unbounded-low); keep the predicate as filter.
        index_access_hit_ = true;
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Status FetchRows(const Relation& relation, const std::vector<rel::RowId>& rids,
                   WorkingSet* ws) {
    Row row;
    for (rel::RowId rid : rids) {
      RETURN_NOT_OK(relation.base->Get(rid, &row));
      if (ws->is_batch) {
        ws->batch.AppendProjected(row, relation.projection);
      } else {
        ws->rows.push_back(relation.Project(row));
      }
      ++stats_->rows_scanned;
    }
    return Status::OK();
  }

  /// Inner (comma) join of the next ref into the current rows.
  Status JoinInner(const TableRef& ref, const Relation& relation,
                   const std::string& alias,
                   const std::vector<std::string>& ref_columns,
                   const ColumnEnv& env, const ColumnEnv& next_env,
                   const std::vector<ExprPtr>& applicable,
                   std::vector<size_t>* applicable_ids,
                   std::vector<bool>* consumed, WorkingSet* ws,
                   EvalContext* ctx) {
    using JoinPlan = PlanMemo::JoinPlan;
    // Partition applicable conjuncts: equi-join keys / ref-local / residual.
    std::vector<EquiJoinKey> keys;
    std::vector<bool> used(applicable.size(), false);
    const rel::Index* best = nullptr;
    std::vector<size_t> best_key_order;
    bool have_plan = false;

    // Replay a memoized join strategy for this table ref.
    if (MemoActive()) {
      if (auto plan = memo_->GetJoin(&ref);
          plan != nullptr && plan->n_applicable == applicable.size()) {
        keys = plan->keys;
        used = plan->used;
        if (plan->kind == JoinPlan::kIndexNL && relation.base != nullptr) {
          best = FindIndexByName(*relation.base, plan->index_name);
          best_key_order = plan->best_key_order;
        }
        have_plan = best != nullptr || plan->kind != JoinPlan::kIndexNL;
        if (!have_plan) {
          // Memoized index no longer exists: replan from scratch.
          keys.clear();
          used.assign(applicable.size(), false);
          best_key_order.clear();
        }
      }
    }

    if (!have_plan) {
      for (size_t k = 0; k < applicable.size(); ++k) {
        EquiJoinKey key;
        if (MatchEquiJoin(applicable[k], env, alias, ref_columns, &key)) {
          keys.push_back(std::move(key));
          used[k] = true;
        }
      }
      if (!keys.empty() && relation.base != nullptr &&
          options_.enable_indexes) {
        // Index nested-loop join: the index covering the most key columns.
        const rel::Table& table = *relation.base;
        for (const auto& index : table.indexes()) {
          if (index->is_json() || index->column_ids().empty()) continue;
          std::vector<size_t> order;
          bool covered = true;
          for (int c : index->column_ids()) {
            const std::string& cname =
                table.schema().column(static_cast<size_t>(c)).name;
            bool found = false;
            for (size_t ki = 0; ki < keys.size(); ++ki) {
              if (keys[ki].column == cname) {
                order.push_back(ki);
                found = true;
                break;
              }
            }
            if (!found) {
              covered = false;
              break;
            }
          }
          if (covered && (best == nullptr || index->column_ids().size() >
                                                 best->column_ids().size())) {
            best = index.get();
            best_key_order = std::move(order);
          }
        }
      }
      if (MemoActive()) {
        JoinPlan plan;
        plan.n_applicable = applicable.size();
        plan.keys = keys;
        plan.used = used;
        if (best != nullptr) {
          plan.kind = JoinPlan::kIndexNL;
          plan.index_name = best->name();
          plan.best_key_order = best_key_order;
        } else {
          plan.kind = keys.empty() ? JoinPlan::kCross : JoinPlan::kHash;
        }
        memo_->PutJoin(&ref, std::move(plan));
      }
    }

    {
      if (best != nullptr) {
        const rel::Table& table = *relation.base;
        ++stats_->index_nl_joins;
        Trace("index nested-loop join " + table.name() + " via " +
              best->name());
        obs::ScopedSpan span(spans_, context_,
                             "index nested-loop join " + table.name() +
                                 " via " + best->name());
        if (ws->is_batch) {
          RETURN_NOT_OK(IndexNlJoinBatched(relation, env, keys,
                                           best_key_order, *best, ctx, ws));
        } else {
          std::vector<Row> out;
          Row fetched;
          for (const Row& current : ws->rows) {
            rel::IndexKey key;
            key.parts.reserve(best_key_order.size());
            bool null_key = false;
            for (size_t ki : best_key_order) {
              ASSIGN_OR_RETURN(Value v,
                               EvalExpr(*keys[ki].outer, env, current, *ctx));
              if (v.is_null()) null_key = true;
              key.parts.push_back(std::move(v));
            }
            if (null_key) continue;  // NULL never equi-joins
            std::vector<rel::RowId> rids;
            best->Lookup(key, &rids);
            ++stats_->index_lookups;
            for (rel::RowId rid : rids) {
              RETURN_NOT_OK(table.Get(rid, &fetched));
              Row projected = relation.Project(fetched);
              Row combined = current;
              combined.insert(combined.end(), projected.begin(),
                              projected.end());
              out.push_back(std::move(combined));
            }
          }
          ws->rows = std::move(out);
        }
        span.set_rows(ws->size());
        span.Finish();
        // Keys covered by the chosen index are satisfied; others (plus all
        // non-equi applicable conjuncts) filter below.
        std::vector<bool> key_used(keys.size(), false);
        for (size_t ki : best_key_order) key_used[ki] = true;
        size_t key_cursor = 0;
        for (size_t k = 0; k < applicable.size(); ++k) {
          if (used[k]) {
            const bool satisfied = key_used[key_cursor++];
            if (!satisfied) {
              RETURN_NOT_OK(
                  FilterWorkingSet(*applicable[k], next_env, *ctx, ws));
            }
          } else {
            RETURN_NOT_OK(FilterWorkingSet(*applicable[k], next_env, *ctx, ws));
          }
          (*consumed)[(*applicable_ids)[k]] = true;
        }
        return Status::OK();
      }
    }

    if (!keys.empty()) {
      // Hash join: build on the new relation.
      ++stats_->hash_joins;
      Trace("hash join build on " + ref.exposure());
      // Key slots within the ref row.
      std::vector<int> build_slots;
      for (const auto& key : keys) {
        int slot = -1;
        for (size_t c = 0; c < ref_columns.size(); ++c) {
          if (ref_columns[c] == key.column) {
            slot = static_cast<int>(c);
            break;
          }
        }
        if (slot < 0) return Status::Internal("join key column missing");
        build_slots.push_back(slot);
      }
      if (ws->is_batch) {
        ASSIGN_OR_RETURN(ColumnBatch build, MaterializeRelationBatch(relation));
        obs::ScopedSpan span(spans_, context_,
                             "hash join on " + ref.exposure());
        RETURN_NOT_OK(HashJoinBatched(env, keys, build_slots, build, ctx, ws));
        span.set_rows(ws->size());
        span.Finish();
      } else {
        ASSIGN_OR_RETURN(std::vector<Row> build_rows,
                         MaterializeRelation(relation));
        obs::ScopedSpan span(spans_, context_,
                             "hash join on " + ref.exposure());
        std::unordered_multimap<rel::IndexKey, const Row*, rel::IndexKeyHash>
            hash_table;
        hash_table.reserve(build_rows.size());
        for (const Row& r : build_rows) {
          rel::IndexKey key;
          bool null_key = false;
          for (int slot : build_slots) {
            if (r[static_cast<size_t>(slot)].is_null()) null_key = true;
            key.parts.push_back(r[static_cast<size_t>(slot)]);
          }
          if (!null_key) hash_table.emplace(std::move(key), &r);
        }
        std::vector<Row> out;
        for (const Row& current : ws->rows) {
          rel::IndexKey key;
          bool null_key = false;
          for (const auto& k : keys) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*k.outer, env, current, *ctx));
            if (v.is_null()) null_key = true;
            key.parts.push_back(std::move(v));
          }
          if (null_key) continue;
          auto [lo, hi] = hash_table.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            Row combined = current;
            combined.insert(combined.end(), it->second->begin(),
                            it->second->end());
            out.push_back(std::move(combined));
          }
        }
        ws->rows = std::move(out);
        span.set_rows(ws->rows.size());
        span.Finish();
      }
      for (size_t k = 0; k < applicable.size(); ++k) {
        if (!used[k]) {
          RETURN_NOT_OK(FilterWorkingSet(*applicable[k], next_env, *ctx, ws));
        }
        (*consumed)[(*applicable_ids)[k]] = true;
      }
      return Status::OK();
    }

    // No equi keys: nested-loop cross join, then filter.
    if (ws->is_batch) {
      ASSIGN_OR_RETURN(ColumnBatch right, MaterializeRelationBatch(relation));
      obs::ScopedSpan span(spans_, context_, "cross join " + ref.exposure());
      const size_t n = ws->batch.num_rows, m = right.num_rows;
      std::vector<uint32_t> left_sel, right_sel;
      left_sel.reserve(n * m);
      right_sel.reserve(n * m);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
          left_sel.push_back(static_cast<uint32_t>(i));
          right_sel.push_back(static_cast<uint32_t>(j));
        }
      }
      ColumnBatch out;
      out.cols.reserve(ws->batch.num_cols() + right.num_cols());
      for (const auto& c : ws->batch.cols) out.cols.push_back(c.Gather(left_sel));
      for (const auto& c : right.cols) out.cols.push_back(c.Gather(right_sel));
      out.num_rows = left_sel.size();
      ws->SetBatch(std::move(out));
      span.set_rows(ws->size());
      span.Finish();
    } else {
      ASSIGN_OR_RETURN(std::vector<Row> right_rows,
                       MaterializeRelation(relation));
      obs::ScopedSpan span(spans_, context_, "cross join " + ref.exposure());
      std::vector<Row> out;
      out.reserve(ws->rows.size() * right_rows.size());
      for (const Row& current : ws->rows) {
        for (const Row& r : right_rows) {
          Row combined = current;
          combined.insert(combined.end(), r.begin(), r.end());
          out.push_back(std::move(combined));
        }
      }
      ws->rows = std::move(out);
      span.set_rows(ws->rows.size());
      span.Finish();
    }
    for (size_t k = 0; k < applicable.size(); ++k) {
      RETURN_NOT_OK(FilterWorkingSet(*applicable[k], next_env, *ctx, ws));
      (*consumed)[(*applicable_ids)[k]] = true;
    }
    return Status::OK();
  }

  /// Batched index nested-loop join: the equi-key expressions evaluate once
  /// per vector, then each probe row drives one index lookup; matches gather
  /// the probe side and append the fetched build side column by column.
  Status IndexNlJoinBatched(const Relation& relation, const ColumnEnv& env,
                            const std::vector<EquiJoinKey>& keys,
                            const std::vector<size_t>& key_order,
                            const rel::Index& index, EvalContext* ctx,
                            WorkingSet* ws) {
    const ColumnBatch& left = ws->batch;
    std::vector<ColumnVector> key_cols;
    key_cols.reserve(key_order.size());
    for (size_t ki : key_order) {
      ASSIGN_OR_RETURN(ColumnVector col,
                       EvalExprBatch(*keys[ki].outer, env, left, *ctx));
      key_cols.push_back(std::move(col));
    }
    std::vector<uint32_t> left_sel;
    ColumnBatch right;
    right.Reset(relation.columns.size());
    rel::IndexKey key;
    key.parts.reserve(key_cols.size());
    std::vector<rel::RowId> rids;
    Row fetched;
    for (size_t i = 0; i < left.num_rows; ++i) {
      key.parts.clear();
      bool null_key = false;
      for (const auto& col : key_cols) {
        Value v = col.GetValue(i);
        if (v.is_null()) null_key = true;
        key.parts.push_back(std::move(v));
      }
      if (null_key) continue;  // NULL never equi-joins
      rids.clear();
      index.Lookup(key, &rids);
      ++stats_->index_lookups;
      for (rel::RowId rid : rids) {
        RETURN_NOT_OK(relation.base->Get(rid, &fetched));
        right.AppendProjected(fetched, relation.projection);
        left_sel.push_back(static_cast<uint32_t>(i));
      }
    }
    ColumnBatch out;
    out.cols.reserve(left.num_cols() + right.num_cols());
    for (const auto& c : left.cols) out.cols.push_back(c.Gather(left_sel));
    for (auto& c : right.cols) out.cols.push_back(std::move(c));
    out.num_rows = left_sel.size();
    ws->SetBatch(std::move(out));
    return Status::OK();
  }

  /// Batched hash join. Build keys come straight out of the build batch's
  /// key columns; probe keys evaluate once per vector. Single-int64-key
  /// joins (the adjacency self-join shape: EA.INV = r.VID) skip rel::Value
  /// boxing entirely and hash raw int64s.
  Status HashJoinBatched(const ColumnEnv& env,
                         const std::vector<EquiJoinKey>& keys,
                         const std::vector<int>& build_slots,
                         const ColumnBatch& build, EvalContext* ctx,
                         WorkingSet* ws) {
    const ColumnBatch& left = ws->batch;
    std::vector<ColumnVector> probe_cols;
    probe_cols.reserve(keys.size());
    for (const auto& k : keys) {
      ASSIGN_OR_RETURN(ColumnVector col,
                       EvalExprBatch(*k.outer, env, left, *ctx));
      probe_cols.push_back(std::move(col));
    }
    std::vector<uint32_t> left_sel, right_sel;

    const bool int64_key =
        keys.size() == 1 &&
        build.cols[static_cast<size_t>(build_slots[0])].typed() &&
        build.cols[static_cast<size_t>(build_slots[0])].tag() ==
            ColumnVector::Tag::kInt64 &&
        probe_cols[0].typed() &&
        probe_cols[0].tag() == ColumnVector::Tag::kInt64;
    if (int64_key) {
      const ColumnVector& bc = build.cols[static_cast<size_t>(build_slots[0])];
      const ColumnVector& pc = probe_cols[0];
      std::unordered_multimap<int64_t, uint32_t> hash_table;
      hash_table.reserve(build.num_rows);
      for (size_t j = 0; j < build.num_rows; ++j) {
        if (!bc.IsNull(j)) {
          hash_table.emplace(bc.IntAt(j), static_cast<uint32_t>(j));
        }
      }
      for (size_t i = 0; i < left.num_rows; ++i) {
        if (pc.IsNull(i)) continue;
        auto [lo, hi] = hash_table.equal_range(pc.IntAt(i));
        for (auto it = lo; it != hi; ++it) {
          left_sel.push_back(static_cast<uint32_t>(i));
          right_sel.push_back(it->second);
        }
      }
    } else {
      std::unordered_multimap<rel::IndexKey, uint32_t, rel::IndexKeyHash>
          hash_table;
      hash_table.reserve(build.num_rows);
      rel::IndexKey key;
      key.parts.reserve(build_slots.size());
      for (size_t j = 0; j < build.num_rows; ++j) {
        key.parts.clear();
        bool null_key = false;
        for (int slot : build_slots) {
          Value v = build.cols[static_cast<size_t>(slot)].GetValue(j);
          if (v.is_null()) null_key = true;
          key.parts.push_back(std::move(v));
        }
        if (!null_key) hash_table.emplace(key, static_cast<uint32_t>(j));
      }
      for (size_t i = 0; i < left.num_rows; ++i) {
        key.parts.clear();
        bool null_key = false;
        for (const auto& col : probe_cols) {
          Value v = col.GetValue(i);
          if (v.is_null()) null_key = true;
          key.parts.push_back(std::move(v));
        }
        if (null_key) continue;
        auto [lo, hi] = hash_table.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          left_sel.push_back(static_cast<uint32_t>(i));
          right_sel.push_back(it->second);
        }
      }
    }
    ColumnBatch out;
    out.cols.reserve(left.num_cols() + build.num_cols());
    for (const auto& c : left.cols) out.cols.push_back(c.Gather(left_sel));
    for (const auto& c : build.cols) out.cols.push_back(c.Gather(right_sel));
    out.num_rows = left_sel.size();
    ws->SetBatch(std::move(out));
    return Status::OK();
  }

  /// Batched counterpart of MaterializeRelation (same span and counters).
  Result<ColumnBatch> MaterializeRelationBatch(const Relation& relation) {
    ColumnBatch out;
    out.Reset(relation.columns.size());
    if (relation.base != nullptr) {
      ++stats_->table_scans;
      obs::ScopedSpan span(spans_, context_,
                           "seq scan " + relation.base->name() + " (build)");
      relation.base->Scan([&](rel::RowId, const Row& row) {
        ++stats_->rows_scanned;
        out.AppendProjected(row, relation.projection);
      });
      span.set_rows(out.num_rows);
      return out;
    }
    const std::vector<Row>* src = relation.rows();
    if (src == nullptr) return Status::Internal("relation has no rows");
    out.Reserve(src->size());
    for (const auto& r : *src) out.AppendRow(r);
    return out;
  }

  Status LeftOuterJoin(const TableRef& ref, const Relation& relation,
                       const std::string& alias,
                       const std::vector<std::string>& ref_columns,
                       const ColumnEnv& env, const ColumnEnv& next_env,
                       std::vector<Row>* rows, EvalContext* ctx) {
    std::vector<EquiJoinKey> keys;
    std::vector<ExprPtr> residual;
    const rel::Index* index = nullptr;
    bool have_plan = false;

    // Replay a memoized ON-clause partition + index choice.
    if (MemoActive()) {
      if (auto plan = memo_->GetOuter(&ref); plan != nullptr) {
        keys = plan->keys;
        residual = plan->residual;
        if (plan->use_index && relation.base != nullptr) {
          index = FindIndexByName(*relation.base, plan->index_name);
          have_plan = index != nullptr;
          if (!have_plan) {
            keys.clear();
            residual.clear();
          }
        } else {
          have_plan = true;
        }
      }
    }

    if (!have_plan) {
      std::vector<ExprPtr> on_conjuncts;
      SplitConjuncts(ref.on, &on_conjuncts);
      for (const auto& c : on_conjuncts) {
        EquiJoinKey key;
        if (MatchEquiJoin(c, env, alias, ref_columns, &key)) {
          keys.push_back(std::move(key));
        } else {
          residual.push_back(c);
        }
      }
      // Index nested-loop left-outer join: probe the base table's index per
      // outer row instead of hashing the whole table (the OSA/ISA fast path).
      if (!keys.empty() && relation.base != nullptr &&
          options_.enable_indexes) {
        const rel::Table& table = *relation.base;
        std::vector<int> key_cols;
        for (const auto& k : keys) {
          key_cols.push_back(table.schema().FindColumn(k.column));
        }
        index = table.FindIndex(key_cols);
        if (index == nullptr && key_cols.size() == 1) {
          index = table.FindIndexOnColumn(key_cols[0], rel::IndexKind::kHash);
          if (index != nullptr && index->column_ids().size() != 1) {
            index = nullptr;
          }
        }
      }
      if (MemoActive()) {
        PlanMemo::OuterPlan plan;
        plan.use_index = index != nullptr;
        if (index != nullptr) plan.index_name = index->name();
        plan.keys = keys;
        plan.residual = residual;
        memo_->PutOuter(&ref, std::move(plan));
      }
    }

    std::vector<Row> out;
    const size_t pad = ref_columns.size();

    {
      if (index != nullptr) {
        const rel::Table& table = *relation.base;
        ++stats_->index_nl_joins;
        Trace("index nested-loop left-outer join " + table.name() + " via " +
              index->name());
        obs::ScopedSpan span(spans_, context_,
                             "index nested-loop left-outer join " +
                                 table.name() + " via " + index->name());
        Row fetched;
        for (const Row& current : *rows) {
          rel::IndexKey key;
          bool null_key = false;
          for (const auto& k : keys) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*k.outer, env, current, *ctx));
            if (v.is_null()) null_key = true;
            key.parts.push_back(std::move(v));
          }
          bool matched = false;
          if (!null_key) {
            std::vector<rel::RowId> rids;
            index->Lookup(key, &rids);
            ++stats_->index_lookups;
            for (rel::RowId rid : rids) {
              RETURN_NOT_OK(table.Get(rid, &fetched));
              Row projected = relation.Project(fetched);
              Row combined = current;
              combined.insert(combined.end(), projected.begin(),
                              projected.end());
              bool pass = true;
              for (const auto& c : residual) {
                ASSIGN_OR_RETURN(Value v,
                                 EvalExpr(*c, next_env, combined, *ctx));
                if (!IsTruthy(v)) {
                  pass = false;
                  break;
                }
              }
              if (pass) {
                matched = true;
                out.push_back(std::move(combined));
              }
            }
          }
          if (!matched) {
            Row combined = current;
            combined.resize(combined.size() + pad);
            out.push_back(std::move(combined));
          }
        }
        *rows = std::move(out);
        span.set_rows(rows->size());
        return Status::OK();
      }
    }

    ASSIGN_OR_RETURN(std::vector<Row> build_rows, MaterializeRelation(relation));
    ++stats_->hash_joins;
    obs::ScopedSpan span(
        spans_, context_,
        (keys.empty() ? "nested-loop left-outer join " : "hash left-outer join ") +
            ref.exposure());

    if (keys.empty()) {
      // Rare: nested-loop left outer join with arbitrary ON.
      for (const Row& current : *rows) {
        bool matched = false;
        for (const Row& r : build_rows) {
          Row combined = current;
          combined.insert(combined.end(), r.begin(), r.end());
          bool pass = true;
          for (const auto& c : residual) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*c, next_env, combined, *ctx));
            if (!IsTruthy(v)) {
              pass = false;
              break;
            }
          }
          if (pass) {
            matched = true;
            out.push_back(std::move(combined));
          }
        }
        if (!matched) {
          Row combined = current;
          combined.resize(combined.size() + pad);
          out.push_back(std::move(combined));
        }
      }
      *rows = std::move(out);
      span.set_rows(rows->size());
      return Status::OK();
    }

    std::vector<int> build_slots;
    for (const auto& key : keys) {
      int slot = -1;
      for (size_t c = 0; c < ref_columns.size(); ++c) {
        if (ref_columns[c] == key.column) {
          slot = static_cast<int>(c);
          break;
        }
      }
      if (slot < 0) return Status::Internal("left join key column missing");
      build_slots.push_back(slot);
    }
    std::unordered_multimap<rel::IndexKey, const Row*, rel::IndexKeyHash>
        hash_table;
    hash_table.reserve(build_rows.size());
    for (const Row& r : build_rows) {
      rel::IndexKey key;
      bool null_key = false;
      for (int slot : build_slots) {
        if (r[static_cast<size_t>(slot)].is_null()) null_key = true;
        key.parts.push_back(r[static_cast<size_t>(slot)]);
      }
      if (!null_key) hash_table.emplace(std::move(key), &r);
    }
    for (const Row& current : *rows) {
      rel::IndexKey key;
      bool null_key = false;
      for (const auto& k : keys) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*k.outer, env, current, *ctx));
        if (v.is_null()) null_key = true;
        key.parts.push_back(std::move(v));
      }
      bool matched = false;
      if (!null_key) {
        auto [lo, hi] = hash_table.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          Row combined = current;
          combined.insert(combined.end(), it->second->begin(),
                          it->second->end());
          bool pass = true;
          for (const auto& c : residual) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*c, next_env, combined, *ctx));
            if (!IsTruthy(v)) {
              pass = false;
              break;
            }
          }
          if (pass) {
            matched = true;
            out.push_back(std::move(combined));
          }
        }
      }
      if (!matched) {
        Row combined = current;
        combined.resize(combined.size() + pad);
        out.push_back(std::move(combined));
      }
    }
    *rows = std::move(out);
    span.set_rows(rows->size());
    return Status::OK();
  }

  Result<std::vector<Row>> MaterializeRelation(const Relation& relation) {
    std::vector<Row> out;
    if (relation.base != nullptr) {
      ++stats_->table_scans;
      obs::ScopedSpan span(spans_, context_,
                           "seq scan " + relation.base->name() + " (build)");
      relation.base->Scan([&](rel::RowId, const Row& row) {
        ++stats_->rows_scanned;
        out.push_back(relation.Project(row));
      });
      span.set_rows(out.size());
      return out;
    }
    const std::vector<Row>* src = relation.rows();
    if (src == nullptr) return Status::Internal("relation has no rows");
    out.reserve(src->size());
    for (const auto& r : *src) out.push_back(r);
    return out;
  }

  Status FilterRows(const Expr& predicate, const ColumnEnv& env,
                    const EvalContext& ctx, std::vector<Row>* rows) {
    std::vector<Row> kept;
    kept.reserve(rows->size());
    for (Row& row : *rows) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(predicate, env, row, ctx));
      if (IsTruthy(v)) kept.push_back(std::move(row));
    }
    *rows = std::move(kept);
    return Status::OK();
  }

  /// Filter in whichever representation the working set currently holds.
  Status FilterWorkingSet(const Expr& predicate, const ColumnEnv& env,
                          const EvalContext& ctx, WorkingSet* ws) {
    if (!ws->is_batch) return FilterRows(predicate, env, ctx, &ws->rows);
    std::vector<uint32_t> sel;
    RETURN_NOT_OK(EvalPredicateBatch(predicate, env, ws->batch, ctx, &sel));
    if (sel.size() != ws->batch.num_rows) ws->batch.KeepOnly(sel);
    return Status::OK();
  }

  // ----------------------------------------- projection and aggregation ----

  Status Project(const SelectStmt& s, const ColumnEnv& env,
                 const WorkingSet& ws, const EvalContext& ctx,
                 ResultSet* out) {
    // Expand stars into slot references.
    struct OutputCol {
      std::string name;
      int slot = -1;     // >= 0: direct slot copy
      ExprPtr expr;      // otherwise evaluate
    };
    std::vector<OutputCol> cols;
    for (size_t i = 0; i < s.items.size(); ++i) {
      const SelectItem& item = s.items[i];
      if (item.is_star) {
        for (size_t sl = 0; sl < env.size(); ++sl) {
          const auto& [qual, col] = env.slot(sl);
          if (!item.star_qualifier.empty() && qual != item.star_qualifier) {
            continue;
          }
          cols.push_back({col, static_cast<int>(sl), nullptr});
        }
        continue;
      }
      OutputCol oc;
      oc.name = ItemName(item, i);
      if (item.expr->kind == ExprKind::kColumnRef) {
        oc.slot = env.TryResolve(item.expr->qualifier, item.expr->column);
      }
      if (oc.slot < 0) oc.expr = item.expr;
      cols.push_back(std::move(oc));
    }

    out->columns.clear();
    for (const auto& c : cols) out->columns.push_back(c.name);
    out->rows.clear();
    out->rows.reserve(ws.size());
    if (ws.is_batch) {
      // Evaluate each computed item once over the whole batch, then
      // assemble output rows from slot copies and the computed vectors.
      std::vector<ColumnVector> computed(cols.size());
      for (size_t c = 0; c < cols.size(); ++c) {
        if (cols[c].slot >= 0) continue;
        ASSIGN_OR_RETURN(computed[c],
                         EvalExprBatch(*cols[c].expr, env, ws.batch, ctx));
      }
      for (size_t i = 0; i < ws.batch.num_rows; ++i) {
        Row projected;
        projected.reserve(cols.size());
        for (size_t c = 0; c < cols.size(); ++c) {
          if (cols[c].slot >= 0) {
            projected.push_back(
                ws.batch.cols[static_cast<size_t>(cols[c].slot)].GetValue(i));
          } else {
            projected.push_back(computed[c].GetValue(i));
          }
        }
        out->rows.push_back(std::move(projected));
      }
      return Status::OK();
    }
    for (const Row& row : ws.rows) {
      Row projected;
      projected.reserve(cols.size());
      for (const auto& c : cols) {
        if (c.slot >= 0) {
          projected.push_back(row[static_cast<size_t>(c.slot)]);
        } else {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*c.expr, env, row, ctx));
          projected.push_back(std::move(v));
        }
      }
      out->rows.push_back(std::move(projected));
    }
    return Status::OK();
  }

  Result<ResultSet> Aggregate(const SelectStmt& s, const ColumnEnv& env,
                              const WorkingSet& ws, const EvalContext& ctx) {
    // Each select item must be either an aggregate call or a GROUP BY
    // expression (matched textually).
    struct ItemPlan {
      bool is_aggregate = false;
      AggState::Kind agg_kind = AggState::kCountStar;
      ExprPtr arg;      // aggregate argument (null for COUNT(*))
      ExprPtr expr;     // group expression otherwise
      std::string name;
    };
    std::vector<ItemPlan> plans;
    // HAVING may contain aggregate calls not present in the select list;
    // compute them as hidden trailing items and rewrite HAVING to reference
    // them by name.
    ExprPtr rewritten_having;
    std::vector<ItemPlan> hidden;
    if (s.having != nullptr) {
      std::function<ExprPtr(const ExprPtr&)> rewrite =
          [&](const ExprPtr& e) -> ExprPtr {
        if (e == nullptr) return nullptr;
        AggState::Kind kind;
        if (e->kind == ExprKind::kFunc && IsAggregateCall(*e, &kind)) {
          ItemPlan plan;
          plan.is_aggregate = true;
          plan.agg_kind = kind;
          if (kind != AggState::kCountStar && e->args.size() == 1) {
            plan.arg = e->args[0];
          }
          plan.name = "__having" + std::to_string(hidden.size());
          const std::string name = plan.name;
          hidden.push_back(std::move(plan));
          return Col(name);
        }
        auto copy = std::make_shared<Expr>(*e);
        copy->lhs = rewrite(e->lhs);
        copy->rhs = rewrite(e->rhs);
        copy->args.clear();
        for (const auto& a : e->args) copy->args.push_back(rewrite(a));
        copy->in_list.clear();
        for (const auto& a : e->in_list) copy->in_list.push_back(rewrite(a));
        return copy;
      };
      rewritten_having = rewrite(s.having);
    }
    for (size_t i = 0; i < s.items.size(); ++i) {
      const SelectItem& item = s.items[i];
      if (item.is_star) {
        return Status::InvalidArgument("* not allowed with aggregation");
      }
      ItemPlan plan;
      plan.name = ItemName(item, i);
      AggState::Kind kind;
      if (item.expr->kind == ExprKind::kFunc &&
          IsAggregateCall(*item.expr, &kind)) {
        plan.is_aggregate = true;
        plan.agg_kind = kind;
        if (kind != AggState::kCountStar) {
          if (item.expr->args.size() != 1) {
            return Status::InvalidArgument("aggregate expects one argument");
          }
          plan.arg = item.expr->args[0];
        }
      } else {
        bool matches_group = false;
        const std::string rendered = RenderExpr(*item.expr);
        for (const auto& g : s.group_by) {
          if (RenderExpr(*g) == rendered) {
            matches_group = true;
            break;
          }
        }
        if (!matches_group) {
          return Status::InvalidArgument(
              "select item is neither aggregate nor GROUP BY expression: " +
              rendered);
        }
        plan.expr = item.expr;
      }
      plans.push_back(std::move(plan));
    }
    const size_t visible_items = plans.size();
    for (auto& h : hidden) plans.push_back(std::move(h));

    struct Group {
      Row key_row;  // evaluated GROUP BY values
      std::vector<AggState> aggs;
    };
    std::unordered_map<rel::IndexKey, Group, rel::IndexKeyHash> groups;

    auto make_group = [&]() {
      Group g;
      for (const auto& plan : plans) {
        if (plan.is_aggregate) {
          AggState st;
          st.kind = plan.agg_kind;
          g.aggs.push_back(std::move(st));
        }
      }
      return g;
    };

    // One scratch key reused across rows: reserved once, cleared per row,
    // copied into the map only on first sight of a group.
    rel::IndexKey key;
    key.parts.reserve(s.group_by.size());
    auto accumulate = [&](auto&& eval_group,
                          auto&& eval_arg) -> util::Status {
      key.parts.clear();
      for (size_t gi = 0; gi < s.group_by.size(); ++gi) {
        ASSIGN_OR_RETURN(Value v, eval_group(gi));
        key.parts.push_back(std::move(v));
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, make_group()).first;
        it->second.key_row = key.parts;
      }
      size_t agg_index = 0;
      for (const auto& plan : plans) {
        if (!plan.is_aggregate) continue;
        AggState& st = it->second.aggs[agg_index++];
        if (plan.agg_kind == AggState::kCountStar) {
          st.Add(Value());
        } else {
          ASSIGN_OR_RETURN(Value v, eval_arg(*plan.arg));
          st.Add(v);
        }
      }
      return Status::OK();
    };
    if (ws.is_batch) {
      // Evaluate every GROUP BY expression and aggregate argument once per
      // vector, then fold row by row out of the result columns.
      std::vector<ColumnVector> group_cols;
      group_cols.reserve(s.group_by.size());
      for (const auto& g : s.group_by) {
        ASSIGN_OR_RETURN(ColumnVector col,
                         EvalExprBatch(*g, env, ws.batch, ctx));
        group_cols.push_back(std::move(col));
      }
      std::map<const Expr*, ColumnVector> arg_cols;
      for (const auto& plan : plans) {
        if (!plan.is_aggregate || plan.arg == nullptr) continue;
        if (arg_cols.count(plan.arg.get())) continue;
        ASSIGN_OR_RETURN(ColumnVector col,
                         EvalExprBatch(*plan.arg, env, ws.batch, ctx));
        arg_cols.emplace(plan.arg.get(), std::move(col));
      }
      for (size_t i = 0; i < ws.batch.num_rows; ++i) {
        RETURN_NOT_OK(accumulate(
            [&](size_t gi) -> Result<Value> {
              return group_cols[gi].GetValue(i);
            },
            [&](const Expr& arg) -> Result<Value> {
              return arg_cols.at(&arg).GetValue(i);
            }));
      }
    } else {
      for (const Row& row : ws.rows) {
        RETURN_NOT_OK(accumulate(
            [&](size_t gi) -> Result<Value> {
              return EvalExpr(*s.group_by[gi], env, row, ctx);
            },
            [&](const Expr& arg) -> Result<Value> {
              return EvalExpr(arg, env, row, ctx);
            }));
      }
    }
    // Global aggregation over an empty input still yields one row.
    if (groups.empty() && s.group_by.empty()) {
      groups.emplace(rel::IndexKey{}, make_group());
    }

    ResultSet out;
    for (const auto& plan : plans) out.columns.push_back(plan.name);
    for (auto& [key, group] : groups) {
      Row row;
      size_t agg_index = 0;
      for (const auto& plan : plans) {
        if (plan.is_aggregate) {
          row.push_back(group.aggs[agg_index++].Finish());
        } else {
          // Re-evaluate: find the GROUP BY slot with the same rendering.
          const std::string rendered = RenderExpr(*plan.expr);
          Value v;
          for (size_t gi = 0; gi < s.group_by.size(); ++gi) {
            if (RenderExpr(*s.group_by[gi]) == rendered) {
              v = group.key_row[gi];
              break;
            }
          }
          row.push_back(std::move(v));
        }
      }
      out.rows.push_back(std::move(row));
    }
    // HAVING: evaluate the rewritten predicate, then drop hidden columns.
    if (rewritten_having != nullptr) {
      ColumnEnv having_env;
      for (const auto& c : out.columns) having_env.Add("", c);
      RETURN_NOT_OK(FilterRows(*rewritten_having, having_env, ctx, &out.rows));
    }
    if (visible_items < out.columns.size()) {
      out.columns.resize(visible_items);
      for (auto& row : out.rows) row.resize(visible_items);
    }
    return out;
  }

  static void Dedupe(ResultSet* out) {
    std::unordered_set<Row, RowHash, RowEq> seen;
    std::vector<Row> kept;
    kept.reserve(out->rows.size());
    for (auto& row : out->rows) {
      if (seen.insert(row).second) kept.push_back(std::move(row));
    }
    out->rows = std::move(kept);
  }

  // --------------------------------------------------- IN subqueries ----

  Status MaterializeInSubqueries(const SelectStmt& s, EvalContext* ctx) {
    std::vector<const Expr*> nodes;
    auto collect = [&](const ExprPtr& e, auto&& self) -> void {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kInSubquery) nodes.push_back(e.get());
      if (e->lhs) self(e->lhs, self);
      if (e->rhs) self(e->rhs, self);
      for (const auto& a : e->args) self(a, self);
      for (const auto& a : e->in_list) self(a, self);
    };
    collect(s.where, collect);
    collect(s.having, collect);
    for (const auto& item : s.items) collect(item.expr, collect);
    for (const Expr* node : nodes) {
      ASSIGN_OR_RETURN(ResultSet res, ExecSelect(*node->subquery));
      if (res.columns.size() != 1) {
        return Status::InvalidArgument("IN subquery must return one column");
      }
      auto& set = ctx->in_subquery_sets[node];
      for (auto& row : res.rows) {
        if (!row[0].is_null()) set.insert(std::move(row[0]));
      }
    }
    return Status::OK();
  }

  void Trace(std::string msg) {
    stats_->trace.push_back(context_ + ": " + std::move(msg));
  }

  /// True when access-path decisions may be recorded into / replayed from
  /// the prepared query's PlanMemo. Memoization keys on AST node addresses,
  /// so it must be off for any statement evaluated through a local AST copy
  /// (the recursive-CTE base select).
  bool MemoActive() const {
    return memo_ != nullptr && memo_enabled_ && options_.enable_indexes;
  }

  rel::Database* db_;
  const Options& options_;
  ExecStats* stats_;
  const ParamBindings* params_ = nullptr;
  PlanMemo* memo_ = nullptr;
  bool memo_enabled_ = true;
  std::map<std::string, ResultSet> ctes_;
  std::string context_ = "query";
  bool index_access_hit_ = false;
  // EXPLAIN ANALYZE sink (&stats_->spans when analyzing, else null so every
  // span construction short-circuits without reading the clock).
  std::vector<obs::TraceSpan>* spans_ = nullptr;
};

// ===========================================================================

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out.append(" | ");
    out.append(columns[i]);
  }
  out.push_back('\n');
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out.append("... (" + std::to_string(rows.size()) + " rows total)\n");
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.append(" | ");
      out.append(row[i].ToString());
    }
    out.push_back('\n');
  }
  return out;
}

// ------------------------------------------------------------ PlanCache ----

std::string PlanCache::NormalizeSql(std::string_view sql_text) {
  std::string out;
  out.reserve(sql_text.size());
  bool in_ws = false;
  bool in_string = false;
  for (char c : sql_text) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '\'') {
      in_string = true;
      out.push_back(c);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

Result<PreparedQueryPtr> PlanCache::GetOrPrepare(std::string_view sql_text,
                                                 uint64_t epoch,
                                                 ExecStats* stats) {
  std::string key = NormalizeSql(sql_text);
  {
    util::MutexLock guard(&mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.prepared->schema_epoch() == epoch) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        if (stats != nullptr) ++stats->plan_cache_hits;
        static obs::Counter* hit_counter =
            obs::MetricsRegistry::Default().GetCounter("sql.plan_cache.hits");
        hit_counter->Increment();
        return it->second.prepared;
      }
      // Compiled under an older schema epoch: evict and re-prepare.
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    ++misses_;
    static obs::Counter* miss_counter =
        obs::MetricsRegistry::Default().GetCounter("sql.plan_cache.misses");
    miss_counter->Increment();
  }

  // Miss: parse outside the lock.
  const auto start = std::chrono::steady_clock::now();
  Result<SqlQuery> parsed = ParseQuery(key);
  const uint64_t elapsed = ElapsedNs(start);
  if (stats != nullptr) {
    ++stats->plan_cache_misses;
    stats->prepare_ns += elapsed;
  }
  if (!parsed.ok()) return parsed.status();

  auto prepared = std::make_shared<PreparedQuery>();
  prepared->sql_ = key;
  prepared->ast_ = std::make_shared<const SqlQuery>(std::move(parsed).value());
  prepared->memo_ = std::make_shared<PlanMemo>();
  prepared->epoch_ = epoch;
  PreparedQueryPtr result = prepared;

  util::MutexLock guard(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.prepared->schema_epoch() == epoch) {
      // Another thread prepared the same statement concurrently; share its
      // entry so the memo fills in once.
      return it->second.prepared;
    }
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{lru_.begin(), result});
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return result;
}

void PlanCache::Clear() {
  util::MutexLock guard(&mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  util::MutexLock guard(&mu_);
  return entries_.size();
}

uint64_t PlanCache::hits() const {
  util::MutexLock guard(&mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  util::MutexLock guard(&mu_);
  return misses_;
}

// ------------------------------------------------------------- Executor ----

Result<ResultSet> Executor::ExecuteWithParams(const SqlQuery& query,
                                              const ParamBindings* params,
                                              PlanMemo* memo) {
  if (options_.verify_plans) {
    // Staged verification keeps prepared-statement replay overhead at zero:
    // execution 0 of a memo verifies the (immutable, shared) AST, execution
    // 1 verifies the plans execution 0 recorded, later executions skip.
    // Ad-hoc statements (no memo) verify their AST every time.
    const uint32_t stage = memo != nullptr ? memo->ClaimVerifyStage() : 0;
    if (stage <= 1) {
      PlanVerifyReport report;
      if (stage == 0) {
        VerifyPlan(query, *db_, &report);
      } else {
        VerifyMemo(query, *db_, *memo, &report);
      }
      AddVerifySelfTestPlants(&report);
      ++stats_.plans_verified;
      if (!report.ok()) {
        ++stats_.plan_verify_rejections;
        return report.ToStatus();
      }
    }
  }
  const auto start = std::chrono::steady_clock::now();
  Impl impl(db_, options_, &stats_, params, memo);
  Result<ResultSet> result = impl.ExecuteQuery(query);
  const uint64_t elapsed = ElapsedNs(start);
  stats_.exec_ns += elapsed;
  if (obs::MetricsEnabled()) {
    // One registry update per query, not per row: negligible next to the
    // query itself, and the pointers resolve exactly once per process.
    static obs::Counter* queries =
        obs::MetricsRegistry::Default().GetCounter("sql.queries");
    static obs::Histogram* latency =
        obs::MetricsRegistry::Default().GetHistogram("sql.query_ns");
    queries->Increment();
    latency->Record(elapsed);
  }
  return result;
}

Result<ResultSet> Executor::Execute(const SqlQuery& query) {
  return ExecuteWithParams(query, nullptr, nullptr);
}

Result<PreparedQueryPtr> Executor::Prepare(std::string_view sql_text) {
  if (plan_cache_ != nullptr) {
    return plan_cache_->GetOrPrepare(sql_text, schema_epoch_, &stats_);
  }
  // One-off prepared statement without a shared cache.
  const auto start = std::chrono::steady_clock::now();
  Result<SqlQuery> parsed = ParseQuery(sql_text);
  stats_.prepare_ns += ElapsedNs(start);
  ++stats_.plan_cache_misses;
  if (!parsed.ok()) return parsed.status();
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->sql_ = PlanCache::NormalizeSql(sql_text);
  prepared->ast_ = std::make_shared<const SqlQuery>(std::move(parsed).value());
  prepared->memo_ = std::make_shared<PlanMemo>();
  prepared->epoch_ = schema_epoch_;
  return PreparedQueryPtr(prepared);
}

Result<ResultSet> Executor::ExecutePrepared(const PreparedQuery& prepared,
                                            const ParamBindings& params) {
  if (prepared.schema_epoch() != schema_epoch_) {
    if (plan_cache_ != nullptr) {
      // Stale handle: re-prepare through the cache (counted as a miss there).
      ASSIGN_OR_RETURN(PreparedQueryPtr fresh, Prepare(prepared.sql()));
      return ExecuteWithParams(fresh->query(), &params, fresh->memo());
    }
    if (options_.verify_plans) {
      // No cache to re-prepare through: replaying the stale memo would
      // silently use access paths chosen for a different schema. Reject
      // statically instead.
      PlanVerifyReport report;
      VerifyMemoEpoch(prepared.schema_epoch(), schema_epoch_, &report);
      ++stats_.plans_verified;
      ++stats_.plan_verify_rejections;
      return report.ToStatus();
    }
  }
  ++stats_.plan_cache_hits;
  return ExecuteWithParams(prepared.query(), &params, prepared.memo());
}

Result<ResultSet> Executor::ExecuteSql(std::string_view sql_text) {
  if (plan_cache_ != nullptr) {
    // Hit/miss accounting happens inside the cache lookup.
    ASSIGN_OR_RETURN(PreparedQueryPtr prepared, Prepare(sql_text));
    ParamBindings no_params;
    return ExecuteWithParams(prepared->query(), &no_params, prepared->memo());
  }
  const auto start = std::chrono::steady_clock::now();
  Result<SqlQuery> parsed = ParseQuery(sql_text);
  stats_.prepare_ns += ElapsedNs(start);
  if (!parsed.ok()) return parsed.status();
  return Execute(parsed.value());
}

}  // namespace sql
}  // namespace sqlgraph
