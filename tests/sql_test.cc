// Tests for src/sql: render/parse round trips, expression evaluation, and
// the executor (joins, index selection, set ops, aggregates, recursion).

#include "gtest/gtest.h"
#include "json/json_parser.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/render.h"

namespace sqlgraph {
namespace sql {
namespace {

using rel::ColumnType;
using rel::Database;
using rel::IndexKind;
using rel::Row;
using rel::Schema;
using rel::StorageMode;
using rel::Value;

// ------------------------------------------------------- render / parse ----

std::string Rewrite(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  if (!q.ok()) return "<parse error>";
  return Render(q.value());
}

TEST(SqlRoundTripTest, RenderedSqlReparsesToSameText) {
  // Round-trip stability: parse → render → parse → render is a fixpoint.
  const char* queries[] = {
      "SELECT 1",
      "SELECT a, b AS bb FROM t",
      "SELECT DISTINCT v.val FROM t v WHERE v.x = 3 AND v.y <> 'z'",
      "SELECT COUNT(*) FROM t",
      "SELECT COUNT(DISTINCT x) FROM t WHERE x IS NOT NULL",
      "SELECT a FROM t WHERE a IN (1, 2, 3)",
      "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)",
      "SELECT a FROM t WHERE s LIKE '%en'",
      "SELECT a FROM t ORDER BY a DESC LIMIT 10 OFFSET 5",
      "SELECT a FROM t UNION ALL SELECT b FROM u",
      "SELECT a FROM t INTERSECT SELECT b FROM u",
      "SELECT a FROM t EXCEPT SELECT b FROM u",
      "WITH x AS (SELECT a FROM t) SELECT * FROM x",
      "SELECT t.val FROM tin v, OPA p, TABLE(VALUES (p.val0), (p.val1)) AS "
      "t(val) WHERE v.val = p.vid AND t.val IS NOT NULL",
      "SELECT COALESCE(s.val, p.val) AS val FROM t0 p LEFT OUTER JOIN OSA s "
      "ON p.val = s.valid",
      "SELECT JSON_VAL(p.attr, 'name') AS n FROM VA p WHERE "
      "JSON_VAL(p.attr, 'age') > 27",
      "SELECT CAST(JSON_VAL(p.attr, 'age') AS BIGINT) AS a FROM VA p",
      "SELECT a + b * c - d / e AS x FROM t",
      "SELECT v.* FROM t v WHERE NOT (v.a = 1 OR v.b = 2)",
      "SELECT x FROM t WHERE y BETWEEN 1 AND 5",
      "SELECT PATH_ELEM(v.path, 0) AS val FROM t v",
      "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2",
  };
  for (const char* q : queries) {
    const std::string once = Rewrite(q);
    const std::string twice = Rewrite(once);
    EXPECT_EQ(once, twice) << "not a fixpoint: " << q;
  }
}

TEST(SqlParserTest, SubscriptBecomesPathElem) {
  auto e = ParseExpr("p.path[0]");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(RenderExpr(**e), "PATH_ELEM(p.path, 0)");
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseQuery("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseQuery("WITH x AS SELECT 1 SELECT 2").ok());
}

TEST(SqlParserTest, PrecedenceAndOrNot) {
  auto e = ParseExpr("a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(e.ok());
  // AND binds tighter: a=1 OR (b=2 AND c=3)
  EXPECT_EQ((*e)->bin_op, BinaryOp::kOr);
  auto e2 = ParseExpr("NOT a = 1 AND b = 2");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->bin_op, BinaryOp::kAnd);
}

TEST(SqlParserTest, StringEscapeInLiteral) {
  auto e = ParseExpr("name = 'o''brien'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->rhs->literal.AsString(), "o'brien");
}

// --------------------------------------------------------------- planner ----

TEST(PlannerTest, SplitConjunctsFlattensAnds) {
  auto e = ParseExpr("a = 1 AND (b = 2 AND c = 3) AND d = 4");
  ASSERT_TRUE(e.ok());
  std::vector<ExprPtr> out;
  SplitConjuncts(*e, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(PlannerTest, SplitDoesNotCrossOr) {
  auto e = ParseExpr("a = 1 OR b = 2");
  ASSERT_TRUE(e.ok());
  std::vector<ExprPtr> out;
  SplitConjuncts(*e, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(PlannerTest, MatchEquiJoinBothOrientations) {
  ColumnEnv env;
  env.Add("v", "val");
  std::vector<std::string> ref_cols = {"vid", "spill"};
  EquiJoinKey key;
  auto e1 = ParseExpr("v.val = p.vid");
  ASSERT_TRUE(MatchEquiJoin(*e1, env, "p", ref_cols, &key));
  EXPECT_EQ(key.column, "vid");
  auto e2 = ParseExpr("p.vid = v.val");
  ASSERT_TRUE(MatchEquiJoin(*e2, env, "p", ref_cols, &key));
  EXPECT_EQ(key.column, "vid");
  auto e3 = ParseExpr("v.val = 3");
  EXPECT_FALSE(MatchEquiJoin(*e3, env, "p", ref_cols, &key));
  auto e4 = ParseExpr("v.val < p.vid");
  EXPECT_FALSE(MatchEquiJoin(*e4, env, "p", ref_cols, &key));
}

// -------------------------------------------------------------- executor ----

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // people(id, name, age, attr JSON)
    Schema people;
    people.AddColumn("id", ColumnType::kInt64, false);
    people.AddColumn("name", ColumnType::kString);
    people.AddColumn("age", ColumnType::kInt64);
    people.AddColumn("attr", ColumnType::kJson);
    auto pt = db_.CreateTable("people", std::move(people));
    ASSERT_TRUE(pt.ok());
    people_ = *pt;
    ASSERT_TRUE(people_
                    ->CreateIndex("people_id", {"id"}, IndexKind::kHash,
                                  /*unique=*/true)
                    .ok());
    ASSERT_TRUE(
        people_->CreateIndex("people_name", {"name"}, IndexKind::kHash).ok());
    ASSERT_TRUE(
        people_->CreateJsonIndex("people_city", "attr", "city",
                                 IndexKind::kHash).ok());
    ASSERT_TRUE(
        people_->CreateJsonIndex("people_score", "attr", "score",
                                 IndexKind::kOrdered).ok());

    // edges(src, dst, label)
    Schema edges;
    edges.AddColumn("src", ColumnType::kInt64, false);
    edges.AddColumn("dst", ColumnType::kInt64, false);
    edges.AddColumn("label", ColumnType::kString);
    auto et = db_.CreateTable("edges", std::move(edges));
    ASSERT_TRUE(et.ok());
    edges_ = *et;
    ASSERT_TRUE(edges_->CreateIndex("edges_src", {"src"}, IndexKind::kHash).ok());
    ASSERT_TRUE(edges_->CreateIndex("edges_src_label", {"src", "label"},
                                    IndexKind::kHash)
                    .ok());

    AddPerson(1, "marko", 29, "beijing", 1.5);
    AddPerson(2, "vadas", 27, "athens", 2.5);
    AddPerson(3, "lop", 0, "beijing", 3.5);
    AddPerson(4, "josh", 32, "delhi", 4.5);
    AddEdge(1, 2, "knows");
    AddEdge(1, 4, "knows");
    AddEdge(1, 3, "created");
    AddEdge(4, 3, "created");
    AddEdge(4, 2, "likes");
  }

  void AddPerson(int id, const std::string& name, int age,
                 const std::string& city, double score) {
    json::JsonValue attr = json::JsonValue::Object();
    attr.Set("city", city);
    attr.Set("score", score);
    ASSERT_TRUE(
        people_->Insert({Value(id), Value(name), Value(age), Value(attr)})
            .ok());
  }
  void AddEdge(int src, int dst, const std::string& label) {
    ASSERT_TRUE(edges_->Insert({Value(src), Value(dst), Value(label)}).ok());
  }

  ResultSet MustExec(const std::string& text) {
    Executor exec(&db_);
    auto r = exec.ExecuteSql(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  Database db_;
  rel::Table* people_ = nullptr;
  rel::Table* edges_ = nullptr;
};

TEST_F(ExecutorTest, SelectConstant) {
  ResultSet r = MustExec("SELECT 1 AS one, 'x' AS s");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsString(), "x");
  EXPECT_EQ(r.columns[0], "one");
}

TEST_F(ExecutorTest, FullScanWithFilter) {
  ResultSet r = MustExec("SELECT name FROM people WHERE age > 27");
  EXPECT_EQ(r.rows.size(), 2u);  // marko(29), josh(32)
}

TEST_F(ExecutorTest, IndexEqualityAccessPath) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql("SELECT name FROM people WHERE id = 4");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "josh");
  EXPECT_EQ(exec.stats().table_scans, 0u);
  EXPECT_GE(exec.stats().index_lookups, 1u);
}

TEST_F(ExecutorTest, JsonIndexEqualityAccessPath) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql(
      "SELECT name FROM people WHERE JSON_VAL(attr, 'city') = 'beijing'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(exec.stats().table_scans, 0u);
}

TEST_F(ExecutorTest, JsonOrderedIndexRange) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql(
      "SELECT name FROM people WHERE JSON_VAL(attr, 'score') > 2.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(exec.stats().table_scans, 0u);
  EXPECT_GE(exec.stats().index_range_scans, 1u);
}

TEST_F(ExecutorTest, IndexNestedLoopJoin) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql(
      "SELECT p2.name FROM people p1, edges e, people p2 "
      "WHERE p1.name = 'marko' AND p1.id = e.src AND e.dst = p2.id");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);  // vadas, josh, lop
  EXPECT_GE(exec.stats().index_nl_joins, 2u);
  EXPECT_EQ(exec.stats().table_scans, 0u);
}

TEST_F(ExecutorTest, CompositeIndexJoinWithLabel) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql(
      "SELECT e.dst FROM people p, edges e "
      "WHERE p.name = 'marko' AND p.id = e.src AND e.label = 'knows'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(ExecutorTest, HashJoinAgainstCte) {
  ResultSet r = MustExec(
      "WITH start AS (SELECT id AS val FROM people WHERE name = 'marko') "
      "SELECT e.dst AS val FROM start v, edges e WHERE v.val = e.src");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, LeftOuterJoinPadsNulls) {
  ResultSet r = MustExec(
      "SELECT p.name, e.dst FROM people p LEFT OUTER JOIN edges e "
      "ON p.id = e.src ORDER BY p.name");
  // marko:3 edges, josh:2 edges, lop:0 → 1 padded, vadas:0 → 1 padded.
  EXPECT_EQ(r.rows.size(), 7u);
  int nulls = 0;
  for (const auto& row : r.rows) nulls += row[1].is_null();
  EXPECT_EQ(nulls, 2);
}

TEST_F(ExecutorTest, CoalesceOverLeftJoin) {
  ResultSet r = MustExec(
      "SELECT COALESCE(e.dst, p.id) AS val FROM people p "
      "LEFT OUTER JOIN edges e ON p.id = e.src AND e.label = 'likes'");
  // Only josh has a 'likes' edge (4→2); others fall back to their own id —
  // so the value 2 appears twice: once from josh's edge, once as vadas' id.
  ASSERT_EQ(r.rows.size(), 4u);
  int found2 = 0;
  for (const auto& row : r.rows) found2 += (row[0].AsInt() == 2);
  EXPECT_EQ(found2, 2);
}

TEST_F(ExecutorTest, UnnestTableValues) {
  ResultSet r = MustExec(
      "SELECT t.val FROM people p, TABLE(VALUES (p.id), (p.age)) AS t(val) "
      "WHERE p.name = 'marko' AND t.val IS NOT NULL");
  EXPECT_EQ(r.rows.size(), 2u);  // 1 and 29
}

TEST_F(ExecutorTest, DistinctAndCount) {
  ResultSet r = MustExec("SELECT COUNT(*) FROM people");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  r = MustExec("SELECT DISTINCT label FROM edges");
  EXPECT_EQ(r.rows.size(), 3u);
  r = MustExec("SELECT COUNT(DISTINCT label) FROM edges");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, CountOnEmptyInputIsZero) {
  ResultSet r = MustExec("SELECT COUNT(*) FROM people WHERE age > 1000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  ResultSet r = MustExec(
      "SELECT e.src, COUNT(*) AS n FROM edges e GROUP BY e.src "
      "HAVING COUNT(*) > 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);  // marko has 3 out-edges
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

TEST_F(ExecutorTest, AggregatesSumMinMaxAvg) {
  ResultSet r = MustExec(
      "SELECT SUM(age), MIN(age), MAX(age), AVG(age) FROM people");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 88);
  EXPECT_EQ(r.rows[0][1].AsInt(), 0);
  EXPECT_EQ(r.rows[0][2].AsInt(), 32);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 22.0);
}

TEST_F(ExecutorTest, UnionAllAndUnion) {
  ResultSet r = MustExec(
      "SELECT label FROM edges WHERE src = 1 UNION ALL "
      "SELECT label FROM edges WHERE src = 4");
  EXPECT_EQ(r.rows.size(), 5u);
  r = MustExec(
      "SELECT label FROM edges WHERE src = 1 UNION "
      "SELECT label FROM edges WHERE src = 4");
  EXPECT_EQ(r.rows.size(), 3u);  // knows, created, likes
}

TEST_F(ExecutorTest, IntersectAndExcept) {
  ResultSet r = MustExec(
      "SELECT label FROM edges WHERE src = 1 INTERSECT "
      "SELECT label FROM edges WHERE src = 4");
  EXPECT_EQ(r.rows.size(), 1u);  // created
  r = MustExec(
      "SELECT label FROM edges WHERE src = 1 EXCEPT "
      "SELECT label FROM edges WHERE src = 4");
  EXPECT_EQ(r.rows.size(), 1u);  // knows
}

TEST_F(ExecutorTest, InSubquery) {
  ResultSet r = MustExec(
      "SELECT name FROM people WHERE id IN (SELECT dst FROM edges WHERE "
      "label = 'knows')");
  EXPECT_EQ(r.rows.size(), 2u);  // vadas, josh
  r = MustExec(
      "SELECT name FROM people WHERE id NOT IN (SELECT dst FROM edges)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "marko");
}

TEST_F(ExecutorTest, OrderLimitOffset) {
  ResultSet r = MustExec("SELECT name FROM people ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "josh");
  EXPECT_EQ(r.rows[1][0].AsString(), "marko");
  r = MustExec(
      "SELECT name FROM people ORDER BY age DESC LIMIT 2 OFFSET 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "vadas");
}

TEST_F(ExecutorTest, CteChainsLikeTranslatorOutput) {
  // Mirrors the paper's Fig. 7 shape: filter → expand → distinct → count.
  ResultSet r = MustExec(
      "WITH temp_1 AS (SELECT id AS val FROM people WHERE "
      "JSON_VAL(attr, 'city') = 'beijing'), "
      "temp_2 AS (SELECT e.dst AS val FROM temp_1 v, edges e WHERE "
      "v.val = e.src), "
      "temp_3 AS (SELECT DISTINCT val FROM temp_2) "
      "SELECT COUNT(*) FROM temp_3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);  // marko→{2,3,4}; lop has no out-edges
}

TEST_F(ExecutorTest, RecursiveCteTransitiveClosure) {
  ResultSet r = MustExec(
      "WITH RECURSIVE reach(val) AS ("
      "SELECT dst AS val FROM edges WHERE src = 1 "
      "UNION ALL "
      "SELECT e.dst AS val FROM reach r, edges e WHERE r.val = e.src) "
      "SELECT COUNT(*) FROM reach");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);  // 2,3,4 (4→3,4→2 already seen)
}

TEST_F(ExecutorTest, RecursiveCteTerminatesOnCycle) {
  ASSERT_TRUE(edges_->Insert({Value(2), Value(1), Value("knows")}).ok());
  ResultSet r = MustExec(
      "WITH RECURSIVE reach(val) AS ("
      "SELECT dst AS val FROM edges WHERE src = 1 "
      "UNION ALL "
      "SELECT e.dst AS val FROM reach r, edges e WHERE r.val = e.src) "
      "SELECT COUNT(*) FROM reach");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);  // 2,3,4 and back to 1
}

TEST_F(ExecutorTest, LikePredicates) {
  ResultSet r = MustExec("SELECT name FROM people WHERE name LIKE '%o'");
  EXPECT_EQ(r.rows.size(), 1u);  // marko
  r = MustExec("SELECT name FROM people WHERE name LIKE 'v%'");
  EXPECT_EQ(r.rows.size(), 1u);  // vadas
  r = MustExec("SELECT name FROM people WHERE name NOT LIKE '%o%'");
  EXPECT_EQ(r.rows.size(), 1u);  // vadas (marko, lop, josh all contain 'o')
}

TEST_F(ExecutorTest, NullSemanticsInWhere) {
  ASSERT_TRUE(people_
                  ->Insert({Value(9), Value(), Value(),
                            Value(json::JsonValue::Object())})
                  .ok());
  // NULL never satisfies comparisons...
  ResultSet r = MustExec("SELECT id FROM people WHERE age > 0");
  EXPECT_EQ(r.rows.size(), 3u);
  // ...including negated ones (NOT NULL is NULL).
  r = MustExec("SELECT id FROM people WHERE NOT (age > 0)");
  EXPECT_EQ(r.rows.size(), 1u);  // lop with age 0 only
  r = MustExec("SELECT id FROM people WHERE name IS NULL");
  EXPECT_EQ(r.rows.size(), 1u);
  r = MustExec("SELECT id FROM people WHERE name IS NOT NULL");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecutorTest, PathFunctions) {
  ResultSet r = MustExec(
      "SELECT PATH_ELEM(PATH_APPEND(PATH_APPEND(NULL, 1), 2), 0) AS head, "
      "PATH_LEN(PATH_APPEND(PATH_APPEND(NULL, 1), 2)) AS len, "
      "IS_SIMPLE_PATH(PATH_APPEND(PATH_APPEND(NULL, 1), 1)) AS simple");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt(), 0);
}

TEST_F(ExecutorTest, CastSemantics) {
  ResultSet r = MustExec(
      "SELECT CAST('42' AS BIGINT), CAST(3.9 AS BIGINT), "
      "CAST(7 AS VARCHAR), CAST('nope' AS BIGINT)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 42);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[0][2].AsString(), "7");
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(ExecutorTest, ErrorsOnUnknownTableAndColumn) {
  Executor exec(&db_);
  EXPECT_FALSE(exec.ExecuteSql("SELECT x FROM nope").ok());
  EXPECT_FALSE(exec.ExecuteSql("SELECT nosuch FROM people").ok());
}

TEST_F(ExecutorTest, AmbiguousBareColumnFails) {
  Executor exec(&db_);
  auto r = exec.ExecuteSql(
      "SELECT src FROM edges a, edges b WHERE a.src = b.dst");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, DisableIndexesStillCorrect) {
  Executor::Options opts;
  opts.enable_indexes = false;
  Executor exec(&db_, opts);
  auto r = exec.ExecuteSql("SELECT name FROM people WHERE id = 4");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "josh");
  EXPECT_GE(exec.stats().table_scans, 1u);
}

TEST_F(ExecutorTest, JsonEdgesLateralUnnest) {
  // A serialized adjacency document (the Fig. 2c JSON variant) expands via
  // the lateral TABLE(JSON_EDGES(...)) table function.
  Schema s;
  s.AddColumn("vid", ColumnType::kInt64, false);
  s.AddColumn("edges", ColumnType::kString, false);
  auto t = db_.CreateTable("jadj", std::move(s));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Insert({Value(1),
                            Value(std::string(
                                R"({"knows":[{"eid":7,"val":2},)"
                                R"({"eid":8,"val":4}],)"
                                R"("created":[{"eid":9,"val":3}]})"))})
                  .ok());
  ASSERT_TRUE((*t)->CreateIndex("jadj_vid", {"vid"}, IndexKind::kHash).ok());

  ResultSet r = MustExec(
      "SELECT t.val FROM jadj p, TABLE(JSON_EDGES(p.edges)) AS t(lbl, val) "
      "WHERE p.vid = 1");
  EXPECT_EQ(r.rows.size(), 3u);
  r = MustExec(
      "SELECT t.val FROM jadj p, TABLE(JSON_EDGES(p.edges)) AS t(lbl, val) "
      "WHERE p.vid = 1 AND t.lbl = 'knows'");
  EXPECT_EQ(r.rows.size(), 2u);
  // Three-column form exposes edge ids.
  r = MustExec(
      "SELECT t.eid FROM jadj p, TABLE(JSON_EDGES(p.edges)) AS "
      "t(lbl, eid, val) WHERE t.lbl = 'created'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 9);
  // The rendered form parses back.
  const char* q =
      "SELECT t.val FROM jadj p, TABLE(JSON_EDGES(p.edges)) AS t(lbl, val) "
      "WHERE t.lbl = 'knows'";
  EXPECT_EQ(Rewrite(q), Rewrite(Rewrite(q)));
}

TEST_F(ExecutorTest, ColumnPruningKeepsSemantics) {
  // A query touching 1 of 4 columns returns the same rows whether or not
  // the executor prunes; the observable contract is purely semantic, so we
  // check a projection-heavy join against a wide row.
  ResultSet wide = MustExec(
      "SELECT p.name FROM people p, edges e WHERE p.id = e.src AND "
      "e.label = 'likes'");
  ASSERT_EQ(wide.rows.size(), 1u);
  EXPECT_EQ(wide.rows[0][0].AsString(), "josh");
  // Star projection disables pruning but must agree on the row count.
  ResultSet star = MustExec(
      "SELECT p.* FROM people p, edges e WHERE p.id = e.src AND "
      "e.label = 'likes'");
  EXPECT_EQ(star.rows.size(), wide.rows.size());
  EXPECT_EQ(star.columns.size(), 4u);
}

// Property-style check: the executor with and without indexes agrees on a
// family of generated join/filter queries.
class IndexEquivalenceTest : public ExecutorTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(IndexEquivalenceTest, SamePlanIndependentResults) {
  const int id = GetParam() % 4 + 1;
  const std::string queries[] = {
      "SELECT COUNT(*) FROM edges WHERE src = " + std::to_string(id),
      "SELECT COUNT(*) FROM people p, edges e WHERE p.id = e.src AND p.id = " +
          std::to_string(id),
      "SELECT COUNT(*) FROM people p, edges e, people q WHERE p.id = e.src "
      "AND e.dst = q.id AND q.age > " + std::to_string(GetParam() * 7 % 30),
  };
  for (const auto& q : queries) {
    Executor with(&db_);
    Executor::Options opts;
    opts.enable_indexes = false;
    Executor without(&db_, opts);
    auto a = with.ExecuteSql(q);
    auto b = without.ExecuteSql(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << q;
    EXPECT_EQ(a->rows[0][0].AsInt(), b->rows[0][0].AsInt()) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, IndexEquivalenceTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace sql
}  // namespace sqlgraph
