// Tests for the core SQLGraph store: schema/loader shredding, CRUD stored
// procedures, soft deletes + compaction, and the micro-benchmark schemas.

#include <algorithm>

#include "graph/dbpedia_gen.h"
#include "graph/property_graph.h"
#include "gtest/gtest.h"
#include "sqlgraph/micro_schemas.h"
#include "sqlgraph/store.h"
#include "util/string_util.h"

namespace sqlgraph {
namespace core {
namespace {

using graph::PropertyGraph;
using graph::VertexId;
using rel::Value;

json::JsonValue Attrs(std::initializer_list<std::pair<const char*, json::JsonValue>>
                          members) {
  json::JsonValue obj = json::JsonValue::Object();
  for (const auto& [k, v] : members) obj.Set(k, v);
  return obj;
}

/// The paper's running example (Fig. 2a): marko(0), vadas(1), lop(2),
/// josh(3). Edge ids 0..4.
PropertyGraph SampleGraph() {
  PropertyGraph g;
  g.AddVertex(Attrs({{"name", json::JsonValue("marko")},
                     {"age", json::JsonValue(29)}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("vadas")},
                     {"age", json::JsonValue(27)}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("lop")},
                     {"lang", json::JsonValue("java")}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("josh")},
                     {"age", json::JsonValue(32)}}));
  auto w = [](double x) {
    return Attrs({{"weight", json::JsonValue(x)}});
  };
  EXPECT_TRUE(g.AddEdge(0, 1, "knows", w(0.5)).ok());    // e0
  EXPECT_TRUE(g.AddEdge(0, 3, "knows", w(1.0)).ok());    // e1
  EXPECT_TRUE(g.AddEdge(0, 2, "created", w(0.4)).ok());  // e2
  EXPECT_TRUE(g.AddEdge(3, 2, "created", w(0.2)).ok());  // e3
  EXPECT_TRUE(g.AddEdge(3, 1, "likes", w(0.8)).ok());    // e4
  return g;
}

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = SqlGraphStore::Build(SampleGraph());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    store_ = std::move(built).value();
  }
  std::unique_ptr<SqlGraphStore> store_;
};

TEST_F(StoreTest, SchemaTablesExist) {
  for (const char* t : {"OPA", "IPA", "OSA", "ISA", "VA", "EA"}) {
    EXPECT_NE(store_->db()->GetTable(t), nullptr) << t;
  }
  EXPECT_EQ(store_->db()->GetTable("VA")->NumRows(), 4u);
  EXPECT_EQ(store_->db()->GetTable("EA")->NumRows(), 5u);
}

TEST_F(StoreTest, ColoringSeparatesCooccurringLabels) {
  // marko has knows+created out-edges; josh has created+likes.
  const auto& h = store_->schema().out_hash;
  EXPECT_NE(h.ColorOf("knows") % store_->schema().out_colors,
            h.ColorOf("created") % store_->schema().out_colors);
  EXPECT_NE(h.ColorOf("likes") % store_->schema().out_colors,
            h.ColorOf("created") % store_->schema().out_colors);
}

TEST_F(StoreTest, MultiValuedLabelUsesSecondaryTable) {
  // marko --knows--> {vadas, josh} is multi-valued → OSA rows (Fig. 5b).
  EXPECT_EQ(store_->db()->GetTable("OSA")->NumRows(), 2u);
  EXPECT_EQ(store_->load_stats().osa_rows, 2u);
  // Adjacency expansion resolves through the list.
  auto out = store_->Out(0, "knows");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Sorted(*out), (std::vector<VertexId>{1, 3}));
}

TEST_F(StoreTest, LoadStatsShape) {
  const LoadStats& s = store_->load_stats();
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_edges, 5u);
  EXPECT_EQ(s.num_out_labels, 3u);
  EXPECT_EQ(s.out_spill_rows, 0u);  // coloring fits everything in one row
  EXPECT_EQ(s.in_spill_rows, 0u);
}

TEST_F(StoreTest, OutInNeighborsMatchSample) {
  EXPECT_EQ(Sorted(*store_->Out(0)), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(Sorted(*store_->Out(3)), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(Sorted(*store_->In(2)), (std::vector<VertexId>{0, 3}));
  EXPECT_EQ(Sorted(*store_->In(1)), (std::vector<VertexId>{0, 3}));
  EXPECT_TRUE(store_->Out(1)->empty());
  EXPECT_EQ(Sorted(*store_->Out(0, "created")), (std::vector<VertexId>{2}));
}

TEST_F(StoreTest, GetVertexAndEdge) {
  auto marko = store_->GetVertex(0);
  ASSERT_TRUE(marko.ok());
  EXPECT_EQ(marko->Find("name")->AsString(), "marko");
  auto e0 = store_->GetEdge(0);
  ASSERT_TRUE(e0.ok());
  EXPECT_EQ(e0->src, 0);
  EXPECT_EQ(e0->dst, 1);
  EXPECT_EQ(e0->label, "knows");
  EXPECT_DOUBLE_EQ(e0->attrs.Find("weight")->AsDouble(), 0.5);
  EXPECT_TRUE(store_->GetVertex(99).status().IsNotFound());
  EXPECT_TRUE(store_->GetEdge(99).status().IsNotFound());
}

TEST_F(StoreTest, AddVertexAndEdgeCrud) {
  auto peter = store_->AddVertex(Attrs({{"name", json::JsonValue("peter")}}));
  ASSERT_TRUE(peter.ok());
  EXPECT_EQ(*peter, 4);
  auto e = store_->AddEdge(*peter, 2, "created", Attrs({}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(Sorted(*store_->Out(*peter)), (std::vector<VertexId>{2}));
  EXPECT_EQ(Sorted(*store_->In(2)), (std::vector<VertexId>{0, 3, 4}));
  // EA and adjacency stay consistent.
  auto rec = store_->GetEdge(*e);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->src, *peter);
  EXPECT_EQ(rec->dst, 2);
}

TEST_F(StoreTest, AddEdgeConvertsSingleToMultiValue) {
  // josh --created--> lop is single-valued; adding a second `created` edge
  // from josh must convert it to a list.
  const size_t osa_before = store_->db()->GetTable("OSA")->NumRows();
  ASSERT_TRUE(store_->AddEdge(3, 0, "created", Attrs({})).ok());
  EXPECT_EQ(store_->db()->GetTable("OSA")->NumRows(), osa_before + 2);
  EXPECT_EQ(Sorted(*store_->Out(3, "created")), (std::vector<VertexId>{0, 2}));
}

TEST_F(StoreTest, AddEdgeWithNewLabelSpillsOnConflict) {
  // Force a conflicting label by crafting one that hashes to the same color
  // as an occupied triad — simplest trigger: add many distinct labels.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        store_->AddEdge(0, 1, "newlabel_" + std::to_string(i), Attrs({})).ok());
  }
  auto out = store_->Out(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u + 12u);
}

TEST_F(StoreTest, RemoveEdgeSingleAndMulti) {
  // Remove one of marko's two knows edges (multi-value list shrink).
  ASSERT_TRUE(store_->RemoveEdge(0).ok());
  EXPECT_EQ(Sorted(*store_->Out(0, "knows")), (std::vector<VertexId>{3}));
  EXPECT_TRUE(store_->GetEdge(0).status().IsNotFound());
  // Remove the remaining one (list empties, triad clears).
  ASSERT_TRUE(store_->RemoveEdge(1).ok());
  EXPECT_TRUE(store_->Out(0, "knows")->empty());
  EXPECT_EQ(Sorted(*store_->Out(0)), (std::vector<VertexId>{2}));
  // Idempotence.
  EXPECT_TRUE(store_->RemoveEdge(0).IsNotFound());
}

TEST_F(StoreTest, SetAttrs) {
  ASSERT_TRUE(store_->SetVertexAttr(1, "age", json::JsonValue(28)).ok());
  EXPECT_EQ(store_->GetVertex(1)->Find("age")->AsInt(), 28);
  ASSERT_TRUE(store_->SetEdgeAttr(4, "weight", json::JsonValue(0.9)).ok());
  EXPECT_DOUBLE_EQ(store_->GetEdge(4)->attrs.Find("weight")->AsDouble(), 0.9);
}

TEST_F(StoreTest, FindEdge) {
  auto found = store_->FindEdge(0, "knows", 3);
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ(**found, 1);
  auto missing = store_->FindEdge(0, "likes", 3);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST_F(StoreTest, GetOutEdgesAndCount) {
  auto links = store_->GetOutEdges(0, "knows");
  ASSERT_TRUE(links.ok());
  EXPECT_EQ(links->size(), 2u);
  EXPECT_EQ(*store_->CountOutEdges(0, ""), 3);
  EXPECT_EQ(*store_->CountOutEdges(0, "created"), 1);
}

TEST_F(StoreTest, SoftDeleteVertex) {
  ASSERT_TRUE(store_->RemoveVertex(3).ok());  // josh
  EXPECT_TRUE(store_->GetVertex(3).status().IsNotFound());
  // josh's incident EA rows are gone.
  EXPECT_TRUE(store_->GetEdge(1).status().IsNotFound());
  EXPECT_TRUE(store_->GetEdge(3).status().IsNotFound());
  EXPECT_TRUE(store_->GetEdge(4).status().IsNotFound());
  // His own adjacency rows are hidden (negated ids).
  EXPECT_TRUE(store_->Out(3)->empty());
  // g.V-style queries exclude him via the VID >= 0 guard.
  auto result = store_->ExecuteSql("SELECT COUNT(*) FROM VA WHERE VID >= 0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 3);
  // Deleting again reports NotFound.
  EXPECT_TRUE(store_->RemoveVertex(3).IsNotFound());
  // The id is NOT reused.
  auto v = store_->AddVertex(Attrs({}));
  ASSERT_TRUE(v.ok());
  EXPECT_GT(*v, 3);
}

TEST_F(StoreTest, CompactRemovesDeletedRowsAndDanglingRefs) {
  ASSERT_TRUE(store_->RemoveVertex(1).ok());  // vadas
  ASSERT_TRUE(store_->Compact().ok());
  // Physical removal.
  EXPECT_EQ(store_->db()->GetTable("VA")->NumRows(), 3u);
  // marko's dangling knows→vadas entry is cleaned; only josh remains.
  EXPECT_EQ(Sorted(*store_->Out(0, "knows")), (std::vector<VertexId>{3}));
  // Compact with nothing to do is a no-op.
  ASSERT_TRUE(store_->Compact().ok());
  EXPECT_EQ(store_->db()->GetTable("VA")->NumRows(), 3u);
}

TEST_F(StoreTest, ExecuteSqlSeesGraph) {
  auto result = store_->ExecuteSql(
      "SELECT COUNT(*) FROM EA WHERE LBL = 'knows'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 2);
}

TEST_F(StoreTest, EmptyGraphStore) {
  auto empty = SqlGraphStore::Build(PropertyGraph());
  ASSERT_TRUE(empty.ok());
  auto v = (*empty)->AddVertex(Attrs({{"x", json::JsonValue(1)}}));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0);
  auto v2 = (*empty)->AddVertex(Attrs({}));
  auto e = (*empty)->AddEdge(*v, *v2, "self", Attrs({}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(Sorted(*(*empty)->Out(*v)), (std::vector<VertexId>{*v2}));
}

TEST(StoreConfigTest, ModuloHashAblationStillCorrect) {
  StoreConfig config;
  config.use_coloring = false;
  config.max_adjacency_colors = 4;
  auto store = SqlGraphStore::Build(SampleGraph(), config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(Sorted(*(*store)->Out(0)), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(Sorted(*(*store)->In(2)), (std::vector<VertexId>{0, 3}));
}

TEST(StoreConfigTest, TinyColorCapForcesSpills) {
  StoreConfig config;
  config.max_adjacency_colors = 1;  // every label shares one triad
  auto store = SqlGraphStore::Build(SampleGraph(), config);
  ASSERT_TRUE(store.ok());
  EXPECT_GT((*store)->load_stats().out_spill_rows, 0u);
  // Correctness is preserved through spill rows.
  EXPECT_EQ(Sorted(*(*store)->Out(0)), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(Sorted(*(*store)->Out(3)), (std::vector<VertexId>{1, 2}));
}

TEST(StoreConfigTest, PagedStorageWorks) {
  StoreConfig config;
  config.storage = rel::StorageMode::kPaged;
  config.buffer_pool_bytes = 1 << 20;
  auto store = SqlGraphStore::Build(SampleGraph(), config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(Sorted(*(*store)->Out(0)), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_GT((*store)->SerializedBytes(), 0u);
}

// ----------------------------------------------------------- micro store --

TEST(JsonAdjacencyStoreTest, HopsMatchGraph) {
  PropertyGraph g = SampleGraph();
  auto store = JsonAdjacencyStore::Build(g);
  ASSERT_TRUE(store.ok());
  auto hop = (*store)->OutHop({0});
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(Sorted(*hop), (std::vector<VertexId>{1, 2, 3}));
  hop = (*store)->OutHop({0}, "knows");
  EXPECT_EQ(Sorted(*hop), (std::vector<VertexId>{1, 3}));
  hop = (*store)->InHop({2});
  EXPECT_EQ(Sorted(*hop), (std::vector<VertexId>{0, 3}));
  hop = (*store)->BothHop({1});
  EXPECT_EQ(Sorted(*hop), (std::vector<VertexId>{0, 3}));
  // Multi-hop multiset semantics.
  auto two = (*store)->OutHop(*(*store)->OutHop({0}));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(Sorted(*two), (std::vector<VertexId>{1, 2}));  // via josh
}

TEST(HashAttrStoreTest, CountsMatchJsonSide) {
  graph::DbpediaConfig cfg;
  cfg.scale = 0.01;
  PropertyGraph g = graph::DbpediaGenerator(cfg).Generate();
  auto store = HashAttrStore::Build(g);
  ASSERT_TRUE(store.ok());

  // Ground truth from the property graph itself.
  auto expect_count = [&](const std::string& key, auto pred) {
    size_t n = 0;
    for (const auto& v : g.vertices()) {
      const json::JsonValue* a = v.attrs.Find(key);
      if (a != nullptr && pred(*a)) ++n;
    }
    return n;
  };
  using K = HashAttrStore::QueryKind;
  auto always = [](const json::JsonValue&) { return true; };
  EXPECT_EQ(*(*store)->CountMatches("label", K::kNotNull, Value()),
            expect_count("label", always));
  EXPECT_EQ(*(*store)->CountMatches("national", K::kNotNull, Value()),
            expect_count("national", always));
  EXPECT_EQ(
      *(*store)->CountMatches("label", K::kLike, Value("%en")),
      expect_count("label", [](const json::JsonValue& v) {
        return v.is_string() && util::EndsWith(v.AsString(), "en");
      }));
  EXPECT_EQ(
      *(*store)->CountMatches("longm", K::kEqNumeric, Value(int64_t{1})),
      expect_count("longm", [](const json::JsonValue& v) {
        return v.is_number() && v.AsDouble() == 1.0;
      }));
  EXPECT_EQ(*(*store)->CountMatches("nosuchkey", K::kNotNull, Value()), 0u);
}

TEST(HashAttrStoreTest, StatsPopulated) {
  graph::DbpediaConfig cfg;
  cfg.scale = 0.01;
  PropertyGraph g = graph::DbpediaGenerator(cfg).Generate();
  auto store = HashAttrStore::Build(g);
  ASSERT_TRUE(store.ok());
  const auto& s = (*store)->stats();
  EXPECT_GT(s.num_keys, 5u);
  EXPECT_GT(s.colors, 1u);
  EXPECT_GT(s.max_bucket, 0u);
  // label values like "Entity 123"@en are short; long strings come from
  // URIs (uri attribute > 40 chars).
  EXPECT_GT(s.long_string_rows, 0u);
}

}  // namespace
}  // namespace core
}  // namespace sqlgraph
