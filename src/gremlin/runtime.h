// Gremlin runtime over SQLGraph: parse → translate → execute as ONE SQL
// query (the paper's whole-query architecture, §4.2). Contrast with
// baseline/gremlin_interp.h, which evaluates the same pipelines one pipe at
// a time over a Blueprints-style API.

#ifndef SQLGRAPH_GREMLIN_RUNTIME_H_
#define SQLGRAPH_GREMLIN_RUNTIME_H_

#include <string>
#include <string_view>

#include "gremlin/parser.h"
#include "gremlin/translation_cache.h"
#include "gremlin/translator.h"
#include "sql/result.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace gremlin {

class GremlinRuntime {
 public:
  explicit GremlinRuntime(core::SqlGraphStore* store,
                          TranslatorOptions options = TranslatorOptions())
      : store_(store), translator_(&store->schema(), options) {}

  /// Runs a Gremlin query text; result column `val` carries the output.
  util::Result<sql::ResultSet> Query(std::string_view text);

  /// Runs an already-parsed pipeline. Constants are lifted into bind
  /// parameters and the SQL shape is served from the translation cache, so
  /// a repeated pipeline shape skips translation, rendering, lexing,
  /// parsing, and planning.
  util::Result<sql::ResultSet> Run(const Pipeline& pipeline);

  /// Translates without executing (for tests / the translation example).
  /// Renders constants inline (no parameterization).
  util::Result<std::string> TranslateToSql(std::string_view text) const;

  /// Convenience: a query whose result is a single scalar (e.g. count()).
  util::Result<int64_t> Count(std::string_view text);

  const TranslationCache& translation_cache() const { return cache_; }

 private:
  core::SqlGraphStore* store_;
  Translator translator_;
  TranslationCache cache_;
};

}  // namespace gremlin
}  // namespace sqlgraph

#endif  // SQLGRAPH_GREMLIN_RUNTIME_H_
