// Shared helpers for the benchmark binaries: flag parsing, dataset/store
// construction, repeated timed runs with warm-cache discipline (the paper
// runs each query 10 times and discards the first run; we default to 4).

#ifndef SQLGRAPH_BENCH_BENCH_COMMON_H_
#define SQLGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "bench_core/report.h"
#include "bench_core/workloads.h"
#include "graph/dbpedia_gen.h"
#include "obs/metrics.h"
#include "sqlgraph/store.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace sqlgraph {
namespace bench {

inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline int64_t FlagInt(int argc, char** argv, const char* name,
                       int64_t fallback) {
  return static_cast<int64_t>(
      FlagDouble(argc, argv, name, static_cast<double>(fallback)));
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Builds the benchmark dataset at the requested scale.
inline graph::PropertyGraph BuildDbpediaGraph(double scale) {
  graph::DbpediaConfig config;
  config.scale = scale;
  std::printf("generating DBpedia-like graph, scale %.3f ...\n", scale);
  util::Stopwatch sw;
  graph::PropertyGraph g = graph::DbpediaGenerator(config).Generate();
  std::printf("  %zu vertices, %zu edges (%.1fs)\n", g.NumVertices(),
              g.NumEdges(), sw.ElapsedSeconds());
  return g;
}

/// Standard SQLGraph store configuration for the DBpedia benchmarks.
inline core::StoreConfig DbpediaStoreConfig() {
  core::StoreConfig config;
  config.va_hash_indexes = IndexedAttributeKeys();
  config.va_ordered_indexes = OrderedIndexedAttributeKeys();
  return config;
}

/// Runs `fn` `runs` times, discarding the first (cold) run; returns the
/// warm-run statistics in milliseconds. Warm runs also feed the process
/// registry ("bench.run_us"), so a metrics dump after a bench shows the
/// cross-query latency distribution.
inline util::Samples TimedRuns(int runs, const std::function<void()>& fn) {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Default().GetHistogram("bench.run_us");
  util::Samples samples;
  for (int r = 0; r < runs; ++r) {
    util::Stopwatch sw;
    fn();
    if (r > 0) {
      const double ms = sw.ElapsedMillis();
      samples.Add(ms);
      hist->Record(static_cast<uint64_t>(ms * 1000.0));
    }
  }
  return samples;
}

}  // namespace bench
}  // namespace sqlgraph

#endif  // SQLGRAPH_BENCH_BENCH_COMMON_H_
