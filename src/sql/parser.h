// Recursive-descent parser for the SQL subset rendered by sql/render.h.
// Used in tests and examples to prove the translator's output round-trips.

#ifndef SQLGRAPH_SQL_PARSER_H_
#define SQLGRAPH_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace sqlgraph {
namespace sql {

/// Parses a full query (optionally starting with WITH).
util::Result<SqlQuery> ParseQuery(std::string_view text);

/// Parses a scalar expression (for tests).
util::Result<ExprPtr> ParseExpr(std::string_view text);

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_PARSER_H_
