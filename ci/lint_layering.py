#!/usr/bin/env python3
"""Static module-layering lint: #include edges must follow the CMake DAG.

The build encodes a strict layering in src/CMakeLists.txt's
target_link_libraries graph (util at the bottom, fuzz at the top), but
nothing stops a source file from #including a header its own library does
not link: the include compiles fine (one include path), and the layering
erodes silently until somebody tries to reuse a "low" module and drags in
the store. This lint re-derives every include edge from the sources and
checks it against ALLOWED below, which mirrors the transitive closure of
the CMake link graph — update both together, or the build breaks anyway.

Two kinds of exceptions exist and both are explicit here:

  * FILE_ALLOWLIST: files that live in a low module's directory but are
    compiled into a higher target (CMake already documents why); their
    upward includes are fine because their *object code* sits high.
  * A new directory under src/ is a finding until it is declared in
    ALLOWED — adding a module is a layering decision, not a default.

Exit status 0 when clean, 1 with findings on stderr. --root points the
lint at another tree (used by ci/check.sh to assert the check fails on the
planted violation in ci/testdata/layering_violation).
"""

import argparse
import pathlib
import re
import sys

# Transitive closure of src/CMakeLists.txt's target_link_libraries graph:
# module -> modules its headers may #include. A module may always include
# itself. Order is bottom-up for readability only.
ALLOWED = {
    "util": set(),
    "json": {"util"},
    "obs": {"util"},
    "coloring": {"util"},
    "rel": {"json", "obs", "util"},
    "sql": {"rel", "json", "obs", "util"},
    # sqlgraph_graph links only sqlgraph_json; analytics is the documented
    # exception below.
    "graph": {"json", "util"},
    # sqlgraph_wal is format+writer+reader only; recovery (durability) is
    # the documented exception below.
    "wal": {"util", "obs"},
    "sqlgraph": {"sql", "coloring", "graph", "wal",
                 "rel", "json", "obs", "util"},
    "gremlin": {"sqlgraph", "sql", "coloring", "graph", "wal",
                "rel", "json", "obs", "util"},
    "baseline": {"gremlin", "sqlgraph", "sql", "coloring", "graph", "wal",
                 "rel", "json", "obs", "util"},
    "bench_core": {"baseline", "gremlin", "sqlgraph", "sql", "coloring",
                   "graph", "wal", "rel", "json", "obs", "util"},
    "fuzz": {"bench_core", "baseline", "gremlin", "sqlgraph", "sql",
             "coloring", "graph", "wal", "rel", "json", "obs", "util"},
}

# Files compiled into a *higher* CMake target than their directory's
# library (see the comments next to them in src/CMakeLists.txt). Keyed by
# (file, included module); keep reasons current — an entry here silences
# the edge for that file only.
FILE_ALLOWLIST = {
    ("src/graph/analytics.cc", "rel"):
        "compiled into sqlgraph_core, not sqlgraph_graph: relational "
        "analytics run SQL over the store's tables",
    ("src/graph/analytics.cc", "sql"):
        "compiled into sqlgraph_core: drives sql::Executor directly",
    ("src/graph/analytics.cc", "sqlgraph"):
        "compiled into sqlgraph_core: needs SqlGraphStore itself",
    ("src/wal/durability.h", "graph"):
        "compiled into sqlgraph_core, not sqlgraph_wal: recovery rebuilds "
        "a PropertyGraph to reload the store",
    ("src/wal/durability.h", "sqlgraph"):
        "compiled into sqlgraph_core: recovery opens and fills the store",
    ("src/wal/durability.cc", "graph"):
        "compiled into sqlgraph_core (see durability.h)",
    ("src/wal/durability.cc", "sqlgraph"):
        "compiled into sqlgraph_core (see durability.h)",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([A-Za-z0-9_]+)/[^"]+"',
                        re.MULTILINE)


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def source_files(root: pathlib.Path):
    src = root / "src"
    if not src.is_dir():
        return
    for path in sorted(src.rglob("*")):
        if path.suffix in (".h", ".cc"):
            yield path.relative_to(root).as_posix(), path.read_text()


def check_dag(findings: list) -> None:
    """ALLOWED itself must be acyclic and closed (self-check)."""
    for mod, deps in sorted(ALLOWED.items()):
        for dep in sorted(deps):
            if dep not in ALLOWED:
                findings.append(
                    f"lint config: ALLOWED[{mod}] names unknown module "
                    f"'{dep}'")
            elif mod in ALLOWED.get(dep, set()):
                findings.append(
                    f"lint config: ALLOWED has a cycle between '{mod}' "
                    f"and '{dep}'")
            else:
                missing = ALLOWED.get(dep, set()) - deps
                if missing:
                    findings.append(
                        f"lint config: ALLOWED[{mod}] is not transitively "
                        f"closed (missing {sorted(missing)} via '{dep}')")


def check_includes(root: pathlib.Path, findings: list) -> int:
    edges = 0
    seen_modules = set()
    for rel, text in source_files(root):
        module = rel.split("/")[1]
        seen_modules.add(module)
        if module not in ALLOWED:
            findings.append(
                f"{rel}: directory 'src/{module}' is not declared in "
                "ci/lint_layering.py ALLOWED — adding a module is a "
                "layering decision; place it in the DAG")
            continue
        for dep in INCLUDE_RE.findall(strip_comments(text)):
            if dep == module or dep not in ALLOWED:
                continue  # self-include, or a system-ish path we don't own
            edges += 1
            if dep in ALLOWED[module]:
                continue
            if (rel, dep) in FILE_ALLOWLIST:
                continue
            findings.append(
                f"{rel}: includes \"{dep}/...\" but module '{module}' "
                f"sits below '{dep}' in the CMake link DAG (allowed: "
                f"{sorted(ALLOWED[module]) or 'nothing'}; if this file "
                "is compiled into a higher target, allowlist it in "
                "ci/lint_layering.py with the reason)")
    if not seen_modules:
        findings.append("src/: no sources found (wrong --root?)")
    return edges


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repo root to lint (default: this script's repository)")
    args = ap.parse_args()

    findings: list = []
    check_dag(findings)
    edges = check_includes(args.root, findings)

    if findings:
        for f in findings:
            print(f"lint_layering: {f}", file=sys.stderr)
        print(f"lint_layering: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_layering: ok ({len(ALLOWED)} modules, "
          f"{edges} cross-module include edges conform)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
