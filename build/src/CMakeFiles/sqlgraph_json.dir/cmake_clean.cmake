file(REMOVE_RECURSE
  "CMakeFiles/sqlgraph_json.dir/json/json_parser.cc.o"
  "CMakeFiles/sqlgraph_json.dir/json/json_parser.cc.o.d"
  "CMakeFiles/sqlgraph_json.dir/json/json_value.cc.o"
  "CMakeFiles/sqlgraph_json.dir/json/json_value.cc.o.d"
  "libsqlgraph_json.a"
  "libsqlgraph_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgraph_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
