file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_linkbench.dir/bench_fig9_linkbench.cc.o"
  "CMakeFiles/bench_fig9_linkbench.dir/bench_fig9_linkbench.cc.o.d"
  "bench_fig9_linkbench"
  "bench_fig9_linkbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_linkbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
