#include "rel/codec.h"

#include <cstring>

#include "json/json_parser.h"

namespace sqlgraph {
namespace rel {

namespace {
enum Tag : uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagJson = 6,
};

void PutFixed64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

util::Status GetFixed64(const std::string& buf, size_t* offset, uint64_t* out) {
  if (*offset > buf.size() || buf.size() - *offset < 8) {
    return util::Status::OutOfRange("truncated fixed64");
  }
  std::memcpy(out, buf.data() + *offset, 8);
  *offset += 8;
  return util::Status::OK();
}
}  // namespace

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

util::Status GetVarint(const std::string& buf, size_t* offset, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (*offset < buf.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(buf[*offset]);
    ++*offset;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return util::Status::OK();
    }
    shift += 7;
  }
  return util::Status::OutOfRange("truncated varint");
}

void EncodeRow(const Row& row, std::string* out) {
  for (const Value& v : row) {
    if (v.is_null()) {
      out->push_back(kTagNull);
    } else if (v.is_bool()) {
      out->push_back(v.AsBool() ? kTagTrue : kTagFalse);
    } else if (v.is_int()) {
      out->push_back(kTagInt);
      PutFixed64(static_cast<uint64_t>(v.AsInt()), out);
    } else if (v.is_double()) {
      out->push_back(kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutFixed64(bits, out);
    } else if (v.is_string()) {
      out->push_back(kTagString);
      PutVarint(v.AsString().size(), out);
      out->append(v.AsString());
    } else {
      out->push_back(kTagJson);
      const std::string text = json::Write(v.AsJson());
      PutVarint(text.size(), out);
      out->append(text);
    }
  }
}

util::Status DecodeRow(const std::string& buf, size_t num_columns,
                       size_t* offset, Row* out) {
  out->clear();
  out->reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    if (*offset >= buf.size()) return util::Status::OutOfRange("truncated row");
    const uint8_t tag = static_cast<uint8_t>(buf[*offset]);
    ++*offset;
    switch (tag) {
      case kTagNull: out->emplace_back(); break;
      case kTagFalse: out->emplace_back(false); break;
      case kTagTrue: out->emplace_back(true); break;
      case kTagInt: {
        uint64_t bits;
        RETURN_NOT_OK(GetFixed64(buf, offset, &bits));
        out->emplace_back(static_cast<int64_t>(bits));
        break;
      }
      case kTagDouble: {
        uint64_t bits;
        RETURN_NOT_OK(GetFixed64(buf, offset, &bits));
        double d;
        std::memcpy(&d, &bits, 8);
        out->emplace_back(d);
        break;
      }
      case kTagString: {
        uint64_t len;
        RETURN_NOT_OK(GetVarint(buf, offset, &len));
        // Overflow-safe form: *offset + len can wrap for adversarial len.
        if (len > buf.size() - *offset) {
          return util::Status::OutOfRange("truncated string payload");
        }
        out->emplace_back(buf.substr(*offset, len));
        *offset += len;
        break;
      }
      case kTagJson: {
        uint64_t len;
        RETURN_NOT_OK(GetVarint(buf, offset, &len));
        if (len > buf.size() - *offset) {
          return util::Status::OutOfRange("truncated json payload");
        }
        ASSIGN_OR_RETURN(json::JsonValue jv,
                         json::Parse(std::string_view(buf).substr(*offset, len)));
        out->emplace_back(std::move(jv));
        *offset += len;
        break;
      }
      default:
        return util::Status::Internal("bad value tag " + std::to_string(tag));
    }
  }
  return util::Status::OK();
}

}  // namespace rel
}  // namespace sqlgraph
