// GraphDb adapter over SqlGraphStore, used for
//  * the LinkBench driver (every store runs the identical request stream),
//  * the "chatty" ablation: evaluating Gremlin pipe-at-a-time over the
//    SQLGraph schema to isolate the whole-query translation's contribution
//    from the schema's contribution.

#ifndef SQLGRAPH_BASELINE_SQLGRAPH_ADAPTER_H_
#define SQLGRAPH_BASELINE_SQLGRAPH_ADAPTER_H_

#include <memory>
#include <string>

#include "baseline/blueprints.h"
#include "sqlgraph/store.h"

namespace sqlgraph {
namespace baseline {

class SqlGraphAdapter : public GraphDb {
 public:
  /// Does not own the store. `round_trip_micros` models the per-call hop
  /// when this adapter is used to emulate the chatty protocol; the paper's
  /// SQLGraph proper issues ONE SQL per query instead.
  SqlGraphAdapter(core::SqlGraphStore* store, uint32_t round_trip_micros = 0)
      : store_(store), rt_(round_trip_micros) {}

  std::string name() const override { return "SQLGraph"; }

  util::Result<VertexId> AddVertex(json::JsonValue attrs) override;
  util::Result<json::JsonValue> GetVertex(VertexId vid) override;
  util::Status SetVertexAttr(VertexId vid, const std::string& key,
                             json::JsonValue value) override;
  util::Status RemoveVertex(VertexId vid) override;
  util::Result<EdgeId> AddEdge(VertexId src, VertexId dst,
                               const std::string& label,
                               json::JsonValue attrs) override;
  util::Result<EdgeRecord> GetEdge(EdgeId eid) override;
  util::Status SetEdgeAttr(EdgeId eid, const std::string& key,
                           json::JsonValue value) override;
  util::Status RemoveEdge(EdgeId eid) override;
  util::Result<std::optional<EdgeId>> FindEdge(VertexId src,
                                               const std::string& label,
                                               VertexId dst) override;
  util::Result<std::vector<EdgeRecord>> GetOutEdges(
      VertexId src, const std::string& label) override;
  util::Result<int64_t> CountOutEdges(VertexId src,
                                      const std::string& label) override;
  util::Result<std::vector<VertexId>> Out(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> In(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> OutE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<EdgeId>> InE(
      VertexId vid, const std::vector<std::string>& labels) override;
  util::Result<std::vector<VertexId>> AllVertices() override;
  util::Result<std::vector<EdgeId>> AllEdges() override;
  util::Result<std::vector<VertexId>> VerticesByAttr(
      const std::string& key, const rel::Value& value) override;
  size_t SerializedBytes() const override { return store_->SerializedBytes(); }

 private:
  core::SqlGraphStore* store_;
  uint32_t rt_;
};

}  // namespace baseline
}  // namespace sqlgraph

#endif  // SQLGRAPH_BASELINE_SQLGRAPH_ADAPTER_H_
