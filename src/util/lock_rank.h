// Runtime lock-rank validation: every ranked mutex belongs to one global
// acquisition hierarchy, and a debug-checked per-thread stack aborts the
// process the moment any thread acquires locks out of documented order —
// whether or not the interleaving that would deadlock actually occurs.
//
// This complements the Clang thread-safety annotations
// (util/thread_annotations.h): the annotations prove "this member is only
// touched under its mutex" statically, but they cannot express cross-mutex
// *ordering* invariants, condition-variable handoffs, or the WAL
// Enqueue/WaitDurable split where a lock is released between the two halves
// of one logical operation. The rank validator covers exactly that gap at
// runtime.
//
// The global hierarchy (acquired strictly in increasing rank order; see
// DESIGN.md "Lock hierarchy & error discipline" for the protocol-level
// rationale):
//
//   kThreadPool        bench thread-pool queue; never held across a task
//   kWalRotate         SqlGraphStore::wal_rotate_mu_ — CommitGuard (shared)
//                      / Checkpoint (exclusive); the outermost store lock
//   kBaselineStore     baseline stores' one big request lock (independent
//                      subsystem; never nested with sqlgraph locks)
//   kStoreTable        the six table locks, sub-ordered by TableIdx
//                      (OPA < IPA < OSA < ISA < VA < EA)
//   kRowStripe         rel::LockManager stripes, sub-ordered by stripe index
//   kStoreCounter      id-counter lock; taken while holding table locks
//                      (list-id allocation inside AddAdjacencyEntry)
//   kTxnManager        SqlGraphStore::txn_mu_ — conflict map + active-txn
//                      registry; commit validates/publishes while holding
//                      the table locks, so it ranks above kStoreTable (and
//                      above kStoreCounter: commit allocates ids first).
//                      Never nested with kWalWriter on the same thread
//                      (Enqueue happens after txn_mu_ is released).
//   kWalWriter         wal::LogWriter::mu_ — Enqueue runs under the
//                      serializing table lock, so the writer ranks below
//                      nothing it is ever held with
//   kBufferPool        rel::BufferPool::mu_ — page decode during scans that
//                      already hold table locks
//   kStoreTemplates    SqlGraphStore::tpl_mu_ — compiles through the plan
//                      cache, so it must rank below it
//   kTranslationCache  gremlin::TranslationCache::mu_
//   kPlanCache         sql::PlanCache::mu_
//   kPlanMemo          sql::PlanMemo::mu_ (leaf; plain map accessors)
//   kStoreStats        SqlGraphStore::stats_mu_ (leaf)
//   kMetricsRegistry   obs::MetricsRegistry::mu_ — metric creation happens
//                      lazily under any of the locks above, so the registry
//                      is the global leaf
//
// Checking is compiled in unconditionally but costs one relaxed atomic load
// plus a branch when disabled. It defaults ON in debug builds (!NDEBUG) so
// the ASan/TSan CI stages validate the hierarchy across the whole test
// suite, and OFF in release builds; SQLGRAPH_LOCK_RANK=0/1 overrides the
// default, and SetLockRankCheckingEnabled() overrides both.

#ifndef SQLGRAPH_UTIL_LOCK_RANK_H_
#define SQLGRAPH_UTIL_LOCK_RANK_H_

#include <atomic>

namespace sqlgraph {
namespace util {

/// Global mutex hierarchy; a thread may only acquire a lock whose
/// (rank, order) pair is strictly greater than every lock it already holds.
enum class LockRank : int {
  kUnranked = 0,  ///< Not tracked (default-constructed shims, local mutexes).
  kThreadPool = 5,
  kWalRotate = 10,
  kBaselineStore = 15,
  kStoreTable = 20,
  kRowStripe = 25,
  kStoreCounter = 30,
  kTxnManager = 35,
  kWalWriter = 40,
  kBufferPool = 50,
  kStoreTemplates = 60,
  kTranslationCache = 70,
  kPlanCache = 80,
  kPlanMemo = 85,
  kStoreStats = 90,
  kMetricsRegistry = 100,
};

/// Identity of one ranked mutex. `order` sub-orders mutexes that share a
/// rank and are legitimately held together (table locks by TableIdx, lock
/// stripes by stripe index); two distinct mutexes with the same
/// (rank, order) may never be held by one thread at once.
struct LockRankInfo {
  LockRank rank = LockRank::kUnranked;
  int order = 0;
  const char* name = "";
};

/// True when acquisitions are being validated on this process.
bool LockRankCheckingEnabled();
/// Force checking on/off (tests); overrides the build-type/env default.
void SetLockRankCheckingEnabled(bool enabled);

namespace lock_rank_internal {
extern std::atomic<bool> g_checking;
void AcquireSlow(const void* mu, const LockRankInfo& info);
void ReleaseSlow(const void* mu);
}  // namespace lock_rank_internal

/// Hot-path hooks called by the Mutex/SharedMutex shims. Validation happens
/// *before* the underlying lock call blocks, so a real inversion aborts
/// with stack traces instead of deadlocking silently.
inline void LockRankOnAcquire(const void* mu, const LockRankInfo& info) {
  if (info.rank == LockRank::kUnranked) return;
  if (!lock_rank_internal::g_checking.load(std::memory_order_relaxed)) return;
  lock_rank_internal::AcquireSlow(mu, info);
}

inline void LockRankOnRelease(const void* mu, const LockRankInfo& info) {
  if (info.rank == LockRank::kUnranked) return;
  if (!lock_rank_internal::g_checking.load(std::memory_order_relaxed)) return;
  lock_rank_internal::ReleaseSlow(mu);
}

}  // namespace util
}  // namespace sqlgraph

#endif  // SQLGRAPH_UTIL_LOCK_RANK_H_
