// SQL tokenizer for the emitted subset.

#ifndef SQLGRAPH_SQL_LEXER_H_
#define SQLGRAPH_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqlgraph {
namespace sql {

enum class TokenType {
  kKeyword,     // upper-cased reserved word
  kIdentifier,  // table/column/function name (case preserved)
  kString,      // 'literal' with '' escapes, already unescaped
  kInteger,
  kDouble,
  kSymbol,  // punctuation / operator: ( ) , . * = <> < <= > >= + - / || ;
  kParam,   // bind parameter: `?` (text empty) or `:name` (text = name)
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // keyword: uppercase; symbol: canonical form
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes SQL text. Keywords are recognized case-insensitively.
util::Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_LEXER_H_
