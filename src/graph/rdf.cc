#include "graph/rdf.h"

namespace sqlgraph {
namespace graph {

std::string UriLocalName(const std::string& uri) {
  const size_t hash = uri.find_last_of('#');
  if (hash != std::string::npos) return uri.substr(hash + 1);
  const size_t slash = uri.find_last_of('/');
  if (slash != std::string::npos) return uri.substr(slash + 1);
  return uri;
}

VertexId RdfToPropertyGraph::InternResource(const std::string& uri) {
  auto it = by_uri_.find(uri);
  if (it != by_uri_.end()) return it->second;
  json::JsonValue attrs = json::JsonValue::Object();
  attrs.Set("uri", uri);
  const VertexId id = out_->AddVertex(std::move(attrs));
  by_uri_.emplace(uri, id);
  return id;
}

VertexId RdfToPropertyGraph::Find(const std::string& uri) const {
  auto it = by_uri_.find(uri);
  return it == by_uri_.end() ? -1 : it->second;
}

util::Status RdfToPropertyGraph::Add(const Quad& quad) {
  const VertexId subject = InternResource(quad.subject);
  if (quad.object_is_literal) {
    // Rule (c): datatype property → vertex attribute, keyed by the
    // predicate's local name. Repeated keys become JSON arrays
    // (multi-valued attributes).
    const std::string key = UriLocalName(quad.predicate);
    json::JsonValue& attrs = out_->mutable_vertex(subject).attrs;
    const json::JsonValue* existing = attrs.Find(key);
    if (existing == nullptr) {
      attrs.Set(key, quad.object_literal);
    } else if (existing->is_array()) {
      json::JsonValue arr = *existing;
      arr.Append(quad.object_literal);
      attrs.Set(key, std::move(arr));
    } else {
      json::JsonValue arr = json::JsonValue::Array();
      arr.Append(*existing);
      arr.Append(quad.object_literal);
      attrs.Set(key, std::move(arr));
    }
    return util::Status::OK();
  }
  // Rule (b): object property → adjacency edge; rule (d): context → edge
  // attributes.
  const VertexId object = InternResource(quad.object_resource);
  json::JsonValue edge_attrs = quad.context.is_object()
                                   ? quad.context
                                   : json::JsonValue::Object();
  return out_
      ->AddEdge(subject, object, UriLocalName(quad.predicate),
                std::move(edge_attrs))
      .status();
}

}  // namespace graph
}  // namespace sqlgraph
