#include "gremlin/runtime.h"

#include <unordered_map>

#include "sql/render.h"
#include "util/string_util.h"

namespace sqlgraph {
namespace gremlin {

std::string GremlinExplain::ToString() const {
  std::string out;
  for (const PipeStats& p : pipes) {
    std::string cte_list;
    for (size_t i = 0; i < p.ctes.size(); ++i) {
      if (i) cte_list += ",";
      cte_list += p.ctes[i];
    }
    out += util::StrFormat("pipe %-28s [%s] rows=%llu time=%.3f ms\n",
                           p.pipe.c_str(), cte_list.c_str(),
                           static_cast<unsigned long long>(p.rows),
                           static_cast<double>(p.ns) / 1e6);
    for (const obs::TraceSpan& s : p.spans) {
      out += util::StrFormat("    %s: %s rows=%llu time=%.3f ms\n",
                             s.context.c_str(), s.op.c_str(),
                             static_cast<unsigned long long>(s.rows),
                             static_cast<double>(s.ns) / 1e6);
    }
  }
  for (const obs::TraceSpan& s : final_spans) {
    out += util::StrFormat("final %s: %s rows=%llu time=%.3f ms\n",
                           s.context.c_str(), s.op.c_str(),
                           static_cast<unsigned long long>(s.rows),
                           static_cast<double>(s.ns) / 1e6);
  }
  return out;
}

util::Result<sql::ResultSet> GremlinRuntime::Query(std::string_view text) {
  ASSIGN_OR_RETURN(Pipeline pipeline, ParseGremlin(text));
  return Run(pipeline);
}

util::Result<sql::ResultSet> GremlinRuntime::Run(const Pipeline& pipeline) {
  sql::ParamBindings binds;
  ASSIGN_OR_RETURN(CachedTranslation cached,
                   cache_.GetOrTranslate(translator_, pipeline, &binds));
  auto prepared = store_->Prepare(cached.sql);
  if (!prepared.ok()) {
    // The rendered text did not survive the parse round trip (a construct
    // the SQL parser does not accept yet): execute the translated AST
    // directly. Deterministic per shape, so correctness is unaffected.
    ASSIGN_OR_RETURN(sql::SqlQuery query, translator_.Translate(pipeline));
    return store_->Execute(query);
  }
  return store_->ExecutePrepared(**prepared, binds);
}

util::Result<std::string> GremlinRuntime::TranslateToSql(
    std::string_view text) const {
  ASSIGN_OR_RETURN(Pipeline pipeline, ParseGremlin(text));
  ASSIGN_OR_RETURN(sql::SqlQuery query, translator_.Translate(pipeline));
  return sql::Render(query);
}

util::Result<GremlinExplain> GremlinRuntime::ExplainAnalyze(
    std::string_view text) {
  ASSIGN_OR_RETURN(Pipeline pipeline, ParseGremlin(text));
  PipeAttribution attribution;
  ASSIGN_OR_RETURN(sql::SqlQuery query,
                   translator_.Translate(pipeline, &attribution));

  GremlinExplain explain;
  explain.sql = sql::Render(query);
  for (const auto& entry : attribution.pipes) {
    GremlinExplain::PipeStats p;
    p.pipe = entry.pipe;
    p.ctes = entry.ctes;
    explain.pipes.push_back(std::move(p));
  }

  sql::ExecStats stats;
  ASSIGN_OR_RETURN(explain.result, store_->ExecuteAnalyze(query, &stats));

  // CTE name -> owning pipe. Executor spans carry the CTE they ran in as
  // their context, which is the join key back to the source pipe.
  std::unordered_map<std::string, size_t> owner;
  for (size_t i = 0; i < explain.pipes.size(); ++i) {
    for (const std::string& cte : explain.pipes[i].ctes) owner[cte] = i;
  }
  for (const obs::TraceSpan& span : stats.spans) {
    auto it = owner.find(span.context);
    if (it == owner.end()) {
      explain.final_spans.push_back(span);
      continue;
    }
    GremlinExplain::PipeStats& p = explain.pipes[it->second];
    p.ns += span.ns;
    // The last operator of the pipe's last CTE is what the next pipe sees.
    if (!p.ctes.empty() && span.context == p.ctes.back()) p.rows = span.rows;
    p.spans.push_back(span);
  }
  return explain;
}

util::Result<int64_t> GremlinRuntime::Count(std::string_view text) {
  ASSIGN_OR_RETURN(sql::ResultSet result, Query(text));
  if (result.rows.size() != 1 || result.rows[0].empty() ||
      !result.rows[0][0].is_number()) {
    return util::Status::InvalidArgument("query did not produce a scalar");
  }
  return result.rows[0][0].AsInt();
}

}  // namespace gremlin
}  // namespace sqlgraph
