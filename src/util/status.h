// Status and Result<T>: exception-free error handling in the style of
// RocksDB's Status and Arrow's Result.
//
// Library code never throws; fallible functions return Status (no payload)
// or Result<T> (payload or error). The RETURN_NOT_OK / ASSIGN_OR_RETURN
// macros propagate errors up the stack.

#ifndef SQLGRAPH_UTIL_STATUS_H_
#define SQLGRAPH_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace sqlgraph {
namespace util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kParseError = 7,
  kTypeError = 8,
  kConflict = 9,
  kAborted = 10,
};

/// \brief Outcome of a fallible operation that produces no value.
///
/// The OK state carries no allocation; error states carry a code and a
/// human-readable message.
///
/// [[nodiscard]]: silently dropping a Status is how acknowledged-but-lost
/// writes happen. Call sites that genuinely may drop one must cast to
/// `(void)` with a comment stating why dropping is safe (see DESIGN.md
/// "Lock hierarchy & error discipline").
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code()) {
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kAlreadyExists: name = "AlreadyExists"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kNotImplemented: name = "NotImplemented"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kParseError: name = "ParseError"; break;
      case StatusCode::kTypeError: name = "TypeError"; break;
      case StatusCode::kConflict: name = "Conflict"; break;
      case StatusCode::kAborted: name = "Aborted"; break;
      default: name = "Unknown"; break;
    }
    return name + ": " + message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status cheap to copy; OK is a null pointer.
  std::shared_ptr<const State> state_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// [[nodiscard]] for the same reason as Status: ignoring a Result both
/// drops the error and discards the computed value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result must not hold OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace util
}  // namespace sqlgraph

/// Propagates a non-OK Status from the enclosing function.
#define RETURN_NOT_OK(expr)                       \
  do {                                            \
    ::sqlgraph::util::Status _st = (expr);        \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define SQLGRAPH_CONCAT_IMPL(x, y) x##y
#define SQLGRAPH_CONCAT(x, y) SQLGRAPH_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  ASSIGN_OR_RETURN_IMPL(SQLGRAPH_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value()

#endif  // SQLGRAPH_UTIL_STATUS_H_
