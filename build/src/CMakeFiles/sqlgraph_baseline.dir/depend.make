# Empty dependencies file for sqlgraph_baseline.
# This may be replaced when dependencies are built.
