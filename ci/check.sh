#!/usr/bin/env bash
# CI gate: regular build + tests, a crash-recovery smoke stage with an
# elevated fault-injection trial count, then an ASan/UBSan build + tests
# (which re-runs the WAL suite under the sanitizers).
#
#   ci/check.sh            # all stages
#   ci/check.sh --fast     # regular pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure
}

echo "== regular build =="
run_pass build

echo "== WAL recovery smoke (elevated crash-point count) =="
SQLGRAPH_WAL_CRASH_TRIALS=600 \
  ./build/tests/sqlgraph_tests --gtest_filter='WalCrashRecoveryTest.*'

if [[ "${1:-}" != "--fast" ]]; then
  echo "== ASan/UBSan build =="
  run_pass build-asan -DSQLGRAPH_SANITIZE=address -DCMAKE_BUILD_TYPE=Debug
fi

echo "ci/check.sh: all passes green"
