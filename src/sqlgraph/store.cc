#include "sqlgraph/store.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "json/json_parser.h"
#include "obs/metrics.h"
#include "wal/log_writer.h"

namespace sqlgraph {
namespace core {

using rel::Row;
using rel::RowId;
using rel::Value;
using util::Result;
using util::Status;

namespace {
// Column offsets in OPA/IPA rows.
constexpr size_t kVidCol = 0;
constexpr size_t kSpillCol = 1;
size_t EidColIdx(size_t c) { return 2 + 3 * c; }
size_t LblColIdx(size_t c) { return 3 + 3 * c; }
size_t ValColIdx(size_t c) { return 4 + 3 * c; }

// EA column offsets.
constexpr size_t kEaEid = 0;
constexpr size_t kEaInv = 1;
constexpr size_t kEaOutv = 2;
constexpr size_t kEaLbl = 3;
constexpr size_t kEaAttr = 4;
}  // namespace

// ------------------------------------------------------------------ locks --

namespace {
/// Blocking lock acquisition with contended-path wait accounting. The
/// uncontended try_lock succeeds without touching the clock or the registry,
/// so the instrumentation is free exactly where the hot path is; only actual
/// waiters pay two clock reads plus two sharded counter updates.
/// Contended-path wait metrics, resolved once. Warmed eagerly when a store
/// is built (see SqlGraphStore::Build) instead of lazily on first
/// contention: the registry lookups run under the instrumented registry
/// mutex, so a function-local static initializing mid-schedule would give
/// the first contended schedule once-per-process extra scheduling points,
/// making it irreproducible under the schedule explorer (util/sched.h).
struct LockWaitMetrics {
  obs::Counter* waits;
  obs::Histogram* wait_ns;
};
const LockWaitMetrics& GetLockWaitMetrics() {
  static const LockWaitMetrics m{
      obs::MetricsRegistry::Default().GetCounter("store.lock.waits"),
      obs::MetricsRegistry::Default().GetHistogram("store.lock.wait_ns")};
  return m;
}

template <typename Lock>
void AcquireTimed(Lock* lock) {
  if (lock->try_lock()) return;
  if (!obs::MetricsEnabled()) {
    lock->lock();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  lock->lock();
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  const LockWaitMetrics& m = GetLockWaitMetrics();
  m.waits->Increment();
  m.wait_ns->Record(ns);
}
}  // namespace

SqlGraphStore::ReadLockAll::ReadLockAll(const SqlGraphStore* store) {
  for (int i = 0; i < kNumTables; ++i) {
    locks_[i] = std::shared_lock<util::SharedMutex>(store->table_locks_[i],
                                                    std::defer_lock);
    AcquireTimed(&locks_[i]);
  }
}

SqlGraphStore::WriteLock::WriteLock(const SqlGraphStore* store,
                                    std::vector<Req> reqs) {
  std::sort(reqs.begin(), reqs.end(),
            [](const Req& a, const Req& b) { return a.table < b.table; });
  for (const Req& r : reqs) {
    if (r.exclusive) {
      exclusive_.emplace_back(store->table_locks_[r.table], std::defer_lock);
      AcquireTimed(&exclusive_.back());
    } else {
      shared_.emplace_back(store->table_locks_[r.table], std::defer_lock);
      AcquireTimed(&shared_.back());
    }
  }
}

SqlGraphStore::CommitGuard::CommitGuard(const SqlGraphStore* store)
    : lock_(store->wal_rotate_mu_, std::defer_lock) {
  AcquireTimed(&lock_);
}

util::Status SqlGraphStore::LogWalEnqueue(const wal::Record& rec,
                                          uint64_t* ticket) {
  *ticket = 0;
  if (wal_writer_ == nullptr) return Status::OK();
  ASSIGN_OR_RETURN(*ticket, wal_writer_->Enqueue(rec));
  return Status::OK();
}

util::Status SqlGraphStore::LogWalWait(uint64_t ticket) {
  if (ticket == 0 || wal_writer_ == nullptr) return Status::OK();
  return wal_writer_->WaitDurable(ticket);
}

// ------------------------------------------------------------------- mvcc --

rel::Table* SqlGraphStore::TableAt(TableIdx t) {
  switch (t) {
    case kOpa: return db_.GetTable(kOpaTable);
    case kIpa: return db_.GetTable(kIpaTable);
    case kOsa: return db_.GetTable(kOsaTable);
    case kIsa: return db_.GetTable(kIsaTable);
    case kVa: return db_.GetTable(kVaTable);
    case kEa: return db_.GetTable(kEaTable);
    default: return nullptr;
  }
}

uint64_t SqlGraphStore::AllocVersionTs() {
  // seq_cst pairing with RegisterTxnRead: if this load sees 0, every
  // concurrent Begin's increment is ordered after it, so that Begin reads a
  // read_ts >= any timestamp this mutation could have taken — the mutation
  // is (or will be, before the snapshot's first lock acquisition succeeds)
  // fully visible to the snapshot, and no before-image is needed.
  if (active_txns_.load(std::memory_order_seq_cst) == 0) return 0;
  return commit_ts_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

void SqlGraphStore::PublishAndTrimLocked(
    const std::vector<uint64_t>& entities, uint64_t version_ts,
    const std::vector<TableIdx>& tables) {
  uint64_t watermark = ~uint64_t{0};
  if (version_ts != 0) {
    if (util::sched::SelfTestMode() == util::sched::SelfTest::kRace) {
      // Injected bug (mutation self-test): the watermark read happens
      // after txn_mu_ is dropped, racing Register/DeregisterTxnRead.
      {
        util::MutexLock guard(&txn_mu_);
        for (uint64_t e : entities) entity_commit_ts_[e] = version_ts;
      }
      watermark = SelfTestRacyWatermark();
    } else {
      util::MutexLock guard(&txn_mu_);
      for (uint64_t e : entities) entity_commit_ts_[e] = version_ts;
      const auto& ts = active_read_ts_.Read();
      if (!ts.empty()) watermark = *ts.begin();
    }
  }
  // With no registered snapshot the before-images are unreachable (any
  // later Begin pins a read_ts at or past every recorded timestamp), so the
  // max watermark drops them all.
  for (TableIdx t : tables) TableAt(t)->TrimVersions(watermark);
}

util::Status SqlGraphStore::UnwindLocked(
    util::Status st, uint64_t version_ts,
    const std::vector<TableIdx>& tables) {
  if (version_ts != 0) {
    for (TableIdx t : tables) {
      Status revert = TableAt(t)->RevertVersionsAt(version_ts);
      if (!revert.ok()) {
        return Status::Internal("mvcc unwind failed (" + revert.message() +
                                ") after: " + st.message());
      }
    }
  }
  return st;
}

uint64_t SqlGraphStore::RegisterTxnRead() {
  util::MutexLock guard(&txn_mu_);
  // Increment-then-read under txn_mu_ keeps the count, the pinned
  // timestamp, and the registry entry atomic with respect to committers,
  // which read the registry under the same mutex.
  active_txns_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t read_ts = commit_ts_.load(std::memory_order_seq_cst);
  active_read_ts_.Write().insert(read_ts);
  txns_begun_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    static obs::Counter* begun =
        obs::MetricsRegistry::Default().GetCounter("txn.begun");
    static obs::Gauge* active =
        obs::MetricsRegistry::Default().GetGauge("txn.active");
    begun->Increment();
    active->Add(1);
  }
  return read_ts;
}

void SqlGraphStore::DeregisterTxnRead(uint64_t read_ts) {
  util::MutexLock guard(&txn_mu_);
  auto& ts = active_read_ts_.Write();
  auto it = ts.find(read_ts);
  if (it != ts.end()) ts.erase(it);
  // The conflict map only has to outlive the snapshots that could still
  // lose to its entries.
  if (ts.empty()) entity_commit_ts_.clear();
  active_txns_.fetch_sub(1, std::memory_order_seq_cst);
  if (obs::MetricsEnabled()) {
    static obs::Gauge* active =
        obs::MetricsRegistry::Default().GetGauge("txn.active");
    active->Add(-1);
  }
}

TxnStats SqlGraphStore::txn_stats() const {
  TxnStats s;
  s.begun = txns_begun_.load(std::memory_order_relaxed);
  s.committed = txns_committed_.load(std::memory_order_relaxed);
  s.aborted = txns_aborted_.load(std::memory_order_relaxed);
  s.conflicts = txn_conflicts_.load(std::memory_order_relaxed);
  s.active = active_txns_.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------------------ build --

Result<std::unique_ptr<SqlGraphStore>> SqlGraphStore::Build(
    const graph::PropertyGraph& graph, StoreConfig config) {
  auto store = std::unique_ptr<SqlGraphStore>(new SqlGraphStore(config));
  // Single-threaded here; see GetLockWaitMetrics for why lazy-on-contention
  // is not an option.
  GetLockWaitMetrics();
  store->schema_ = AnalyzeGraph(graph, config);
  ASSIGN_OR_RETURN(store->load_stats_,
                   BulkLoad(graph, store->schema_, config, &store->db_,
                            &store->next_lid_));
  store->next_vertex_id_ = static_cast<int64_t>(graph.NumVertices());
  store->next_edge_id_ = static_cast<int64_t>(graph.NumEdges());
  return store;
}

// --------------------------------------------------------------- vertices --

Status SqlGraphStore::ApplyAddVertexLocked(int64_t vid, json::JsonValue attrs,
                                           uint64_t version_ts) {
  return db_.GetTable(kVaTable)
      ->Insert({Value(vid), Value(std::move(attrs))}, version_ts)
      .status();
}

Result<VertexId> SqlGraphStore::AddVertex(json::JsonValue attrs) {
  CommitGuard commit(this);
  int64_t vid;
  {
    util::WriterMutexLock counter(&counter_lock_);
    vid = next_vertex_id_++;
  }
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kAddVertex;
    rec.id = vid;
    rec.json = json::Write(attrs);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st = ApplyAddVertexLocked(vid, std::move(attrs), vts);
    if (!st.ok()) return UnwindLocked(std::move(st), vts, {kVa});
    PublishAndTrimLocked({VertexEntity(vid)}, vts, {kVa});
    // Enqueued at the VA serialization point (see LogWalEnqueue); the
    // durability wait happens after the lock so committers can batch.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  RETURN_NOT_OK(LogWalWait(ticket));
  return static_cast<VertexId>(vid);
}

Result<json::JsonValue> SqlGraphStore::GetVertex(VertexId vid) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kVa, false}});
  const rel::Table* va = db_.GetTable(kVaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   va->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  if (rids.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  Row row;
  RETURN_NOT_OK(va->Get(rids[0], &row));
  return row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
}

Status SqlGraphStore::ApplySetVertexAttrLocked(int64_t vid,
                                               const std::string& key,
                                               json::JsonValue value,
                                               uint64_t version_ts) {
  rel::Table* va = db_.GetTable(kVaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   va->LookupEq({0}, {{Value(vid)}}));
  if (rids.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  Row row;
  RETURN_NOT_OK(va->Get(rids[0], &row));
  json::JsonValue attrs =
      row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
  attrs.Set(key, std::move(value));
  return va->Update(rids[0], {row[0], Value(std::move(attrs))}, version_ts);
}

Status SqlGraphStore::SetVertexAttr(VertexId vid, const std::string& key,
                                    json::JsonValue value) {
  CommitGuard commit(this);
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kSetVertexAttr;
    rec.id = static_cast<int64_t>(vid);
    rec.label = key;
    rec.json = json::Write(value);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st = ApplySetVertexAttrLocked(static_cast<int64_t>(vid), key,
                                         std::move(value), vts);
    if (!st.ok()) return UnwindLocked(std::move(st), vts, {kVa});
    PublishAndTrimLocked({VertexEntity(static_cast<int64_t>(vid))}, vts,
                         {kVa});
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::ApplyRemoveVertexAttrLocked(int64_t vid,
                                                  const std::string& key,
                                                  uint64_t version_ts) {
  rel::Table* va = db_.GetTable(kVaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   va->LookupEq({0}, {{Value(vid)}}));
  if (rids.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  Row row;
  RETURN_NOT_OK(va->Get(rids[0], &row));
  json::JsonValue attrs =
      row[1].is_json() ? row[1].AsJson() : json::JsonValue::Object();
  attrs.Erase(key);
  return va->Update(rids[0], {row[0], Value(std::move(attrs))}, version_ts);
}

Status SqlGraphStore::RemoveVertexAttr(VertexId vid, const std::string& key) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveVertexAttr;
  rec.id = static_cast<int64_t>(vid);
  rec.label = key;
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kVa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st =
        ApplyRemoveVertexAttrLocked(static_cast<int64_t>(vid), key, vts);
    if (!st.ok()) return UnwindLocked(std::move(st), vts, {kVa});
    PublishAndTrimLocked({VertexEntity(static_cast<int64_t>(vid))}, vts,
                         {kVa});
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::NegateAdjacencyRows(bool outgoing, VertexId vid,
                                          uint64_t version_ts) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  for (RowId rid : rids) {
    Row row;
    RETURN_NOT_OK(primary->Get(rid, &row));
    row[kVidCol] = Value(-static_cast<int64_t>(vid) - 1);
    RETURN_NOT_OK(primary->Update(rid, std::move(row), version_ts));
  }
  return Status::OK();
}

Status SqlGraphStore::ApplyRemoveVertexLocked(
    int64_t vid, uint64_t version_ts, std::vector<int64_t>* removed_eids) {
  rel::Table* va = db_.GetTable(kVaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   va->LookupEq({0}, {{Value(vid)}}));
  if (rids.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  // Soft delete: VID → -VID-1 keeps the cross-table relationship of the
  // deleted rows intact (§4.5.2) while the VID >= 0 guards hide them.
  Row row;
  RETURN_NOT_OK(va->Get(rids[0], &row));
  row[0] = Value(-vid - 1);
  RETURN_NOT_OK(va->Update(rids[0], std::move(row), version_ts));
  RETURN_NOT_OK(NegateAdjacencyRows(/*outgoing=*/true,
                                    static_cast<VertexId>(vid), version_ts));
  RETURN_NOT_OK(NegateAdjacencyRows(/*outgoing=*/false,
                                    static_cast<VertexId>(vid), version_ts));
  // EA rows of incident edges are removed outright.
  rel::Table* ea = db_.GetTable(kEaTable);
  for (int col : {1, 2}) {  // INV, OUTV
    ASSIGN_OR_RETURN(std::vector<RowId> edge_rids,
                     ea->LookupEq({col}, {{Value(vid)}}));
    for (RowId rid : edge_rids) {
      Row edge_row;
      RETURN_NOT_OK(ea->Get(rid, &edge_row));
      removed_eids->push_back(edge_row[kEaEid].AsInt());
      RETURN_NOT_OK(ea->Delete(rid, version_ts));
    }
  }
  return Status::OK();
}

Status SqlGraphStore::RemoveVertex(VertexId vid) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveVertex;
  rec.id = static_cast<int64_t>(vid);
  uint64_t ticket = 0;
  {
    // One exclusive section over every touched table: the negated VA row,
    // the negated adjacency rows, and the EA cleanup become visible (and
    // versioned) atomically — no reader or snapshot can observe a
    // half-removed vertex.
    WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kVa, true},
                          {kEa, true}});
    const uint64_t vts = AllocVersionTs();
    std::vector<int64_t> removed_eids;
    Status st = ApplyRemoveVertexLocked(static_cast<int64_t>(vid), vts,
                                        &removed_eids);
    if (!st.ok()) {
      return UnwindLocked(std::move(st), vts, {kOpa, kIpa, kVa, kEa});
    }
    std::vector<uint64_t> entities = {
        VertexEntity(static_cast<int64_t>(vid))};
    for (int64_t eid : removed_eids) entities.push_back(EdgeEntity(eid));
    PublishAndTrimLocked(entities, vts, {kOpa, kIpa, kVa, kEa});
    // Enqueued while all touched tables are still locked, so the log order
    // of conflicting commits matches their apply order.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

// ------------------------------------------------------------------ edges --

Status SqlGraphStore::AddAdjacencyEntry(bool outgoing, VertexId vid,
                                        const std::string& label, EdgeId eid,
                                        VertexId nbr, uint64_t version_ts) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
  const coloring::ColoredHash& hash =
      outgoing ? schema_.out_hash : schema_.in_hash;
  const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;
  const size_t c = hash.ColorOf(label) % colors;

  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  Row row;
  // Pass 1: a row already holding this label in its triad.
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    const Value& lbl = row[LblColIdx(c)];
    if (lbl.is_null() || lbl.AsString() != label) continue;
    const Value val = row[ValColIdx(c)];
    if (!val.is_null() && val.AsInt() >= kLidBase) {
      // Already multi-valued: append to the secondary list.
      return secondary
          ->Insert({val, Value(static_cast<int64_t>(eid)),
                    Value(static_cast<int64_t>(nbr))},
                   version_ts)
          .status();
    }
    // Single-valued → convert to a list: a DDL-equivalent reshaping of the
    // adjacency storage, so cached plans must revalidate.
    int64_t lid;
    {
      util::WriterMutexLock counter(&counter_lock_);
      lid = next_lid_++;
    }
    RETURN_NOT_OK(secondary
                      ->Insert({Value(lid), row[EidColIdx(c)], val},
                               version_ts)
                      .status());
    RETURN_NOT_OK(secondary
                      ->Insert({Value(lid), Value(static_cast<int64_t>(eid)),
                                Value(static_cast<int64_t>(nbr))},
                               version_ts)
                      .status());
    row[EidColIdx(c)] = Value::Null();
    row[ValColIdx(c)] = Value(lid);
    BumpSchemaEpoch();
    return primary->Update(rid, std::move(row), version_ts);
  }
  // Pass 2: a row with a free triad at column c (a label this vertex never
  // carried before occupies a fresh triad — another shape change).
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    if (!row[LblColIdx(c)].is_null()) continue;
    row[EidColIdx(c)] = Value(static_cast<int64_t>(eid));
    row[LblColIdx(c)] = Value(label);
    row[ValColIdx(c)] = Value(static_cast<int64_t>(nbr));
    BumpSchemaEpoch();
    return primary->Update(rid, std::move(row), version_ts);
  }
  // Pass 3: hash conflict (or first row): spill to a new row. Only an
  // actual spill is DDL-equivalent; the first row of a fresh vertex is a
  // plain insert.
  const bool spilling = !rids.empty();
  if (spilling) {
    for (RowId rid : rids) {
      RETURN_NOT_OK(primary->Get(rid, &row));
      if (row[kSpillCol].AsInt() != 1) {
        row[kSpillCol] = Value(int64_t{1});
        RETURN_NOT_OK(primary->Update(rid, std::move(row), version_ts));
      }
    }
    BumpSchemaEpoch();
  }
  Row fresh(2 + 3 * colors, Value::Null());
  fresh[kVidCol] = Value(static_cast<int64_t>(vid));
  fresh[kSpillCol] = Value(spilling ? int64_t{1} : int64_t{0});
  fresh[EidColIdx(c)] = Value(static_cast<int64_t>(eid));
  fresh[LblColIdx(c)] = Value(label);
  fresh[ValColIdx(c)] = Value(static_cast<int64_t>(nbr));
  return primary->Insert(std::move(fresh), version_ts).status();
}

Status SqlGraphStore::RemoveAdjacencyEntry(bool outgoing, VertexId vid,
                                           const std::string& label,
                                           EdgeId eid, uint64_t version_ts) {
  rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
  rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
  const coloring::ColoredHash& hash =
      outgoing ? schema_.out_hash : schema_.in_hash;
  const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;
  const size_t c = hash.ColorOf(label) % colors;

  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   primary->LookupEq({0}, {{Value(static_cast<int64_t>(vid))}}));
  Row row;
  for (RowId rid : rids) {
    RETURN_NOT_OK(primary->Get(rid, &row));
    const Value& lbl = row[LblColIdx(c)];
    if (lbl.is_null() || lbl.AsString() != label) continue;
    const Value val = row[ValColIdx(c)];
    bool clear_triad = false;
    if (!val.is_null() && val.AsInt() >= kLidBase) {
      ASSIGN_OR_RETURN(std::vector<RowId> list_rids,
                       secondary->LookupEq({0}, {{val}}));
      size_t remaining = list_rids.size();
      for (RowId lrid : list_rids) {
        Row entry;
        RETURN_NOT_OK(secondary->Get(lrid, &entry));
        if (entry[1].AsInt() == static_cast<int64_t>(eid)) {
          RETURN_NOT_OK(secondary->Delete(lrid, version_ts));
          --remaining;
          break;
        }
      }
      clear_triad = remaining == 0;
    } else if (!row[EidColIdx(c)].is_null() &&
               row[EidColIdx(c)].AsInt() == static_cast<int64_t>(eid)) {
      clear_triad = true;
    } else {
      continue;  // same label in a spill row further on
    }
    if (clear_triad) {
      row[EidColIdx(c)] = Value::Null();
      row[LblColIdx(c)] = Value::Null();
      row[ValColIdx(c)] = Value::Null();
      // Drop the row entirely if it became empty and others remain.
      bool empty = true;
      for (size_t k = 0; k < colors; ++k) {
        if (!row[LblColIdx(k)].is_null()) {
          empty = false;
          break;
        }
      }
      if (empty && rids.size() > 1) {
        RETURN_NOT_OK(primary->Delete(rid, version_ts));
      } else {
        RETURN_NOT_OK(primary->Update(rid, std::move(row), version_ts));
      }
    } else {
      RETURN_NOT_OK(primary->Update(rid, std::move(row), version_ts));
    }
    return Status::OK();
  }
  return Status::OK();  // entry absent: treat as idempotent delete
}

Status SqlGraphStore::ApplyAddEdgeLocked(int64_t eid, int64_t src,
                                         int64_t dst,
                                         const std::string& label,
                                         json::JsonValue attrs,
                                         uint64_t version_ts) {
  const rel::Table* va = db_.GetTable(kVaTable);
  for (int64_t endpoint : {src, dst}) {
    ASSIGN_OR_RETURN(std::vector<RowId> rids,
                     va->LookupEq({0}, {{Value(endpoint)}}));
    if (rids.empty()) {
      return Status::NotFound("vertex " + std::to_string(endpoint));
    }
  }
  RETURN_NOT_OK(db_.GetTable(kEaTable)
                    ->Insert({Value(eid), Value(src), Value(dst),
                              Value(label), Value(std::move(attrs))},
                             version_ts)
                    .status());
  RETURN_NOT_OK(AddAdjacencyEntry(/*outgoing=*/true,
                                  static_cast<VertexId>(src), label,
                                  static_cast<EdgeId>(eid),
                                  static_cast<VertexId>(dst), version_ts));
  return AddAdjacencyEntry(/*outgoing=*/false, static_cast<VertexId>(dst),
                           label, static_cast<EdgeId>(eid),
                           static_cast<VertexId>(src), version_ts);
}

Result<EdgeId> SqlGraphStore::AddEdge(VertexId src, VertexId dst,
                                      const std::string& label,
                                      json::JsonValue attrs) {
  CommitGuard commit(this);
  int64_t eid;
  {
    util::WriterMutexLock counter(&counter_lock_);
    eid = next_edge_id_++;
  }
  if (!attrs.is_object()) attrs = json::JsonValue::Object();
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kAddEdge;
    rec.id = eid;
    rec.src = static_cast<int64_t>(src);
    rec.dst = static_cast<int64_t>(dst);
    rec.label = label;
    rec.json = json::Write(attrs);
  }
  uint64_t ticket = 0;
  {
    // One section over every touched table (VA only shared — the endpoint
    // existence check). Coarser than the old per-table latch sections, but
    // the EA row and both adjacency entries now become visible atomically:
    // no reader, snapshot, or crash can observe a half-added edge.
    WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kOsa, true},
                          {kIsa, true}, {kVa, false}, {kEa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st = ApplyAddEdgeLocked(eid, static_cast<int64_t>(src),
                                   static_cast<int64_t>(dst), label,
                                   std::move(attrs), vts);
    if (!st.ok()) {
      return UnwindLocked(std::move(st), vts, {kOpa, kIpa, kOsa, kIsa, kEa});
    }
    // The edge's write set includes both endpoints: it depends on them
    // existing, so a snapshot transaction that removed either must lose.
    PublishAndTrimLocked({VertexEntity(static_cast<int64_t>(src)),
                          VertexEntity(static_cast<int64_t>(dst)),
                          EdgeEntity(eid)},
                         vts, {kOpa, kIpa, kOsa, kIsa, kEa});
    // Enqueued at the EA serialization point: no other commit can observe
    // this edge (FindEdge/SetEdgeAttr/RemoveEdge all go through EA) until
    // the exclusive section ends, so every dependent record lands after
    // this one in the log.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  RETURN_NOT_OK(LogWalWait(ticket));
  return static_cast<EdgeId>(eid);
}

Result<EdgeRecord> SqlGraphStore::GetEdge(EdgeId eid) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  const rel::Table* ea = db_.GetTable(kEaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   ea->LookupEq({0}, {{Value(static_cast<int64_t>(eid))}}));
  if (rids.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  Row row;
  RETURN_NOT_OK(ea->Get(rids[0], &row));
  EdgeRecord rec;
  rec.id = static_cast<EdgeId>(row[kEaEid].AsInt());
  rec.src = static_cast<VertexId>(row[kEaInv].AsInt());
  rec.dst = static_cast<VertexId>(row[kEaOutv].AsInt());
  rec.label = row[kEaLbl].AsString();
  rec.attrs = row[kEaAttr].is_json() ? row[kEaAttr].AsJson()
                                     : json::JsonValue::Object();
  return rec;
}

Status SqlGraphStore::ApplySetEdgeAttrLocked(int64_t eid,
                                             const std::string& key,
                                             json::JsonValue value,
                                             uint64_t version_ts) {
  rel::Table* ea = db_.GetTable(kEaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   ea->LookupEq({0}, {{Value(eid)}}));
  if (rids.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  Row row;
  RETURN_NOT_OK(ea->Get(rids[0], &row));
  json::JsonValue attrs = row[kEaAttr].is_json()
                              ? row[kEaAttr].AsJson()
                              : json::JsonValue::Object();
  attrs.Set(key, std::move(value));
  row[kEaAttr] = Value(std::move(attrs));
  return ea->Update(rids[0], std::move(row), version_ts);
}

Status SqlGraphStore::SetEdgeAttr(EdgeId eid, const std::string& key,
                                  json::JsonValue value) {
  CommitGuard commit(this);
  wal::Record rec;
  if (durable()) {
    rec.type = wal::RecordType::kSetEdgeAttr;
    rec.id = static_cast<int64_t>(eid);
    rec.label = key;
    rec.json = json::Write(value);
  }
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kEa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st = ApplySetEdgeAttrLocked(static_cast<int64_t>(eid), key,
                                       std::move(value), vts);
    if (!st.ok()) return UnwindLocked(std::move(st), vts, {kEa});
    PublishAndTrimLocked({EdgeEntity(static_cast<int64_t>(eid))}, vts,
                         {kEa});
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::ApplyRemoveEdgeAttrLocked(int64_t eid,
                                                const std::string& key,
                                                uint64_t version_ts) {
  rel::Table* ea = db_.GetTable(kEaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   ea->LookupEq({0}, {{Value(eid)}}));
  if (rids.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  Row row;
  RETURN_NOT_OK(ea->Get(rids[0], &row));
  json::JsonValue attrs = row[kEaAttr].is_json()
                              ? row[kEaAttr].AsJson()
                              : json::JsonValue::Object();
  attrs.Erase(key);
  row[kEaAttr] = Value(std::move(attrs));
  return ea->Update(rids[0], std::move(row), version_ts);
}

Status SqlGraphStore::RemoveEdgeAttr(EdgeId eid, const std::string& key) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveEdgeAttr;
  rec.id = static_cast<int64_t>(eid);
  rec.label = key;
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kEa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st =
        ApplyRemoveEdgeAttrLocked(static_cast<int64_t>(eid), key, vts);
    if (!st.ok()) return UnwindLocked(std::move(st), vts, {kEa});
    PublishAndTrimLocked({EdgeEntity(static_cast<int64_t>(eid))}, vts,
                         {kEa});
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::ApplyRemoveEdgeLocked(int64_t eid,
                                            uint64_t version_ts) {
  rel::Table* ea = db_.GetTable(kEaTable);
  ASSIGN_OR_RETURN(std::vector<RowId> rids,
                   ea->LookupEq({0}, {{Value(eid)}}));
  if (rids.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  Row row;
  RETURN_NOT_OK(ea->Get(rids[0], &row));
  const auto src = static_cast<VertexId>(row[kEaInv].AsInt());
  const auto dst = static_cast<VertexId>(row[kEaOutv].AsInt());
  const std::string label = row[kEaLbl].AsString();
  RETURN_NOT_OK(ea->Delete(rids[0], version_ts));
  RETURN_NOT_OK(RemoveAdjacencyEntry(/*outgoing=*/true, src, label,
                                     static_cast<EdgeId>(eid), version_ts));
  return RemoveAdjacencyEntry(/*outgoing=*/false, dst, label,
                              static_cast<EdgeId>(eid), version_ts);
}

Status SqlGraphStore::RemoveEdge(EdgeId eid) {
  CommitGuard commit(this);
  wal::Record rec;
  rec.type = wal::RecordType::kRemoveEdge;
  rec.id = static_cast<int64_t>(eid);
  uint64_t ticket = 0;
  {
    // One exclusive section: the EA delete and both adjacency removals are
    // visible (and versioned) atomically.
    WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kOsa, true},
                          {kIsa, true}, {kEa, true}});
    const uint64_t vts = AllocVersionTs();
    Status st = ApplyRemoveEdgeLocked(static_cast<int64_t>(eid), vts);
    if (!st.ok()) {
      return UnwindLocked(std::move(st), vts, {kOpa, kIpa, kOsa, kIsa, kEa});
    }
    PublishAndTrimLocked({EdgeEntity(static_cast<int64_t>(eid))}, vts,
                         {kOpa, kIpa, kOsa, kIsa, kEa});
    // Enqueued at the EA serialization point: this lands strictly after
    // the kAddEdge record that made the edge findable, so replay never
    // sees a remove-before-add.
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Result<std::optional<EdgeId>> SqlGraphStore::FindEdge(
    VertexId src, const std::string& label, VertexId dst) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  binds.positional.emplace_back(label);
  binds.positional.emplace_back(static_cast<int64_t>(dst));
  ASSIGN_OR_RETURN(
      sql::ResultSet rs,
      RunTemplate(kTplFindEdge,
                  "SELECT EID FROM EA WHERE INV = ? AND LBL = ? AND OUTV = ?",
                  std::move(binds)));
  if (rs.rows.empty()) return std::optional<EdgeId>();
  return std::optional<EdgeId>(static_cast<EdgeId>(rs.rows[0][0].AsInt()));
}

// -------------------------------------------------------------- adjacency --

namespace {
std::vector<EdgeRecord> RowsToEdgeRecords(const sql::ResultSet& rs) {
  std::vector<EdgeRecord> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    EdgeRecord rec;
    rec.id = static_cast<EdgeId>(row[0].AsInt());
    rec.src = static_cast<VertexId>(row[1].AsInt());
    rec.dst = static_cast<VertexId>(row[2].AsInt());
    rec.label = row[3].AsString();
    rec.attrs = row[4].is_json() ? row[4].AsJson() : json::JsonValue::Object();
    out.push_back(std::move(rec));
  }
  return out;
}
}  // namespace

Result<std::vector<EdgeRecord>> SqlGraphStore::GetOutEdgesAt(
    VertexId src, const std::string& label, uint64_t read_ts) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutEdgesAny,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE INV = ?",
                        std::move(binds), read_ts));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutEdgesLbl,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE INV = ? AND LBL = ?",
                        std::move(binds), read_ts));
  }
  return RowsToEdgeRecords(rs);
}

Result<std::vector<EdgeRecord>> SqlGraphStore::GetOutEdges(
    VertexId src, const std::string& label) const {
  return GetOutEdgesAt(src, label, /*read_ts=*/0);
}

Result<std::vector<EdgeRecord>> SqlGraphStore::GetInEdgesAt(
    VertexId dst, const std::string& label, uint64_t read_ts) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(dst));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplInEdgesAny,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE OUTV = ?",
                        std::move(binds), read_ts));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplInEdgesLbl,
                        "SELECT EID, INV, OUTV, LBL, ATTR FROM EA "
                        "WHERE OUTV = ? AND LBL = ?",
                        std::move(binds), read_ts));
  }
  return RowsToEdgeRecords(rs);
}

Result<json::JsonValue> SqlGraphStore::GetVertexAt(int64_t vid,
                                                   uint64_t read_ts) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kVa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(vid);
  ASSIGN_OR_RETURN(sql::ResultSet rs,
                   RunTemplate(kTplGetVertex,
                               "SELECT VID, ATTR FROM VA WHERE VID = ?",
                               std::move(binds), read_ts));
  if (rs.rows.empty()) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  const Value& attr = rs.rows[0][1];
  return attr.is_json() ? attr.AsJson() : json::JsonValue::Object();
}

Result<EdgeRecord> SqlGraphStore::GetEdgeAt(int64_t eid,
                                            uint64_t read_ts) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(eid);
  ASSIGN_OR_RETURN(
      sql::ResultSet rs,
      RunTemplate(kTplGetEdge,
                  "SELECT EID, INV, OUTV, LBL, ATTR FROM EA WHERE EID = ?",
                  std::move(binds), read_ts));
  if (rs.rows.empty()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  return std::move(RowsToEdgeRecords(rs)[0]);
}

Result<int64_t> SqlGraphStore::CountOutEdges(VertexId src,
                                             const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(src));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs,
                     RunTemplate(kTplCountAny,
                                 "SELECT COUNT(*) FROM EA WHERE INV = ?",
                                 std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplCountLbl,
                        "SELECT COUNT(*) FROM EA WHERE INV = ? AND LBL = ?",
                        std::move(binds)));
  }
  if (rs.rows.empty()) return int64_t{0};
  return rs.rows[0][0].AsInt();
}

Result<std::vector<VertexId>> SqlGraphStore::Out(
    VertexId vid, const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(vid));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs, RunTemplate(kTplOutAny,
                                     "SELECT OUTV FROM EA WHERE INV = ?",
                                     std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplOutLbl,
                        "SELECT OUTV FROM EA WHERE INV = ? AND LBL = ?",
                        std::move(binds)));
  }
  std::vector<VertexId> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    out.push_back(static_cast<VertexId>(row[0].AsInt()));
  }
  return out;
}

Result<std::vector<VertexId>> SqlGraphStore::In(
    VertexId vid, const std::string& label) const {
  WriteLock lock(const_cast<SqlGraphStore*>(this), {{kEa, false}});
  sql::ParamBindings binds;
  binds.positional.emplace_back(static_cast<int64_t>(vid));
  sql::ResultSet rs;
  if (label.empty()) {
    ASSIGN_OR_RETURN(rs, RunTemplate(kTplInAny,
                                     "SELECT INV FROM EA WHERE OUTV = ?",
                                     std::move(binds)));
  } else {
    binds.positional.emplace_back(label);
    ASSIGN_OR_RETURN(
        rs, RunTemplate(kTplInLbl,
                        "SELECT INV FROM EA WHERE OUTV = ? AND LBL = ?",
                        std::move(binds)));
  }
  std::vector<VertexId> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    out.push_back(static_cast<VertexId>(row[0].AsInt()));
  }
  return out;
}

// --------------------------------------------------------------- querying --

namespace {
/// Consumes a leading (case-insensitive) `EXPLAIN ANALYZE` from `*text`.
bool StripExplainAnalyzePrefix(std::string_view* text) {
  constexpr std::string_view kKeyword = "EXPLAIN ANALYZE";
  size_t i = 0;
  while (i < text->size() && std::isspace(static_cast<unsigned char>((*text)[i]))) {
    ++i;
  }
  if (text->size() - i < kKeyword.size()) return false;
  for (size_t k = 0; k < kKeyword.size(); ++k) {
    if (std::toupper(static_cast<unsigned char>((*text)[i + k])) != kKeyword[k]) {
      return false;
    }
  }
  text->remove_prefix(i + kKeyword.size());
  return true;
}
/// Per-statement executor options derived from the store configuration.
/// A non-zero `read_ts` pins execution to that MVCC snapshot.
sql::Executor::Options ExecOptionsFor(const StoreConfig& config,
                                      uint64_t read_ts = 0) {
  sql::Executor::Options options;
  options.vectorized = config.vectorized;
  options.read_ts = read_ts;
  options.verify_plans = config.verify_plans;
  return options;
}
}  // namespace

sql::ResultSet SqlGraphStore::SpansToResultSet(
    const std::vector<obs::TraceSpan>& spans) {
  sql::ResultSet rs;
  rs.columns = {"stage", "operator", "rows", "time_ms"};
  for (const obs::TraceSpan& s : spans) {
    rs.rows.push_back({rel::Value(s.context), rel::Value(s.op),
                       rel::Value(static_cast<int64_t>(s.rows)),
                       rel::Value(static_cast<double>(s.ns) / 1e6)});
  }
  return rs;
}

Result<sql::ResultSet> SqlGraphStore::ExecuteSql(std::string_view text,
                                                 sql::ExecStats* stats) {
  return ExecuteSqlInternal(text, /*read_ts=*/0, stats);
}

Result<sql::ResultSet> SqlGraphStore::ExecuteSqlInternal(
    std::string_view text, uint64_t read_ts, sql::ExecStats* stats) {
  std::string_view body = text;
  const bool analyze = StripExplainAnalyzePrefix(&body);
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_, read_ts));
  exec.set_plan_cache(&plan_cache_, schema_epoch());
  exec.set_analyze(analyze);
  auto result = exec.ExecuteSql(body);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  if (analyze && result.ok()) return SpansToResultSet(exec.stats().spans);
  return result;
}

Result<sql::ResultSet> SqlGraphStore::Execute(const sql::SqlQuery& query,
                                              sql::ExecStats* stats) {
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_));
  auto result = exec.Execute(query);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

Result<sql::ResultSet> SqlGraphStore::ExecuteAnalyze(const sql::SqlQuery& query,
                                                     sql::ExecStats* stats) {
  ReadLockAll lock(this);
  sql::Executor exec(&db_, ExecOptionsFor(config_));
  exec.set_analyze(true);
  auto result = exec.Execute(query);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

Result<sql::PreparedQueryPtr> SqlGraphStore::Prepare(
    std::string_view text) const {
  // Parsing touches no tables: no locks needed.
  return plan_cache_.GetOrPrepare(text, schema_epoch(), nullptr);
}

Result<sql::ResultSet> SqlGraphStore::ExecutePrepared(
    const sql::PreparedQuery& prepared, const sql::ParamBindings& params,
    sql::ExecStats* stats) const {
  ReadLockAll lock(const_cast<SqlGraphStore*>(this));
  sql::Executor exec(const_cast<rel::Database*>(&db_), ExecOptionsFor(config_));
  exec.set_plan_cache(&plan_cache_, schema_epoch());
  auto result = exec.ExecutePrepared(prepared, params);
  if (stats != nullptr) *stats = exec.stats();
  {
    util::MutexLock guard(&stats_mu_);
    last_stats_ = exec.stats();
  }
  return result;
}

sql::ExecStats SqlGraphStore::last_exec_stats() const {
  util::MutexLock guard(&stats_mu_);
  return last_stats_;
}

Result<sql::ResultSet> SqlGraphStore::RunTemplate(
    TemplateId id, const char* text, sql::ParamBindings params,
    uint64_t read_ts) const {
  const uint64_t epoch = schema_epoch();
  sql::PreparedQueryPtr prepared;
  {
    util::MutexLock guard(&tpl_mu_);
    prepared = templates_[id];
    if (prepared == nullptr || prepared->schema_epoch() != epoch) {
      // (Re-)compile through the shared plan cache; self-heals after any
      // schema-epoch bump.
      auto compiled = plan_cache_.GetOrPrepare(text, epoch, nullptr);
      if (!compiled.ok()) return compiled.status();
      prepared = std::move(compiled).value();
      templates_[id] = prepared;
    }
  }
  sql::Executor exec(const_cast<rel::Database*>(&db_),
                     ExecOptionsFor(config_, read_ts));
  exec.set_plan_cache(&plan_cache_, epoch);
  return exec.ExecutePrepared(*prepared, params);
}

// ------------------------------------------------------------ maintenance --

Status SqlGraphStore::Compact() {
  CommitGuard commit(this);
  uint64_t ticket = 0;
  {
    WriteLock lock(this, {{kOpa, true},
                          {kIpa, true},
                          {kOsa, true},
                          {kIsa, true},
                          {kVa, true},
                          {kEa, true}});
    // Versioned when transactions are active: a pinned snapshot keeps
    // seeing the pre-compaction rows (its queries filter the soft-deleted
    // ones anyway, so results are unchanged either way).
    const uint64_t vts = AllocVersionTs();
    Status st = CompactLocked(vts);
    if (!st.ok()) {
      return UnwindLocked(std::move(st), vts,
                          {kOpa, kIpa, kOsa, kIsa, kVa, kEa});
    }
    PublishAndTrimLocked({}, vts, {kOpa, kIpa, kOsa, kIsa, kVa, kEa});
    // Enqueued while every table is still locked, so no commit can
    // interleave between the cleanup and its record.
    wal::Record rec;
    rec.type = wal::RecordType::kCompact;
    RETURN_NOT_OK(LogWalEnqueue(rec, &ticket));
  }
  return LogWalWait(ticket);
}

Status SqlGraphStore::CompactLocked(uint64_t version_ts) {
  // 1. Deleted vertex ids from VA's negative rows; drop those rows.
  std::unordered_set<int64_t> deleted;
  rel::Table* va = db_.GetTable(kVaTable);
  std::vector<RowId> doomed;
  va->Scan([&](RowId rid, const Row& row) {
    if (row[0].AsInt() < 0) {
      deleted.insert(-row[0].AsInt() - 1);
      doomed.push_back(rid);
    }
  });
  for (RowId rid : doomed) RETURN_NOT_OK(va->Delete(rid, version_ts));
  if (deleted.empty()) return Status::OK();

  // 2. Adjacency cleanup in both directions: drop negated rows (collecting
  // their list ids) and clear triads that point at deleted vertices.
  for (bool outgoing : {true, false}) {
    rel::Table* primary = db_.GetTable(outgoing ? kOpaTable : kIpaTable);
    rel::Table* secondary = db_.GetTable(outgoing ? kOsaTable : kIsaTable);
    const size_t colors = outgoing ? schema_.out_colors : schema_.in_colors;

    std::unordered_set<int64_t> dead_lids;
    std::vector<RowId> dead_rows;
    std::vector<std::pair<RowId, Row>> updates;
    primary->Scan([&](RowId rid, const Row& row) {
      if (row[kVidCol].AsInt() < 0) {
        for (size_t c = 0; c < colors; ++c) {
          const Value& val = row[ValColIdx(c)];
          if (!val.is_null() && val.AsInt() >= kLidBase) {
            dead_lids.insert(val.AsInt());
          }
        }
        dead_rows.push_back(rid);
        return;
      }
      Row patched = row;
      bool changed = false;
      for (size_t c = 0; c < colors; ++c) {
        const Value& val = patched[ValColIdx(c)];
        if (val.is_null()) continue;
        if (val.AsInt() < kLidBase && deleted.count(val.AsInt())) {
          patched[EidColIdx(c)] = Value::Null();
          patched[LblColIdx(c)] = Value::Null();
          patched[ValColIdx(c)] = Value::Null();
          changed = true;
        }
      }
      if (changed) updates.emplace_back(rid, std::move(patched));
    });
    for (RowId rid : dead_rows) RETURN_NOT_OK(primary->Delete(rid, version_ts));
    for (auto& [rid, row] : updates) {
      RETURN_NOT_OK(primary->Update(rid, std::move(row), version_ts));
    }
    // Secondary lists: drop dead lists outright and dead targets from live
    // lists.
    std::vector<RowId> dead_entries;
    secondary->Scan([&](RowId rid, const Row& row) {
      if (dead_lids.count(row[0].AsInt()) || deleted.count(row[2].AsInt())) {
        dead_entries.push_back(rid);
      }
    });
    for (RowId rid : dead_entries) {
      RETURN_NOT_OK(secondary->Delete(rid, version_ts));
    }
  }
  // Row layout changed under every cached plan: force re-preparation.
  BumpSchemaEpoch();
  return Status::OK();
}

// -------------------------------------------------------------- durability --

Status SqlGraphStore::ApplyWalRecord(const wal::Record& rec) {
  using wal::RecordType;
  switch (rec.type) {
    case RecordType::kAddVertex: {
      ASSIGN_OR_RETURN(json::JsonValue attrs, json::Parse(rec.json));
      if (!attrs.is_object()) attrs = json::JsonValue::Object();
      {
        WriteLock lock(this, {{kVa, true}});
        RETURN_NOT_OK(ApplyAddVertexLocked(rec.id, std::move(attrs), 0));
      }
      util::WriterMutexLock counter(&counter_lock_);
      next_vertex_id_ = std::max(next_vertex_id_, rec.id + 1);
      return Status::OK();
    }
    case RecordType::kAddEdge: {
      ASSIGN_OR_RETURN(json::JsonValue attrs, json::Parse(rec.json));
      if (!attrs.is_object()) attrs = json::JsonValue::Object();
      {
        WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kOsa, true},
                              {kIsa, true}, {kVa, false}, {kEa, true}});
        RETURN_NOT_OK(ApplyAddEdgeLocked(rec.id, rec.src, rec.dst, rec.label,
                                         std::move(attrs), 0));
      }
      util::WriterMutexLock counter(&counter_lock_);
      next_edge_id_ = std::max(next_edge_id_, rec.id + 1);
      return Status::OK();
    }
    case RecordType::kSetVertexAttr: {
      ASSIGN_OR_RETURN(json::JsonValue value, json::Parse(rec.json));
      WriteLock lock(this, {{kVa, true}});
      return ApplySetVertexAttrLocked(rec.id, rec.label, std::move(value), 0);
    }
    case RecordType::kSetEdgeAttr: {
      ASSIGN_OR_RETURN(json::JsonValue value, json::Parse(rec.json));
      WriteLock lock(this, {{kEa, true}});
      return ApplySetEdgeAttrLocked(rec.id, rec.label, std::move(value), 0);
    }
    case RecordType::kRemoveVertexAttr: {
      WriteLock lock(this, {{kVa, true}});
      return ApplyRemoveVertexAttrLocked(rec.id, rec.label, 0);
    }
    case RecordType::kRemoveEdgeAttr: {
      WriteLock lock(this, {{kEa, true}});
      return ApplyRemoveEdgeAttrLocked(rec.id, rec.label, 0);
    }
    case RecordType::kRemoveVertex: {
      WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kVa, true},
                            {kEa, true}});
      std::vector<int64_t> removed_eids;
      return ApplyRemoveVertexLocked(rec.id, 0, &removed_eids);
    }
    case RecordType::kRemoveEdge: {
      WriteLock lock(this, {{kOpa, true}, {kIpa, true}, {kOsa, true},
                            {kIsa, true}, {kEa, true}});
      return ApplyRemoveEdgeLocked(rec.id, 0);
    }
    case RecordType::kCompact: {
      WriteLock lock(this, {{kOpa, true},
                            {kIpa, true},
                            {kOsa, true},
                            {kIsa, true},
                            {kVa, true},
                            {kEa, true}});
      return CompactLocked(0);
    }
    case RecordType::kTxnCommit: {
      // One atomic commit unit: the frame's CRC already guaranteed the
      // whole transaction is intact, so replay its sub-records in order.
      // Per-sub-record NotFound is tolerated the same way the outer replay
      // loop tolerates it (see OpenDurableStore).
      size_t off = 0;
      wal::Record sub;
      while (off < rec.json.size()) {
        RETURN_NOT_OK(wal::DecodeRecord(rec.json, &off, &sub));
        Status st = ApplyWalRecord(sub);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      return Status::OK();
    }
    case RecordType::kTxnBegin:
    case RecordType::kTxnAbort:
      return Status::OK();  // advisory markers
  }
  return Status::ParseError("wal: unhandled record type");
}

wal::WalStats SqlGraphStore::wal_stats() const {
  util::ReaderMutexLock rotate(&wal_rotate_mu_);
  wal::WalStats stats = wal_recovery_stats_;
  if (wal_writer_ != nullptr) {
    const wal::WalCounters& c = wal_writer_->counters();
    stats.records += c.records.load(std::memory_order_relaxed);
    stats.bytes += c.bytes.load(std::memory_order_relaxed);
    stats.fsyncs += c.fsyncs.load(std::memory_order_relaxed);
    stats.groups += c.groups.load(std::memory_order_relaxed);
    stats.grouped_records += c.grouped_records.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace core
}  // namespace sqlgraph
