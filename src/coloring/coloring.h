// Graph-coloring-based column assignment (Bornea et al., SIGMOD'13; paper
// §3.2). Edge labels that co-occur in some vertex's adjacency list must land
// in different column triads; labels that never co-occur may share one. The
// co-occurrence graph is colored greedily in decreasing-degree order and the
// resulting color is the label's column index.
//
// The same machinery hashes vertex-attribute keys to columns for the
// micro-benchmark's "hash attribute table" variant (paper Fig. 2d).

#ifndef SQLGRAPH_COLORING_COLORING_H_
#define SQLGRAPH_COLORING_COLORING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace sqlgraph {
namespace coloring {

/// \brief Accumulates label co-occurrence: two labels are adjacent iff they
/// appear together in at least one adjacency list (or attribute map).
class CooccurrenceGraph {
 public:
  /// Registers one entity's label set (duplicates are fine).
  void AddGroup(const std::vector<std::string>& labels);

  size_t num_labels() const { return ids_.size(); }
  const std::vector<std::string>& labels() const { return names_; }

  /// Neighbor ids of a label id.
  const std::unordered_set<uint32_t>& neighbors(uint32_t id) const {
    return adj_[id];
  }

  /// Returns the id of a label, creating it if new.
  uint32_t Intern(const std::string& label);

  /// Returns the id of a label or -1 if unseen.
  int Find(const std::string& label) const;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
  std::vector<std::unordered_set<uint32_t>> adj_;
};

/// \brief The colored hash: maps labels to column indexes.
///
/// Labels unseen at analysis time (inserted after load) fall back to a
/// modulo hash over the same color count — exactly the "reorganization
/// needed if updates change dataset characteristics" caveat in §3.4.
class ColoredHash {
 public:
  /// Colors the co-occurrence graph greedily (largest degree first), with
  /// the number of colors capped at `max_colors` (0 = uncapped). Capping
  /// introduces conflicts (spills) on purpose, for the spill-rate ablation.
  static ColoredHash Build(const CooccurrenceGraph& graph,
                           size_t max_colors = 0);

  /// Builds a naive modulo hash over `num_colors` columns (ablation
  /// baseline: no dataset-aware coloring).
  static ColoredHash BuildModulo(const std::vector<std::string>& labels,
                                 size_t num_colors);

  /// Column index for a label. Unknown labels hash by name modulo the color
  /// count.
  size_t ColorOf(const std::string& label) const;

  /// True if the label was part of the analyzed dataset.
  bool Knows(const std::string& label) const {
    return colors_.count(label) > 0;
  }

  size_t num_colors() const { return num_colors_; }
  size_t num_labels() const { return colors_.size(); }

  /// Histogram: how many labels share each color ("hashed bucket size" in
  /// paper Table 3 is the max over these).
  std::vector<size_t> ColorHistogram() const;

  /// Serialization support (store snapshots): the full label→color map.
  std::vector<std::pair<std::string, size_t>> Entries() const {
    return std::vector<std::pair<std::string, size_t>>(colors_.begin(),
                                                       colors_.end());
  }
  static ColoredHash FromEntries(
      const std::vector<std::pair<std::string, size_t>>& entries,
      size_t num_colors) {
    ColoredHash hash;
    hash.num_colors_ = std::max<size_t>(1, num_colors);
    for (const auto& [label, color] : entries) {
      hash.colors_.emplace(label, color);
    }
    return hash;
  }

 private:
  std::unordered_map<std::string, size_t> colors_;
  size_t num_colors_ = 1;
};

}  // namespace coloring
}  // namespace sqlgraph

#endif  // SQLGRAPH_COLORING_COLORING_H_
