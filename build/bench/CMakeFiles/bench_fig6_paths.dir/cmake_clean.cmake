file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_paths.dir/bench_fig6_paths.cc.o"
  "CMakeFiles/bench_fig6_paths.dir/bench_fig6_paths.cc.o.d"
  "bench_fig6_paths"
  "bench_fig6_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
