#include "bench_core/linkbench_driver.h"

#include <mutex>
#include <thread>
#include <vector>

#include "util/stopwatch.h"

namespace sqlgraph {
namespace bench {

using baseline::GraphDb;
using graph::LinkBenchConfig;
using graph::LinkBenchOp;
using graph::LinkBenchRequest;
using graph::LinkBenchWorkload;
using util::Result;
using util::Status;

namespace {

/// Executes one LinkBench request. The (void)-dropped statuses below are
/// deliberate: randomized ids race with concurrent deletes, so NotFound /
/// AlreadyExists are part of the workload, and the benchmark measures
/// latency, not outcomes.
void ExecuteRequest(GraphDb* db, const LinkBenchConfig& config,
                    const LinkBenchRequest& req) {
  switch (req.op) {
    case LinkBenchOp::kAddNode: {
      json::JsonValue attrs = json::JsonValue::Object();
      attrs.Set("type", static_cast<int64_t>(req.id2 %
                                             static_cast<int64_t>(
                                                 config.num_object_types)));
      attrs.Set("version", int64_t{1});
      attrs.Set("time", int64_t{1400000000});
      attrs.Set("data", req.payload);
      (void)db->AddVertex(std::move(attrs));
      return;
    }
    case LinkBenchOp::kUpdateNode:
      (void)db->SetVertexAttr(req.id1, "data", json::JsonValue(req.payload));
      return;
    case LinkBenchOp::kDeleteNode:
      (void)db->RemoveVertex(req.id1);
      return;
    case LinkBenchOp::kGetNode:
      (void)db->GetVertex(req.id1);
      return;
    case LinkBenchOp::kAddLink: {
      json::JsonValue attrs = json::JsonValue::Object();
      attrs.Set("visibility", int64_t{1});
      attrs.Set("timestamp", int64_t{1400000000});
      attrs.Set("data", req.payload);
      (void)db->AddEdge(req.id1, req.id2, req.assoc_type, std::move(attrs));
      return;
    }
    case LinkBenchOp::kDeleteLink: {
      auto found = db->FindEdge(req.id1, req.assoc_type, req.id2);
      if (found.ok() && found->has_value()) (void)db->RemoveEdge(**found);
      return;
    }
    case LinkBenchOp::kUpdateLink: {
      auto found = db->FindEdge(req.id1, req.assoc_type, req.id2);
      if (found.ok() && found->has_value()) {
        (void)db->SetEdgeAttr(**found, "data", json::JsonValue(req.payload));
      } else {
        // LinkBench semantics: update-or-insert.
        json::JsonValue attrs = json::JsonValue::Object();
        attrs.Set("visibility", int64_t{1});
        attrs.Set("timestamp", int64_t{1400000000});
        attrs.Set("data", req.payload);
        (void)db->AddEdge(req.id1, req.id2, req.assoc_type, std::move(attrs));
      }
      return;
    }
    case LinkBenchOp::kCountLink:
      (void)db->CountOutEdges(req.id1, req.assoc_type);
      return;
    case LinkBenchOp::kMultigetLink:
      (void)db->FindEdge(req.id1, req.assoc_type, req.id2);
      (void)db->FindEdge(req.id1, req.assoc_type, (req.id2 + 1) %
                             static_cast<int64_t>(config.num_objects));
      return;
    case LinkBenchOp::kGetLinkList:
      (void)db->GetOutEdges(req.id1, req.assoc_type);
      return;
  }
}

}  // namespace

Result<LinkBenchResult> RunLinkBench(GraphDb* db,
                                     const LinkBenchConfig& config,
                                     size_t requesters,
                                     size_t ops_per_requester) {
  if (requesters == 0) {
    return Status::InvalidArgument("need at least one requester");
  }
  LinkBenchResult result;
  std::mutex merge_mu;
  std::vector<std::thread> threads;
  threads.reserve(requesters);
  util::Stopwatch wall;
  for (size_t r = 0; r < requesters; ++r) {
    threads.emplace_back([&, r] {
      LinkBenchWorkload workload(config, /*requester_seed=*/r + 1);
      std::array<util::Samples, 10> local;
      for (size_t i = 0; i < ops_per_requester; ++i) {
        const LinkBenchRequest req = workload.Next();
        util::Stopwatch sw;
        ExecuteRequest(db, config, req);
        local[static_cast<size_t>(req.op)].Add(sw.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      for (size_t k = 0; k < 10; ++k) {
        for (double v : local[k].values()) result.latency[k].Add(v);
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_seconds = wall.ElapsedSeconds();
  result.total_ops = requesters * ops_per_requester;
  result.ops_per_sec =
      result.elapsed_seconds > 0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0;
  return result;
}

}  // namespace bench
}  // namespace sqlgraph
