// Relational graph analytics over the SQLGraph schema (§5 workloads beyond
// point traversals): PageRank, weakly-connected components, and triangle
// counting expressed as iterated SQL self-joins over the adjacency data.
//
// Each algorithm snapshots the live adjacency out of EA into index-free
// scratch tables (`__an_*`), so every iteration runs as a full-table
// scan + hash join + aggregate pipeline — the shape the vectorized batch
// executor targets. AnalyticsOptions::vectorized toggles the executor mode
// (sql::Executor::Options::vectorized) without changing results;
// bench/bench_analytics.cc compares the two. Scratch tables are dropped
// before returning.
//
// Declared in src/graph for discoverability next to the generators, but
// compiled into sqlgraph_core (like wal/durability.cc) because it needs the
// store and the SQL executor.

#ifndef SQLGRAPH_GRAPH_ANALYTICS_H_
#define SQLGRAPH_GRAPH_ANALYTICS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sqlgraph {
namespace core {
class SqlGraphStore;
}  // namespace core

namespace graph {

struct AnalyticsOptions {
  /// Executor mode for every SQL statement the algorithms issue.
  bool vectorized = true;
  /// PageRank iteration cap (WCC and triangles iterate to fixpoint).
  int max_iterations = 20;
  double damping = 0.85;
  /// PageRank early-exit: stop when the L1 rank delta drops below this.
  double tolerance = 1e-9;
};

struct PageRankResult {
  /// (vertex id, rank), sorted by vertex id. Ranks sum to <= 1 (dangling
  /// mass is not redistributed, matching the simple power iteration).
  std::vector<std::pair<int64_t, double>> ranks;
  int iterations = 0;
};

struct WccResult {
  /// (vertex id, component label), sorted by vertex id; the label is the
  /// smallest vertex id in the component.
  std::vector<std::pair<int64_t, int64_t>> components;
  int iterations = 0;
};

/// Power-iteration PageRank: per iteration, contributions rank/outdeg are
/// materialized into __an_rank and folded with
///   SELECT t.DST, SUM(r.CONTRIB) FROM __an_rank r, __an_edge t
///   WHERE t.SRC = r.VID GROUP BY t.DST
util::Result<PageRankResult> PageRank(core::SqlGraphStore* store,
                                      const AnalyticsOptions& options = {});

/// Min-label propagation over the undirected edge set until fixpoint.
util::Result<WccResult> WeaklyConnectedComponents(
    core::SqlGraphStore* store, const AnalyticsOptions& options = {});

/// Counts undirected triangles via a canonical (SRC < DST) edge table
/// self-joined three ways; every triangle matches exactly once.
util::Result<int64_t> TriangleCount(core::SqlGraphStore* store,
                                    const AnalyticsOptions& options = {});

}  // namespace graph
}  // namespace sqlgraph

#endif  // SQLGRAPH_GRAPH_ANALYTICS_H_
