// Set-oriented execution of the SQL AST against a rel::Database.
//
// The executor evaluates CTEs in order into materialized temporary
// relations, then the final SELECT. Join processing is pipelined left to
// right with the access paths chosen by sql/planner.h:
//
//   * index nested-loop join when the inbound equi-join columns are covered
//     by a base-table index (the OPA/IPA/EA fast path),
//   * hash join otherwise,
//   * lateral expansion for TABLE(VALUES ...) unnest,
//   * left-outer hash join for the OSA/ISA COALESCE templates.
//
// Recursive CTEs run semi-naively with a global dedup (UNION-style fixpoint)
// and an iteration cap, mirroring the paper's recursive-SQL fallback for
// unbounded loop pipes.
//
// Prepared queries: Prepare() lexes/parses once and returns a PreparedQuery
// holding the shared AST plus a PlanMemo that records the per-table-ref
// access-path decisions on first execution; ExecutePrepared() replays them
// with fresh bind values, skipping lex/parse/plan. A PlanCache (LRU keyed by
// normalized SQL text) shares PreparedQuery instances across Executor
// instances; entries are invalidated by schema-epoch mismatch.

#ifndef SQLGRAPH_SQL_EXECUTOR_H_
#define SQLGRAPH_SQL_EXECUTOR_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "rel/database.h"
#include "sql/ast.h"
#include "sql/expr_eval.h"
#include "sql/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlgraph {
namespace sql {

/// Execution counters, exposed so tests can assert that the planner picked
/// the intended access path (e.g. "this query must not sequential-scan EA").
struct ExecStats {
  uint64_t table_scans = 0;
  uint64_t index_lookups = 0;
  uint64_t index_range_scans = 0;
  uint64_t hash_joins = 0;
  uint64_t index_nl_joins = 0;
  uint64_t rows_scanned = 0;
  uint64_t recursive_iterations = 0;
  /// Prepared-query pipeline: executions that reused a cached plan vs.
  /// executions that had to lex/parse/plan.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Nanoseconds spent preparing (lex+parse) and executing.
  uint64_t prepare_ns = 0;
  uint64_t exec_ns = 0;
  /// Plan verification (sql/verify.h): passes run and plans rejected. A
  /// prepared statement counts at most twice (AST pass, then memo pass).
  uint64_t plans_verified = 0;
  uint64_t plan_verify_rejections = 0;
  /// EXPLAIN-style trace: one line per access-path / join decision, prefixed
  /// by the CTE being evaluated.
  std::vector<std::string> trace;
  /// EXPLAIN ANALYZE spans: per-operator rows + wall time, in execution
  /// order. Only populated when Options::analyze is set (the timing clock
  /// reads are not free); `context` is the CTE name or "final".
  std::vector<obs::TraceSpan> spans;
};

class PlanMemo;

/// An immutable compiled statement: normalized SQL text, shared parsed AST,
/// and the memoized access-path decisions. Thread-safe to execute
/// concurrently; the memo fills in on first execution.
class PreparedQuery {
 public:
  const std::string& sql() const { return sql_; }
  const SqlQuery& query() const { return *ast_; }
  int param_count() const { return ast_->num_params; }
  /// Schema epoch the plan was compiled under (see PlanCache).
  uint64_t schema_epoch() const { return epoch_; }
  PlanMemo* memo() const { return memo_.get(); }

 private:
  friend class Executor;
  friend class PlanCache;
  std::string sql_;
  std::shared_ptr<const SqlQuery> ast_;
  std::shared_ptr<PlanMemo> memo_;
  uint64_t epoch_ = 0;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// Thread-safe LRU cache of PreparedQuery instances keyed by
/// whitespace-normalized SQL text. Entries carry the schema epoch they were
/// compiled under; a lookup with a different epoch evicts and re-prepares,
/// which is how DDL-equivalent store events (spill-row creation, Compact)
/// invalidate stale plans.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached statement for `sql_text` at `epoch`, parsing and
  /// inserting on miss. Counts hits/misses both internally and, when
  /// `stats` is non-null, into the caller's ExecStats.
  util::Result<PreparedQueryPtr> GetOrPrepare(std::string_view sql_text,
                                              uint64_t epoch,
                                              ExecStats* stats);

  /// Drops every cached plan (coarse invalidation; epoch mismatch already
  /// handles the incremental case).
  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

  /// Collapses whitespace runs so textual variants of one template share a
  /// cache entry.
  static std::string NormalizeSql(std::string_view sql_text);

 private:
  // Held only around map/LRU bookkeeping; parsing runs outside. Ranks below
  // the per-statement PlanMemo lock (GetOrPrepare never nests them, but the
  // memo is filled while execution logically "inside" a prepared statement).
  mutable util::Mutex mu_{util::LockRank::kPlanCache, "plan_cache"};
  size_t capacity_;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  std::list<std::string> lru_ GUARDED_BY(mu_);  // front = most recently used
  struct Entry {
    std::list<std::string>::iterator lru_it;
    PreparedQueryPtr prepared;
  };
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

class Executor {
 public:
  struct Options {
    /// Safety cap for recursive CTE evaluation.
    int max_recursion = 10000;
    /// Disable index selection (for ablation tests).
    bool enable_indexes = true;
    /// Batch-at-a-time execution: base-table pipelines flow through
    /// rel::ColumnBatch with vectorized predicate/projection/join/aggregate
    /// evaluation. Off forces the row-at-a-time operators everywhere (the
    /// differential oracle and ablation benchmarks). Results, EXPLAIN
    /// ANALYZE spans, and ExecStats counters are identical either way.
    bool vectorized = true;
    /// EXPLAIN ANALYZE mode: record per-operator rows + wall time into
    /// ExecStats::spans. Off by default — each span costs two clock reads.
    bool analyze = false;
    /// MVCC snapshot pin: when non-zero, base-table references resolve to
    /// the table contents as of this commit timestamp (rel::Table::ScanAt).
    /// Tables with no versions newer than read_ts use the live fast paths
    /// (indexes, batches) unchanged; 0 always reads live data.
    uint64_t read_ts = 0;
    /// Plan-IR verification (sql/verify.h): statically check every plan
    /// before executing it and fail with a structured diagnostic instead of
    /// running a malformed plan. On by default in Debug builds; prepared
    /// statements amortize the cost to two passes total (AST once, filled
    /// memo once) via PlanMemo::ClaimVerifyStage.
#ifdef NDEBUG
    bool verify_plans = false;
#else
    bool verify_plans = true;
#endif
  };

  explicit Executor(rel::Database* db) : db_(db) {}
  Executor(rel::Database* db, Options options) : db_(db), options_(options) {}

  /// Attaches a shared plan cache (not owned). `schema_epoch` stamps plans
  /// prepared through this executor; ExecuteSql() then routes through the
  /// cache, and ExecutePrepared() re-prepares stale handles transparently.
  void set_plan_cache(PlanCache* cache, uint64_t schema_epoch) {
    plan_cache_ = cache;
    schema_epoch_ = schema_epoch;
  }

  /// Executes a full query (CTEs + final select).
  util::Result<ResultSet> Execute(const SqlQuery& query);

  /// Parses then executes SQL text. With a plan cache attached, repeat
  /// executions of the same text skip lexing/parsing/planning.
  util::Result<ResultSet> ExecuteSql(std::string_view sql_text);

  /// Compiles SQL text into a reusable statement (through the plan cache
  /// when one is attached).
  util::Result<PreparedQueryPtr> Prepare(std::string_view sql_text);

  /// Executes a prepared statement with the given bind values. A handle
  /// compiled under an older schema epoch is re-prepared first.
  util::Result<ResultSet> ExecutePrepared(const PreparedQuery& prepared,
                                          const ParamBindings& params);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

  /// Toggles EXPLAIN ANALYZE span recording (see Options::analyze).
  void set_analyze(bool on) { options_.analyze = on; }

 private:
  class Impl;
  util::Result<ResultSet> ExecuteWithParams(const SqlQuery& query,
                                            const ParamBindings* params,
                                            PlanMemo* memo);

  rel::Database* db_;
  Options options_;
  ExecStats stats_;
  PlanCache* plan_cache_ = nullptr;
  uint64_t schema_epoch_ = 0;
};

}  // namespace sql
}  // namespace sqlgraph

#endif  // SQLGRAPH_SQL_EXECUTOR_H_
