// Fuzz target: JSON parser + writer (src/json).
//
// Properties checked on every input that parses:
//  * Write() output re-parses (the writer emits valid JSON),
//  * Write ∘ Parse is a fixpoint after one round (canonical form is stable).

#include <cstdint>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "json/json_parser.h"

using sqlgraph::json::JsonValue;
using sqlgraph::json::Parse;
using sqlgraph::json::Write;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = Parse(text);
  if (!parsed.ok()) return 0;

  const std::string once = Write(parsed.value());
  auto reparsed = Parse(once);
  FUZZ_ASSERT(reparsed.ok(), "writer output failed to re-parse: %s",
              reparsed.status().ToString().c_str());
  const std::string twice = Write(reparsed.value());
  FUZZ_ASSERT(once == twice, "canonical form unstable:\n  %s\n  %s",
              once.c_str(), twice.c_str());
  return 0;
}
