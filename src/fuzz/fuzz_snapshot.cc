// Fuzz target: SQLG2 snapshot loader (src/sqlgraph/snapshot.cc).
//
// First input byte selects the mode; the rest is the file body:
//
//   mode 0 — raw: the body is the file verbatim. Exercises magic/framing/
//     checksum rejection. OpenSnapshot must return a Status, never crash.
//   mode 1 — CRC-repaired: the body is parsed as section frames (u32 len +
//     u32 crc + payload) whose checksums are rewritten to match, then
//     wrapped in magic + trailer. Mutations therefore penetrate past the
//     CRC gate into the header/schema/row decoders.
//
// A snapshot that *loads* is additionally run through CheckConsistency()
// and a few reads — the auditor and read paths must survive hostile table
// content (the report may legitimately flag violations; crashing on them
// is the bug).

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "sqlgraph/snapshot.h"
#include "sqlgraph/store.h"
#include "util/crc32c.h"

using sqlgraph::fuzz::FuzzInput;
using sqlgraph::fuzz::TempDir;
using sqlgraph::fuzz::WriteFile;

namespace {

/// Reframes `body` as checksummed sections: consume (len, crc, payload)
/// frames, clamp len to what remains, recompute each CRC. Trailing bytes
/// that cannot form a header pass through untouched.
std::string RepairFrames(std::string_view body) {
  std::string out = "SQLG2\n";
  size_t pos = 0;
  while (body.size() - pos >= 8) {
    uint32_t len = static_cast<uint8_t>(body[pos]) |
                   static_cast<uint32_t>(static_cast<uint8_t>(body[pos + 1]))
                       << 8 |
                   static_cast<uint32_t>(static_cast<uint8_t>(body[pos + 2]))
                       << 16 |
                   static_cast<uint32_t>(static_cast<uint8_t>(body[pos + 3]))
                       << 24;
    pos += 8;  // skip length + old checksum
    if (len > body.size() - pos) len = static_cast<uint32_t>(body.size() - pos);
    const std::string_view payload = body.substr(pos, len);
    pos += len;
    char hdr[4] = {static_cast<char>(len), static_cast<char>(len >> 8),
                   static_cast<char>(len >> 16), static_cast<char>(len >> 24)};
    out.append(hdr, 4);
    const uint32_t crc =
        sqlgraph::util::Crc32cMask(sqlgraph::util::Crc32c(payload));
    char crcb[4] = {static_cast<char>(crc), static_cast<char>(crc >> 8),
                    static_cast<char>(crc >> 16), static_cast<char>(crc >> 24)};
    out.append(crcb, 4);
    out.append(payload);
  }
  out.append(body.substr(pos));
  out += "SQLGEND\n";
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 16) return 0;
  FuzzInput in(data, size);
  const uint8_t mode = in.TakeByte();

  std::string file;
  if (mode % 2 == 0) {
    file = std::string(in.Rest());
  } else {
    file = RepairFrames(in.Rest());
  }

  static TempDir* dir = new TempDir("fuzz_snapshot");
  const std::string path = dir->File("snap.sqlg");
  WriteFile(path, file);

  auto opened = sqlgraph::core::OpenSnapshot(path);
  if (!opened.ok()) return 0;  // precise rejection is the normal outcome

  // Loaded: the store object must be safe to audit and read even when the
  // snapshot encoded nonsense rows.
  sqlgraph::core::SqlGraphStore* store = opened.value().get();
  (void)store->CheckConsistency();
  (void)store->GetVertex(0);
  (void)store->GetOutEdges(0, "");
  (void)store->ExecuteSql("SELECT COUNT(*) FROM VA");
  return 0;
}
