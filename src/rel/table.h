// A relational table: schema + row storage + maintained secondary indexes,
// plus an MVCC before-image version log so snapshot readers pinned to an
// older commit timestamp can reconstruct the table as of that timestamp.

#ifndef SQLGRAPH_REL_TABLE_H_
#define SQLGRAPH_REL_TABLE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rel/index.h"
#include "rel/row_store.h"
#include "rel/schema.h"
#include "util/sched.h"
#include "util/status.h"

namespace sqlgraph {
namespace rel {

enum class StorageMode {
  kResident,  // plain in-memory rows
  kPaged,     // serialized pages behind the buffer pool
};

class Table {
 public:
  Table(std::string name, Schema schema, std::unique_ptr<RowStore> store)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        store_(std::move(store)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return store_->NumLive(); }
  size_t SerializedBytes() const { return store_->SerializedBytes(); }

  /// Monotonic count of successful Insert/Update/Delete calls. The
  /// durability layer compares these across checkpoints to detect rows
  /// mutated through any path — including callers that bypass the
  /// SqlGraphStore CRUD API and write to the table directly.
  uint64_t mutation_count() const {
    return mutations_.load(std::memory_order_relaxed);
  }

  /// Validates and appends a row, updating all indexes. On a unique-index
  /// violation the row is rolled back and Conflict is returned.
  /// `version_ts != 0` records a before-image in the version log under that
  /// commit timestamp (timestamps must arrive non-decreasing; the store's
  /// critical sections guarantee it).
  util::Result<RowId> Insert(Row row, uint64_t version_ts = 0);

  /// Replaces a row in place, keeping indexes consistent.
  util::Status Update(RowId rid, Row row, uint64_t version_ts = 0);

  /// Tombstones a row and removes its index entries.
  util::Status Delete(RowId rid, uint64_t version_ts = 0);

  /// Resurrects a tombstoned row (commit-unwind path), restoring indexes.
  util::Status RestoreRow(RowId rid, Row row);

  // --- MVCC version log -----------------------------------------------
  //
  // Each logged mutation stores the row state *before* the mutation plus
  // the commit timestamp it became visible at. Readers pinned to read_ts
  // reconstruct the table at read_ts by patching out every version with
  // ts > read_ts. All version-log calls run under the same external table
  // lock as the mutations themselves.

  /// True when the log holds any mutation newer than `ts` — i.e. a reader
  /// at `ts` cannot use the live rows/indexes directly.
  bool HasVersionsAfter(uint64_t ts) const {
    const auto& log = versions_.Read();
    return !log.empty() && log.back().ts > ts;
  }

  /// Visits every row as of timestamp `ts`, in unspecified order.
  void ScanAt(uint64_t ts,
              const std::function<void(const Row&)>& visit) const;

  /// Drops version entries no active reader can need (all with
  /// ts <= watermark, where watermark = min active read_ts).
  void TrimVersions(uint64_t watermark);

  /// Undoes, newest-first, every mutation logged at exactly `ts` (the
  /// failed-commit unwind). Entries are removed from the log.
  util::Status RevertVersionsAt(uint64_t ts);

  size_t NumVersions() const { return versions_.Read().size(); }

  util::Status Get(RowId rid, Row* out) const { return store_->Get(rid, out); }
  bool IsLive(RowId rid) const { return store_->IsLive(rid); }

  void Scan(const std::function<void(RowId, const Row&)>& visit) const {
    store_->Scan(visit);
  }

  /// Creates and backfills an index over the named columns.
  util::Status CreateIndex(std::string index_name,
                           const std::vector<std::string>& column_names,
                           IndexKind kind, bool unique = false);

  /// Creates a functional index on JSON_VAL(json_column, key) — the
  /// equivalent of the user-created attribute indexes in §3.3.
  util::Status CreateJsonIndex(std::string index_name,
                               const std::string& json_column,
                               const std::string& key, IndexKind kind);

  /// Finds a JSON functional index on (column, key) of the given kind.
  const Index* FindJsonIndex(int column_id, std::string_view key,
                             IndexKind kind) const;

  /// Finds an index whose leading columns exactly match `column_ids` (order
  /// sensitive); nullptr if none.
  const Index* FindIndex(const std::vector<int>& column_ids) const;

  /// Finds any index whose *first* key column is `column_id` (for range
  /// scans / partial matches); prefers an exact single-column match.
  const Index* FindIndexOnColumn(int column_id, IndexKind kind) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Convenience equality lookup via an index on the given columns. Returns
  /// NotFound-free empty vector when no rows match; InvalidArgument when no
  /// suitable index exists.
  util::Result<std::vector<RowId>> LookupEq(
      const std::vector<int>& column_ids, const IndexKey& key) const;

 private:
  enum class VersionKind : uint8_t { kInsert, kUpdate, kDelete };
  struct RowVersion {
    uint64_t ts = 0;      // commit timestamp the mutation became visible at
    RowId rid = 0;
    VersionKind kind = VersionKind::kInsert;
    Row before;           // pre-image (empty for kInsert)
  };

  std::string name_;
  Schema schema_;
  std::unique_ptr<RowStore> store_;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::atomic<uint64_t> mutations_{0};
  // ts-ascending. SharedVar: every access is a scheduling point + race
  // check under the schedule explorer (util/sched.h); plain deque access
  // otherwise. Protected by the owning store's external table lock.
  util::sched::SharedVar<std::deque<RowVersion>> versions_{"table.versions"};
};

}  // namespace rel
}  // namespace sqlgraph

#endif  // SQLGRAPH_REL_TABLE_H_
