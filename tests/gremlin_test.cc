// Tests for the Gremlin parser, the Gremlin→SQL translator (Table 8
// templates, Fig. 7 shape, optimizations) and end-to-end execution over the
// SQLGraph store.

#include <algorithm>

#include "gremlin/parser.h"
#include "gremlin/runtime.h"
#include "gtest/gtest.h"
#include "sql/parser.h"

namespace sqlgraph {
namespace gremlin {
namespace {

using core::SqlGraphStore;
using core::StoreConfig;
using graph::PropertyGraph;

json::JsonValue Attrs(
    std::initializer_list<std::pair<const char*, json::JsonValue>> members) {
  json::JsonValue obj = json::JsonValue::Object();
  for (const auto& [k, v] : members) obj.Set(k, v);
  return obj;
}

PropertyGraph SampleGraph() {
  PropertyGraph g;
  g.AddVertex(Attrs({{"name", json::JsonValue("marko")},
                     {"age", json::JsonValue(29)},
                     {"tag", json::JsonValue("w")}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("vadas")},
                     {"age", json::JsonValue(27)}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("lop")},
                     {"lang", json::JsonValue("java")}}));
  g.AddVertex(Attrs({{"name", json::JsonValue("josh")},
                     {"age", json::JsonValue(32)},
                     {"tag", json::JsonValue("w")}}));
  auto w = [](double x) { return Attrs({{"weight", json::JsonValue(x)}}); };
  EXPECT_TRUE(g.AddEdge(0, 1, "knows", w(0.5)).ok());
  EXPECT_TRUE(g.AddEdge(0, 3, "knows", w(1.0)).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, "created", w(0.4)).ok());
  EXPECT_TRUE(g.AddEdge(3, 2, "created", w(0.2)).ok());
  EXPECT_TRUE(g.AddEdge(3, 1, "likes", w(0.8)).ok());
  return g;
}

// --------------------------------------------------------------- parser ----

TEST(GremlinParserTest, ParsesBasicPipeline) {
  auto p = ParseGremlin("g.V.filter{it.tag=='w'}.both.dedup().count()");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->pipes.size(), 5u);
  EXPECT_EQ(p->pipes[0].kind, PipeKind::kStartV);
  EXPECT_EQ(p->pipes[1].kind, PipeKind::kHas);
  EXPECT_EQ(p->pipes[1].key, "tag");
  EXPECT_EQ(p->pipes[2].kind, PipeKind::kBoth);
  EXPECT_EQ(p->pipes[3].kind, PipeKind::kDedup);
  EXPECT_EQ(p->pipes[4].kind, PipeKind::kCount);
}

TEST(GremlinParserTest, StartForms) {
  EXPECT_TRUE(ParseGremlin("g.V")->pipes[0].start_key.empty());
  auto by_id = ParseGremlin("g.V(5)");
  ASSERT_TRUE(by_id.ok());
  EXPECT_TRUE(by_id->pipes[0].has_start_id);
  EXPECT_EQ(by_id->pipes[0].value.AsInt(), 5);
  auto by_key = ParseGremlin("g.V('uri', 'http://x/y')");
  ASSERT_TRUE(by_key.ok());
  EXPECT_EQ(by_key->pipes[0].start_key, "uri");
  EXPECT_EQ(by_key->pipes[0].value.AsString(), "http://x/y");
}

TEST(GremlinParserTest, HasComparators) {
  auto p = ParseGremlin("g.V.has('age', T.gt, 27)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pipes[1].cmp, Cmp::kGt);
  EXPECT_EQ(p->pipes[1].value.AsInt(), 27);
  p = ParseGremlin("g.V.has('name')");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->pipes[1].has_value);
}

TEST(GremlinParserTest, LoopForms) {
  auto p = ParseGremlin("g.V(1).out('a').loop(1){it.loops < 4}");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pipes[2].loop_steps, 1);
  EXPECT_EQ(p->pipes[2].loop_count, 4);
  p = ParseGremlin("g.V(1).out('a').loop(1){true}");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pipes[2].loop_count, -1);
}

TEST(GremlinParserTest, BranchingForms) {
  auto p = ParseGremlin(
      "g.V.copySplit(_().out('a'), _().in('b')).exhaustMerge().count()");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->pipes.size(), 3u);  // merge is a no-op
  EXPECT_EQ(p->pipes[1].branches.size(), 2u);
  p = ParseGremlin("g.V.and(_().out('a'), _().out('b'))");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pipes[1].kind, PipeKind::kAndFilter);
  p = ParseGremlin("g.V.ifThenElse{it.age > 30}{it.out('a')}{it.in('b')}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->pipes[1].branches.size(), 3u);
}

TEST(GremlinParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseGremlin("x.V").ok());
  EXPECT_FALSE(ParseGremlin("g.nonsensePipe()").ok());
  EXPECT_FALSE(ParseGremlin("g.V.has(").ok());
  EXPECT_FALSE(ParseGremlin("g.V.out('a'").ok());
  EXPECT_FALSE(ParseGremlin("g.V.filter{tag=='w'}").ok());
  EXPECT_FALSE(ParseGremlin("g").ok());
}

TEST(GremlinParserTest, ToStringRoundTrips) {
  const char* q = "g.V.has('age', T.gt, 27).out('knows').dedup().count()";
  auto p = ParseGremlin(q);
  ASSERT_TRUE(p.ok());
  auto p2 = ParseGremlin(ToString(*p));
  ASSERT_TRUE(p2.ok()) << ToString(*p);
  EXPECT_EQ(p->pipes.size(), p2->pipes.size());
}

// ----------------------------------------------------------- translator ----

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoreConfig config;
    config.va_hash_indexes = {"name", "tag"};
    auto built = SqlGraphStore::Build(SampleGraph(), config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    store_ = std::move(built).value();
    runtime_ = std::make_unique<GremlinRuntime>(store_.get());
  }

  int64_t MustCount(const std::string& q) {
    auto r = runtime_->Count(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : -1;
  }

  std::vector<int64_t> MustVals(const std::string& q) {
    auto r = runtime_->Query(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    std::vector<int64_t> out;
    if (r.ok()) {
      const int col = r->FindColumn("val");
      EXPECT_GE(col, 0);
      for (const auto& row : r->rows) out.push_back(row[static_cast<size_t>(col)].AsInt());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<SqlGraphStore> store_;
  std::unique_ptr<GremlinRuntime> runtime_;
};

TEST_F(RuntimeTest, TranslationProducesParseableSql) {
  // The emitted SQL must be real SQL: render → parse round trip.
  const char* queries[] = {
      "g.V.filter{it.tag=='w'}.both.dedup().count()",
      "g.V(0).out('knows').out('created').count()",
      "g.V.has('age', T.gt, 27).outE('knows').inV().dedup().count()",
      "g.V(0).as('x').out('knows').back('x').dedup().count()",
      "g.V(0).out('knows').path()",
  };
  for (const char* q : queries) {
    auto sql_text = runtime_->TranslateToSql(q);
    ASSERT_TRUE(sql_text.ok()) << q << ": " << sql_text.status().ToString();
    auto reparsed = sql::ParseQuery(*sql_text);
    EXPECT_TRUE(reparsed.ok()) << q << "\nSQL: " << *sql_text << "\n"
                               << reparsed.status().ToString();
  }
}

TEST_F(RuntimeTest, PaperExampleQuery) {
  // §4.1: vertices adjacent (either direction) to a tag=='w' vertex.
  // marko(0): out {1,2,3}; josh(3): out {1,2}, in {0}; marko in: {}.
  // both-multiset = {1,2,3, 1,2, 0}; dedup → {0,1,2,3} → 4.
  EXPECT_EQ(MustCount("g.V.filter{it.tag=='w'}.both.dedup().count()"), 4);
}

TEST_F(RuntimeTest, SingleHopUsesEaTable) {
  auto sql_text = runtime_->TranslateToSql("g.V(0).out('knows').count()");
  ASSERT_TRUE(sql_text.ok());
  EXPECT_NE(sql_text->find("EA"), std::string::npos) << *sql_text;
  EXPECT_EQ(sql_text->find("OPA"), std::string::npos) << *sql_text;
}

TEST_F(RuntimeTest, MultiHopUsesHashTables) {
  auto sql_text =
      runtime_->TranslateToSql("g.V(0).out('knows').out('created').count()");
  ASSERT_TRUE(sql_text.ok());
  EXPECT_NE(sql_text->find("OPA"), std::string::npos) << *sql_text;
  EXPECT_NE(sql_text->find("LEFT OUTER JOIN OSA"), std::string::npos)
      << *sql_text;
}

TEST_F(RuntimeTest, GraphQueryMergeFoldsHasIntoStart) {
  auto sql_text =
      runtime_->TranslateToSql("g.V.has('tag', 'w').out('knows').count()");
  ASSERT_TRUE(sql_text.ok());
  // The has() must not create a separate VA join CTE: one VA mention only.
  size_t mentions = 0, pos = 0;
  while ((pos = sql_text->find("FROM VA", pos)) != std::string::npos) {
    ++mentions;
    pos += 7;
  }
  EXPECT_EQ(mentions, 1u) << *sql_text;
}

TEST_F(RuntimeTest, VertexQueryMergeFoldsEdgeFilter) {
  // §4.5.1: outE followed by attribute filters folds into one CTE — the EA
  // table must be referenced exactly once before inV().
  auto sql_text = runtime_->TranslateToSql(
      "g.V(0).outE('knows').has('weight', T.gt, 0.6).inV().count()");
  ASSERT_TRUE(sql_text.ok());
  size_t mentions = 0, pos = 0;
  while ((pos = sql_text->find("EA p", pos)) != std::string::npos) {
    ++mentions;
    pos += 4;
  }
  EXPECT_EQ(mentions, 2u) << *sql_text;  // outE CTE (merged) + inV CTE
  // Result unchanged by the merge.
  EXPECT_EQ(MustVals("g.V(0).outE('knows').has('weight', T.gt, 0.6).inV()"),
            (std::vector<int64_t>{3}));
  // Chained filters all merge.
  auto chained = runtime_->TranslateToSql(
      "g.V(0).outE().has('label', 'knows').has('weight', T.gt, 0.6).count()");
  ASSERT_TRUE(chained.ok());
  mentions = 0;
  pos = 0;
  while ((pos = chained->find("EA p", pos)) != std::string::npos) {
    ++mentions;
    pos += 4;
  }
  EXPECT_EQ(mentions, 1u) << *chained;
}

TEST_F(RuntimeTest, ForceEaAblation) {
  TranslatorOptions options;
  options.force_ea_for_all_hops = true;
  GremlinRuntime ea_runtime(store_.get(), options);
  auto sql_text =
      ea_runtime.TranslateToSql("g.V(0).out('knows').out('created').count()");
  ASSERT_TRUE(sql_text.ok());
  EXPECT_EQ(sql_text->find("OPA"), std::string::npos) << *sql_text;
  auto count = ea_runtime.Count("g.V(0).out('knows').out('created').count()");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1);  // knows → {vadas, josh}; only josh created (lop)
}

TEST_F(RuntimeTest, TraversalResults) {
  EXPECT_EQ(MustVals("g.V(0).out('knows')"), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(MustVals("g.V(0).out()"), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(MustVals("g.V(2).in('created')"), (std::vector<int64_t>{0, 3}));
  EXPECT_EQ(MustVals("g.V(1).both()"), (std::vector<int64_t>{0, 3}));
  EXPECT_EQ(MustVals("g.V(0).out('knows').out('created')"),
            (std::vector<int64_t>{2}));
  EXPECT_EQ(MustVals("g.V(0).out('knows','created')"),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(RuntimeTest, EdgePipes) {
  // marko's out-edges: e0 (knows), e1 (knows), e2 (created).
  EXPECT_EQ(MustVals("g.V(0).outE('knows')"), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(MustVals("g.V(0).outE('knows').inV()"),
            (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(MustVals("g.V(0).outE('knows').outV()"),
            (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(MustVals("g.V(1).inE()"), (std::vector<int64_t>{0, 4}));
  // Edge attribute filter.
  EXPECT_EQ(MustVals("g.V(0).outE('knows').has('weight', T.gt, 0.6).inV()"),
            (std::vector<int64_t>{3}));
  // Edge label filter via has('label', ...).
  EXPECT_EQ(MustCount("g.V(0).outE().has('label', 'created').count()"), 1);
}

TEST_F(RuntimeTest, FiltersAndDedup) {
  EXPECT_EQ(MustCount("g.V.has('age').count()"), 3);
  EXPECT_EQ(MustCount("g.V.hasNot('age').count()"), 1);
  EXPECT_EQ(MustCount("g.V.has('age', T.gte, 29).count()"), 2);
  EXPECT_EQ(MustCount("g.V.interval('age', 27, 30).count()"), 2);
  EXPECT_EQ(MustCount("g.V(0).out().out().count()"), 2);  // 1→nothing, 3→{2,1}
  EXPECT_EQ(MustCount("g.V(0).out().out().dedup().count()"), 2);
  EXPECT_EQ(MustCount("g.V(3).out().in().count()"), 4);
  EXPECT_EQ(MustCount("g.V(3).out().in().dedup().count()"), 2);
}

TEST_F(RuntimeTest, RangePipe) {
  EXPECT_EQ(MustCount("g.V.range(0, 1).count()"), 2);
  EXPECT_EQ(MustCount("g.V.range(2, 9).count()"), 2);
}

TEST_F(RuntimeTest, PathAndSimplePath) {
  auto r = runtime_->Query("g.V(0).out('knows').path()");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  // Each path is a JSON array [0, neighbor].
  for (const auto& row : r->rows) {
    ASSERT_TRUE(row[0].is_json());
    EXPECT_EQ(row[0].AsJson().AsArray().size(), 2u);
    EXPECT_EQ(row[0].AsJson().AsArray()[0].AsInt(), 0);
  }
  // out(0)={1,2,3}; in(1)={0,3}, in(2)={0,3}, in(3)={0} → 5 walks, of
  // which 3 are the cyclic 0→x→0 ones that simplePath removes.
  EXPECT_EQ(MustCount("g.V(0).out().in().count()"), 5);
  EXPECT_EQ(MustCount("g.V(0).out().in().simplePath().count()"),
            MustCount("g.V(0).out().in().count()") - 3);
}

TEST_F(RuntimeTest, AsBack) {
  // Vertices that know someone who created something — back to the source.
  EXPECT_EQ(MustVals(
                "g.V.as('x').out('knows').out('created').back('x').dedup()"),
            (std::vector<int64_t>{0}));
}

TEST_F(RuntimeTest, AggregateExceptRetain) {
  // Neighbors of marko's knows, except those marko knows directly.
  EXPECT_EQ(
      MustVals("g.V(0).out('knows').aggregate('x').out('created')"
               ".except('x').dedup()"),
      (std::vector<int64_t>{2}));
  EXPECT_EQ(MustVals("g.V(0).out().aggregate('x').out().retain('x').dedup()"),
            (std::vector<int64_t>{1, 2}));
}

TEST_F(RuntimeTest, AndOrFilters) {
  // and(): vertices with out-knows AND out-created = marko, josh? josh has
  // likes+created; marko knows+created → both qualify... josh: knows? no.
  EXPECT_EQ(MustVals("g.V.and(_().out('knows'), _().out('created'))"),
            (std::vector<int64_t>{0}));
  EXPECT_EQ(MustVals("g.V.or(_().out('knows'), _().out('created'))"),
            (std::vector<int64_t>{0, 3}));
}

TEST_F(RuntimeTest, CopySplitMerge) {
  EXPECT_EQ(MustVals("g.V(0).copySplit(_().out('knows'), "
                     "_().out('created')).exhaustMerge().dedup()"),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(RuntimeTest, IfThenElse) {
  // Older than 28 → their creations; otherwise → who they know... vadas(27)
  // knows nobody. marko(29)→lop, josh(32)→lop; lop & vadas lack age → else.
  EXPECT_EQ(MustVals("g.V.ifThenElse{it.age > 28}{it.out('created')}"
                     "{it.out('knows')}.dedup()"),
            (std::vector<int64_t>{2}));
}

TEST_F(RuntimeTest, FixedLoopUnrolls) {
  // 3 hops from marko following anything.
  EXPECT_EQ(MustCount("g.V(0).out().loop(1){it.loops < 2}.count()"),
            MustCount("g.V(0).out().out().count()"));
  EXPECT_EQ(MustCount("g.V(0).out().loop(1){it.loops < 3}.count()"),
            MustCount("g.V(0).out().out().out().count()"));
}

TEST_F(RuntimeTest, UnboundedLoopReachesFixpoint) {
  // Transitive closure from marko = {1,2,3} (no cycles back to 0).
  EXPECT_EQ(MustCount("g.V(0).out().loop(1){true}.dedup().count()"), 3);
  auto sql_text =
      runtime_->TranslateToSql("g.V(0).out().loop(1){true}.dedup().count()");
  ASSERT_TRUE(sql_text.ok());
  EXPECT_NE(sql_text->find("WITH RECURSIVE"), std::string::npos) << *sql_text;
}

TEST_F(RuntimeTest, StartByAttributeUsesIndex) {
  EXPECT_EQ(MustVals("g.V('name', 'marko')"), (std::vector<int64_t>{0}));
  EXPECT_EQ(MustCount("g.V('name', 'nobody').count()"), 0);
}

TEST_F(RuntimeTest, SoftDeletedVertexExcluded) {
  ASSERT_TRUE(store_->RemoveVertex(1).ok());
  EXPECT_EQ(MustCount("g.V.count()"), 3);
  // vadas no longer reachable via EA-backed single-hop.
  EXPECT_EQ(MustVals("g.V(0).out('knows')"), (std::vector<int64_t>{3}));
}

TEST_F(RuntimeTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(runtime_->Query("g.V.out().badPipe()").ok());
  EXPECT_FALSE(runtime_->Query("g.V.outV()").ok());   // outV on vertices
  EXPECT_FALSE(runtime_->Query("g.V.back('nope')").ok());
  EXPECT_FALSE(runtime_->Query("g.V.except('nope')").ok());
}

}  // namespace
}  // namespace gremlin
}  // namespace sqlgraph
